// Google-benchmark microbenchmarks of the evaluation/community hot paths
// rebuilt in the eval-stack PR: the cached Gram-matrix MMD against its
// per-pair reference, flat-CSR Louvain against the map-of-maps reference,
// and the spectral power iteration. bench/BENCH_eval.json holds a reference
// run (see its "context" block for the machine).
//
// The BM_Mmd*/BM_RefMmd pairs carry the headline claim: the old path
// re-normalized both histograms and recomputed the kernel for every (i, j)
// and every estimator term, so its cost scales with the number of estimator
// terms times pair count; the new path pays one normalization per sample
// and one kernel per unordered pair. The *Threads sweep sets the pool size
// (second Args value); results are bitwise identical at every sweep point,
// only the wall clock moves (and only on multi-core machines — the
// committed baseline is a 1-CPU box, where the serial caching/symmetry win
// is the whole speedup).

#include <benchmark/benchmark.h>

#include <vector>

#include "community/louvain.h"
#include "data/synthetic.h"
#include "eval/mmd.h"
#include "generators/ba.h"
#include "testing/eval_ref.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace cpgan;

// Synthetic degree-histogram-like sample sets: `count` histograms of
// `width` bins with deterministic pseudo-random counts. Widths are jittered
// per sample so every pair exercises the common-support padding.
std::vector<std::vector<double>> MakeHistSet(int count, int width,
                                             uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> set;
  set.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int w = width - static_cast<int>(rng.UniformInt(width / 4 + 1));
    std::vector<double> h(w);
    for (double& v : h) {
      v = static_cast<double>(rng.UniformInt(100));
    }
    set.push_back(std::move(h));
  }
  return set;
}

void BM_Mmd(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  const auto a = MakeHistSet(count, width, 11);
  const auto b = MakeHistSet(count, width, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::Mmd(a, b, eval::MmdKernel::kGaussianEmd,
                                       1.0, eval::MmdEstimator::kUnbiased));
  }
  state.SetComplexityN(count);
}
BENCHMARK(BM_Mmd)
    ->Args({8, 64})
    ->Args({32, 64})
    ->Args({128, 64})
    ->Args({32, 16})
    ->Args({32, 256})
    ->Args({128, 256});

// Historical per-pair implementation (testing/eval_ref.cc), same inputs:
// the BM_Mmd / BM_RefMmd ratio is the single-thread speedup of the rewrite.
void BM_RefMmd(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  const auto a = MakeHistSet(count, width, 11);
  const auto b = MakeHistSet(count, width, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(testing::RefMmd(a, b,
                                             eval::MmdKernel::kGaussianEmd,
                                             1.0,
                                             eval::MmdEstimator::kUnbiased));
  }
  state.SetComplexityN(count);
}
BENCHMARK(BM_RefMmd)
    ->Args({8, 64})
    ->Args({32, 64})
    ->Args({128, 64})
    ->Args({32, 16})
    ->Args({32, 256})
    ->Args({128, 256});

// Thread sweep over the Gram-row parallelization (range: count, width,
// threads).
void BM_MmdThreads(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  util::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(2)));
  const auto a = MakeHistSet(count, width, 11);
  const auto b = MakeHistSet(count, width, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::Mmd(a, b, eval::MmdKernel::kGaussianEmd,
                                       1.0, eval::MmdEstimator::kUnbiased));
  }
  util::ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_MmdThreads)
    ->Args({128, 64, 1})
    ->Args({128, 64, 2})
    ->Args({128, 64, 8})
    ->Args({128, 256, 1})
    ->Args({128, 256, 2})
    ->Args({128, 256, 8});

graph::Graph MakeSbm(int nodes, uint64_t seed) {
  data::CommunityGraphParams params;
  params.num_nodes = nodes;
  params.num_edges = nodes * 4;
  params.num_communities = nodes / 64 + 2;
  params.intra_fraction = 0.9;
  util::Rng rng(seed);
  return data::MakeCommunityGraph(params, rng);
}

void BM_LouvainSbm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(1)));
  graph::Graph g = MakeSbm(n, 7);
  for (auto _ : state) {
    util::Rng rng(4);
    benchmark::DoNotOptimize(community::Louvain(g, rng));
  }
  util::ThreadPool::SetGlobalThreads(1);
  state.SetComplexityN(n);
}
BENCHMARK(BM_LouvainSbm)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 8})
    ->Args({8192, 1})
    ->Args({8192, 2})
    ->Args({8192, 8});

void BM_LouvainBa(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng gen_rng(5);
  graph::Graph g = generators::BaGenerator(n, 4).Generate(gen_rng);
  for (auto _ : state) {
    util::Rng rng(4);
    benchmark::DoNotOptimize(community::Louvain(g, rng));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LouvainBa)->Arg(1024)->Arg(4096)->Complexity();

void BM_RefLouvainSbm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  graph::Graph g = MakeSbm(n, 7);
  for (auto _ : state) {
    util::Rng rng(4);
    benchmark::DoNotOptimize(testing::RefLouvain(g, rng));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RefLouvainSbm)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
