// Reproduces Table II: detailed stats of the included datasets.
//
// Columns: #Nodes, #Edges, #Comm (Louvain), mean degree, CPL, GINI, PWE.
// The datasets are the scaled-down synthetic stand-ins described in
// DESIGN.md §3; the qualitative ordering across datasets (density, tail
// weight, path length) mirrors the paper's Table II.

#include <cstdio>

#include "bench/bench_util.h"
#include "community/louvain.h"
#include "data/datasets.h"
#include "graph/stats.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace cpgan;
  std::printf("Table II analogue: dataset statistics\n\n");
  util::Table table({"Dataset", "#Nodes", "#Edges", "#Comm.", "d_mean", "CPL",
                     "GINI", "PWE", "Clus."});
  for (const std::string& name : data::DatasetNames()) {
    graph::Graph g = bench::BenchDataset(name);
    util::Rng rng(1);
    graph::GraphSummary s = graph::ComputeSummary(g, rng);
    community::LouvainResult louvain = community::Louvain(g, rng);
    table.AddRow({name, std::to_string(s.num_nodes),
                  std::to_string(s.num_edges),
                  std::to_string(louvain.FinalPartition().num_communities()),
                  util::FormatCompact(s.mean_degree),
                  util::FormatCompact(s.cpl), util::FormatCompact(s.gini),
                  util::FormatCompact(s.power_law_exponent),
                  util::FormatCompact(s.avg_clustering)});
  }
  table.Print();
  return 0;
}
