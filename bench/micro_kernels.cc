// Google-benchmark microbenchmarks of the kernels behind the paper's
// complexity claims: O(m + n) graph convolution / pooling (Section III-C),
// O(m + n) Louvain, and the subgraph decode that dominates CPGAN training.
//
// The *Threads benchmarks sweep the thread-pool size for the parallel
// kernels (second Args value = threads). Results are bitwise identical for
// any sweep point — only the wall clock moves. bench/BENCH_kernels.json
// holds a reference run (see its "context" block for the machine; speedups
// only show up with > 1 physical core).
//
// The *Backend benchmarks (registered in main() for every backend compiled
// into this binary and usable on this machine) run the SAME shapes under
// each kernel backend, so the scalar-vs-avx2 column pairs in
// BENCH_kernels.json are directly comparable. These are single-core
// vectorization wins — they show up even on the 1-CPU reference machine.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "community/louvain.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "graph/spectral.h"
#include "nn/gcn.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace cpgan;

graph::Graph MakeGraph(int n) {
  return data::MakeScaledDataset("google_like", n, 13);
}

void BM_SpMM(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  graph::Graph g = MakeGraph(n);
  tensor::SparseMatrix a = tensor::NormalizedAdjacency(n, g.Edges());
  util::Rng rng(1);
  tensor::Matrix x(n, 32);
  x.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(x));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SpMM)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_DenseMatmul(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  tensor::Matrix a(n, 32);
  tensor::Matrix b(32, n);
  a.FillNormal(rng, 1.0f);
  b.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Matmul(a, b));
  }
}
BENCHMARK(BM_DenseMatmul)->Arg(128)->Arg(256)->Arg(512);

// ---------------------------------------------------------------------------
// Thread-count sweeps (range(0) = problem size, range(1) = pool threads).
// ---------------------------------------------------------------------------

void BM_SpMMThreads(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  util::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(1)));
  graph::Graph g = MakeGraph(n);
  tensor::SparseMatrix a = tensor::NormalizedAdjacency(n, g.Edges());
  util::Rng rng(1);
  tensor::Matrix x(n, 32);
  x.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(x));
  }
  util::ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_SpMMThreads)
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({12800, 1})
    ->Args({12800, 2})
    ->Args({12800, 4})
    ->Args({12800, 8});

void BM_DenseMatmulThreads(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  util::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(1)));
  util::Rng rng(2);
  tensor::Matrix a(n, n);
  tensor::Matrix b(n, n);
  a.FillNormal(rng, 1.0f);
  b.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Matmul(a, b));
  }
  util::ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_DenseMatmulThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8});

void BM_LocalClusteringThreads(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  util::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(1)));
  graph::Graph g = MakeGraph(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::LocalClusteringCoefficients(g));
  }
  util::ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_LocalClusteringThreads)
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({12800, 1})
    ->Args({12800, 2})
    ->Args({12800, 4})
    ->Args({12800, 8});

void BM_GcnForwardBackward(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  graph::Graph g = MakeGraph(n);
  auto a = std::make_shared<tensor::SparseMatrix>(
      tensor::NormalizedAdjacency(n, g.Edges()));
  util::Rng rng(3);
  nn::GcnConv conv(16, 32, rng);
  tensor::Matrix x(n, 16);
  x.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    tensor::Tensor input(x, /*requires_grad=*/true);
    tensor::Tensor loss = tensor::MeanAll(
        tensor::Square(conv.Forward(a, input)));
    tensor::Backward(loss);
    benchmark::DoNotOptimize(loss.Scalar());
  }
}
BENCHMARK(BM_GcnForwardBackward)->Arg(256)->Arg(1024);

void BM_Louvain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  graph::Graph g = MakeGraph(n);
  for (auto _ : state) {
    util::Rng rng(4);
    benchmark::DoNotOptimize(community::Louvain(g, rng));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Louvain)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_SpectralEmbedding(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  graph::Graph g = MakeGraph(n);
  for (auto _ : state) {
    util::Rng rng(5);
    benchmark::DoNotOptimize(graph::SpectralEmbedding(g, 16, rng, 10));
  }
}
BENCHMARK(BM_SpectralEmbedding)->Arg(256)->Arg(1024);

// ---------------------------------------------------------------------------
// Backend sweeps: the same shape under every compiled kernel backend
// (benchmark name carries the backend; registered in main()).
// ---------------------------------------------------------------------------

void BM_DenseMatmulBackend(benchmark::State& state,
                           const std::string& backend) {
  tensor::kernels::SetBackend(backend);
  int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  tensor::Matrix a(n, n);
  tensor::Matrix b(n, n);
  a.FillNormal(rng, 1.0f);
  b.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}

void BM_SpMMBackend(benchmark::State& state, const std::string& backend) {
  tensor::kernels::SetBackend(backend);
  int n = static_cast<int>(state.range(0));
  graph::Graph g = MakeGraph(n);
  tensor::SparseMatrix a = tensor::NormalizedAdjacency(n, g.Edges());
  util::Rng rng(1);
  tensor::Matrix x(n, 32);
  x.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(x));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * 32);
}

void BM_AxpyBackend(benchmark::State& state, const std::string& backend) {
  tensor::kernels::SetBackend(backend);
  int64_t n = state.range(0);
  util::Rng rng(6);
  tensor::Matrix x(1, static_cast<int>(n));
  tensor::Matrix y(1, static_cast<int>(n));
  x.FillNormal(rng, 1.0f);
  y.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    y.Axpy(0.5f, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_SumBackend(benchmark::State& state, const std::string& backend) {
  tensor::kernels::SetBackend(backend);
  int64_t n = state.range(0);
  util::Rng rng(7);
  tensor::Matrix x(1, static_cast<int>(n));
  x.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.Sum());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void RegisterBackendSweeps() {
  for (const tensor::kernels::KernelOps* ops :
       tensor::kernels::AvailableBackends()) {
    const std::string name = ops->name;
    benchmark::RegisterBenchmark(
        ("BM_DenseMatmulBackend/" + name).c_str(), BM_DenseMatmulBackend, name)
        ->Arg(256)
        ->Arg(512)
        ->Arg(1024);
    benchmark::RegisterBenchmark(("BM_SpMMBackend/" + name).c_str(),
                                 BM_SpMMBackend, name)
        ->Arg(4096)
        ->Arg(12800);
    benchmark::RegisterBenchmark(("BM_AxpyBackend/" + name).c_str(),
                                 BM_AxpyBackend, name)
        ->Arg(1 << 20);
    benchmark::RegisterBenchmark(("BM_SumBackend/" + name).c_str(),
                                 BM_SumBackend, name)
        ->Arg(1 << 20);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterBackendSweeps();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
