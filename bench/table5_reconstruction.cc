// Reproduces Table V: graph reconstruction on PPI- and Citeseer-like data.
// 80% of the edges train the model, which then reconstructs the graph; the
// five structure metrics compare the reconstruction to the full graph, and
// Train/Test NLL score the held-in/held-out edges against sampled non-edges.
//
// Expected shape: CPGAN lowest NLL and best (or near-best) structure
// metrics, clearly ahead of VGAE/Graphite/SBMGNN/CondGen.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "eval/graph_metrics.h"
#include "eval/nll.h"
#include "eval/report.h"
#include "graph/split.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace cpgan;
  const std::vector<std::string> datasets = {"ppi_like", "citeseer_like"};
  const std::vector<std::string> models = {"VGAE", "Graphite", "SBMGNN",
                                           "CondGen-R", "CPGAN"};
  int runs = 1;  // Table V reports single-run numbers (no ± in the paper)
  std::printf(
      "Table V analogue: graph reconstruction (80%%/20%% edge split), %d "
      "run(s)\n",
      runs);

  for (const std::string& dataset : datasets) {
    graph::Graph full = bench::BenchDataset(dataset);
    std::printf("\n=== %s ===\n", dataset.c_str());
    util::Table table({"Model", "Deg.", "Clus.", "CPL", "GINI", "PWE",
                       "Train NLL", "Test NLL"});
    for (const std::string& model : models) {
      std::vector<double> deg, clus, cpl, gini, pwe, train_nll, test_nll;
      bool feasible = true;
      for (int run = 0; run < runs; ++run) {
        util::Rng split_rng(300 + run);
        graph::EdgeSplit split = graph::RandomEdgeSplit(full, 0.8, split_rng);

        // Negative samples: half evaluate train NLL, half test NLL.
        size_t half = split.negative_edges.size() / 2;
        std::vector<graph::Edge> neg_train(split.negative_edges.begin(),
                                           split.negative_edges.begin() + half);
        std::vector<graph::Edge> neg_test(split.negative_edges.begin() + half,
                                          split.negative_edges.end());

        bench::RunOptions options;
        options.seed = 400 + run;
        options.positive_pairs = &split.train_edges;
        options.negative_pairs = &neg_train;
        options.test_positive_pairs = &split.test_edges;
        options.test_negative_pairs = &neg_test;
        bench::ModelRun result = bench::RunModel(model, split.train, options);
        if (!result.feasible || result.positive_probs.empty()) {
          feasible = false;
          break;
        }
        train_nll.push_back(
            eval::EdgeNll(result.positive_probs, result.negative_probs));
        test_nll.push_back(eval::EdgeNll(result.test_positive_probs,
                                         result.test_negative_probs));

        util::Rng rng(17 + run);
        eval::GenerationMetrics m =
            eval::ComputeGenerationMetrics(full, result.generated, rng);
        deg.push_back(m.deg);
        clus.push_back(m.clus);
        cpl.push_back(m.cpl);
        gini.push_back(m.gini);
        pwe.push_back(m.pwe);
      }
      if (!feasible) {
        table.AddRow({model, "OOM", "OOM", "OOM", "OOM", "OOM", "OOM", "OOM"});
      } else {
        table.AddRow({model, util::FormatCompact(eval::Mean(deg)),
                      util::FormatCompact(eval::Mean(clus)),
                      util::FormatCompact(eval::Mean(cpl)),
                      util::FormatCompact(eval::Mean(gini)),
                      util::FormatCompact(eval::Mean(pwe)),
                      util::FormatCompact(eval::Mean(train_nll)),
                      util::FormatCompact(eval::Mean(test_nll))});
      }
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
