// Reproduces Table VIII: wall-clock minutes for the entire training process
// as the node count grows (fixed epoch budget per model, single CPU core;
// the sweep is 0.1k-3k instead of the paper's 0.1k-100k — DESIGN.md §2.2).
//
// Expected shape: CPGAN's subgraph-sampled training scales best among the
// learning-based models (near-flat in n once n >> n_s), while the
// full-adjacency models grow ~quadratically and hit the memory wall.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace cpgan;
  const std::vector<int> sizes = {100, 300, 1000, 3000};
  const std::vector<std::string> models = {
      "MMSB", "Kronecker", "GraphRNN-S", "VGAE", "Graphite",
      "SBMGNN", "NetGAN", "CondGen-R", "CPGAN"};
  std::printf(
      "Table VIII analogue: training minutes vs node count (fixed epoch "
      "budget)\n\n");

  std::vector<std::string> headers = {"Model"};
  for (int n : sizes) headers.push_back(std::to_string(n));
  util::Table table(headers);

  // With CPGAN_BENCH_PROFILE set, each model's largest run also emits a
  // per-span phase breakdown (JSONL, same registry as --profile in the CLI).
  std::vector<std::string> breakdowns;

  for (const std::string& model : models) {
    std::vector<std::string> row = {model};
    for (int n : sizes) {
      graph::Graph observed = data::MakeScaledDataset("google_like", n, 7);
      bench::RunOptions options;
      options.seed = 901;
      options.learned_epochs = 60;
      bench::ModelRun result = bench::RunModel(model, observed, options);
      row.push_back(result.feasible
                        ? util::FormatCompact(result.fit_seconds / 60.0)
                        : "-");
      if (n == sizes.back()) {
        std::string breakdown = bench::PhaseBreakdownJson(model, result);
        if (!breakdown.empty()) breakdowns.push_back(breakdown);
      }
      std::fflush(stdout);
    }
    table.AddRow(row);
    std::printf("finished %s\n", model.c_str());
  }
  std::printf("\n");
  table.Print();
  if (!breakdowns.empty()) {
    std::printf("\nphase breakdown (n=%d, exclusive ms per span):\n",
                sizes.back());
    for (const std::string& line : breakdowns) {
      std::printf("%s\n", line.c_str());
    }
  }
  return 0;
}
