// Observability-plane overhead snapshot: drives identical serve bursts with
// metrics disabled vs. metrics + the periodic exporter enabled (100 ms period,
// both sinks), measuring per-request wall latency at the client so the two
// modes are compared by the same clock regardless of instrumentation. Also
// microbenches the raw instrument pair (counter add + histogram observe) and
// a full exporter flush. Merges an "obs_overhead" block into
// bench/BENCH_serve.json (run micro_serve first; this tool preserves its
// blocks) and prints OBS_OVERHEAD_P99_PCT= for the run_benches.sh budget
// assertion. See docs/OBSERVABILITY.md, "Overhead budget".
//
// Client-side percentiles are exact (sorted samples), not histogram
// estimates; bursts are repeated with the mode order alternating and each
// mode reports the median of its per-rep percentiles, damping scheduler
// noise on shared machines.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "data/synthetic.h"
#include "graph/graph.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/check.h"
#include "util/fileio.h"
#include "util/rng.h"

namespace {

using namespace cpgan;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

graph::Graph BenchObsGraph() {
  data::CommunityGraphParams params;
  params.num_nodes = 100;
  params.num_edges = 320;
  params.num_communities = 5;
  params.intra_fraction = 0.9;
  params.degree_exponent = 2.6;
  util::Rng rng(3);
  return data::MakeCommunityGraph(params, rng);
}

core::CpganConfig BenchObsConfig() {
  core::CpganConfig config;
  config.epochs = 12;
  config.subgraph_size = 64;
  config.hidden_dim = 12;
  config.latent_dim = 6;
  config.feature_dim = 5;
  config.seed = 11;
  return config;
}

/// Client-measured wall latencies (ns) for `threads * per_thread` requests.
std::vector<uint64_t> Burst(serve::Server& server, int threads,
                            int per_thread) {
  std::vector<std::vector<uint64_t>> per_client(threads);
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&server, &per_client, t, per_thread] {
      per_client[t].reserve(per_thread);
      for (int i = 0; i < per_thread; ++i) {
        serve::Request request;
        request.seed = static_cast<uint64_t>(t) * 1000 + i;
        const uint64_t start = NowNanos();
        server.Submit(request);
        per_client[t].push_back(NowNanos() - start);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  std::vector<uint64_t> all;
  for (const std::vector<uint64_t>& latencies : per_client) {
    all.insert(all.end(), latencies.begin(), latencies.end());
  }
  return all;
}

/// Exact percentile (ms) of a sample set; sorts a copy.
double PercentileMs(std::vector<uint64_t> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (rank >= samples.size()) rank = samples.size() - 1;
  return static_cast<double>(samples[rank]) * 1e-6;
}

struct BurstLatency {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// One burst against a fresh server, returning the raw client-side
/// latencies. `exporter_on` attaches both exporter sinks at a 100 ms period
/// so several live ticks land mid-burst.
std::vector<uint64_t> MeasureBurst(serve::ModelRegistry& registry,
                                   bool exporter_on,
                                   const std::string& scratch) {
  obs::MetricsRegistry::Global().ResetAll();
  serve::ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 16;
  if (exporter_on) {
    options.exporter.period_ms = 100.0;
    options.exporter.prometheus_path = scratch + "/metrics.prom";
    options.exporter.jsonl_path = scratch + "/metrics.jsonl";
    std::remove(options.exporter.jsonl_path.c_str());
  }
  serve::Server server(&registry, options);
  server.Start();
  // One client: latencies measure decode + dispatch, not queueing behind
  // other clients on the kernel lock — queueing noise would swamp the
  // instrumentation cost being measured.
  std::vector<uint64_t> latencies = Burst(server, 1, 200);
  server.Stop();
  return latencies;
}

/// Median of a small sample set; sorts a copy.
double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Nanoseconds per (counter increment + histogram observe) pair.
double InstrumentPairNs() {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().FindCounter("bench.obs.counter");
  obs::Histogram* histogram =
      obs::MetricsRegistry::Global().FindHistogram("bench.obs.histogram");
  constexpr int kOps = 2000000;
  const uint64_t start = NowNanos();
  for (int i = 0; i < kOps; ++i) {
    counter->Increment(1);
    histogram->Observe(static_cast<uint64_t>(i));
  }
  const uint64_t elapsed = NowNanos() - start;
  return static_cast<double>(elapsed) / kOps;
}

/// Milliseconds per synchronous exporter flush (snapshot + both sinks).
double FlushMs(const std::string& scratch) {
  obs::ExporterOptions options;
  options.prometheus_path = scratch + "/flush.prom";
  options.jsonl_path = scratch + "/flush.jsonl";
  std::remove(options.jsonl_path.c_str());
  obs::MetricsExporter exporter(options);
  constexpr int kFlushes = 50;
  const uint64_t start = NowNanos();
  for (int i = 0; i < kFlushes; ++i) exporter.Flush();
  const uint64_t elapsed = NowNanos() - start;
  return static_cast<double>(elapsed) * 1e-6 / kFlushes;
}

/// Rewrites `path` with `block` installed as the "obs_overhead" member.
/// When the existing document parses and has no block yet (the normal
/// run_benches.sh order: micro_serve first), the new member is spliced in
/// before the final brace so micro_serve's formatting is preserved
/// verbatim. Otherwise the document is rebuilt member-by-member (compact
/// values); a missing or unparseable file yields a fresh document holding
/// only the new block.
void MergeIntoBenchJson(const std::string& path, const obs::JsonValue& block) {
  const std::string member =
      "  \"obs_overhead\": " + block.Serialize();
  std::string text;
  obs::JsonValue parsed;
  const bool have_doc = util::ReadFileToString(path, &text) &&
                        obs::JsonValue::Parse(text, &parsed, nullptr) &&
                        parsed.is_object();

  std::string out;
  const size_t brace = text.rfind('}');
  if (have_doc && parsed.Find("obs_overhead") == nullptr &&
      brace != std::string::npos) {
    out = text.substr(0, brace);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += ",\n" + member + "\n}\n";
  } else {
    out = "{\n";
    bool first = true;
    if (have_doc) {
      for (const auto& [key, value] : parsed.members()) {
        if (key == "obs_overhead") continue;
        if (!first) out += ",\n";
        out += "  \"" + obs::JsonEscape(key) + "\": " + value.Serialize();
        first = false;
      }
    }
    if (!first) out += ",\n";
    out += member + "\n}\n";
  }
  CPGAN_CHECK_MSG(
      util::AtomicWriteFile(path,
                            [&out](std::FILE* file) {
                              return std::fwrite(out.data(), 1, out.size(),
                                                 file) == out.size();
                            }),
      "failed to write BENCH_serve.json");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const std::string scratch = "/tmp/cpgan_micro_obs";
  util::MakeDirs(scratch);

  serve::ModelRegistry registry;
  serve::ModelSpec spec;
  spec.config = BenchObsConfig();
  spec.graph = BenchObsGraph();
  std::string error;
  CPGAN_CHECK_MSG(registry.AddModel(spec, &error), error.c_str());

  constexpr int kReps = 6;
  // Warm-up burst so first-touch costs (pool spin-up, model cache) hit
  // neither measured mode. Modes are interleaved within each rep with the
  // order alternating between reps, and each mode reports the MEDIAN of
  // its per-rep percentiles — a single-burst p99 is a max-like statistic
  // whose run-to-run noise (one scheduler stall) would swamp the effect
  // being measured, while the median across reps shrugs it off;
  // interleaving makes drift (frequency scaling, neighbors on a shared
  // machine) land equally on both modes.
  (void)MeasureBurst(registry, false, scratch);
  std::vector<double> off_p50s, off_p99s, on_p50s, on_p99s;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int half = 0; half < 2; ++half) {
      const bool run_on = (rep % 2 == 0) == (half == 1);
      obs::SetMetricsEnabled(run_on);
      std::vector<uint64_t> run = MeasureBurst(registry, run_on, scratch);
      (run_on ? on_p50s : off_p50s).push_back(PercentileMs(run, 0.50));
      (run_on ? on_p99s : off_p99s).push_back(PercentileMs(run, 0.99));
    }
    obs::SetMetricsEnabled(true);
  }
  BurstLatency off;
  off.p50_ms = Median(off_p50s);
  off.p99_ms = Median(off_p99s);
  BurstLatency on;
  on.p50_ms = Median(on_p50s);
  on.p99_ms = Median(on_p99s);
  const double p50_overhead_pct =
      off.p50_ms > 0.0 ? (on.p50_ms - off.p50_ms) / off.p50_ms * 100.0 : 0.0;
  const double p99_overhead_pct =
      off.p99_ms > 0.0 ? (on.p99_ms - off.p99_ms) / off.p99_ms * 100.0 : 0.0;
  const double instrument_ns = InstrumentPairNs();
  const double flush_ms = FlushMs(scratch);

  obs::JsonValue block = obs::JsonValue::Object();
  obs::JsonValue off_json = obs::JsonValue::Object();
  off_json.Add("p50_ms", obs::JsonValue::Number(off.p50_ms));
  off_json.Add("p99_ms", obs::JsonValue::Number(off.p99_ms));
  obs::JsonValue on_json = obs::JsonValue::Object();
  on_json.Add("p50_ms", obs::JsonValue::Number(on.p50_ms));
  on_json.Add("p99_ms", obs::JsonValue::Number(on.p99_ms));
  block.Add("metrics_off", off_json);
  block.Add("metrics_on_exporter_100ms", on_json);
  block.Add("p50_overhead_pct", obs::JsonValue::Number(p50_overhead_pct));
  block.Add("p99_overhead_pct", obs::JsonValue::Number(p99_overhead_pct));
  block.Add("instrument_pair_ns", obs::JsonValue::Number(instrument_ns));
  block.Add("exporter_flush_ms", obs::JsonValue::Number(flush_ms));
  block.Add("requests_per_burst", obs::JsonValue::Int(200));
  block.Add("reps", obs::JsonValue::Int(kReps));
  MergeIntoBenchJson(out_path, block);

  std::printf("obs_overhead: %s\n", block.Serialize().c_str());
  std::printf("OBS_OVERHEAD_P50_PCT=%.2f\n", p50_overhead_pct);
  std::printf("OBS_OVERHEAD_P99_PCT=%.2f\n", p99_overhead_pct);
  std::fprintf(stderr, "merged obs_overhead into %s\n", out_path.c_str());
  return 0;
}
