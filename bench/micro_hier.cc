// Hierarchical-assembly snapshot (docs/INTERNALS.md, "Hierarchical
// assembly"): trains one CPGAN on a multi-community fixture, then times
// flat generation (one AssembleGraph over the whole graph, decode blocks up
// to 1024 nodes) against hierarchical generation (per-community decodes +
// cross-community stitching) from the same posterior latents, at 1/2/8
// kernel threads. On a single core the hierarchical win is algorithmic —
// decode cost is quadratic in the block size, and communities are far
// smaller than the flat chunks — so the speedup gate holds without
// hardware parallelism.
//
// The hierarchical output is also checked bitwise across the three thread
// counts (a speedup bought with a thread-count-dependent graph cannot
// pass), and both outputs are scored for community preservation so the
// fast path cannot silently trade community structure away.
//
// Writes bench/BENCH_hier.json (or argv[1]) and prints the
// HIER_SPEEDUP_T8= / HIER_MODULARITY_DELTA= / HIER_DETERMINISTIC= lines
// run_benches.sh asserts on (speedup >= 2x at 8 threads, modularity delta
// >= -0.05, deterministic = 1).
//
// Environment knobs:
//   CPGAN_HIER_NODES        fixture nodes (default 3000)
//   CPGAN_HIER_EDGES        fixture edges (default 10000)
//   CPGAN_HIER_COMMUNITIES  planted communities (default 12)
//   CPGAN_HIER_EPOCHS       training epochs (default 12)
//   CPGAN_HIER_REPS         timing repetitions, best-of (default 3)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "community/louvain.h"
#include "core/config.h"
#include "core/cpgan.h"
#include "data/synthetic.h"
#include "eval/community_eval.h"
#include "graph/graph.h"
#include "obs/json.h"
#include "util/check.h"
#include "util/fileio.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace cpgan;

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoll(value);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench/BENCH_hier.json";

  data::CommunityGraphParams params;
  params.num_nodes = static_cast<int>(EnvInt64("CPGAN_HIER_NODES", 3000));
  params.num_edges = EnvInt64("CPGAN_HIER_EDGES", 10000);
  params.num_communities =
      static_cast<int>(EnvInt64("CPGAN_HIER_COMMUNITIES", 12));
  params.intra_fraction = 0.9;
  const int epochs = static_cast<int>(EnvInt64("CPGAN_HIER_EPOCHS", 12));
  const int reps = static_cast<int>(EnvInt64("CPGAN_HIER_REPS", 3));
  util::Rng graph_rng(42);
  graph::Graph observed = data::MakeCommunityGraph(params, graph_rng);

  std::fprintf(stderr, "training on n=%d m=%lld (%d communities)...\n",
               observed.num_nodes(),
               static_cast<long long>(observed.num_edges()),
               params.num_communities);
  core::CpganConfig config;
  config.epochs = epochs;
  config.subgraph_size = 128;
  config.hidden_dim = 24;
  config.latent_dim = 12;
  config.feature_dim = 8;
  config.seed = 7;
  core::Cpgan model(config);
  util::Timer train_timer;
  model.Fit(observed);
  const double train_s = train_timer.Seconds();

  const std::vector<tensor::Matrix> latents = model.PosteriorMeanLatents();
  std::vector<int> labels = model.LearnedCommunityLabels();
  int learned_communities = 0;
  for (int label : labels) {
    learned_communities = std::max(learned_communities, label + 1);
  }
  if (learned_communities < 2) {
    // A collapsed pooling (everything in one cluster) degenerates the
    // skeleton to flat assembly; fall back to the Louvain partition so the
    // bench always exercises the multi-community path it is gating.
    std::fprintf(stderr, "learned labels collapsed; using Louvain labels\n");
    util::Rng louvain_rng(3);
    labels = community::Louvain(observed, louvain_rng)
                 .FinalPartition()
                 .labels();
    for (int label : labels) {
      learned_communities = std::max(learned_communities, label + 1);
    }
  }

  const int n = observed.num_nodes();
  const int64_t m = observed.num_edges();
  const std::vector<int> thread_counts = {1, 2, 8};
  std::vector<double> flat_s(thread_counts.size(), 0.0);
  std::vector<double> hier_s(thread_counts.size(), 0.0);
  graph::Graph flat_out(0);
  graph::Graph hier_out(0);
  bool deterministic = true;
  std::vector<graph::Edge> hier_reference;

  for (size_t t = 0; t < thread_counts.size(); ++t) {
    util::ThreadPool::SetGlobalThreads(thread_counts[t]);
    double best_flat = 0.0;
    double best_hier = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      core::GenerateControls controls;
      util::Rng flat_rng(11);
      util::Timer flat_timer;
      graph::Graph flat =
          model.GenerateFromLatents(latents, n, m, controls, flat_rng);
      const double flat_elapsed = flat_timer.Seconds();

      util::Rng hier_rng(11);
      util::Timer hier_timer;
      graph::Graph hier = model.GenerateHierarchicalFromLatents(
          latents, labels, n, m, controls, hier_rng);
      const double hier_elapsed = hier_timer.Seconds();

      if (rep == 0) {
        if (hier_reference.empty()) {
          hier_reference = hier.Edges();
        } else if (hier.Edges() != hier_reference) {
          deterministic = false;
        }
      }
      if (rep == 0 || flat_elapsed < best_flat) best_flat = flat_elapsed;
      if (rep == 0 || hier_elapsed < best_hier) best_hier = hier_elapsed;
      flat_out = std::move(flat);
      hier_out = std::move(hier);
    }
    flat_s[t] = best_flat;
    hier_s[t] = best_hier;
    std::fprintf(stderr, "threads=%d flat %.3fs hier %.3fs (%.2fx)\n",
                 thread_counts[t], best_flat, best_hier,
                 best_hier > 0.0 ? best_flat / best_hier : 0.0);
  }
  util::ThreadPool::SetGlobalThreads(1);

  // Community preservation: the fast path must not trade community
  // structure away. Modularity is graph-intrinsic so it also covers the
  // size-mismatch case; NMI/ARI require the identity correspondence.
  util::Rng q_rng(3);
  const double q_observed = community::Louvain(observed, q_rng).modularity;
  const double q_flat = community::Louvain(flat_out, q_rng).modularity;
  const double q_hier = community::Louvain(hier_out, q_rng).modularity;
  util::Rng eval_rng(5);
  eval::CommunityMetrics flat_metrics =
      eval::EvaluateCommunityPreservation(observed, flat_out, eval_rng);
  eval::CommunityMetrics hier_metrics =
      eval::EvaluateCommunityPreservation(observed, hier_out, eval_rng);

  const double speedup_t8 =
      hier_s.back() > 0.0 ? flat_s.back() / hier_s.back() : 0.0;
  const double q_delta = q_hier - q_flat;

  obs::JsonValue block = obs::JsonValue::Object();
  block.Add("num_nodes", obs::JsonValue::Int(n));
  block.Add("num_edges", obs::JsonValue::Int(m));
  block.Add("communities", obs::JsonValue::Int(learned_communities));
  block.Add("train_epochs", obs::JsonValue::Int(epochs));
  block.Add("train_s", obs::JsonValue::Number(train_s));
  obs::JsonValue flat_times = obs::JsonValue::Object();
  obs::JsonValue hier_times = obs::JsonValue::Object();
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    const std::string key = "t" + std::to_string(thread_counts[t]);
    flat_times.Add(key, obs::JsonValue::Number(flat_s[t]));
    hier_times.Add(key, obs::JsonValue::Number(hier_s[t]));
  }
  block.Add("flat_s", flat_times);
  block.Add("hier_s", hier_times);
  block.Add("speedup_t8", obs::JsonValue::Number(speedup_t8));
  block.Add("deterministic", obs::JsonValue::Bool(deterministic));
  block.Add("flat_edges", obs::JsonValue::Int(flat_out.num_edges()));
  block.Add("hier_edges", obs::JsonValue::Int(hier_out.num_edges()));
  block.Add("modularity_observed", obs::JsonValue::Number(q_observed));
  block.Add("modularity_flat", obs::JsonValue::Number(q_flat));
  block.Add("modularity_hier", obs::JsonValue::Number(q_hier));
  block.Add("modularity_delta", obs::JsonValue::Number(q_delta));
  block.Add("nmi_flat", obs::JsonValue::Number(flat_metrics.nmi));
  block.Add("nmi_hier", obs::JsonValue::Number(hier_metrics.nmi));
  block.Add("ari_flat", obs::JsonValue::Number(flat_metrics.ari));
  block.Add("ari_hier", obs::JsonValue::Number(hier_metrics.ari));
  obs::JsonValue root = obs::JsonValue::Object();
  root.Add("hier", block);
  const std::string serialized = root.Serialize() + "\n";
  CPGAN_CHECK(util::AtomicWriteFile(out_path, [&serialized](std::FILE* f) {
    return std::fputs(serialized.c_str(), f) >= 0;
  }));

  std::printf("hier: n=%d m=%lld communities=%d, flat %.3fs hier %.3fs at "
              "8 threads\n",
              n, static_cast<long long>(m), learned_communities,
              flat_s.back(), hier_s.back());
  std::printf("community: modularity observed=%.3f flat=%.3f hier=%.3f, "
              "NMI flat=%.3f hier=%.3f\n",
              q_observed, q_flat, q_hier, flat_metrics.nmi,
              hier_metrics.nmi);
  std::printf("HIER_SPEEDUP_T8=%.2f\n", speedup_t8);
  std::printf("HIER_MODULARITY_DELTA=%.3f\n", q_delta);
  std::printf("HIER_DETERMINISTIC=%d\n", deterministic ? 1 : 0);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
