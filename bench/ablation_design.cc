// Ablation benches for this repo's own design choices (DESIGN.md §5-6),
// beyond the paper's Table VI:
//   1. Assembly quota fill: strict top-k (the paper's description) vs
//      probability-proportional sampling.
//   2. The fast-LR parameter group (decoder + node features at a higher
//      Adam rate) vs a single uniform learning rate.
//   3. Discriminator update cadence (every epoch vs every other epoch).
//   4. The A + A^2 two-hop adjacency variant mentioned in Section III-C1.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cpgan.h"
#include "eval/community_eval.h"
#include "eval/graph_metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace cpgan;

void Evaluate(const std::string& label, core::CpganConfig config,
              const graph::Graph& observed, util::Table& table) {
  core::Cpgan model(config);
  model.Fit(observed);
  graph::Graph generated = model.Generate();
  util::Rng rng(41);
  eval::CommunityMetrics cm =
      eval::EvaluateCommunityPreservation(observed, generated, rng);
  eval::GenerationMetrics gm =
      eval::ComputeGenerationMetrics(observed, generated, rng);
  table.AddRow({label, util::FormatCompact(cm.nmi),
                util::FormatCompact(cm.ari), util::FormatCompact(gm.deg),
                util::FormatCompact(gm.clus)});
  std::printf("finished %s\n", label.c_str());
  std::fflush(stdout);
}

}  // namespace

int main() {
  graph::Graph observed = bench::BenchDataset("citeseer_like");
  std::printf(
      "Design-choice ablations on citeseer_like (NMI/ARI higher better, "
      "Deg./Clus. lower better)\n\n");
  util::Table table({"Configuration", "NMI", "ARI", "Deg.", "Clus."});

  core::CpganConfig base = bench::BenchCpganConfig(250, 12);

  Evaluate("baseline (top-k fill, fast-lr 20x, D every 2)", base, observed,
           table);

  core::CpganConfig uniform_lr = base;
  uniform_lr.fast_lr_multiplier = 1.0f;
  Evaluate("uniform learning rate (no fast group)", uniform_lr, observed,
           table);

  core::CpganConfig every_epoch_d = base;
  every_epoch_d.disc_every = 1;
  every_epoch_d.prior_every = 1;
  Evaluate("strict alternation (D + prior every epoch)", every_epoch_d,
           observed, table);

  core::CpganConfig two_hop = base;
  two_hop.use_two_hop_adjacency = true;
  Evaluate("A + A^2 two-hop adjacency", two_hop, observed, table);

  std::printf("\n");
  table.Print();
  return 0;
}
