// Reproduces Table III: community-structure preservation (NMI / ARI, x100,
// higher is better) of every generator on every dataset. "OOM" marks models
// whose simulated memory budget is exceeded (DESIGN.md §2.2).
//
// Expected shape (per the paper): CPGAN best overall, learning-based models
// above traditional ones, BTER the best traditional model.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/community_eval.h"
#include "eval/report.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace cpgan;
  const std::vector<std::string> datasets = data::DatasetNames();
  const std::vector<std::string> models = {
      "SBM", "DCSBM", "BTER", "MMSB", "VGAE", "Graphite", "SBMGNN",
      "NetGAN", "CPGAN"};
  int runs = bench::BenchRuns();
  std::printf(
      "Table III analogue: community preservation (NMI/ARI x 100, higher "
      "is better), %d run(s)\n\n",
      runs);

  std::vector<std::string> headers = {"Model"};
  for (const std::string& d : datasets) {
    headers.push_back(d + " NMI");
    headers.push_back(d + " ARI");
  }
  util::Table table(headers);

  for (const std::string& model : models) {
    std::vector<std::string> row = {model};
    for (const std::string& dataset : datasets) {
      graph::Graph observed = bench::BenchDataset(dataset);
      std::vector<double> nmis;
      std::vector<double> aris;
      bool feasible = true;
      for (int run = 0; run < runs; ++run) {
        bench::RunOptions options;
        options.seed = 100 + run;
        bench::ModelRun result = bench::RunModel(model, observed, options);
        if (!result.feasible) {
          feasible = false;
          break;
        }
        util::Rng rng(7 + run);
        eval::CommunityMetrics metrics = eval::EvaluateCommunityPreservation(
            observed, result.generated, rng);
        nmis.push_back(metrics.nmi);
        aris.push_back(metrics.ari);
      }
      if (!feasible) {
        row.push_back("OOM");
        row.push_back("OOM");
      } else {
        row.push_back(eval::FormatMeanStdE2(nmis));
        row.push_back(eval::FormatMeanStdE2(aris));
      }
      std::fflush(stdout);
    }
    table.AddRow(row);
    std::printf("finished %s\n", model.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
