// Reproduces Figure 5: parameter sensitivity of CPGAN.
//  (a)/(c) sweep the spectral-embedding input dimension;
//  (b)/(d) sweep the number of hierarchy levels in the ladder encoder.
// For each setting we report the generated graph's distance to the real
// statistics (Deg./Clus. MMD, |GINI| and |PWE| differences) plus the
// community-preservation NMI. Points closer to the real statistics (lower
// distances) are better.
//
// Expected shape (paper): ~2 hierarchy levels is best; the input dimension
// has only a mild effect.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/cpgan.h"
#include "eval/community_eval.h"
#include "eval/graph_metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

void RunConfig(const cpgan::graph::Graph& observed, int feature_dim,
               int levels, cpgan::util::Table& table) {
  using namespace cpgan;
  core::CpganConfig config = bench::BenchCpganConfig(250, 5);
  config.feature_dim = feature_dim;
  config.num_levels = levels;
  config.use_hierarchy = levels > 1;
  core::Cpgan model(config);
  model.Fit(observed);
  graph::Graph generated = model.Generate();
  util::Rng rng(31);
  eval::GenerationMetrics gm =
      eval::ComputeGenerationMetrics(observed, generated, rng);
  eval::CommunityMetrics cm =
      eval::EvaluateCommunityPreservation(observed, generated, rng);
  table.AddRow({"dim=" + std::to_string(feature_dim) +
                    " levels=" + std::to_string(levels),
                util::FormatCompact(gm.deg), util::FormatCompact(gm.clus),
                util::FormatCompact(gm.gini), util::FormatCompact(gm.pwe),
                util::FormatCompact(cm.nmi)});
  std::printf("finished dim=%d levels=%d\n", feature_dim, levels);
  std::fflush(stdout);
}

}  // namespace

int main() {
  using namespace cpgan;
  graph::Graph observed = bench::BenchDataset("ppi_like");
  std::printf(
      "Figure 5 analogue: CPGAN parameter sensitivity on ppi_like "
      "(distances to real statistics; lower is better, NMI higher)\n\n");

  util::Table dim_table({"Setting", "Deg.", "Clus.", "GINI", "PWE", "NMI"});
  for (int dim : {2, 4, 8, 16, 32}) {
    RunConfig(observed, dim, 2, dim_table);
  }
  std::printf("\n(a/c) spectral input dimension sweep (2 levels):\n");
  dim_table.Print();

  util::Table level_table({"Setting", "Deg.", "Clus.", "GINI", "PWE", "NMI"});
  for (int levels : {1, 2, 3}) {
    RunConfig(observed, 32, levels, level_table);
  }
  std::printf("\n(b/d) hierarchy level sweep (dim 32):\n");
  level_table.Print();
  return 0;
}
