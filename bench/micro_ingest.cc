// Out-of-core ingest snapshot (docs/INTERNALS.md, "Streaming ingest"):
// streams a synthetic ring+chord graph (default 1M nodes / 10M edges) to
// disk without materializing it, converts it to the .cpge binary format,
// then times the text loader against the mmap + parallel-CSR binary loader
// on the same bytes. The two CSRs are compared edge-for-edge — the speed
// claim is only meaningful if the graphs are bitwise identical. Finally
// arms the MemoryTracker budget and trains CPGAN on a sensitivity coreset
// of the 10M-edge graph, proving the whole pipeline (ingest + training)
// fits the --mem-budget-mb cap.
//
// Writes bench/BENCH_ingest.json (or argv[1]) and prints the
// INGEST_SPEEDUP= / INGEST_PEAK_WITHIN_BUDGET= lines run_benches.sh
// asserts on (speedup >= 3x, within-budget = 1).
//
// Environment knobs:
//   CPGAN_INGEST_NODES      ring size (default 1000000)
//   CPGAN_INGEST_CHORDS     chords per node (default 9 -> 10M edges total)
//   CPGAN_INGEST_BUDGET_MB  RAM budget for ingest + training (default 512)
//   CPGAN_INGEST_EPOCHS     coreset training epochs (default 6)
//   CPGAN_INGEST_CORESET    coreset size in nodes (default 2048)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/cpgan.h"
#include "data/edge_stream.h"
#include "graph/binary_io.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "obs/json.h"
#include "util/check.h"
#include "util/fileio.h"
#include "util/memory_tracker.h"
#include "util/timer.h"

namespace {

using namespace cpgan;

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoll(value);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench/BENCH_ingest.json";

  data::RingChordSpec spec;
  spec.num_nodes = EnvInt64("CPGAN_INGEST_NODES", 1000000);
  spec.chords = static_cast<int>(EnvInt64("CPGAN_INGEST_CHORDS", 9));
  spec.seed = 42;
  const int64_t budget_mb = EnvInt64("CPGAN_INGEST_BUDGET_MB", 512);
  const int epochs = static_cast<int>(EnvInt64("CPGAN_INGEST_EPOCHS", 6));
  const int coreset_size =
      static_cast<int>(EnvInt64("CPGAN_INGEST_CORESET", 2048));
  const int64_t num_edges = data::RingChordEdgeCount(spec);

  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "cpgan_micro_ingest";
  fs::create_directories(dir);
  const std::string text_path = (dir / "ring_chord.txt").string();
  const std::string binary_path = (dir / "ring_chord.cpge").string();

  std::fprintf(stderr, "writing %lld-edge text edge list...\n",
               static_cast<long long>(num_edges));
  util::Timer write_timer;
  CPGAN_CHECK(data::WriteRingChordText(spec, text_path));
  const double write_text_s = write_timer.Seconds();

  std::fprintf(stderr, "converting to .cpge...\n");
  util::Timer convert_timer;
  graph::ConvertResult converted =
      graph::ConvertEdgeListToBinary(text_path, binary_path);
  const double convert_s = convert_timer.Seconds();
  CPGAN_CHECK_MSG(converted.ok(), converted.error.c_str());
  CPGAN_CHECK(converted.num_nodes == spec.num_nodes);
  CPGAN_CHECK(converted.num_edges == num_edges);
  CPGAN_CHECK(converted.total_skipped() == 0);

  // Text-loader baseline. The edge list (not the Graph) is kept for the
  // differential check; the graph itself is dropped before training so the
  // tracked peak reflects the binary pipeline only.
  std::fprintf(stderr, "text load...\n");
  std::vector<graph::Edge> text_edges;
  int text_nodes = 0;
  util::Timer text_timer;
  double text_load_s = 0.0;
  {
    graph::LoadResult loaded = graph::LoadEdgeListDetailed(text_path);
    text_load_s = text_timer.Seconds();
    CPGAN_CHECK_MSG(loaded.ok(), loaded.error.c_str());
    text_nodes = loaded.graph->num_nodes();
    text_edges = loaded.graph->Edges();
  }

  // Binary load with the RAM budget armed: the loader's projected-CSR gate
  // and the training peak both run under the same cap.
  util::MemoryTracker& tracker = util::MemoryTracker::Global();
  tracker.SetBudgetBytes(budget_mb << 20);
  std::fprintf(stderr, "mmap load (budget %lld MiB)...\n",
               static_cast<long long>(budget_mb));
  util::Timer mmap_timer;
  graph::LoadResult binary_loaded =
      graph::LoadBinaryEdgeListDetailed(binary_path);
  const double mmap_load_s = mmap_timer.Seconds();
  CPGAN_CHECK_MSG(binary_loaded.ok(), binary_loaded.error.c_str());
  const graph::Graph& g = *binary_loaded.graph;

  const bool csr_equal =
      g.num_nodes() == text_nodes && g.Edges() == text_edges;
  CPGAN_CHECK_MSG(csr_equal, "mmap CSR differs from the text loader's");
  text_edges.clear();
  text_edges.shrink_to_fit();

  const double speedup = mmap_load_s > 0.0 ? text_load_s / mmap_load_s : 0.0;
  const double text_eps =
      text_load_s > 0.0 ? static_cast<double>(num_edges) / text_load_s : 0.0;
  const double mmap_eps =
      mmap_load_s > 0.0 ? static_cast<double>(num_edges) / mmap_load_s : 0.0;

  std::fprintf(stderr, "coreset training (%d nodes, %d epochs)...\n",
               coreset_size, epochs);
  core::CpganConfig config;
  config.epochs = epochs;
  config.subgraph_size = 128;
  config.coreset_size = coreset_size;
  config.mem_budget_mb = budget_mb;
  config.seed = 7;
  core::Cpgan cpgan(config);
  util::Timer train_timer;
  core::TrainStats stats = cpgan.Fit(g);
  const double train_s = train_timer.Seconds();
  const bool within_budget = !stats.budget_exceeded;

  obs::JsonValue block = obs::JsonValue::Object();
  block.Add("num_nodes", obs::JsonValue::Int(spec.num_nodes));
  block.Add("num_edges", obs::JsonValue::Int(num_edges));
  block.Add("write_text_s", obs::JsonValue::Number(write_text_s));
  block.Add("convert_s", obs::JsonValue::Number(convert_s));
  block.Add("text_load_s", obs::JsonValue::Number(text_load_s));
  block.Add("mmap_load_s", obs::JsonValue::Number(mmap_load_s));
  block.Add("text_edges_per_sec", obs::JsonValue::Number(text_eps));
  block.Add("mmap_edges_per_sec", obs::JsonValue::Number(mmap_eps));
  block.Add("speedup", obs::JsonValue::Number(speedup));
  block.Add("csr_equal", obs::JsonValue::Bool(csr_equal));
  block.Add("budget_mb", obs::JsonValue::Int(budget_mb));
  block.Add("coreset_size", obs::JsonValue::Int(coreset_size));
  block.Add("coreset_nodes", obs::JsonValue::Int(stats.coreset_nodes));
  block.Add("train_epochs", obs::JsonValue::Int(epochs));
  block.Add("train_s", obs::JsonValue::Number(train_s));
  block.Add("train_peak_bytes", obs::JsonValue::Int(stats.peak_bytes));
  block.Add("within_budget", obs::JsonValue::Bool(within_budget));
  obs::JsonValue root = obs::JsonValue::Object();
  root.Add("ingest", block);
  const std::string serialized = root.Serialize() + "\n";
  CPGAN_CHECK(util::AtomicWriteFile(out_path, [&serialized](std::FILE* f) {
    return std::fputs(serialized.c_str(), f) >= 0;
  }));

  std::printf("ingest: n=%lld m=%lld text %.2fs (%.2fM eps), mmap %.3fs "
              "(%.2fM eps), convert %.2fs\n",
              static_cast<long long>(spec.num_nodes),
              static_cast<long long>(num_edges), text_load_s, text_eps / 1e6,
              mmap_load_s, mmap_eps / 1e6, convert_s);
  std::printf("coreset train: %d/%lld nodes, %.2fs, peak %lld bytes "
              "(budget %lld MiB)\n",
              stats.coreset_nodes, static_cast<long long>(spec.num_nodes),
              train_s, static_cast<long long>(stats.peak_bytes),
              static_cast<long long>(budget_mb));
  std::printf("INGEST_SPEEDUP=%.2f\n", speedup);
  std::printf("INGEST_PEAK_WITHIN_BUDGET=%d\n", within_budget ? 1 : 0);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  tracker.SetBudgetBytes(0);
  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
