// Reproduces Table VII: wall-clock seconds to generate ONE graph as the node
// count grows. The sweep is scaled to a single CPU core (the paper sweeps
// 0.1k-100k on a GPU; we sweep 0.1k-3k — DESIGN.md §2.2). "-" marks models
// whose simulated memory budget is exceeded, mirroring the paper's dashes.
//
// Expected shape: traditional generators orders of magnitude faster;
// among learning-based models CPGAN remains feasible the longest.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace cpgan;
  const std::vector<int> sizes = {100, 300, 1000, 3000};
  const std::vector<std::string> models = {
      "E-R",  "B-A",    "Chung-Lu", "SBM",        "DCSBM",
      "BTER", "MMSB",   "Kronecker", "GraphRNN-S", "VGAE",
      "Graphite", "SBMGNN", "NetGAN", "CondGen-R",  "CPGAN"};
  std::printf(
      "Table VII analogue: generation seconds per graph vs node count\n\n");

  std::vector<std::string> headers = {"Model"};
  for (int n : sizes) headers.push_back(std::to_string(n));
  util::Table table(headers);

  for (const std::string& model : models) {
    std::vector<std::string> row = {model};
    for (int n : sizes) {
      graph::Graph observed = data::MakeScaledDataset("google_like", n, 7);
      bench::RunOptions options;
      options.seed = 900;
      options.learned_epochs = 15;  // fit cost excluded; quality irrelevant
      bench::ModelRun result = bench::RunModel(model, observed, options);
      row.push_back(result.feasible
                        ? util::FormatCompact(result.generate_seconds)
                        : "-");
      std::fflush(stdout);
    }
    table.AddRow(row);
    std::printf("finished %s\n", model.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
