#ifndef CPGAN_BENCH_BENCH_UTIL_H_
#define CPGAN_BENCH_BENCH_UTIL_H_

#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "graph/graph.h"

namespace cpgan::bench {

/// Result of fitting one model on one graph and generating once.
struct ModelRun {
  bool feasible = false;          // false mirrors the paper's OOM cells
  graph::Graph generated{0};
  double fit_seconds = 0.0;
  double generate_seconds = 0.0;
  int64_t peak_bytes = 0;
  /// Edge probabilities on request (reconstruction models only).
  std::vector<double> positive_probs;
  std::vector<double> negative_probs;
  std::vector<double> test_positive_probs;
  std::vector<double> test_negative_probs;
};

/// Model names for the paper's tables.
std::vector<std::string> TraditionalModels();   // E-R ... MMSB
std::vector<std::string> LearnedModels();       // VGAE ... CPGAN
std::vector<std::string> CpganVariants();       // CPGAN-C/-noV/-noH/CPGAN

/// Scales every learning-based model's epoch count (benchmarks use smaller
/// budgets than the library defaults to stay single-core friendly).
struct RunOptions {
  int learned_epochs = 300;
  uint64_t seed = 1;
  /// When set, also computes edge probabilities for these pairs after
  /// training (NLL evaluation).
  const std::vector<graph::Edge>* positive_pairs = nullptr;
  const std::vector<graph::Edge>* negative_pairs = nullptr;
  const std::vector<graph::Edge>* test_positive_pairs = nullptr;
  const std::vector<graph::Edge>* test_negative_pairs = nullptr;
};

/// Fits the named model on `observed` and generates one graph. Understands
/// every traditional model, every learned baseline, CPGAN, and the CPGAN
/// ablation variants. Infeasible (OOM-analogue) runs return
/// feasible=false.
ModelRun RunModel(const std::string& name, const graph::Graph& observed,
                  const RunOptions& options);

/// Number of evaluation repetitions (mean±std); reads CPGAN_BENCH_RUNS,
/// default 2.
int BenchRuns();

/// Global size multiplier for bench datasets; reads CPGAN_BENCH_SCALE
/// (e.g. "0.5" halves every dataset), default 1.0.
double BenchScale();

/// Builds the named dataset at the bench scale.
graph::Graph BenchDataset(const std::string& name, uint64_t seed = 42);

/// CPGAN config used across benches (paper-faithful switches, bench-sized
/// widths).
core::CpganConfig BenchCpganConfig(int epochs, uint64_t seed);

}  // namespace cpgan::bench

#endif  // CPGAN_BENCH_BENCH_UTIL_H_
