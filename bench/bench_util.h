#ifndef CPGAN_BENCH_BENCH_UTIL_H_
#define CPGAN_BENCH_BENCH_UTIL_H_

#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "graph/graph.h"

namespace cpgan::bench {

/// Result of fitting one model on one graph and generating once.
///
/// All wall times come from util::Timer (monotonic steady_clock), the same
/// clock the obs trace spans use, so fit_seconds and phase_ms agree.
struct ModelRun {
  bool feasible = false;          // false mirrors the paper's OOM cells
  graph::Graph generated{0};
  double fit_seconds = 0.0;
  double generate_seconds = 0.0;
  int64_t peak_bytes = 0;
  /// Edge probabilities on request (reconstruction models only).
  std::vector<double> positive_probs;
  std::vector<double> negative_probs;
  std::vector<double> test_positive_probs;
  std::vector<double> test_negative_probs;
  /// Per-span (path, exclusive ms) from the obs trace-span registry, in
  /// profile order. Filled only when ProfileRequested(); empty otherwise.
  std::vector<std::pair<std::string, double>> phase_ms;
};

/// Model names for the paper's tables.
std::vector<std::string> TraditionalModels();   // E-R ... MMSB
std::vector<std::string> LearnedModels();       // VGAE ... CPGAN
std::vector<std::string> CpganVariants();       // CPGAN-C/-noV/-noH/CPGAN

/// Scales every learning-based model's epoch count (benchmarks use smaller
/// budgets than the library defaults to stay single-core friendly).
struct RunOptions {
  int learned_epochs = 300;
  uint64_t seed = 1;
  /// When set, also computes edge probabilities for these pairs after
  /// training (NLL evaluation).
  const std::vector<graph::Edge>* positive_pairs = nullptr;
  const std::vector<graph::Edge>* negative_pairs = nullptr;
  const std::vector<graph::Edge>* test_positive_pairs = nullptr;
  const std::vector<graph::Edge>* test_negative_pairs = nullptr;
};

/// Fits the named model on `observed` and generates one graph. Understands
/// every traditional model, every learned baseline, CPGAN, and the CPGAN
/// ablation variants. Infeasible (OOM-analogue) runs return
/// feasible=false.
ModelRun RunModel(const std::string& name, const graph::Graph& observed,
                  const RunOptions& options);

/// Number of evaluation repetitions (mean±std); reads CPGAN_BENCH_RUNS,
/// default 2.
int BenchRuns();

/// True when the CPGAN_BENCH_PROFILE env var is set (non-empty, not "0"):
/// RunModel then records per-span phase timings into ModelRun::phase_ms.
bool ProfileRequested();

/// Renders `run.phase_ms` as a one-line JSON object
/// (`{"model":"CPGAN","phase_ms":{"train/epoch":12.3,...}}`) for bench
/// snapshot files. Returns "" when there is no phase data.
std::string PhaseBreakdownJson(const std::string& model, const ModelRun& run);

/// Global size multiplier for bench datasets; reads CPGAN_BENCH_SCALE
/// (e.g. "0.5" halves every dataset), default 1.0.
double BenchScale();

/// Builds the named dataset at the bench scale.
graph::Graph BenchDataset(const std::string& name, uint64_t seed = 42);

/// CPGAN config used across benches (paper-faithful switches, bench-sized
/// widths).
core::CpganConfig BenchCpganConfig(int epochs, uint64_t seed);

}  // namespace cpgan::bench

#endif  // CPGAN_BENCH_BENCH_UTIL_H_
