// Reproduces Table IX: peak memory during training vs node count. The paper
// reports peak GPU MiB; this repo runs on CPU, so the analogue is the peak
// bytes held by tensor storage (matrices + sparse structures), tracked by
// util::MemoryTracker (DESIGN.md §2.2). MMSB's footprint is computed from
// its membership/block structures. "OOM" marks the simulated budget limit.
//
// Expected shape: full-adjacency models grow ~O(n^2); CPGAN's subgraph
// training keeps the peak nearly flat in n, so it scales furthest.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace cpgan;
  const std::vector<int> sizes = {100, 300, 1000, 3000};
  const std::vector<std::string> models = {
      "MMSB", "GraphRNN-S", "VGAE", "Graphite", "SBMGNN",
      "NetGAN", "CondGen-R", "CPGAN"};
  std::printf(
      "Table IX analogue: peak tensor memory (MiB) during training vs node "
      "count\n\n");

  std::vector<std::string> headers = {"Model"};
  for (int n : sizes) headers.push_back(std::to_string(n));
  util::Table table(headers);

  for (const std::string& model : models) {
    std::vector<std::string> row = {model};
    for (int n : sizes) {
      graph::Graph observed = data::MakeScaledDataset("google_like", n, 7);
      bench::RunOptions options;
      options.seed = 902;
      options.learned_epochs = 8;  // peak is reached within a few epochs
      bench::ModelRun result = bench::RunModel(model, observed, options);
      if (!result.feasible) {
        row.push_back("OOM");
      } else if (model == "MMSB") {
        // Non-tensor model: memberships (n x K doubles) + block matrix.
        double mib = (static_cast<double>(n) * 12 * 8 + 12 * 12 * 8) /
                     (1024.0 * 1024.0);
        row.push_back(util::FormatCompact(mib));
      } else {
        row.push_back(util::FormatCompact(
            static_cast<double>(result.peak_bytes) / (1024.0 * 1024.0)));
      }
      std::fflush(stdout);
    }
    table.AddRow(row);
    std::printf("finished %s\n", model.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
