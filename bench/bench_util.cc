#include "bench/bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "baselines/condgen.h"
#include "baselines/graphite.h"
#include "baselines/graphrnn.h"
#include "baselines/netgan.h"
#include "baselines/sbmgnn.h"
#include "baselines/vgae.h"
#include "core/cpgan.h"
#include "data/datasets.h"
#include "generators/mmsb.h"
#include "generators/registry.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace cpgan::bench {
namespace {

ModelRun RunTraditional(const std::string& name, const graph::Graph& observed,
                        const RunOptions& options) {
  ModelRun run;
  auto generator = generators::MakeTraditionalGenerator(name);
  CPGAN_CHECK(generator != nullptr);
  util::Rng rng(options.seed);
  util::Timer fit_timer;
  generator->Fit(observed, rng);
  run.fit_seconds = fit_timer.Seconds();
  // MMSB's O(n^2) pair sweep is the paper's OOM case.
  if (name == "MMSB") {
    auto* mmsb = static_cast<generators::MmsbGenerator*>(generator.get());
    if (!mmsb->Feasible()) {
      run.feasible = false;
      return run;
    }
  }
  util::Timer gen_timer;
  run.generated = generator->Generate(rng);
  run.generate_seconds = gen_timer.Seconds();
  run.feasible = true;
  return run;
}

ModelRun RunLearnedBaseline(baselines::LearnedGenerator& model,
                            const graph::Graph& observed,
                            const RunOptions& options) {
  ModelRun run;
  if (!model.FeasibleFor(observed.num_nodes())) {
    run.feasible = false;
    return run;
  }
  baselines::LearnedTrainStats stats = model.Fit(observed);
  run.fit_seconds = stats.train_seconds;
  run.peak_bytes = stats.peak_bytes;
  util::Timer gen_timer;
  run.generated = model.Generate();
  run.generate_seconds = gen_timer.Seconds();
  run.feasible = true;
  if (options.positive_pairs != nullptr) {
    run.positive_probs = model.EdgeProbabilities(*options.positive_pairs);
  }
  if (options.negative_pairs != nullptr) {
    run.negative_probs = model.EdgeProbabilities(*options.negative_pairs);
  }
  if (options.test_positive_pairs != nullptr) {
    run.test_positive_probs =
        model.EdgeProbabilities(*options.test_positive_pairs);
  }
  if (options.test_negative_pairs != nullptr) {
    run.test_negative_probs =
        model.EdgeProbabilities(*options.test_negative_pairs);
  }
  return run;
}

ModelRun RunCpgan(const std::string& name, const graph::Graph& observed,
                  const RunOptions& options) {
  // CPGAN's per-epoch cost is O(n_s^2), not O(n^2): within a comparable
  // wall-clock budget it affords more epochs than the full-graph baselines.
  core::CpganConfig config =
      BenchCpganConfig(options.learned_epochs, options.seed);
  if (name == "CPGAN-C") config.concat_decoder = true;
  if (name == "CPGAN-noV") config.use_variational = false;
  if (name == "CPGAN-noH") config.use_hierarchy = false;
  core::Cpgan model(config);
  ModelRun run;
  core::TrainStats stats = model.Fit(observed);
  run.fit_seconds = stats.train_seconds;
  run.peak_bytes = stats.peak_bytes;
  util::Timer gen_timer;
  run.generated = model.Generate();
  run.generate_seconds = gen_timer.Seconds();
  run.feasible = true;
  if (options.positive_pairs != nullptr) {
    run.positive_probs = model.EdgeProbabilities(*options.positive_pairs);
  }
  if (options.negative_pairs != nullptr) {
    run.negative_probs = model.EdgeProbabilities(*options.negative_pairs);
  }
  if (options.test_positive_pairs != nullptr) {
    run.test_positive_probs =
        model.EdgeProbabilities(*options.test_positive_pairs);
  }
  if (options.test_negative_pairs != nullptr) {
    run.test_negative_probs =
        model.EdgeProbabilities(*options.test_negative_pairs);
  }
  return run;
}

}  // namespace

std::vector<std::string> TraditionalModels() {
  return {"E-R", "B-A", "Chung-Lu", "SBM", "DCSBM", "BTER", "Kronecker",
          "MMSB"};
}

std::vector<std::string> LearnedModels() {
  return {"VGAE", "Graphite", "SBMGNN", "GraphRNN-S", "NetGAN", "CondGen-R",
          "CPGAN"};
}

std::vector<std::string> CpganVariants() {
  return {"CPGAN-C", "CPGAN-noV", "CPGAN-noH", "CPGAN"};
}

namespace {

ModelRun DispatchModel(const std::string& name, const graph::Graph& observed,
                       const RunOptions& options);

}  // namespace

ModelRun RunModel(const std::string& name, const graph::Graph& observed,
                  const RunOptions& options) {
  // Under CPGAN_BENCH_PROFILE the whole run is a trace-span collection
  // window, so bench snapshots can break fit_seconds down by phase. Spans
  // only observe the clock (obs/trace.h), so this cannot change results.
  if (!ProfileRequested()) return DispatchModel(name, observed, options);
  obs::ResetTraces();
  obs::SetTracingEnabled(true);
  ModelRun run = DispatchModel(name, observed, options);
  obs::SetTracingEnabled(false);
  for (const obs::SpanStats& span : obs::CollectSpanStats()) {
    run.phase_ms.emplace_back(span.path,
                              static_cast<double>(span.exclusive_ns) / 1e6);
  }
  return run;
}

namespace {

ModelRun DispatchModel(const std::string& name, const graph::Graph& observed,
                       const RunOptions& options) {
  // Traditional models.
  for (const std::string& traditional : TraditionalModels()) {
    if (name == traditional) return RunTraditional(name, observed, options);
  }
  if (name == "W-S") return RunTraditional(name, observed, options);

  if (name == "VGAE") {
    baselines::VgaeConfig config;
    config.epochs = options.learned_epochs;
    config.seed = options.seed;
    baselines::Vgae model(config);
    return RunLearnedBaseline(model, observed, options);
  }
  if (name == "Graphite") {
    baselines::VgaeConfig config;
    config.epochs = options.learned_epochs;
    config.seed = options.seed;
    baselines::Graphite model(config);
    return RunLearnedBaseline(model, observed, options);
  }
  if (name == "SBMGNN") {
    baselines::VgaeConfig config;
    config.epochs = options.learned_epochs;
    config.seed = options.seed;
    baselines::Sbmgnn model(config);
    return RunLearnedBaseline(model, observed, options);
  }
  if (name == "NetGAN") {
    baselines::NetganConfig config;
    config.epochs = std::min(options.learned_epochs, 150);
    config.seed = options.seed;
    baselines::Netgan model(config);
    return RunLearnedBaseline(model, observed, options);
  }
  if (name == "GraphRNN-S") {
    baselines::GraphRnnConfig config;
    config.epochs = std::clamp(options.learned_epochs / 2, 10, 80);
    config.seed = options.seed;
    baselines::GraphRnnS model(config);
    return RunLearnedBaseline(model, observed, options);
  }
  if (name == "CondGen-R") {
    baselines::CondGenR model(std::min(options.learned_epochs, 200),
                              options.seed);
    return RunLearnedBaseline(model, observed, options);
  }
  if (name == "CPGAN" || name == "CPGAN-C" || name == "CPGAN-noV" ||
      name == "CPGAN-noH") {
    return RunCpgan(name, observed, options);
  }
  CPGAN_CHECK_MSG(false, "unknown model name");
  return ModelRun{};
}

}  // namespace

int BenchRuns() {
  const char* env = std::getenv("CPGAN_BENCH_RUNS");
  if (env != nullptr) {
    int runs = std::atoi(env);
    if (runs >= 1) return runs;
  }
  return 2;
}

bool ProfileRequested() {
  const char* env = std::getenv("CPGAN_BENCH_PROFILE");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string PhaseBreakdownJson(const std::string& model, const ModelRun& run) {
  if (run.phase_ms.empty()) return "";
  obs::JsonValue phases = obs::JsonValue::Object();
  for (const auto& [path, ms] : run.phase_ms) {
    phases.Add(path, obs::JsonValue::Number(ms));
  }
  obs::JsonValue record = obs::JsonValue::Object();
  record.Add("model", obs::JsonValue::String(model));
  record.Add("phase_ms", std::move(phases));
  return record.Serialize();
}

double BenchScale() {
  const char* env = std::getenv("CPGAN_BENCH_SCALE");
  if (env != nullptr) {
    double scale = std::atof(env);
    if (scale > 0.01) return scale;
  }
  return 1.0;
}

graph::Graph BenchDataset(const std::string& name, uint64_t seed) {
  double scale = BenchScale();
  if (scale == 1.0) return data::MakeDataset(name, seed);
  graph::Graph reference = data::MakeDataset(name, seed);
  int nodes = std::max(20, static_cast<int>(reference.num_nodes() * scale));
  return data::MakeScaledDataset(name, nodes, seed);
}

namespace {
int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    int value = std::atoi(env);
    if (value > 0) return value;
  }
  return fallback;
}
}  // namespace

core::CpganConfig BenchCpganConfig(int epochs, uint64_t seed) {
  core::CpganConfig config;
  config.epochs = EnvInt("CPGAN_EPOCHS", epochs);
  config.seed = seed;
  config.subgraph_size = EnvInt("CPGAN_NS", 320);
  config.hidden_dim = EnvInt("CPGAN_HID", 32);
  config.latent_dim = EnvInt("CPGAN_LAT", 32);
  config.feature_dim = EnvInt("CPGAN_FEAT", 32);
  config.num_levels = EnvInt("CPGAN_LEVELS", 2);
  const char* lr = std::getenv("CPGAN_LR");
  if (lr != nullptr && std::atof(lr) > 0.0) {
    config.learning_rate = static_cast<float>(std::atof(lr));
  }
  const char* flr = std::getenv("CPGAN_FASTLR");
  if (flr != nullptr && std::atof(flr) > 0.0) {
    config.fast_lr_multiplier = static_cast<float>(std::atof(flr));
  }
  const char* bw = std::getenv("CPGAN_BCE_W");
  if (bw != nullptr && std::atof(bw) > 0.0) {
    config.bce_weight = static_cast<float>(std::atof(bw));
  }
  return config;
}

}  // namespace cpgan::bench
