// Serving-runtime latency snapshot: boots the src/serve/ server on a small
// warm model, drives a steady-state burst and a chaos burst through it, and
// writes BENCH_serve.json with p50/p95/p99 latency percentiles derived from
// the obs `serve.latency_ns` histogram plus the serve.* retry/shed/degrade
// counters. bench/BENCH_serve.json holds a reference run; docs/SERVING.md
// documents the runtime.
//
// Percentiles are interpolated inside the log-scale histogram buckets, so
// they are estimates with bucket-width resolution — good enough to track
// order-of-magnitude regressions, not microsecond drift.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/cpgan.h"
#include "data/synthetic.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "serve/chaos.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/check.h"
#include "util/fileio.h"
#include "util/memory_tracker.h"
#include "util/rng.h"

namespace {

using namespace cpgan;

graph::Graph BenchServeGraph() {
  data::CommunityGraphParams params;
  params.num_nodes = 100;
  params.num_edges = 320;
  params.num_communities = 5;
  params.intra_fraction = 0.9;
  params.degree_exponent = 2.6;
  util::Rng rng(3);
  return data::MakeCommunityGraph(params, rng);
}

core::CpganConfig BenchServeConfig() {
  core::CpganConfig config;
  config.epochs = 12;
  config.subgraph_size = 64;
  config.hidden_dim = 12;
  config.latent_dim = 6;
  config.feature_dim = 5;
  config.seed = 11;
  return config;
}

/// Submits `per_thread` requests from each of `threads` clients with
/// distinct seeds; returns the number of submissions.
int Burst(serve::Server& server, const serve::Request& base, int threads,
          int per_thread) {
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&server, &base, t, per_thread] {
      for (int i = 0; i < per_thread; ++i) {
        serve::Request request = base;
        request.seed = static_cast<uint64_t>(t) * 1000 + i;
        server.Submit(request);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  return threads * per_thread;
}

/// Percentile estimate (in milliseconds) from the serve.latency_ns log-scale
/// histogram: walks the cumulative bucket counts to the target rank, then
/// interpolates linearly inside the landing bucket.
double HistogramPercentileMs(const obs::Histogram& histogram, double q) {
  const uint64_t count = histogram.Count();
  if (count == 0) return 0.0;
  double rank = q * static_cast<double>(count);
  if (rank < 1.0) rank = 1.0;
  uint64_t cumulative = 0;
  for (int b = 0; b < obs::Histogram::kNumBuckets; ++b) {
    const uint64_t in_bucket = histogram.BucketCount(b);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower =
          static_cast<double>(obs::Histogram::BucketLowerBound(b));
      const double upper =
          b + 1 < obs::Histogram::kNumBuckets
              ? static_cast<double>(obs::Histogram::BucketLowerBound(b + 1))
              : lower * 2.0;
      const double within =
          (rank - static_cast<double>(cumulative)) / in_bucket;
      return (lower + (upper - lower) * within) * 1e-6;  // ns -> ms
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(histogram.Sum()) / count * 1e-6;
}

/// One phase's snapshot rendered as a JSON object: request count, latency
/// percentiles from the histogram, and every serve.* counter.
std::string PhaseJson(const std::string& name, int submitted) {
  obs::Histogram* latency =
      obs::MetricsRegistry::Global().FindHistogram("serve.latency_ns");
  std::string json = "  \"" + name + "\": {\n";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "    \"requests\": %d,\n"
                "    \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
                "\"p99\": %.3f, \"mean\": %.3f},\n",
                submitted, HistogramPercentileMs(*latency, 0.50),
                HistogramPercentileMs(*latency, 0.95),
                HistogramPercentileMs(*latency, 0.99),
                latency->Count() == 0
                    ? 0.0
                    : static_cast<double>(latency->Sum()) /
                          static_cast<double>(latency->Count()) * 1e-6);
  json += buffer;
  json += "    \"counters\": {";
  bool first = true;
  for (const obs::MetricSample& sample :
       obs::MetricsRegistry::Global().Snapshot()) {
    if (sample.kind != obs::MetricSample::Kind::kCounter) continue;
    if (sample.name.rfind("serve.", 0) != 0) continue;
    std::snprintf(buffer, sizeof(buffer), "%s\"%s\": %" PRIu64,
                  first ? "" : ", ", sample.name.c_str(),
                  static_cast<uint64_t>(sample.value));
    json += buffer;
    first = false;
  }
  json += "}\n  }";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const std::string scratch = "/tmp/cpgan_micro_serve";
  util::MakeDirs(scratch);

  serve::ModelRegistry registry;
  serve::ModelSpec spec;
  spec.config = BenchServeConfig();
  spec.graph = BenchServeGraph();
  std::string error;
  CPGAN_CHECK_MSG(registry.AddModel(spec, &error), error.c_str());

  // Phase 1 — steady state: ample queue, no faults, every request ok.
  obs::MetricsRegistry::Global().ResetAll();
  serve::ServerOptions steady_options;
  steady_options.num_workers = 2;
  steady_options.queue_capacity = 16;
  serve::Server steady(&registry, steady_options);
  steady.Start();
  const int steady_requests = Burst(steady, serve::Request{}, 3, 20);
  steady.Stop();
  const std::string steady_json = PhaseJson("steady", steady_requests);

  // Phase 2 — chaos: tight queue + deadline with slow/stall/alloc/log
  // faults, exercising the shed / degrade / deadline / retry paths.
  obs::MetricsRegistry::Global().ResetAll();
  serve::ServerOptions chaos_options;
  chaos_options.num_workers = 2;
  chaos_options.queue_capacity = 3;
  chaos_options.default_deadline_ms = 40.0;
  chaos_options.watchdog_period_ms = 1.0;
  chaos_options.io_backoff.initial_delay_ms = 0.1;
  chaos_options.io_backoff.max_delay_ms = 1.0;
  chaos_options.request_log = scratch + "/requests.jsonl";
  std::remove(chaos_options.request_log.c_str());
  serve::Server chaotic(&registry, chaos_options);
  serve::ChaosPlan plan;
  plan.slow_every = 3;
  plan.slow_ms = 25.0;
  plan.stall_every = 4;
  plan.stall_ms = 20.0;
  plan.alloc_every = 5;
  plan.alloc_bytes = int64_t{1} << 40;
  plan.log_failures = 3;
  chaotic.SetChaos(plan);
  util::MemoryTracker::Global().SetBudgetBytes(
      util::MemoryTracker::Global().live_bytes() * 10 + (int64_t{1} << 20));
  chaotic.Start();
  const int chaos_requests = Burst(chaotic, serve::Request{}, 6, 4);
  chaotic.Stop();
  util::MemoryTracker::Global().SetBudgetBytes(0);
  const std::string chaos_json = PhaseJson("chaos", chaos_requests);

  char date[64] = "unknown";
  std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S%z",
                std::localtime(&now));
  char context[256];
  std::snprintf(context, sizeof(context),
                "  \"context\": {\"date\": \"%s\", \"model_nodes\": %d, "
                "\"model_edges\": %" PRId64 ", \"epochs\": %d},\n",
                date, spec.graph.num_nodes(), spec.graph.num_edges(),
                spec.config.epochs);

  std::string json = "{\n";
  json += context;
  json += steady_json + ",\n";
  json += chaos_json + "\n}\n";
  CPGAN_CHECK_MSG(
      util::AtomicWriteFile(out_path,
                            [&json](std::FILE* file) {
                              return std::fwrite(json.data(), 1, json.size(),
                                                 file) == json.size();
                            }),
      "failed to write BENCH_serve.json");
  std::printf("%s", json.c_str());
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
