// Reproduces Table VI: ablation of CPGAN's sub-modules on PubMed-, PPI-, and
// Facebook-like data. Rows: CPGAN-C (concatenation decoder), CPGAN-noV (no
// variational inference), CPGAN-noH (no hierarchical pooling), CPGAN (full).
//
// Expected shape: full CPGAN best on every column; CPGAN-noH worst (the
// ladder encoder matters most); NMI/ARI higher is better, Deg./Clus. lower.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "eval/community_eval.h"
#include "eval/graph_metrics.h"
#include "eval/report.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace cpgan;
  const std::vector<std::string> datasets = {"pubmed_like", "ppi_like",
                                             "facebook_like"};
  int runs = 1;  // Table VI reports single-run numbers (no ± in the paper)
  std::printf("Table VI analogue: CPGAN ablation study, %d run(s)\n", runs);

  for (const std::string& dataset : datasets) {
    graph::Graph observed = bench::BenchDataset(dataset);
    std::printf("\n=== %s ===\n", dataset.c_str());
    util::Table table({"Variant", "NMI(e-2)", "ARI(e-2)", "Deg.", "Clus."});
    for (const std::string& variant : bench::CpganVariants()) {
      std::vector<double> nmi, ari, deg, clus;
      for (int run = 0; run < runs; ++run) {
        bench::RunOptions options;
        options.seed = 500 + run;
        options.learned_epochs = 150;
        bench::ModelRun result = bench::RunModel(variant, observed, options);
        util::Rng rng(23 + run);
        eval::CommunityMetrics cm =
            eval::EvaluateCommunityPreservation(observed, result.generated,
                                                rng);
        eval::GenerationMetrics gm =
            eval::ComputeGenerationMetrics(observed, result.generated, rng);
        nmi.push_back(cm.nmi);
        ari.push_back(cm.ari);
        deg.push_back(gm.deg);
        clus.push_back(gm.clus);
      }
      table.AddRow({variant,
                    util::FormatCompact(eval::Mean(nmi) * 100.0),
                    util::FormatCompact(eval::Mean(ari) * 100.0),
                    util::FormatCompact(eval::Mean(deg)),
                    util::FormatCompact(eval::Mean(clus))});
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
