// Reproduces Table IV: generation quality as absolute differences from the
// observed graph (Deg./Clus. MMD, CPL, GINI, PWE — lower is better) for
// every model on three datasets (Citeseer-, 3D-Point-Cloud-, Google-like,
// matching the paper's selection).
//
// Expected shape: BTER best among traditional models; learning-based models
// ahead overall; CPGAN competitive everywhere and strongest on the largest
// (google_like) dataset.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "eval/graph_metrics.h"
#include "eval/report.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace cpgan;
  const std::vector<std::string> datasets = {"citeseer_like",
                                             "pointcloud_like", "google_like"};
  const std::vector<std::string> models = {
      "E-R",  "B-A",      "Chung-Lu",   "SBM",       "DCSBM",  "BTER",
      "Kronecker", "MMSB", "VGAE", "GraphRNN-S", "CondGen-R", "NetGAN", "CPGAN"};
  int runs = 1;  // Table IV reports single-run numbers (no ± in the paper)
  std::printf(
      "Table IV analogue: generation quality (absolute differences, lower "
      "is better), %d run(s)\n",
      runs);

  for (const std::string& dataset : datasets) {
    graph::Graph observed = bench::BenchDataset(dataset);
    std::printf("\n=== %s (n=%d, m=%lld) ===\n", dataset.c_str(),
                observed.num_nodes(),
                static_cast<long long>(observed.num_edges()));
    util::Table table({"Model", "Deg.", "Clus.", "CPL", "GINI", "PWE"});
    for (const std::string& model : models) {
      std::vector<double> deg, clus, cpl, gini, pwe;
      bool feasible = true;
      for (int run = 0; run < runs; ++run) {
        bench::RunOptions options;
        options.seed = 200 + run;
        bench::ModelRun result = bench::RunModel(model, observed, options);
        if (!result.feasible) {
          feasible = false;
          break;
        }
        util::Rng rng(11 + run);
        eval::GenerationMetrics m =
            eval::ComputeGenerationMetrics(observed, result.generated, rng);
        deg.push_back(m.deg);
        clus.push_back(m.clus);
        cpl.push_back(m.cpl);
        gini.push_back(m.gini);
        pwe.push_back(m.pwe);
      }
      if (!feasible) {
        table.AddRow({model, "OOM", "OOM", "OOM", "OOM", "OOM"});
      } else {
        table.AddRow({model, util::FormatCompact(eval::Mean(deg)),
                      util::FormatCompact(eval::Mean(clus)),
                      util::FormatCompact(eval::Mean(cpl)),
                      util::FormatCompact(eval::Mean(gini)),
                      util::FormatCompact(eval::Mean(pwe))});
      }
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
