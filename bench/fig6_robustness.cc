// Reproduces Figure 6: model robustness under hyper-parameter changes.
//  Left: the spread of generation quality (degree MMD) over a shared
//        architecture grid (hidden x latent dimensions) for models with
//        similar architectures (VGAE, Graphite, CondGen-R, CPGAN) — a robust
//        model has a low mean and a small spread.
//  Right: CPGAN's training-strategy grid (learning rate x decay), the sweep
//        the paper uses to justify lr 1e-3 with decay 0.3.
//
// Expected shape: CPGAN's spread is clearly smaller than the baselines'.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/condgen.h"
#include "baselines/graphite.h"
#include "baselines/vgae.h"
#include "bench/bench_util.h"
#include "core/cpgan.h"
#include "eval/graph_metrics.h"
#include "eval/report.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using cpgan::graph::Graph;

double DegMetric(const Graph& observed, const Graph& generated) {
  cpgan::util::Rng rng(17);
  return cpgan::eval::ComputeGenerationMetrics(observed, generated, rng).deg;
}

}  // namespace

int main() {
  using namespace cpgan;
  graph::Graph observed = bench::BenchDataset("ppi_like");
  const std::vector<std::pair<int, int>> grid = {
      {16, 8}, {32, 16}, {64, 32}};
  std::printf(
      "Figure 6 analogue (left): degree-MMD spread across a hidden x latent "
      "grid on ppi_like (lower mean and spread are better)\n\n");

  util::Table left({"Model", "mean Deg.", "std Deg.", "max Deg."});
  for (const std::string& model : {"VGAE", "Graphite", "CondGen-R", "CPGAN"}) {
    std::vector<double> metrics;
    for (const auto& [hidden, latent] : grid) {
      double value = 0.0;
      if (model == "CPGAN") {
        core::CpganConfig config = bench::BenchCpganConfig(200, 3);
        config.hidden_dim = hidden;
        config.latent_dim = latent;
        core::Cpgan m(config);
        m.Fit(observed);
        value = DegMetric(observed, m.Generate());
      } else if (model == "CondGen-R") {
        baselines::CondGenR m(150, 3);
        m.Fit(observed);
        value = DegMetric(observed, m.Generate());
      } else {
        baselines::VgaeConfig config;
        config.hidden_dim = hidden;
        config.latent_dim = latent;
        config.epochs = 200;
        config.seed = 3;
        if (model == "VGAE") {
          baselines::Vgae m(config);
          m.Fit(observed);
          value = DegMetric(observed, m.Generate());
        } else {
          baselines::Graphite m(config);
          m.Fit(observed);
          value = DegMetric(observed, m.Generate());
        }
      }
      metrics.push_back(value);
      std::printf("finished %s hidden=%d latent=%d\n", model.c_str(), hidden,
                  latent);
      std::fflush(stdout);
    }
    double max_value = 0.0;
    for (double v : metrics) max_value = std::max(max_value, v);
    left.AddRow({model, util::FormatCompact(eval::Mean(metrics)),
                 util::FormatCompact(eval::Stddev(metrics)),
                 util::FormatCompact(max_value)});
  }
  left.Print();

  std::printf(
      "\nFigure 6 analogue (right): CPGAN training-strategy grid "
      "(degree MMD; lower is better)\n\n");
  util::Table right({"lr", "decay", "Deg."});
  for (float lr : {3e-4f, 1e-3f, 3e-3f}) {
    for (float decay : {1.0f, 0.3f}) {
      core::CpganConfig config = bench::BenchCpganConfig(200, 4);
      config.learning_rate = lr;
      config.lr_decay = decay;
      config.lr_decay_every = 200;
      core::Cpgan m(config);
      m.Fit(observed);
      double value = DegMetric(observed, m.Generate());
      right.AddRow({util::FormatCompact(lr), util::FormatCompact(decay),
                    util::FormatCompact(value)});
      std::printf("finished lr=%g decay=%g\n", lr, decay);
      std::fflush(stdout);
    }
  }
  right.Print();
  return 0;
}
