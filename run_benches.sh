#!/bin/bash
# Regenerates bench_output.txt: every table/figure of the paper plus the
# repo's own ablations. Roughly an hour on one CPU core.
cd "$(dirname "$0")"

# Refuse to snapshot numbers from anything but a Release build — a debug
# BENCH_*.json silently poisons every later comparison against it.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' build/CMakeCache.txt 2>/dev/null)
if [ "$build_type" != "Release" ]; then
  echo "error: build/ is configured as '${build_type:-<unconfigured>}', not Release." >&2
  echo "Re-run: cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi

: > bench_output.txt
for b in table2_datasets micro_kernels micro_eval table9_memory table7_inference_time \
         table8_training_time table3_community table4_generation \
         table5_reconstruction table6_ablation fig5_sensitivity \
         fig6_robustness ablation_design; do
  echo "===== build/bench/$b =====" >> bench_output.txt
  ( time ./build/bench/$b ) >> bench_output.txt 2>&1
  echo "" >> bench_output.txt
  echo "[done] $b at $(date +%H:%M:%S)"
done
echo "ALL BENCHES COMPLETE"
