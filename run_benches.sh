#!/bin/bash
# Regenerates bench_output.txt: every table/figure of the paper plus the
# repo's own ablations. Roughly an hour on one CPU core.
cd "$(dirname "$0")"
: > bench_output.txt
for b in table2_datasets micro_kernels micro_eval table9_memory table7_inference_time \
         table8_training_time table3_community table4_generation \
         table5_reconstruction table6_ablation fig5_sensitivity \
         fig6_robustness ablation_design; do
  echo "===== build/bench/$b =====" >> bench_output.txt
  ( time ./build/bench/$b ) >> bench_output.txt 2>&1
  echo "" >> bench_output.txt
  echo "[done] $b at $(date +%H:%M:%S)"
done
echo "ALL BENCHES COMPLETE"
