#!/bin/bash
# Regenerates bench_output.txt: every table/figure of the paper plus the
# repo's own ablations. Roughly an hour on one CPU core.
cd "$(dirname "$0")"

# Refuse to snapshot numbers from anything but a Release build — a debug
# BENCH_*.json silently poisons every later comparison against it.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' build/CMakeCache.txt 2>/dev/null)
if [ "$build_type" != "Release" ]; then
  echo "error: build/ is configured as '${build_type:-<unconfigured>}', not Release." >&2
  echo "Re-run: cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi

: > bench_output.txt
for b in table2_datasets micro_kernels micro_eval table9_memory table7_inference_time \
         table8_training_time table3_community table4_generation \
         table5_reconstruction table6_ablation fig5_sensitivity \
         fig6_robustness ablation_design; do
  echo "===== build/bench/$b =====" >> bench_output.txt
  ( time ./build/bench/$b ) >> bench_output.txt 2>&1
  echo "" >> bench_output.txt
  echo "[done] $b at $(date +%H:%M:%S)"
done

# Serving-runtime snapshot, then the observability-plane overhead check.
# micro_obs merges an "obs_overhead" block into bench/BENCH_serve.json and
# prints the exporter-on vs metrics-off serve latency deltas. Two budgets:
# p50 delta <= 25% — the median is stable run-to-run and catches any
# per-request instrumentation regression (e.g. a synchronous flush landing
# on the request path); p99 delta <= 75% — the tail carries scheduler noise
# on shared machines, so its budget is loose and only catches catastrophic
# regressions (lock convoys, registry contention). A miss fails the whole
# bench run so a hot-path regression cannot land silently.
echo "===== build/bench/micro_serve =====" >> bench_output.txt
( time ./build/bench/micro_serve bench/BENCH_serve.json ) >> bench_output.txt 2>&1
echo "" >> bench_output.txt
echo "[done] micro_serve at $(date +%H:%M:%S)"
echo "===== build/bench/micro_obs =====" >> bench_output.txt
obs_out=$(./build/bench/micro_obs bench/BENCH_serve.json)
echo "$obs_out" >> bench_output.txt
echo "" >> bench_output.txt
p50_overhead=$(echo "$obs_out" | sed -n 's/^OBS_OVERHEAD_P50_PCT=//p')
p99_overhead=$(echo "$obs_out" | sed -n 's/^OBS_OVERHEAD_P99_PCT=//p')
if ! awk -v a="$p50_overhead" -v b="$p99_overhead" \
     'BEGIN { exit !(a != "" && b != "" && a <= 25.0 && b <= 75.0) }'; then
  echo "error: observability overhead budget exceeded:" >&2
  echo "       serve p50 delta ${p50_overhead:-<missing>}% (budget 25%)," >&2
  echo "       p99 delta ${p99_overhead:-<missing>}% (budget 75%)." >&2
  echo "       See bench/BENCH_serve.json \"obs_overhead\"." >&2
  exit 1
fi
echo "[done] micro_obs at $(date +%H:%M:%S) (p50 ${p50_overhead}%, p99 ${p99_overhead}%)"

# Out-of-core ingest gate: the mmap binary loader must stay >= 3x the text
# loader in edges/sec on the streamed 10M-edge graph (the whole point of
# the .cpge format), and the budgeted ingest + coreset-training smoke must
# hold its --mem-budget-mb cap. micro_ingest itself also hard-fails if the
# mmap CSR is not bitwise identical to the text loader's, so a speedup
# bought with a wrong graph cannot pass.
echo "===== build/bench/micro_ingest =====" >> bench_output.txt
ingest_out=$(./build/bench/micro_ingest bench/BENCH_ingest.json)
echo "$ingest_out" >> bench_output.txt
echo "" >> bench_output.txt
ingest_speedup=$(echo "$ingest_out" | sed -n 's/^INGEST_SPEEDUP=//p')
ingest_within=$(echo "$ingest_out" | sed -n 's/^INGEST_PEAK_WITHIN_BUDGET=//p')
if ! awk -v s="$ingest_speedup" -v w="$ingest_within" \
     'BEGIN { exit !(s != "" && w == "1" && s >= 3.0) }'; then
  echo "error: ingest gate failed:" >&2
  echo "       mmap speedup ${ingest_speedup:-<missing>}x (budget >= 3x)," >&2
  echo "       within-RAM-budget flag ${ingest_within:-<missing>} (need 1)." >&2
  echo "       See bench/BENCH_ingest.json." >&2
  exit 1
fi
echo "[done] micro_ingest at $(date +%H:%M:%S) (${ingest_speedup}x, budget ok)"

# Hierarchical-generation gate: per-community decode must stay >= 2x the
# flat decode at 8 threads on the multi-community fixture (the win is
# algorithmic — quadratic decode cost over much smaller blocks — so it
# holds on one core), the hierarchical output must be bitwise identical
# across thread counts, and hierarchical assembly must not trade community
# structure away (modularity within 0.05 of the flat decode's).
echo "===== build/bench/micro_hier =====" >> bench_output.txt
hier_out=$(./build/bench/micro_hier bench/BENCH_hier.json)
echo "$hier_out" >> bench_output.txt
echo "" >> bench_output.txt
hier_speedup=$(echo "$hier_out" | sed -n 's/^HIER_SPEEDUP_T8=//p')
hier_delta=$(echo "$hier_out" | sed -n 's/^HIER_MODULARITY_DELTA=//p')
hier_det=$(echo "$hier_out" | sed -n 's/^HIER_DETERMINISTIC=//p')
if ! awk -v s="$hier_speedup" -v d="$hier_delta" -v det="$hier_det" \
     'BEGIN { exit !(s != "" && d != "" && det == "1" && s >= 2.0 && d >= -0.05) }'; then
  echo "error: hierarchical-generation gate failed:" >&2
  echo "       hier speedup ${hier_speedup:-<missing>}x at 8 threads (budget >= 2x)," >&2
  echo "       modularity delta ${hier_delta:-<missing>} (budget >= -0.05)," >&2
  echo "       thread-count determinism flag ${hier_det:-<missing>} (need 1)." >&2
  echo "       See bench/BENCH_hier.json." >&2
  exit 1
fi
echo "[done] micro_hier at $(date +%H:%M:%S) (${hier_speedup}x, modularity delta ${hier_delta})"
echo "ALL BENCHES COMPLETE"
