#ifndef CPGAN_SERVE_PROTOCOL_H_
#define CPGAN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

namespace cpgan::serve {

/// \file
/// Line protocol of the generation server (docs/SERVING.md).
///
/// One request per line, whitespace-separated: a verb followed by key=value
/// pairs in any order. Unknown keys fail the parse (catching typos like
/// `node=128` early instead of silently ignoring them).
///
///   GENERATE [model=NAME] [nodes=N] [edges=M] [seed=S]
///            [deadline_ms=D] [out=PATH] [hier=0|1]
///   RELOAD   model=NAME checkpoint=PATH
///   STATS
///   QUIT
///
/// One response per line, key=value pairs:
///
///   id=7 status=ok model=default nodes=128 edges=512 latency_ms=12.41
///   id=8 status=shed detail=queue_full
///
/// `status` is the serving contract: every accepted request terminates in
/// exactly one of ok / degraded (reduced-fidelity decode under pressure) /
/// shed (rejected before any work) / deadline_exceeded (cancelled at a
/// phase boundary by the watchdog) / error.

enum class Verb {
  kGenerate,
  kReload,
  kStats,
  kQuit,
};

struct Request {
  Verb verb = Verb::kGenerate;

  /// Registry name of the model to decode from.
  std::string model = "default";

  /// Requested graph size; 0 = the model's observed node/edge counts.
  int nodes = 0;
  int64_t edges = 0;

  /// Per-request RNG stream seed: responses are bitwise identical for the
  /// same (model checkpoint, seed, degradation level).
  uint64_t seed = 0;

  /// Deadline budget in milliseconds. Negative (the default) = the server's
  /// default deadline; 0 = unlimited.
  double deadline_ms = -1.0;

  /// When set, the generated edge list is written here (atomically, with
  /// transient-failure retries) instead of being dropped after evaluation.
  std::string out;

  /// `hier=1`: assemble hierarchically (community skeleton, per-community
  /// decodes, stitched cross edges — docs/INTERNALS.md, "Hierarchical
  /// assembly"). Per-community decode waves become the watchdog's
  /// cancellation unit and the KernelLock critical section, so long
  /// hierarchical decodes interleave with other requests.
  bool hierarchical = false;

  /// RELOAD only: checkpoint file to hot-swap in.
  std::string checkpoint;
};

/// Parses one request line. Returns false (with a human-readable reason in
/// `error`) on an unknown verb, malformed pair, unknown key, or bad value;
/// `out` is untouched on failure. Blank lines and `#` comments fail with
/// error "empty" — the stdio front skips them without responding.
bool ParseRequest(const std::string& line, Request* out, std::string* error);

enum class ResponseStatus {
  kOk,
  kDegraded,
  kShed,
  kDeadlineExceeded,
  kError,
};

/// Wire name of a status ("ok", "degraded", "shed", "deadline_exceeded",
/// "error").
const char* StatusName(ResponseStatus status);

struct Response {
  uint64_t id = 0;
  ResponseStatus status = ResponseStatus::kError;
  std::string model;
  int nodes = 0;
  int64_t edges = 0;
  double latency_ms = 0.0;

  /// Transient-I/O retries spent on this request (output writes, log
  /// appends).
  int retries = 0;

  /// Machine-readable reason for non-ok statuses (single token; spaces are
  /// sanitized to '_' so the line stays parseable).
  std::string detail;

  bool completed() const {
    return status == ResponseStatus::kOk || status == ResponseStatus::kDegraded;
  }
};

/// Serializes a response to its single-line wire form (no trailing newline).
std::string FormatResponse(const Response& response);

/// Parses a response line produced by FormatResponse (tests and client
/// tooling). Returns false on a malformed line.
bool ParseResponse(const std::string& line, Response* out);

}  // namespace cpgan::serve

#endif  // CPGAN_SERVE_PROTOCOL_H_
