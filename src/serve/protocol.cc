#include "serve/protocol.h"

#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace cpgan::serve {
namespace {

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

std::string SanitizeToken(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '=') c = '_';
  }
  return out;
}

}  // namespace

bool ParseRequest(const std::string& line, Request* out, std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::string trimmed = util::Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return fail("empty");
  std::vector<std::string> tokens = util::Split(trimmed, " \t");
  Request request;
  const std::string& verb = tokens[0];
  if (verb == "GENERATE") {
    request.verb = Verb::kGenerate;
  } else if (verb == "RELOAD") {
    request.verb = Verb::kReload;
  } else if (verb == "STATS") {
    request.verb = Verb::kStats;
  } else if (verb == "QUIT") {
    request.verb = Verb::kQuit;
  } else {
    return fail("unknown verb '" + verb + "'");
  }
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return fail("malformed pair '" + token + "'");
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    bool ok = true;
    if (key == "model") {
      ok = !value.empty();
      request.model = value;
    } else if (key == "nodes") {
      int64_t n = 0;
      ok = ParseInt64(value, &n) && n >= 0;
      request.nodes = static_cast<int>(n);
    } else if (key == "edges") {
      ok = ParseInt64(value, &request.edges) && request.edges >= 0;
    } else if (key == "seed") {
      ok = ParseUint64(value, &request.seed);
    } else if (key == "deadline_ms") {
      ok = ParseDouble(value, &request.deadline_ms) &&
           request.deadline_ms >= 0.0;
    } else if (key == "out") {
      ok = !value.empty();
      request.out = value;
    } else if (key == "hier") {
      int64_t flag = 0;
      ok = ParseInt64(value, &flag) && (flag == 0 || flag == 1);
      request.hierarchical = flag == 1;
    } else if (key == "checkpoint") {
      ok = !value.empty();
      request.checkpoint = value;
    } else {
      return fail("unknown key '" + key + "'");
    }
    if (!ok) return fail("bad value for '" + key + "'");
  }
  if (request.verb == Verb::kReload && request.checkpoint.empty()) {
    return fail("RELOAD requires checkpoint=PATH");
  }
  *out = request;
  return true;
}

const char* StatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kDegraded:
      return "degraded";
    case ResponseStatus::kShed:
      return "shed";
    case ResponseStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ResponseStatus::kError:
      return "error";
  }
  return "error";
}

std::string FormatResponse(const Response& response) {
  std::ostringstream out;
  out << "id=" << response.id << " status=" << StatusName(response.status);
  if (!response.model.empty()) {
    out << " model=" << SanitizeToken(response.model);
  }
  if (response.completed()) {
    out << " nodes=" << response.nodes << " edges=" << response.edges;
  }
  char latency[32];
  std::snprintf(latency, sizeof(latency), "%.3f", response.latency_ms);
  out << " latency_ms=" << latency;
  if (response.retries > 0) out << " retries=" << response.retries;
  if (!response.detail.empty()) {
    out << " detail=" << SanitizeToken(response.detail);
  }
  return out.str();
}

bool ParseResponse(const std::string& line, Response* out) {
  std::vector<std::string> tokens = util::Split(util::Trim(line), " \t");
  if (tokens.empty()) return false;
  Response response;
  bool saw_id = false;
  bool saw_status = false;
  for (const std::string& token : tokens) {
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "id") {
      if (!ParseUint64(value, &response.id)) return false;
      saw_id = true;
    } else if (key == "status") {
      saw_status = true;
      if (value == "ok") {
        response.status = ResponseStatus::kOk;
      } else if (value == "degraded") {
        response.status = ResponseStatus::kDegraded;
      } else if (value == "shed") {
        response.status = ResponseStatus::kShed;
      } else if (value == "deadline_exceeded") {
        response.status = ResponseStatus::kDeadlineExceeded;
      } else if (value == "error") {
        response.status = ResponseStatus::kError;
      } else {
        return false;
      }
    } else if (key == "model") {
      response.model = value;
    } else if (key == "nodes") {
      int64_t n = 0;
      if (!ParseInt64(value, &n)) return false;
      response.nodes = static_cast<int>(n);
    } else if (key == "edges") {
      if (!ParseInt64(value, &response.edges)) return false;
    } else if (key == "latency_ms") {
      if (!ParseDouble(value, &response.latency_ms)) return false;
    } else if (key == "retries") {
      int64_t n = 0;
      if (!ParseInt64(value, &n)) return false;
      response.retries = static_cast<int>(n);
    } else if (key == "detail") {
      response.detail = value;
    } else if (key == "stats") {
      // STATS responses append a JSON payload; tolerated, not parsed here.
      break;
    } else {
      return false;
    }
  }
  if (!saw_id || !saw_status) return false;
  *out = response;
  return true;
}

}  // namespace cpgan::serve
