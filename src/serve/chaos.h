#ifndef CPGAN_SERVE_CHAOS_H_
#define CPGAN_SERVE_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace cpgan::serve {

/// Deterministic fault-injection plan for the serving runtime — the serving
/// analogue of train::FaultPlan. Periodic faults key off the request
/// sequence number assigned at submission (`seq % every == offset`), so a
/// given request mix hits the same faults on every run regardless of thread
/// interleaving. Countdown faults (load/log failures) are consumed
/// first-come-first-served by design: they model "the next N attempts fail",
/// and the retry/backoff contract must hold no matter which attempt eats the
/// fault.
///
/// The chaos suite (tests/serve/) drives every plan class through the server
/// and asserts the degradation contract: never crash, never deadlock, every
/// request answered, and every non-ok answer explicitly flagged shed /
/// degraded / deadline_exceeded / error.
struct ChaosPlan {
  /// Slow request: injected client-side stall (before the decode lock) on
  /// matching requests. Exercises the deadline watchdog.
  int slow_every = 0;  // 0 disables
  int slow_offset = 0;
  double slow_ms = 50.0;

  /// Worker stall: injected stall *inside* the decode lock on matching
  /// requests, wedging the whole decode engine. Exercises queue buildup and
  /// load shedding.
  int stall_every = 0;  // 0 disables
  int stall_offset = 0;
  double stall_ms = 100.0;

  /// Allocation pressure: matching requests are charged this many phantom
  /// bytes against the memory budget (util::MemoryTracker::BudgetPressure).
  /// Exercises the degradation ladder.
  int alloc_every = 0;  // 0 disables
  int alloc_offset = 0;
  int64_t alloc_bytes = 0;

  /// Failed model load: the next `load_failures` model (re)load attempts
  /// fail transiently before validation. Exercises registry retry/backoff
  /// and serve-the-old-model semantics.
  int load_failures = 0;

  /// Flaky request log: the next `log_failures` request-log appends fail
  /// transiently. Exercises per-request I/O retry.
  int log_failures = 0;

  bool Any() const {
    return slow_every > 0 || stall_every > 0 || alloc_every > 0 ||
           load_failures > 0 || log_failures > 0;
  }
};

/// Thread-safe runtime over a ChaosPlan. Periodic queries are pure functions
/// of the sequence number; countdown faults decrement atomically.
class ChaosInjector {
 public:
  ChaosInjector() : ChaosInjector(ChaosPlan{}) {}
  explicit ChaosInjector(const ChaosPlan& plan)
      : plan_(plan),
        load_faults_(plan.load_failures),
        log_faults_(plan.log_failures) {}

  const ChaosPlan& plan() const { return plan_; }

  /// Replaces the plan and re-arms the countdown faults. Not synchronized
  /// with concurrent consumers — call before serving starts.
  void Reset(const ChaosPlan& plan) {
    plan_ = plan;
    load_faults_.store(plan.load_failures, std::memory_order_relaxed);
    log_faults_.store(plan.log_failures, std::memory_order_relaxed);
  }

  /// Milliseconds of pre-decode stall for request `seq` (0 = none).
  double SlowDelayMs(uint64_t seq) const {
    return Matches(plan_.slow_every, plan_.slow_offset, seq) ? plan_.slow_ms
                                                             : 0.0;
  }

  /// Milliseconds of in-lock stall for request `seq` (0 = none).
  double StallDelayMs(uint64_t seq) const {
    return Matches(plan_.stall_every, plan_.stall_offset, seq) ? plan_.stall_ms
                                                               : 0.0;
  }

  /// Phantom bytes charged against the memory budget for request `seq`.
  int64_t AllocPressureBytes(uint64_t seq) const {
    return Matches(plan_.alloc_every, plan_.alloc_offset, seq)
               ? plan_.alloc_bytes
               : 0;
  }

  /// True if this model-load attempt should fail (consumes one fault).
  bool ConsumeLoadFault() { return Consume(&load_faults_); }

  /// True if this log append should fail (consumes one fault).
  bool ConsumeLogFault() { return Consume(&log_faults_); }

  int pending_load_faults() const {
    return load_faults_.load(std::memory_order_relaxed);
  }
  int pending_log_faults() const {
    return log_faults_.load(std::memory_order_relaxed);
  }

 private:
  static bool Matches(int every, int offset, uint64_t seq) {
    return every > 0 && seq % static_cast<uint64_t>(every) ==
                            static_cast<uint64_t>(offset % every);
  }

  static bool Consume(std::atomic<int>* remaining) {
    int current = remaining->load(std::memory_order_relaxed);
    while (current > 0) {
      if (remaining->compare_exchange_weak(current, current - 1,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  ChaosPlan plan_;
  std::atomic<int> load_faults_;
  std::atomic<int> log_faults_;
};

}  // namespace cpgan::serve

#endif  // CPGAN_SERVE_CHAOS_H_
