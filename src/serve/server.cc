#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>

#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/memory_tracker.h"
#include "util/rng.h"

namespace cpgan::serve {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Absolute steady-clock expiry of `deadline`, in the form RequestContext
/// carries (0 = unlimited). Deadline only exposes remaining time, so this
/// re-anchors it against the same clock.
uint64_t DeadlineNanos(const util::Deadline& deadline) {
  if (deadline.unlimited()) return 0;
  const double remaining_ms = deadline.remaining_ms();
  if (remaining_ms <= 0.0) return 1;  // already expired, but not "unlimited"
  return NowNanos() + static_cast<uint64_t>(remaining_ms * 1e6);
}

void SleepMs(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

bool WriteEdgeListAtomic(const graph::Graph& g, const std::string& path) {
  return util::AtomicWriteFile(path, [&g](std::FILE* f) {
    for (const auto& [u, v] : g.Edges()) {
      if (std::fprintf(f, "%d %d\n", u, v) < 0) return false;
    }
    return true;
  });
}

}  // namespace

struct Server::Job {
  Request request;
  uint64_t id = 0;
  Clock::time_point start{};
  util::Deadline deadline;

  /// Cooperative cancellation, set by the watchdog (or any observer of an
  /// expired deadline) and polled by the decode at phase boundaries.
  std::atomic<bool> cancel{false};

  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  Response response;
};

Server::Server(ModelRegistry* registry, const ServerOptions& options)
    : registry_(registry), options_(options), slo_(options.slo) {
  options_.num_workers = std::max(1, options_.num_workers);
  options_.queue_capacity = std::max(1, options_.queue_capacity);
  options_.watchdog_period_ms = std::max(0.1, options_.watchdog_period_ms);
}

Server::~Server() { Stop(); }

void Server::SetChaos(const ChaosPlan& plan) { chaos_.Reset(plan); }

void Server::Start() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  if (options_.memory_budget_bytes > 0) {
    util::MemoryTracker::Global().SetBudgetBytes(options_.memory_budget_bytes);
  }
  if (!options_.request_log.empty()) {
    log_file_ = std::fopen(options_.request_log.c_str(), "a");
    if (log_file_ == nullptr) {
      CPGAN_LOG(Warning) << "serve: cannot open request log '"
                         << options_.request_log << "'; logging disabled";
    }
  }
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });

  // Exporter last, so its first tick already sees the worker pool up. Its
  // on_tick publishes SLO gauges before each snapshot; any caller-supplied
  // hook still runs after ours.
  obs::ExporterOptions exporter_options = options_.exporter;
  std::function<void()> caller_tick = exporter_options.on_tick;
  exporter_options.on_tick = [this, caller_tick] {
    slo_.PublishGauges("serve.slo");
    CPGAN_GAUGE_SET("serve.queue_depth", static_cast<double>(queue_depth()));
    if (caller_tick) caller_tick();
  };
  exporter_ = std::make_unique<obs::MetricsExporter>(exporter_options);
  exporter_->Start();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  watchdog_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  if (watchdog_.joinable()) watchdog_.join();
  if (exporter_ != nullptr) {
    // After the workers: the final flush then captures every completed
    // request, including ones finished during the drain.
    exporter_->Stop();
    exporter_.reset();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    started_ = false;
  }
  std::lock_guard<std::mutex> log_lock(log_mutex_);
  if (log_file_ != nullptr) {
    std::fclose(log_file_);
    log_file_ = nullptr;
  }
}

util::Deadline Server::ResolveDeadline(const Request& request) const {
  double ms = request.deadline_ms;
  if (ms < 0.0) ms = options_.default_deadline_ms;
  if (ms <= 0.0) return util::Deadline();  // unlimited
  return util::Deadline::AfterMillis(ms);
}

Response Server::Submit(const Request& request) {
  auto job = std::make_shared<Job>();
  job->request = request;
  job->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job->start = Clock::now();
  job->deadline = ResolveDeadline(request);
  received_.fetch_add(1, std::memory_order_relaxed);
  CPGAN_COUNTER_ADD("serve.requests", 1);

  const char* reject = nullptr;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!started_ || stopping_) {
      reject = "server_stopped";
    } else if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
      reject = "queue_full";
    } else {
      queue_.push_back(job);
      CPGAN_GAUGE_SET("serve.queue_depth",
                      static_cast<double>(queue_.size()));
    }
  }
  if (reject != nullptr) {
    // Shed before any work — but still logged and counted, outside the
    // queue lock (the log append may sleep through backoff retries).
    Response response;
    response.id = job->id;
    response.status = ResponseStatus::kShed;
    response.model = request.model;
    response.detail = reject;
    response.latency_ms = MsSince(job->start);
    int log_retries = 0;
    AppendRequestLog(response, &log_retries);
    response.retries += log_retries;
    Record(response);
    return response;
  }
  queue_cv_.notify_one();

  std::unique_lock<std::mutex> job_lock(job->m);
  job->cv.wait(job_lock, [&job] { return job->done; });
  return job->response;
}

void Server::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      job = queue_.front();
      queue_.pop_front();
      active_.push_back(job);
      CPGAN_GAUGE_SET("serve.queue_depth", static_cast<double>(queue_.size()));
    }
    Response response = Process(*job);
    Finish(job, std::move(response));
  }
}

void Server::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (!stopping_) {
    auto scan = [this](const std::shared_ptr<Job>& job) {
      if (job->deadline.expired() &&
          !job->cancel.exchange(true, std::memory_order_relaxed)) {
        watchdog_cancels_.fetch_add(1, std::memory_order_relaxed);
        CPGAN_COUNTER_ADD("serve.watchdog_cancels", 1);
      }
    };
    for (const auto& job : queue_) scan(job);
    for (const auto& job : active_) scan(job);
    watchdog_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(options_.watchdog_period_ms),
        [this] { return stopping_; });
  }
}

Response Server::Process(Job& job) {
  // Everything below — degradation checks, decode, kernels, output writes —
  // runs under this request's context: spans closed in this scope (and in
  // any ParallelFor workers it fans out to) are stamped with the request id
  // so the Chrome trace groups them into one lane per request.
  obs::RequestContext context;
  context.id = job.id;
  context.deadline_ns = DeadlineNanos(job.deadline);
  obs::ScopedRequestContext request_scope(context);
  CPGAN_TRACE_SPAN("serve/request");

  const Request& request = job.request;
  Response response;
  response.id = job.id;
  response.model = request.model;
  auto finish = [&](ResponseStatus status, const std::string& detail) {
    response.status = status;
    response.detail = detail;
    response.latency_ms = MsSince(job.start);
    return response;
  };
  auto cancelled = [&job] {
    return job.cancel.load(std::memory_order_relaxed) ||
           job.deadline.expired();
  };

  if (cancelled()) return finish(ResponseStatus::kDeadlineExceeded,
                                 "expired_in_queue");

  // Chaos: slow request. Pre-decode stall, interruptible so the deadline
  // still bounds total latency.
  double slow_ms = chaos_.SlowDelayMs(job.id);
  while (slow_ms > 0.0 && !cancelled()) {
    double slice = std::min(slow_ms, 1.0);
    SleepMs(slice);
    slow_ms -= slice;
  }
  if (cancelled()) return finish(ResponseStatus::kDeadlineExceeded,
                                 "expired_before_decode");

  std::shared_ptr<const ServableModel> model = registry_->Find(request.model);
  if (model == nullptr) {
    return finish(ResponseStatus::kError,
                  "unknown_model:" + request.model);
  }

  // Degradation ladder: pressure is the worse of queue occupancy and the
  // advisory memory budget (chaos may add phantom bytes).
  double queue_fraction;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_fraction = static_cast<double>(queue_.size()) /
                     static_cast<double>(options_.queue_capacity);
  }
  double memory_pressure = util::MemoryTracker::Global().BudgetPressure(
      chaos_.AllocPressureBytes(job.id));
  double pressure = std::max(queue_fraction, memory_pressure);
  int level = pressure >= options_.heavy_pressure  ? 2
              : pressure >= options_.soft_pressure ? 1
                                                   : 0;

  core::GenerateControls controls;
  controls.num_nodes = request.nodes;
  controls.num_edges = request.edges;
  if (level == 1) {
    controls.subgraph_size = options_.soft_subgraph_size;
  } else if (level == 2) {
    controls.subgraph_size = options_.degraded_subgraph_size;
    controls.max_passes = options_.degraded_max_passes;
  }
  bool aborted = false;
  controls.aborted = &aborted;
  controls.should_abort = cancelled;
  controls.hierarchical = request.hierarchical;
  if (request.hierarchical) {
    // Hierarchical assembly runs each kernel-heavy phase (a wave of
    // per-community decodes, a stitch wave) inside this wrapper, so the
    // KernelLock critical section narrows from the whole decode to one
    // wave: other requests interleave between waves, and the watchdog's
    // cancellation lands at wave boundaries instead of waiting out a full
    // flat decode.
    controls.run_phase = [](const std::function<void()>& phase) {
      std::lock_guard<std::mutex> kernel(KernelLock());
      phase();
    };
  }

  util::Rng rng(request.seed);
  graph::Graph generated(0);
  {
    CPGAN_TRACE_SPAN("serve/decode");
    // Chaos: worker stall inside the decode lock — wedges the whole decode
    // engine, deliberately not interruptible (a stuck kernel would not be
    // either). Queued requests pile up behind it and shed or expire; this
    // request itself is answered deadline_exceeded below if it ran over.
    double stall_ms = chaos_.StallDelayMs(job.id);
    if (request.hierarchical) {
      if (stall_ms > 0.0) {
        std::lock_guard<std::mutex> kernel(KernelLock());
        SleepMs(stall_ms);
      }
      if (!cancelled()) {
        generated = model->Generate(controls, rng);
      } else {
        aborted = true;
      }
    } else {
      std::lock_guard<std::mutex> kernel(KernelLock());
      if (stall_ms > 0.0) SleepMs(stall_ms);
      if (!cancelled()) {
        generated = model->Generate(controls, rng);
      } else {
        aborted = true;
      }
    }
  }
  if (aborted || cancelled()) {
    return finish(ResponseStatus::kDeadlineExceeded, "cancelled_mid_decode");
  }

  response.nodes = generated.num_nodes();
  response.edges = generated.num_edges();

  if (!request.out.empty()) {
    // Transient write failures (including injected ones) retry with
    // backoff; the jitter stream is keyed off the request id so reruns are
    // reproducible.
    util::Rng io_rng(request.seed ^ (job.id * 0x9E3779B97F4A7C15ULL));
    util::RetryResult retry = util::RetryWithBackoff(
        options_.io_backoff, io_rng,
        [&] { return WriteEdgeListAtomic(generated, request.out); });
    response.retries += retry.retries();
    if (!retry.ok) {
      return finish(ResponseStatus::kError, "output_write_failed");
    }
  }

  return finish(level >= 2 ? ResponseStatus::kDegraded : ResponseStatus::kOk,
                level >= 2 ? "memory_or_queue_pressure" : "");
}

void Server::Finish(const std::shared_ptr<Job>& job, Response response) {
  int log_retries = 0;
  if (!AppendRequestLog(response, &log_retries)) {
    CPGAN_LOG(Warning) << "serve: request log append failed for id="
                       << response.id;
  }
  response.retries += log_retries;
  Record(response);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    active_.erase(std::remove(active_.begin(), active_.end(), job),
                  active_.end());
  }
  {
    std::lock_guard<std::mutex> job_lock(job->m);
    job->response = std::move(response);
    job->done = true;
  }
  job->cv.notify_all();
}

void Server::Record(const Response& response) {
  switch (response.status) {
    case ResponseStatus::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      CPGAN_COUNTER_ADD("serve.completed", 1);
      break;
    case ResponseStatus::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      CPGAN_COUNTER_ADD("serve.completed", 1);
      CPGAN_COUNTER_ADD("serve.degraded", 1);
      break;
    case ResponseStatus::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      CPGAN_COUNTER_ADD("serve.shed", 1);
      break;
    case ResponseStatus::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      CPGAN_COUNTER_ADD("serve.deadline_exceeded", 1);
      break;
    case ResponseStatus::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      CPGAN_COUNTER_ADD("serve.errors", 1);
      break;
  }
  if (response.retries > 0) {
    retries_.fetch_add(static_cast<uint64_t>(response.retries),
                       std::memory_order_relaxed);
    CPGAN_COUNTER_ADD("serve.retries",
                      static_cast<uint64_t>(response.retries));
  }
  const uint64_t latency_ns =
      static_cast<uint64_t>(std::max(0.0, response.latency_ms) * 1e6);
  CPGAN_HISTOGRAM_OBSERVE("serve.latency_ns", latency_ns);
  // SLO view of the same outcome: degraded responses still count as
  // available (the ladder exists precisely to keep them so), everything
  // else eats the availability error budget.
  slo_.Observe(latency_ns, response.status == ResponseStatus::kOk ||
                               response.status == ResponseStatus::kDegraded);
}

bool Server::AppendRequestLog(const Response& response, int* log_retries) {
  *log_retries = 0;
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    if (log_file_ == nullptr) return true;
  }
  util::Rng io_rng(response.id ^ 0xA5A5A5A5A5A5A5A5ULL);
  util::RetryResult retry = util::RetryWithBackoff(
      options_.io_backoff, io_rng, [&] {
        if (chaos_.ConsumeLogFault()) return false;
        std::lock_guard<std::mutex> lock(log_mutex_);
        if (log_file_ == nullptr) return true;
        int rc = std::fprintf(
            log_file_,
            "{\"id\":%" PRIu64
            ",\"status\":\"%s\",\"model\":\"%s\",\"nodes\":%d,"
            "\"edges\":%" PRId64 ",\"latency_ms\":%.3f,\"retries\":%d}\n",
            response.id, StatusName(response.status), response.model.c_str(),
            response.nodes, response.edges, response.latency_ms,
            response.retries);
        if (rc < 0) return false;
        return std::fflush(log_file_) == 0;
      });
  *log_retries = retry.retries();
  return retry.ok;
}

std::string Server::StatsLine(uint64_t id) {
  ServerStats stats = Stats();
  int depth = queue_depth();
  obs::SloSnapshot slo = slo_.Snapshot();
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "id=%" PRIu64
      " status=ok stats={\"received\":%" PRIu64 ",\"completed\":%" PRIu64
      ",\"ok\":%" PRIu64 ",\"degraded\":%" PRIu64 ",\"shed\":%" PRIu64
      ",\"deadline_exceeded\":%" PRIu64 ",\"errors\":%" PRIu64
      ",\"retries\":%" PRIu64 ",\"watchdog_cancels\":%" PRIu64
      ",\"queue_depth\":%d,"
      "\"slo\":{\"window_total\":%" PRIu64
      ",\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f"
      ",\"availability\":%.6f,\"latency_compliance\":%.6f"
      ",\"availability_burn_rate\":%.3f,\"latency_burn_rate\":%.3f"
      ",\"window_s\":%.1f},"
      "\"exporter\":{\"running\":%s,\"snapshots\":%d}}",
      id, stats.received, stats.completed, stats.ok, stats.degraded,
      stats.shed, stats.deadline_exceeded, stats.errors, stats.retries,
      stats.watchdog_cancels, depth, slo.total, slo.p50_ms, slo.p95_ms,
      slo.p99_ms, slo.availability, slo.latency_compliance,
      slo.availability_burn_rate, slo.latency_burn_rate, slo.window_s,
      exporter_ != nullptr && exporter_->running() ? "true" : "false",
      exporter_ != nullptr ? exporter_->snapshots_written() : 0);
  return buffer;
}

std::string Server::HandleLine(const std::string& line, bool* quit) {
  if (quit != nullptr) *quit = false;
  Request request;
  std::string parse_error;
  if (!ParseRequest(line, &request, &parse_error)) {
    if (parse_error == "empty") return "";
    Response response;
    response.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    response.status = ResponseStatus::kError;
    response.detail = "parse:" + parse_error;
    errors_.fetch_add(1, std::memory_order_relaxed);
    CPGAN_COUNTER_ADD("serve.errors", 1);
    return FormatResponse(response);
  }
  switch (request.verb) {
    case Verb::kGenerate:
      return FormatResponse(Submit(request));
    case Verb::kReload: {
      Response response;
      response.id = next_id_.fetch_add(1, std::memory_order_relaxed);
      response.model = request.model;
      Clock::time_point start = Clock::now();
      std::string error;
      bool ok = registry_->Reload(request.model, request.checkpoint,
                                  options_.io_backoff, &error, &chaos_);
      response.latency_ms = MsSince(start);
      if (ok) {
        response.status = ResponseStatus::kOk;
        if (auto model = registry_->Find(request.model)) {
          response.nodes = model->observed_nodes();
          response.edges = model->observed_edges();
        }
      } else {
        response.status = ResponseStatus::kError;
        response.detail = "reload_failed:" + error;
        errors_.fetch_add(1, std::memory_order_relaxed);
      }
      return FormatResponse(response);
    }
    case Verb::kStats:
      return StatsLine(next_id_.fetch_add(1, std::memory_order_relaxed));
    case Verb::kQuit: {
      if (quit != nullptr) *quit = true;
      Response response;
      response.id = next_id_.fetch_add(1, std::memory_order_relaxed);
      response.status = ResponseStatus::kOk;
      response.detail = "bye";
      return FormatResponse(response);
    }
  }
  return "";
}

int Server::RunStdio(std::FILE* in, std::FILE* out) {
  Start();
  std::string line;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), in) != nullptr) {
    line.assign(buffer);
    // Reassemble lines longer than the buffer.
    while (!line.empty() && line.back() != '\n' &&
           std::fgets(buffer, sizeof(buffer), in) != nullptr) {
      line.append(buffer);
    }
    bool quit = false;
    std::string response = HandleLine(line, &quit);
    if (!response.empty()) {
      std::fprintf(out, "%s\n", response.c_str());
      std::fflush(out);
    }
    if (quit) break;
  }
  Stop();
  return 0;
}

ServerStats Server::Stats() const {
  ServerStats stats;
  stats.received = received_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.completed = stats.ok + stats.degraded;
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.watchdog_cancels = watchdog_cancels_.load(std::memory_order_relaxed);
  return stats;
}

int Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return static_cast<int>(queue_.size());
}

}  // namespace cpgan::serve
