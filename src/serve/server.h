#ifndef CPGAN_SERVE_SERVER_H_
#define CPGAN_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/slo.h"
#include "serve/chaos.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "util/backoff.h"
#include "util/deadline.h"

namespace cpgan::serve {

/// Tuning knobs of the generation server (docs/SERVING.md).
struct ServerOptions {
  /// Worker threads draining the request queue. Workers serialize kernel
  /// work on KernelLock(); extra workers overlap queueing, chaos stalls,
  /// deadline handling, and I/O with decoding.
  int num_workers = 2;

  /// Bounded request queue: submissions beyond this depth are shed
  /// immediately (status=shed detail=queue_full) instead of building an
  /// unbounded backlog.
  int queue_capacity = 8;

  /// Deadline applied to requests that do not carry deadline_ms. 0 =
  /// unlimited.
  double default_deadline_ms = 0.0;

  /// Watchdog scan period. The watchdog cancels expired jobs — queued or
  /// in-flight — via their cooperative abort flag, which the decode polls at
  /// phase boundaries.
  double watchdog_period_ms = 2.0;

  /// Degradation ladder, driven by max(queue fraction, memory pressure):
  /// at `soft_pressure` the assembly batch shrinks (response still ok); at
  /// `heavy_pressure` generation runs reduced-fidelity (smaller batch, fewer
  /// assembly passes) and the response is flagged degraded.
  double soft_pressure = 0.5;
  double heavy_pressure = 0.85;
  int soft_subgraph_size = 128;
  int degraded_subgraph_size = 64;
  int degraded_max_passes = 2;

  /// Advisory tensor-memory budget installed into util::MemoryTracker at
  /// Start (feeds the pressure ladder). 0 keeps the tracker's current
  /// budget.
  int64_t memory_budget_bytes = 0;

  /// Retry schedule for transient I/O (output writes, request-log appends)
  /// and model reloads.
  util::BackoffPolicy io_backoff;

  /// JSONL request log (one record per response). Empty disables.
  std::string request_log;

  /// Live observability plane (docs/OBSERVABILITY.md): periodic exporter
  /// sinks (Prometheus text file + JSONL snapshots; both paths empty
  /// disables the background thread) and the SLO objectives evaluated over
  /// a sliding window of completed requests. The server owns the exporter
  /// lifecycle (Start spawns it, Stop flushes and joins it) and publishes
  /// SLO health as `serve.slo.*` gauges on every exporter tick, so each
  /// snapshot carries burn rates consistent with its raw histograms.
  obs::ExporterOptions exporter;
  obs::SloConfig slo;
};

/// Aggregate counters, readable at any time (also exported through the
/// obs metrics registry under serve.*).
struct ServerStats {
  uint64_t received = 0;           // GENERATE requests submitted
  uint64_t completed = 0;          // ok + degraded
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t errors = 0;
  uint64_t retries = 0;            // transient-I/O retries across requests
  uint64_t watchdog_cancels = 0;   // jobs cancelled by the watchdog
};

/// Long-lived generation server over a warm ModelRegistry.
///
/// Structure: Submit() enqueues into a bounded queue (shedding when full)
/// and blocks until the response is published; worker threads drain the
/// queue and decode under KernelLock(); a watchdog thread cancels expired
/// jobs at the next phase boundary. The serving contract — every submitted
/// request terminates with a response, and every non-ok response is
/// explicitly flagged — holds under every ChaosPlan fault class (enforced
/// by tests/serve/chaos_test.cc under ASan and TSan).
class Server {
 public:
  Server(ModelRegistry* registry, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Installs a fault-injection plan. Call before Start.
  void SetChaos(const ChaosPlan& plan);

  /// Spawns workers and the watchdog. Idempotent until Stop.
  void Start();

  /// Drains the queue (pending jobs still get responses), joins all
  /// threads, and closes the request log. Submissions during/after Stop are
  /// shed.
  void Stop();

  /// Blocking request: enqueues and waits for the response. Thread-safe;
  /// this is the embedded-client API the chaos suite drives from N threads.
  Response Submit(const Request& request);

  /// Parses one protocol line and executes it (GENERATE blocks like Submit;
  /// RELOAD/STATS/QUIT run inline). Returns the response line without a
  /// trailing newline — empty for blank/comment input. Sets *quit on QUIT.
  std::string HandleLine(const std::string& line, bool* quit);

  /// Line loop over stdio-style streams: one request per line in, one
  /// response per line out (flushed), until QUIT or EOF. Calls Start/Stop
  /// around the loop. Returns 0.
  int RunStdio(std::FILE* in, std::FILE* out);

  ServerStats Stats() const;
  int queue_depth() const;
  const ServerOptions& options() const { return options_; }

  /// Current SLO window (percentiles, availability, burn rates). The same
  /// numbers the STATS verb reports and the exporter publishes as gauges.
  obs::SloSnapshot SloStatus() const { return slo_.Snapshot(); }

  /// The live exporter, or nullptr when not started / both sinks disabled.
  obs::MetricsExporter* exporter() { return exporter_.get(); }

 private:
  struct Job;

  void WorkerLoop();
  void WatchdogLoop();

  /// Executes one job end to end (chaos, pressure, decode, output, log) and
  /// returns its response with latency filled in.
  Response Process(Job& job);

  /// Publishes a finished job's response and updates counters.
  void Finish(const std::shared_ptr<Job>& job, Response response);

  /// Updates stats/metrics for a terminal response.
  void Record(const Response& response);

  util::Deadline ResolveDeadline(const Request& request) const;
  bool AppendRequestLog(const Response& response, int* log_retries);
  std::string StatsLine(uint64_t id);

  ModelRegistry* registry_;
  ServerOptions options_;
  ChaosInjector chaos_;
  obs::SloTracker slo_;
  std::unique_ptr<obs::MetricsExporter> exporter_;

  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable watchdog_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::vector<std::shared_ptr<Job>> active_;
  bool started_ = false;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
  std::thread watchdog_;

  std::mutex log_mutex_;
  std::FILE* log_file_ = nullptr;

  // Stats (relaxed atomics; ServerStats snapshots them).
  std::atomic<uint64_t> received_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> watchdog_cancels_{0};
};

}  // namespace cpgan::serve

#endif  // CPGAN_SERVE_SERVER_H_
