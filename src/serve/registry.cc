#include "serve/registry.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace cpgan::serve {

std::mutex& KernelLock() {
  static std::mutex lock;
  return lock;
}

std::shared_ptr<ServableModel> ServableModel::Create(const ModelSpec& spec,
                                                     std::string* error,
                                                     ChaosInjector* chaos) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  if (chaos != nullptr && chaos->ConsumeLoadFault()) {
    return fail("injected transient load failure");
  }
  auto servable = std::shared_ptr<ServableModel>(new ServableModel());
  servable->model_ = std::make_unique<core::Cpgan>(spec.config);
  {
    std::lock_guard<std::mutex> kernel(KernelLock());
    if (!spec.checkpoint.empty()) {
      std::string warm_error;
      if (!servable->model_->WarmStart(spec.graph, spec.checkpoint,
                                       &warm_error)) {
        return fail("warm-load of '" + spec.checkpoint +
                    "' failed: " + warm_error);
      }
    } else {
      servable->model_->Fit(spec.graph);
    }
    if (!servable->model_->trained()) {
      return fail("model '" + spec.name + "' is untrained after build");
    }
    // Posterior-mean latents and community labels are deterministic;
    // computing them once here means observed-size and hierarchical
    // requests never touch the encoder again.
    servable->posterior_latents_ = servable->model_->PosteriorMeanLatents();
    servable->community_labels_ = servable->model_->LearnedCommunityLabels();
  }
  servable->observed_nodes_ = spec.graph.num_nodes();
  servable->observed_edges_ = spec.graph.num_edges();
  servable->checkpoint_ = spec.checkpoint;
  return servable;
}

graph::Graph ServableModel::Generate(const core::GenerateControls& controls,
                                     util::Rng& rng) const {
  int nodes = controls.num_nodes > 0 ? controls.num_nodes : observed_nodes_;
  if (controls.hierarchical) {
    // Hierarchical assembly decodes from the cached posterior latents at any
    // size (the skeleton scales the observed community profile), so sized
    // requests skip the prior path entirely. Density-preserving edge scaling
    // matches the flat sized path below.
    int64_t edges =
        controls.num_edges > 0
            ? controls.num_edges
            : std::max<int64_t>(
                  1, observed_nodes_ > 0
                         ? observed_edges_ * nodes / observed_nodes_
                         : observed_edges_);
    return model_->GenerateHierarchicalFromLatents(
        posterior_latents_, community_labels_, nodes, edges, controls, rng);
  }
  if (!controls.from_prior && nodes == observed_nodes_) {
    int64_t edges =
        controls.num_edges > 0 ? controls.num_edges : observed_edges_;
    return model_->GenerateFromLatents(posterior_latents_, nodes, edges,
                                       controls, rng);
  }
  // Sized request without an explicit edge count: preserve the observed
  // density instead of inheriting the observed edge total (a 10x-smaller
  // request would otherwise come back near-complete).
  if (controls.num_edges <= 0 && nodes != observed_nodes_ &&
      observed_nodes_ > 0) {
    core::GenerateControls scaled = controls;
    scaled.num_edges =
        std::max<int64_t>(1, observed_edges_ * nodes / observed_nodes_);
    return model_->GenerateWith(scaled, rng);
  }
  return model_->GenerateWith(controls, rng);
}

bool ModelRegistry::AddModel(const ModelSpec& spec, std::string* error,
                             ChaosInjector* chaos) {
  std::shared_ptr<ServableModel> model =
      ServableModel::Create(spec, error, chaos);
  if (model == nullptr) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[spec.name];
  entry.spec = spec;
  entry.version += 1;
  model->version_ = entry.version;
  entry.model = std::move(model);
  return true;
}

std::shared_ptr<const ServableModel> ModelRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.model;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

bool ModelRegistry::Reload(const std::string& name,
                           const std::string& checkpoint,
                           const util::BackoffPolicy& backoff,
                           std::string* error, ChaosInjector* chaos) {
  ModelSpec spec;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      if (error != nullptr) *error = "unknown model '" + name + "'";
      return false;
    }
    spec = it->second.spec;
  }
  spec.checkpoint = checkpoint;

  // Each attempt builds + validates a full candidate; the installed model
  // keeps serving throughout (builds interleave with decodes on
  // KernelLock). A checkpoint that fails validation is definitive, but the
  // backoff loop treats every failure as retryable: a torn read during an
  // in-flight atomic replace heals on a later attempt, and a truly corrupt
  // file just spends the (bounded) retry budget before reporting.
  std::shared_ptr<ServableModel> candidate;
  std::string attempt_error;
  util::Rng retry_rng(spec.config.seed ^ 0x9E1E7E57A11ULL);
  util::RetryResult retry = util::RetryWithBackoff(
      backoff, retry_rng, [&]() {
        candidate = ServableModel::Create(spec, &attempt_error, chaos);
        return candidate != nullptr;
      });
  CPGAN_COUNTER_ADD("serve.retries", static_cast<uint64_t>(retry.retries()));
  if (!retry.ok) {
    CPGAN_COUNTER_ADD("serve.reload_failures", 1);
    CPGAN_LOG(Warning) << "Reload of model '" << name << "' from '"
                       << checkpoint << "' failed after " << retry.attempts
                       << " attempt(s): " << attempt_error
                       << "; old model keeps serving";
    if (error != nullptr) *error = attempt_error;
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entries_[name];
    entry.spec = spec;
    entry.version += 1;
    candidate->version_ = entry.version;
    entry.model = std::move(candidate);
  }
  CPGAN_COUNTER_ADD("serve.reloads", 1);
  return true;
}

}  // namespace cpgan::serve
