#ifndef CPGAN_SERVE_REGISTRY_H_
#define CPGAN_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/cpgan.h"
#include "graph/graph.h"
#include "serve/chaos.h"
#include "util/backoff.h"
#include "util/rng.h"

namespace cpgan::serve {

/// Process-wide lock serializing kernel-heavy serving work (request decodes
/// and warm model builds). The thread pool supports exactly one top-level
/// parallel region at a time (util/thread_pool.h), so server workers take
/// this lock around anything that runs kernels; concurrency lives in the
/// queue/watchdog structure, parallelism inside the lock.
std::mutex& KernelLock();

/// How to build one servable model.
struct ModelSpec {
  std::string name = "default";
  core::CpganConfig config;

  /// Observed graph the model is conditioned on (owned by the spec; reloads
  /// rebuild against the same graph).
  graph::Graph graph{0};

  /// Checkpoint to warm-load (CRC + architecture-hash validated). Empty =
  /// train in-process for config.epochs (tests and demos).
  std::string checkpoint;
};

/// An immutable trained model plus its cached posterior-mean latents.
/// Everything is computed at load time; Generate() is const and safe to call
/// from any worker holding KernelLock().
class ServableModel {
 public:
  /// Builds (warm-load or in-process train) a model. Runs kernels — takes
  /// KernelLock() internally. Returns nullptr with `error` set on failure;
  /// `chaos`, if given, may inject one transient load failure per attempt.
  /// The result is mutable only so the registry can stamp version(); it is
  /// stored and served as const.
  static std::shared_ptr<ServableModel> Create(const ModelSpec& spec,
                                               std::string* error,
                                               ChaosInjector* chaos);

  /// Decodes one graph with a caller-owned RNG stream. Caller must hold
  /// KernelLock() — except when `controls.hierarchical` is set with a
  /// `controls.run_phase` wrapper, in which case the caller must NOT hold
  /// the lock: every kernel-heavy phase (per-community decode wave, stitch
  /// wave) runs inside `run_phase`, so the wrapper takes KernelLock() per
  /// phase and other requests interleave between waves. Requests at the
  /// observed size reuse the cached posterior latents (no encoder pass per
  /// request); other sizes draw prior latents from `rng`. Hierarchical
  /// requests always decode from the cached posterior latents and cached
  /// community labels, at any requested size.
  graph::Graph Generate(const core::GenerateControls& controls,
                        util::Rng& rng) const;

  int observed_nodes() const { return observed_nodes_; }
  int64_t observed_edges() const { return observed_edges_; }
  const std::string& checkpoint() const { return checkpoint_; }

  /// Monotone per-name load generation, assigned by the registry (1 = first
  /// load). 0 until the registry adopts the model.
  uint64_t version() const { return version_; }

 private:
  friend class ModelRegistry;
  ServableModel() = default;

  std::unique_ptr<core::Cpgan> model_;
  std::vector<tensor::Matrix> posterior_latents_;
  std::vector<int> community_labels_;
  int observed_nodes_ = 0;
  int64_t observed_edges_ = 0;
  std::string checkpoint_;
  uint64_t version_ = 0;
};

/// Named registry of warm models with atomic hot-reload: readers grab a
/// shared_ptr snapshot and keep serving it even while a reload builds and
/// validates a replacement; the swap is a pointer store under the registry
/// mutex. A failed reload (corrupt checkpoint, transient fault that
/// exhausts the backoff budget) leaves the old model serving.
class ModelRegistry {
 public:
  /// Builds and registers the model for `spec` (replacing any model with the
  /// same name). Returns false with `error` set on failure, leaving any
  /// existing entry untouched.
  bool AddModel(const ModelSpec& spec, std::string* error,
                ChaosInjector* chaos = nullptr);

  /// Current model for `name`, or nullptr. The snapshot stays valid (and
  /// immutable) for as long as the caller holds it, across any reloads.
  std::shared_ptr<const ServableModel> Find(const std::string& name) const;

  /// Registered model names, sorted.
  std::vector<std::string> Names() const;

  /// Hot-reloads `name` from `checkpoint`, retrying transient failures with
  /// backoff. The old model serves until the replacement validates; on
  /// definitive failure (unknown name, exhausted retries) returns false with
  /// `error` set and the old model still installed.
  bool Reload(const std::string& name, const std::string& checkpoint,
              const util::BackoffPolicy& backoff, std::string* error,
              ChaosInjector* chaos = nullptr);

 private:
  struct Entry {
    ModelSpec spec;
    std::shared_ptr<const ServableModel> model;
    uint64_t version = 0;
  };

  mutable std::mutex mutex_;  // guards the map; never held while building
  std::map<std::string, Entry> entries_;
};

}  // namespace cpgan::serve

#endif  // CPGAN_SERVE_REGISTRY_H_
