// AVX2+FMA kernel backend. This translation unit is compiled with
// -mavx2 -mfma (src/CMakeLists.txt) and is reached only through the
// KernelOps table after kernels.cc has verified CPUID support — nothing
// here may be called directly from generic code.
//
// Numeric identity: within this backend every result is a fixed function of
// the inputs — the macro-kernel computes each output element as one FMA
// chain in ascending k order, identical across the 32-wide, 8-wide and
// scalar-tail paths (std::fmaf is the same fused operation as a vector FMA
// lane). The j-tile width and the thread count therefore never change a
// bit; only the backend choice does (FMA contracts the multiply-add that
// the scalar backend rounds twice).

#if defined(__x86_64__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "tensor/kernels_backends.h"

namespace cpgan::tensor::kernels::internal {

namespace {

void Avx2MatmulTile(const float* a, const float* tile, float* out, int kb,
                    int jb) {
  const int64_t stride = jb;
  int j = 0;
  // 4 accumulator registers (32 output columns) held across the whole
  // k-tile: the dominant case for the autotuned widths, one load/store of C
  // per 32x64 block instead of one per k step.
  for (; j + 32 <= jb; j += 32) {
    float* o = out + j;
    __m256 c0 = _mm256_loadu_ps(o);
    __m256 c1 = _mm256_loadu_ps(o + 8);
    __m256 c2 = _mm256_loadu_ps(o + 16);
    __m256 c3 = _mm256_loadu_ps(o + 24);
    const float* t = tile + j;
    for (int r = 0; r < kb; ++r, t += stride) {
      const __m256 av = _mm256_set1_ps(a[r]);
      c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(t), c0);
      c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(t + 8), c1);
      c2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(t + 16), c2);
      c3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(t + 24), c3);
    }
    _mm256_storeu_ps(o, c0);
    _mm256_storeu_ps(o + 8, c1);
    _mm256_storeu_ps(o + 16, c2);
    _mm256_storeu_ps(o + 24, c3);
  }
  for (; j + 8 <= jb; j += 8) {
    float* o = out + j;
    __m256 c0 = _mm256_loadu_ps(o);
    const float* t = tile + j;
    for (int r = 0; r < kb; ++r, t += stride) {
      c0 = _mm256_fmadd_ps(_mm256_set1_ps(a[r]), _mm256_loadu_ps(t), c0);
    }
    _mm256_storeu_ps(o, c0);
  }
  for (; j < jb; ++j) {
    float acc = out[j];
    const float* t = tile + j;
    for (int r = 0; r < kb; ++r, t += stride) {
      acc = std::fmaf(a[r], *t, acc);
    }
    out[j] = acc;
  }
}

void Avx2Axpy(float alpha, const float* x, float* y, int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
    _mm256_storeu_ps(
        y + i + 8, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i + 8),
                                   _mm256_loadu_ps(y + i + 8)));
  }
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}

void Avx2Add(const float* x, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void Avx2Scale(float alpha, float* y, int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(av, _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= alpha;
}

/// Sums a 4-lane double accumulator in fixed lane order (0..3) so the
/// reduction is a pure function of the lanes, not of any shuffle tree.
double HorizontalSum(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

double Avx2Dot(const float* a, const float* b, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_loadu_ps(a + i);
    const __m256 bv = _mm256_loadu_ps(b + i);
    acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(av)),
                           _mm256_cvtps_pd(_mm256_castps256_ps128(bv)), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(av, 1)),
                           _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1)),
                           acc1);
  }
  double acc = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

double Avx2Sum(const float* x, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    acc0 = _mm256_add_pd(acc0,
                         _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc1 = _mm256_add_pd(acc1,
                         _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double acc = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += x[i];
  return acc;
}

double Avx2SumSq(const float* x, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    acc0 = _mm256_fmadd_pd(lo, lo, acc0);
    acc1 = _mm256_fmadd_pd(hi, hi, acc1);
  }
  double acc = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += static_cast<double>(x[i]) * x[i];
  return acc;
}

}  // namespace

const KernelOps* Avx2OpsIfBuilt() {
  static const KernelOps ops = {
      "avx2",    Avx2MatmulTile, Avx2Axpy, Avx2Add,
      Avx2Scale, Avx2Dot,        Avx2Sum,  Avx2SumSq,
  };
  return &ops;
}

}  // namespace cpgan::tensor::kernels::internal

#else  // !defined(__x86_64__)

#include "tensor/kernels_backends.h"

namespace cpgan::tensor::kernels::internal {

const KernelOps* Avx2OpsIfBuilt() { return nullptr; }

}  // namespace cpgan::tensor::kernels::internal

#endif
