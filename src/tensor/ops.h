#ifndef CPGAN_TENSOR_OPS_H_
#define CPGAN_TENSOR_OPS_H_

#include <memory>
#include <vector>

#include "tensor/sparse.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace cpgan::tensor {

/// \file
/// Differentiable operations over Tensor. Each function builds an autograd
/// node whose backward closure implements the exact analytic gradient; the
/// gradients are validated against central finite differences in
/// tests/tensor/autograd_test.cc.

// ---------------------------------------------------------------------------
// Elementwise binary ops (shapes must match unless stated otherwise).
// ---------------------------------------------------------------------------

/// a + b.
Tensor Add(const Tensor& a, const Tensor& b);
/// a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// a ∘ b (Hadamard product).
Tensor Mul(const Tensor& a, const Tensor& b);
/// a / b elementwise; b must be nonzero.
Tensor Div(const Tensor& a, const Tensor& b);

/// x + v where v is 1 x d, broadcast over rows (bias add).
Tensor AddRowVec(const Tensor& x, const Tensor& v);
/// x ∘ v where v is 1 x d, broadcast over rows.
Tensor MulRowVec(const Tensor& x, const Tensor& v);
/// x ∘ v where v is n x 1, broadcast over columns (row scaling).
Tensor MulColVec(const Tensor& x, const Tensor& v);

// ---------------------------------------------------------------------------
// Scalar-constant ops.
// ---------------------------------------------------------------------------

/// alpha * x.
Tensor Scale(const Tensor& x, float alpha);
/// x + c (every entry).
Tensor AddConst(const Tensor& x, float c);
/// -x.
Tensor Neg(const Tensor& x);

// ---------------------------------------------------------------------------
// Elementwise unary ops.
// ---------------------------------------------------------------------------

Tensor Relu(const Tensor& x);
Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Exp(const Tensor& x);
/// Natural log; inputs are clamped to >= kLogEps for stability.
Tensor Log(const Tensor& x);
Tensor Square(const Tensor& x);
/// Elementwise sqrt of non-negative inputs.
Tensor Sqrt(const Tensor& x);
/// log(1 + e^x), numerically stable.
Tensor Softplus(const Tensor& x);
/// log(sigmoid(x)), numerically stable (= -softplus(-x)).
Tensor LogSigmoid(const Tensor& x);
/// 1 / x.
Tensor Reciprocal(const Tensor& x);

/// Row-wise softmax.
Tensor SoftmaxRows(const Tensor& x);

/// Inverted-dropout. Active only when `train` is true; scales kept entries by
/// 1/(1-p) so expectations match at eval time.
Tensor Dropout(const Tensor& x, float p, util::Rng& rng, bool train);

// ---------------------------------------------------------------------------
// Matrix products.
// ---------------------------------------------------------------------------

/// a * b.
Tensor Matmul(const Tensor& a, const Tensor& b);
/// Sparse-dense product s * x; the sparse operand is a constant.
Tensor Spmm(std::shared_ptr<const SparseMatrix> s, const Tensor& x);
/// x^T.
Tensor Transpose(const Tensor& x);

// ---------------------------------------------------------------------------
// Structural ops.
// ---------------------------------------------------------------------------

/// Vertical stack (all inputs share the column count).
Tensor ConcatRows(const std::vector<Tensor>& parts);
/// Horizontal stack (all inputs share the row count).
Tensor ConcatCols(const std::vector<Tensor>& parts);
/// Selects rows by index (duplicates allowed); backward scatter-adds.
Tensor GatherRows(const Tensor& x, std::vector<int> indices);
/// Columns [start, start+len).
Tensor SliceCols(const Tensor& x, int start, int len);
/// Same number of elements, new shape (row-major order preserved).
Tensor Reshape(const Tensor& x, int rows, int cols);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

/// Sum of all entries -> 1x1.
Tensor SumAll(const Tensor& x);
/// Mean of all entries -> 1x1.
Tensor MeanAll(const Tensor& x);
/// Column means (collapse rows) -> 1 x d.
Tensor ColMean(const Tensor& x);
/// Row sums (collapse columns) -> n x 1.
Tensor RowSum(const Tensor& x);
/// Row means (collapse columns) -> n x 1.
Tensor RowMean(const Tensor& x);
/// Per-row L2 norms -> n x 1.
Tensor RowL2Norm(const Tensor& x);

// ---------------------------------------------------------------------------
// Losses (scalar outputs).
// ---------------------------------------------------------------------------

/// Mean binary cross-entropy between sigmoid(logits) and constant targets,
/// computed stably from the logits. `pos_weight` scales the positive term
/// (useful for sparse adjacency reconstruction).
Tensor BceWithLogits(const Tensor& logits, const Matrix& targets,
                     float pos_weight = 1.0f);

/// Mean squared error between two tensors (gradients to both).
Tensor MseLoss(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Constants / helpers.
// ---------------------------------------------------------------------------

/// Wraps a constant matrix as a non-differentiable leaf.
Tensor Constant(Matrix value);

/// 1x1 constant.
Tensor ScalarConstant(float value);

// ---------------------------------------------------------------------------
// Numeric-health checks (training-guard support; see src/train/guard.h).
// ---------------------------------------------------------------------------

/// True if every entry is finite (no NaN/Inf).
bool AllFinite(const Matrix& m);

/// True if the tensor's forward value is entirely finite.
bool ValueFinite(const Tensor& t);

/// True if every parameter's accumulated gradient is finite. Parameters whose
/// gradient was never touched by Backward (zero-shaped) count as finite.
bool GradsFinite(const std::vector<Tensor>& params);

/// Largest absolute entry across all parameter gradients (0 if none).
float MaxAbsGrad(const std::vector<Tensor>& params);

}  // namespace cpgan::tensor

#endif  // CPGAN_TENSOR_OPS_H_
