#ifndef CPGAN_TENSOR_TENSOR_H_
#define CPGAN_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace cpgan::tensor {

namespace internal {
struct Node;
}  // namespace internal

/// Reverse-mode autograd handle over a 2-D Matrix value.
///
/// A Tensor is a cheap shared handle to a graph node holding the forward
/// value, an optional gradient accumulator, and the backward closure that
/// scatters the node's gradient into its inputs. All differentiable
/// operations live in tensor/ops.h; calling Backward(loss) runs a topological
/// sweep from a scalar loss.
class Tensor {
 public:
  /// Null handle.
  Tensor() = default;

  /// Leaf node wrapping `value`. If `requires_grad` is true the node
  /// accumulates gradients (used for parameters).
  explicit Tensor(Matrix value, bool requires_grad = false);

  /// True if this handle points at a node.
  bool defined() const { return node_ != nullptr; }

  int rows() const;
  int cols() const;

  /// Forward value (must be defined).
  const Matrix& value() const;
  Matrix& mutable_value();

  /// Accumulated gradient; zero-shaped until Backward touches this node.
  const Matrix& grad() const;

  /// True if gradients are tracked through this node.
  bool requires_grad() const;

  /// Clears the accumulated gradient (parameters between steps).
  void ZeroGrad();

  /// Convenience for 1x1 tensors.
  float Scalar() const;

  /// Detaches: returns a constant leaf with the same value.
  Tensor Detach() const;

  /// Internal: used by ops to build graph nodes.
  static Tensor MakeNode(Matrix value, std::vector<Tensor> inputs,
                         std::function<void(const Matrix&, internal::Node&)> backward);

  internal::Node* node() const { return node_.get(); }
  const std::shared_ptr<internal::Node>& node_ptr() const { return node_; }

 private:
  explicit Tensor(std::shared_ptr<internal::Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<internal::Node> node_;
};

namespace internal {

/// Autograd graph node. Users interact via Tensor.
struct Node {
  Matrix value;
  Matrix grad;
  bool requires_grad = false;
  bool grad_initialized = false;
  std::vector<std::shared_ptr<Node>> inputs;
  /// Receives this node's incoming gradient and scatters into inputs.
  std::function<void(const Matrix&, Node&)> backward;

  /// Adds `delta` into the gradient accumulator, initializing lazily.
  void AccumulateGrad(const Matrix& delta);
};

}  // namespace internal

/// Runs reverse-mode differentiation from a scalar (1x1) loss tensor.
/// Gradients accumulate into every reachable node with requires_grad.
void Backward(const Tensor& loss);

}  // namespace cpgan::tensor

#endif  // CPGAN_TENSOR_TENSOR_H_
