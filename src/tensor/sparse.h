#ifndef CPGAN_TENSOR_SPARSE_H_
#define CPGAN_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/matrix.h"

namespace cpgan::tensor {

/// A (row, col, value) triplet used to build sparse matrices.
struct Triplet {
  int row = 0;
  int col = 0;
  float value = 0.0f;
};

/// Immutable CSR float sparse matrix.
///
/// Used for the level-0 normalized adjacency A-hat in the GCN layers: SpMM
/// against dense feature matrices is the dominant encoder operation and keeps
/// the per-layer cost at O(m + n) as analysed in Section III-C of the paper.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from triplets. Duplicate (row, col) entries are summed.
  SparseMatrix(int rows, int cols, std::vector<Triplet> triplets);

  // The lazily built transpose cache (shared, immutable) travels with
  // copies; the mutex guarding its construction does not.
  SparseMatrix(const SparseMatrix& other);
  SparseMatrix& operator=(const SparseMatrix& other);
  SparseMatrix(SparseMatrix&& other) noexcept;
  SparseMatrix& operator=(SparseMatrix&& other) noexcept;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_offsets() const { return row_offsets_; }
  const std::vector<int>& col_indices() const { return col_indices_; }
  const std::vector<float>& values() const { return values_; }

  /// out = S * D  (rows x D.cols()). Row-parallel: each output row is a
  /// gather over this row's entries in column order, so the result is
  /// independent of the thread count.
  Matrix Multiply(const Matrix& dense) const;

  /// out = S^T * D. Implemented as a row-parallel gather over a lazily
  /// built (and cached) transposed CSR — the scatter form of the old
  /// implementation cannot parallelize without write conflicts. The
  /// per-output-row accumulation order (ascending original row index)
  /// matches the historical scatter order.
  Matrix MultiplyTransposed(const Matrix& dense) const;

  /// Per-row sums (rows x 1).
  Matrix RowSums() const;

  /// Returns the dense equivalent (for tests / tiny graphs).
  Matrix ToDense() const;

  /// Returns the transposed sparse matrix.
  SparseMatrix Transposed() const;

 private:
  /// Counting-sort transpose in O(nnz + rows + cols); no triplet re-sort.
  SparseMatrix BuildTransposed() const;

  /// Returns the cached transpose, building it on first use (thread-safe).
  const SparseMatrix& TransposedCached() const;

  int rows_ = 0;
  int cols_ = 0;
  std::vector<int64_t> row_offsets_;
  std::vector<int> col_indices_;
  std::vector<float> values_;

  mutable std::mutex transpose_mutex_;
  mutable std::shared_ptr<const SparseMatrix> transpose_cache_;
};

/// Builds the GCN-normalized adjacency D^{-1/2} (A + I) D^{-1/2} from an
/// undirected edge list over n nodes. Edges are symmetrized; self-loops are
/// added once.
SparseMatrix NormalizedAdjacency(int n, const std::vector<std::pair<int, int>>& edges);

/// Two-hop boosted variant of the normalized adjacency: the paper notes that
/// "information can flow among nodes faster if we use some variants of A~
/// (e.g. A~ = A + A^2) to improve the connectivity of graphs"
/// (Section III-C1). Adds weight `two_hop_weight` on each distinct two-hop
/// pair before symmetric normalization. Intended for small/sparse graphs
/// (the two-hop fill-in is bounded by sum of squared degrees).
SparseMatrix TwoHopNormalizedAdjacency(
    int n, const std::vector<std::pair<int, int>>& edges,
    float two_hop_weight = 0.5f);

}  // namespace cpgan::tensor

#endif  // CPGAN_TENSOR_SPARSE_H_
