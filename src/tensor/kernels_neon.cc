// NEON kernel backend stub. On AArch64 builds this registers a "neon"
// backend behind the same KernelOps interface so dispatch, flags, tests and
// the coverage registry all exercise the three-backend surface; the
// implementations currently delegate to the scalar loops. Replacing a
// delegation with a real NEON micro-kernel is a local change to this file —
// the differential suite (ctest -L kernels) already covers every (backend,
// op) pair and will validate it automatically.

#include "tensor/kernels_backends.h"

namespace cpgan::tensor::kernels::internal {

#if defined(__aarch64__)

namespace {

void NeonMatmulTile(const float* a, const float* tile, float* out, int kb,
                    int jb) {
  ScalarOps().matmul_tile(a, tile, out, kb, jb);
}

void NeonAxpy(float alpha, const float* x, float* y, int64_t n) {
  ScalarOps().axpy(alpha, x, y, n);
}

void NeonAdd(const float* x, float* y, int64_t n) {
  ScalarOps().add(x, y, n);
}

void NeonScale(float alpha, float* y, int64_t n) {
  ScalarOps().scale(alpha, y, n);
}

double NeonDot(const float* a, const float* b, int64_t n) {
  return ScalarOps().dot(a, b, n);
}

double NeonSum(const float* x, int64_t n) { return ScalarOps().sum(x, n); }

double NeonSumSq(const float* x, int64_t n) {
  return ScalarOps().sumsq(x, n);
}

}  // namespace

const KernelOps* NeonOpsIfBuilt() {
  static const KernelOps ops = {
      "neon",    NeonMatmulTile, NeonAxpy, NeonAdd,
      NeonScale, NeonDot,        NeonSum,  NeonSumSq,
  };
  return &ops;
}

#else  // !defined(__aarch64__)

const KernelOps* NeonOpsIfBuilt() { return nullptr; }

#endif

}  // namespace cpgan::tensor::kernels::internal
