#include "tensor/matrix.h"

#include <cmath>
#include <cstring>

#include "util/memory_tracker.h"

namespace cpgan::tensor {

Matrix::Matrix() = default;

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  CPGAN_CHECK(rows >= 0 && cols >= 0);
  data_.assign(size(), 0.0f);
  Register();
}

Matrix::Matrix(int rows, int cols, float fill) : rows_(rows), cols_(cols) {
  CPGAN_CHECK(rows >= 0 && cols >= 0);
  data_.assign(size(), fill);
  Register();
}

Matrix::Matrix(const Matrix& other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
  Register();
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  Unregister();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = other.data_;
  Register();
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  Unregister();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
  return *this;
}

Matrix::~Matrix() { Unregister(); }

void Matrix::Register() {
  util::MemoryTracker::Global().Allocate(data_.capacity() * sizeof(float));
}

void Matrix::Unregister() {
  util::MemoryTracker::Global().Release(data_.capacity() * sizeof(float));
}

void Matrix::Fill(float value) {
  for (float& v : data_) v = value;
}

void Matrix::FillNormal(util::Rng& rng, float stddev) {
  for (float& v : data_) v = static_cast<float>(rng.Normal(0.0, stddev));
}

void Matrix::FillUniform(util::Rng& rng, float lo, float hi) {
  for (float& v : data_) v = static_cast<float>(rng.Uniform(lo, hi));
}

float Matrix::Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

void Matrix::AddInPlace(const Matrix& other) {
  CPGAN_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Axpy(float alpha, const Matrix& other) {
  CPGAN_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    for (int c = 0; c < cols_; ++c) out.At(c, r) = src[c];
  }
  return out;
}

Matrix Matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MatmulAccum(a, b, out);
  return out;
}

void MatmulAccum(const Matrix& a, const Matrix& b, Matrix& out) {
  CPGAN_CHECK_EQ(a.cols(), b.rows());
  CPGAN_CHECK_EQ(out.rows(), a.rows());
  CPGAN_CHECK_EQ(out.cols(), b.cols());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  // i-k-j loop order: streams through B and the output row contiguously.
  for (int i = 0; i < n; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (int kk = 0; kk < k; ++kk) {
      float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = b.Row(kk);
      for (int j = 0; j < m; ++j) orow[j] += aik * brow[j];
    }
  }
}

Matrix MatmulTN(const Matrix& a, const Matrix& b) {
  CPGAN_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  for (int i = 0; i < n; ++i) {
    const float* arow = a.Row(i);
    const float* brow = b.Row(i);
    for (int kk = 0; kk < k; ++kk) {
      float v = arow[kk];
      if (v == 0.0f) continue;
      float* orow = out.Row(kk);
      for (int j = 0; j < m; ++j) orow[j] += v * brow[j];
    }
  }
  return out;
}

Matrix MatmulNT(const Matrix& a, const Matrix& b) {
  CPGAN_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.rows();
  for (int i = 0; i < n; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (int j = 0; j < m; ++j) {
      const float* brow = b.Row(j);
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = static_cast<float>(acc);
    }
  }
  return out;
}

}  // namespace cpgan::tensor
