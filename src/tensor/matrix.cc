#include "tensor/matrix.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "obs/trace.h"
#include "util/memory_tracker.h"
#include "util/thread_pool.h"

namespace cpgan::tensor {

namespace {

/// Cache-blocking tile sizes for the dense matmul kernels: row panels of
/// kTileRows output rows are the unit of parallelism, and B is repacked
/// into contiguous kTileK x kTileCols tiles so the inner loops stream.
constexpr int kTileRows = 64;
constexpr int kTileK = 64;
constexpr int kTileCols = 64;

/// Below this many multiply-adds the blocked/parallel path is not worth its
/// setup; the original streaming i-k-j loop runs instead. The cutoff is a
/// pure function of the shapes, so the chosen path — and therefore the
/// floating-point order — never depends on the thread count.
constexpr int64_t kSerialMatmulFlops = 1 << 15;

/// Flat elementwise loops shorter than this run inline without the pool.
constexpr int64_t kElemGrain = 1 << 15;

/// B (k x m, row-major) repacked tile-major: tiles ordered by (k-tile,
/// j-tile), each tile stored row-major with its exact width as the stride.
/// Offset math: all k-tiles before `kt` hold kt*kTileK full-width rows, and
/// within k-tile `kt` (kb rows) the tiles before `jt` hold kb * jt*kTileCols
/// elements.
struct PackedB {
  std::vector<float> data;
  int k = 0;
  int m = 0;

  const float* Tile(int kt, int jt, int kb) const {
    return data.data() + static_cast<int64_t>(kt) * kTileK * m +
           static_cast<int64_t>(kb) * jt * kTileCols;
  }
};

PackedB PackB(const Matrix& b) {
  PackedB packed;
  packed.k = b.rows();
  packed.m = b.cols();
  packed.data.resize(static_cast<size_t>(b.size()));
  const int k = packed.k;
  const int m = packed.m;
  const int num_ktiles = (k + kTileK - 1) / kTileK;
  util::ParallelFor(0, num_ktiles, 1, [&](int64_t t0, int64_t t1) {
    for (int64_t kt = t0; kt < t1; ++kt) {
      const int kk0 = static_cast<int>(kt) * kTileK;
      const int kb = std::min(kTileK, k - kk0);
      for (int j0 = 0, jt = 0; j0 < m; j0 += kTileCols, ++jt) {
        const int jb = std::min(kTileCols, m - j0);
        float* dst = packed.data.data() +
                     static_cast<int64_t>(kt) * kTileK * m +
                     static_cast<int64_t>(kb) * jt * kTileCols;
        for (int r = 0; r < kb; ++r) {
          std::memcpy(dst + static_cast<int64_t>(r) * jb,
                      b.Row(kk0 + r) + j0, sizeof(float) * jb);
        }
      }
    }
  });
  return packed;
}

/// out[i0:i1) += A[i0:i1) * B using the packed tiles. Per output row the
/// accumulation order is (k-tile asc, j-tile asc, k asc) — independent of
/// the panel boundaries, so results are identical for any thread count.
void MatmulPanel(const Matrix& a, const PackedB& packed, Matrix& out,
                 int64_t i0, int64_t i1) {
  const int k = packed.k;
  const int m = packed.m;
  for (int kk0 = 0, kt = 0; kk0 < k; kk0 += kTileK, ++kt) {
    const int kb = std::min(kTileK, k - kk0);
    for (int j0 = 0, jt = 0; j0 < m; j0 += kTileCols, ++jt) {
      const int jb = std::min(kTileCols, m - j0);
      const float* tile = packed.Tile(kt, jt, kb);
      for (int64_t i = i0; i < i1; ++i) {
        const float* arow = a.Row(static_cast<int>(i)) + kk0;
        float* orow = out.Row(static_cast<int>(i)) + j0;
        for (int r = 0; r < kb; ++r) {
          const float aik = arow[r];
          if (aik == 0.0f) continue;
          const float* trow = tile + static_cast<int64_t>(r) * jb;
          for (int c = 0; c < jb; ++c) orow[c] += aik * trow[c];
        }
      }
    }
  }
}

/// The original streaming i-k-j loop, kept for small products.
void MatmulSerialSmall(const Matrix& a, const Matrix& b, Matrix& out) {
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  for (int i = 0; i < n; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (int kk = 0; kk < k; ++kk) {
      float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = b.Row(kk);
      for (int j = 0; j < m; ++j) orow[j] += aik * brow[j];
    }
  }
}

}  // namespace

Matrix::Matrix() = default;

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  CPGAN_CHECK(rows >= 0 && cols >= 0);
  data_.assign(size(), 0.0f);
  Register();
}

Matrix::Matrix(int rows, int cols, float fill) : rows_(rows), cols_(cols) {
  CPGAN_CHECK(rows >= 0 && cols >= 0);
  data_.assign(size(), fill);
  Register();
}

Matrix::Matrix(const Matrix& other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
  Register();
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  Unregister();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = other.data_;
  Register();
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  Unregister();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
  return *this;
}

Matrix::~Matrix() { Unregister(); }

void Matrix::Register() {
  util::MemoryTracker::Global().Allocate(data_.capacity() * sizeof(float));
}

void Matrix::Unregister() {
  util::MemoryTracker::Global().Release(data_.capacity() * sizeof(float));
}

void Matrix::Fill(float value) {
  float* p = data_.data();
  util::ParallelFor(0, size(), kElemGrain, [p, value](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) p[i] = value;
  });
}

void Matrix::FillNormal(util::Rng& rng, float stddev) {
  // Sequential: draws must consume the RNG stream in index order.
  for (float& v : data_) v = static_cast<float>(rng.Normal(0.0, stddev));
}

void Matrix::FillUniform(util::Rng& rng, float lo, float hi) {
  for (float& v : data_) v = static_cast<float>(rng.Uniform(lo, hi));
}

float Matrix::Norm() const {
  const float* p = data_.data();
  double acc =
      util::ParallelSum(0, size(), kElemGrain, [p](int64_t b, int64_t e) {
        double partial = 0.0;
        for (int64_t i = b; i < e; ++i) {
          partial += static_cast<double>(p[i]) * p[i];
        }
        return partial;
      });
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::Sum() const {
  const float* p = data_.data();
  double acc =
      util::ParallelSum(0, size(), kElemGrain, [p](int64_t b, int64_t e) {
        double partial = 0.0;
        for (int64_t i = b; i < e; ++i) partial += p[i];
        return partial;
      });
  return static_cast<float>(acc);
}

void Matrix::AddInPlace(const Matrix& other) {
  CPGAN_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  util::ParallelFor(0, size(), kElemGrain, [dst, src](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) dst[i] += src[i];
  });
}

void Matrix::Axpy(float alpha, const Matrix& other) {
  CPGAN_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  util::ParallelFor(0, size(), kElemGrain,
                    [dst, src, alpha](int64_t b, int64_t e) {
                      for (int64_t i = b; i < e; ++i) dst[i] += alpha * src[i];
                    });
}

void Matrix::Scale(float alpha) {
  float* p = data_.data();
  util::ParallelFor(0, size(), kElemGrain, [p, alpha](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) p[i] *= alpha;
  });
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Parallel over output row panels (= source column panels): each chunk
  // writes a disjoint band of `out`, reading the source in cache-friendly
  // kTileRows x kTileCols blocks.
  util::ParallelFor(0, cols_, kTileCols, [&](int64_t c0, int64_t c1) {
    for (int r0 = 0; r0 < rows_; r0 += kTileRows) {
      const int r1 = std::min(rows_, r0 + kTileRows);
      for (int r = r0; r < r1; ++r) {
        const float* src = Row(r);
        for (int64_t c = c0; c < c1; ++c) {
          out.Row(static_cast<int>(c))[r] = src[c];
        }
      }
    }
  });
  return out;
}

Matrix Matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MatmulAccum(a, b, out);
  return out;
}

void MatmulAccum(const Matrix& a, const Matrix& b, Matrix& out) {
  CPGAN_CHECK_EQ(a.cols(), b.rows());
  CPGAN_CHECK_EQ(out.rows(), a.rows());
  CPGAN_CHECK_EQ(out.cols(), b.cols());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const int64_t flops = static_cast<int64_t>(n) * k * m;
  if (flops < kSerialMatmulFlops) {
    MatmulSerialSmall(a, b, out);
    return;
  }
  // Spans only on the blocked path so small products stay overhead-free.
  CPGAN_TRACE_SPAN("tensor/matmul");
  const PackedB packed = PackB(b);
  util::ParallelFor(0, n, kTileRows, [&](int64_t i0, int64_t i1) {
    MatmulPanel(a, packed, out, i0, i1);
  });
}

Matrix MatmulTN(const Matrix& a, const Matrix& b) {
  CPGAN_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  if (n == 0 || k == 0 || m == 0) return out;
  const int64_t flops = static_cast<int64_t>(n) * k * m;
  if (flops < kSerialMatmulFlops) {
    // Original scatter loop: for each input row, rank-1 update of `out`.
    for (int i = 0; i < n; ++i) {
      const float* arow = a.Row(i);
      const float* brow = b.Row(i);
      for (int kk = 0; kk < k; ++kk) {
        float v = arow[kk];
        if (v == 0.0f) continue;
        float* orow = out.Row(kk);
        for (int j = 0; j < m; ++j) orow[j] += v * brow[j];
      }
    }
    return out;
  }
  // A^T is materialized (parallel blocked transpose) so the product reuses
  // the row-parallel blocked kernel; the transpose is O(nk) against the
  // O(nkm) product.
  CPGAN_TRACE_SPAN("tensor/matmul_tn");
  Matrix at = a.Transposed();
  MatmulAccum(at, b, out);
  return out;
}

Matrix MatmulNT(const Matrix& a, const Matrix& b) {
  CPGAN_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.rows();
  if (n == 0 || k == 0 || m == 0) return out;
  // Dot-product form: each output row depends only on one row of A and all
  // of B, so row panels parallelize with no write sharing; the per-element
  // double accumulator order is fixed by the k loop regardless of panels.
  CPGAN_TRACE_SPAN("tensor/matmul_nt");
  util::ParallelFor(0, n, kTileRows, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a.Row(static_cast<int>(i));
      float* orow = out.Row(static_cast<int>(i));
      for (int j = 0; j < m; ++j) {
        const float* brow = b.Row(j);
        double acc = 0.0;
        for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        orow[j] = static_cast<float>(acc);
      }
    }
  });
  return out;
}

}  // namespace cpgan::tensor
