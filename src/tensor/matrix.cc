#include "tensor/matrix.h"

#include <cmath>
#include <cstring>

#include "obs/trace.h"
#include "tensor/kernels.h"
#include "util/thread_pool.h"

namespace cpgan::tensor {

namespace {

/// Cache-blocking tile sizes for the dense kernels. Row panels of kTileRows
/// output rows are the unit of parallelism and kTileK is the fixed k-tile
/// depth; the j-tile width is NOT a constant — it comes from the kernel
/// autotuner (kernels::MatmulTileCols()). Per output element the
/// accumulation order is (k-tile ascending, k ascending) regardless of the
/// j width, so the autotuned width is a pure performance knob: any width
/// gives bitwise-identical results within a backend.
constexpr int kTileRows = 64;
constexpr int kTileK = 64;
/// Fixed blocking for Transposed() (data movement only; not autotuned).
constexpr int kTransposeTileCols = 64;

/// Below this many multiply-adds the blocked/parallel path is not worth its
/// setup; the original streaming i-k-j loop runs instead. The cutoff is a
/// pure function of the shapes, so the chosen path — and therefore the
/// floating-point order — never depends on the thread count. Small products
/// always use the scalar loops, so they are additionally identical across
/// kernel backends.
constexpr int64_t kSerialMatmulFlops = 1 << 15;

/// Flat elementwise loops shorter than this run inline without the pool.
constexpr int64_t kElemGrain = 1 << 15;

/// B (k x m, row-major) repacked tile-major into 64-byte-aligned storage:
/// tiles ordered by (k-tile, j-tile), each tile stored row-major with its
/// exact width as the stride. Offset math: all k-tiles before `kt` hold
/// kt*kTileK full-width rows, and within k-tile `kt` (kb rows) the tiles
/// before `jt` hold kb * jt*tile_cols elements.
struct PackedB {
  util::AlignedFloats data;
  int k = 0;
  int m = 0;
  int tile_cols = 0;

  const float* Tile(int kt, int jt, int kb) const {
    return data.data() + static_cast<int64_t>(kt) * kTileK * m +
           static_cast<int64_t>(kb) * jt * tile_cols;
  }
};

PackedB PackB(const Matrix& b, int tile_cols) {
  PackedB packed;
  packed.k = b.rows();
  packed.m = b.cols();
  packed.tile_cols = tile_cols;
  packed.data.resize(b.size());
  const int k = packed.k;
  const int m = packed.m;
  const int num_ktiles = (k + kTileK - 1) / kTileK;
  util::ParallelFor(0, num_ktiles, 1, [&](int64_t t0, int64_t t1) {
    for (int64_t kt = t0; kt < t1; ++kt) {
      const int kk0 = static_cast<int>(kt) * kTileK;
      const int kb = std::min(kTileK, k - kk0);
      for (int j0 = 0, jt = 0; j0 < m; j0 += tile_cols, ++jt) {
        const int jb = std::min(tile_cols, m - j0);
        float* dst = packed.data.data() +
                     static_cast<int64_t>(kt) * kTileK * m +
                     static_cast<int64_t>(kb) * jt * tile_cols;
        for (int r = 0; r < kb; ++r) {
          std::memcpy(dst + static_cast<int64_t>(r) * jb,
                      b.Row(kk0 + r) + j0, sizeof(float) * jb);
        }
      }
    }
  });
  return packed;
}

/// out[i0:i1) += A[i0:i1) * B via the active backend's macro-kernel over the
/// packed tiles. Per output row the accumulation order is (k-tile asc,
/// j-tile asc, k asc) — independent of the panel boundaries and of the tile
/// width, so results are identical for any thread count.
void MatmulPanel(const Matrix& a, const PackedB& packed, Matrix& out,
                 const kernels::KernelOps& ops, int64_t i0, int64_t i1) {
  const int k = packed.k;
  const int m = packed.m;
  const int tile_cols = packed.tile_cols;
  for (int kk0 = 0, kt = 0; kk0 < k; kk0 += kTileK, ++kt) {
    const int kb = std::min(kTileK, k - kk0);
    for (int j0 = 0, jt = 0; j0 < m; j0 += tile_cols, ++jt) {
      const int jb = std::min(tile_cols, m - j0);
      const float* tile = packed.Tile(kt, jt, kb);
      for (int64_t i = i0; i < i1; ++i) {
        ops.matmul_tile(a.Row(static_cast<int>(i)) + kk0, tile,
                        out.Row(static_cast<int>(i)) + j0, kb, jb);
      }
    }
  }
}

/// The original streaming i-k-j loop, kept for small products. Always
/// scalar (see kSerialMatmulFlops).
void MatmulSerialSmall(const Matrix& a, const Matrix& b, Matrix& out) {
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  for (int i = 0; i < n; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (int kk = 0; kk < k; ++kk) {
      float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = b.Row(kk);
      for (int j = 0; j < m; ++j) orow[j] += aik * brow[j];
    }
  }
}

}  // namespace

Matrix::Matrix() = default;

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  CPGAN_CHECK(rows >= 0 && cols >= 0);
  data_.assign(size(), 0.0f);
}

Matrix::Matrix(int rows, int cols, float fill) : rows_(rows), cols_(cols) {
  CPGAN_CHECK(rows >= 0 && cols >= 0);
  data_.assign(size(), fill);
}

Matrix::Matrix(const Matrix& other) = default;

Matrix& Matrix::operator=(const Matrix& other) = default;

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

Matrix::~Matrix() = default;

void Matrix::Fill(float value) {
  float* p = data_.data();
  util::ParallelFor(0, size(), kElemGrain, [p, value](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) p[i] = value;
  });
}

void Matrix::FillNormal(util::Rng& rng, float stddev) {
  // Sequential: draws must consume the RNG stream in index order.
  for (float& v : data_) v = static_cast<float>(rng.Normal(0.0, stddev));
}

void Matrix::FillUniform(util::Rng& rng, float lo, float hi) {
  for (float& v : data_) v = static_cast<float>(rng.Uniform(lo, hi));
}

float Matrix::Norm() const {
  const float* p = data_.data();
  const kernels::KernelOps& ops = kernels::Active();
  double acc =
      util::ParallelSum(0, size(), kElemGrain, [p, &ops](int64_t b, int64_t e) {
        return ops.sumsq(p + b, e - b);
      });
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::Sum() const {
  const float* p = data_.data();
  const kernels::KernelOps& ops = kernels::Active();
  double acc =
      util::ParallelSum(0, size(), kElemGrain, [p, &ops](int64_t b, int64_t e) {
        return ops.sum(p + b, e - b);
      });
  return static_cast<float>(acc);
}

void Matrix::AddInPlace(const Matrix& other) {
  CPGAN_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  const kernels::KernelOps& ops = kernels::Active();
  util::ParallelFor(0, size(), kElemGrain,
                    [dst, src, &ops](int64_t b, int64_t e) {
                      ops.add(src + b, dst + b, e - b);
                    });
}

void Matrix::Axpy(float alpha, const Matrix& other) {
  CPGAN_CHECK(SameShape(other));
  float* dst = data_.data();
  const float* src = other.data_.data();
  const kernels::KernelOps& ops = kernels::Active();
  util::ParallelFor(0, size(), kElemGrain,
                    [dst, src, alpha, &ops](int64_t b, int64_t e) {
                      ops.axpy(alpha, src + b, dst + b, e - b);
                    });
}

void Matrix::Scale(float alpha) {
  float* p = data_.data();
  const kernels::KernelOps& ops = kernels::Active();
  util::ParallelFor(0, size(), kElemGrain,
                    [p, alpha, &ops](int64_t b, int64_t e) {
                      ops.scale(alpha, p + b, e - b);
                    });
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Parallel over output row panels (= source column panels): each chunk
  // writes a disjoint band of `out`, reading the source in cache-friendly
  // kTileRows x kTransposeTileCols blocks.
  util::ParallelFor(0, cols_, kTransposeTileCols, [&](int64_t c0, int64_t c1) {
    for (int r0 = 0; r0 < rows_; r0 += kTileRows) {
      const int r1 = std::min(rows_, r0 + kTileRows);
      for (int r = r0; r < r1; ++r) {
        const float* src = Row(r);
        for (int64_t c = c0; c < c1; ++c) {
          out.Row(static_cast<int>(c))[r] = src[c];
        }
      }
    }
  });
  return out;
}

Matrix Matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MatmulAccum(a, b, out);
  return out;
}

void MatmulAccum(const Matrix& a, const Matrix& b, Matrix& out) {
  CPGAN_CHECK_EQ(a.cols(), b.rows());
  CPGAN_CHECK_EQ(out.rows(), a.rows());
  CPGAN_CHECK_EQ(out.cols(), b.cols());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const int64_t flops = static_cast<int64_t>(n) * k * m;
  if (flops < kSerialMatmulFlops) {
    MatmulSerialSmall(a, b, out);
    return;
  }
  // Spans only on the blocked path so small products stay overhead-free.
  CPGAN_TRACE_SPAN("tensor/matmul");
  const kernels::KernelOps& ops = kernels::Active();
  const PackedB packed = PackB(b, kernels::MatmulTileCols());
  util::ParallelFor(0, n, kTileRows, [&](int64_t i0, int64_t i1) {
    MatmulPanel(a, packed, out, ops, i0, i1);
  });
}

Matrix MatmulTN(const Matrix& a, const Matrix& b) {
  CPGAN_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  if (n == 0 || k == 0 || m == 0) return out;
  const int64_t flops = static_cast<int64_t>(n) * k * m;
  if (flops < kSerialMatmulFlops) {
    // Original scatter loop: for each input row, rank-1 update of `out`.
    for (int i = 0; i < n; ++i) {
      const float* arow = a.Row(i);
      const float* brow = b.Row(i);
      for (int kk = 0; kk < k; ++kk) {
        float v = arow[kk];
        if (v == 0.0f) continue;
        float* orow = out.Row(kk);
        for (int j = 0; j < m; ++j) orow[j] += v * brow[j];
      }
    }
    return out;
  }
  // A^T is materialized (parallel blocked transpose) so the product reuses
  // the row-parallel blocked kernel; the transpose is O(nk) against the
  // O(nkm) product.
  CPGAN_TRACE_SPAN("tensor/matmul_tn");
  Matrix at = a.Transposed();
  MatmulAccum(at, b, out);
  return out;
}

Matrix MatmulNT(const Matrix& a, const Matrix& b) {
  CPGAN_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.rows();
  if (n == 0 || k == 0 || m == 0) return out;
  // Dot-product form: each output row depends only on one row of A and all
  // of B, so row panels parallelize with no write sharing; the per-element
  // double accumulator order is fixed by the backend's dot kernel
  // regardless of panels.
  CPGAN_TRACE_SPAN("tensor/matmul_nt");
  const kernels::KernelOps& ops = kernels::Active();
  util::ParallelFor(0, n, kTileRows, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a.Row(static_cast<int>(i));
      float* orow = out.Row(static_cast<int>(i));
      for (int j = 0; j < m; ++j) {
        orow[j] = static_cast<float>(ops.dot(arow, b.Row(j), k));
      }
    }
  });
  return out;
}

}  // namespace cpgan::tensor
