#ifndef CPGAN_TENSOR_KERNELS_BACKENDS_H_
#define CPGAN_TENSOR_KERNELS_BACKENDS_H_

#include "tensor/kernels.h"

namespace cpgan::tensor::kernels::internal {

/// \file
/// Private seam between the dispatcher (kernels.cc) and the backend
/// translation units. Each backend TU exports exactly one table getter;
/// kernels.cc is the only includer besides the backends themselves.
///
/// The avx2 TU is compiled with -mavx2 -mfma (see src/CMakeLists.txt), so
/// nothing outside the KernelOps function pointers may reference its
/// symbols — a direct call could inline AVX2 code into a TU that runs on
/// pre-AVX2 hardware before the CPUID check.

/// The scalar table (always present; the PR-2 reference loops).
const KernelOps& ScalarOps();

/// The avx2 table, or nullptr when not built for x86-64. Runtime CPUID
/// gating happens in kernels.cc, not here.
const KernelOps* Avx2OpsIfBuilt();

/// The neon stub table, or nullptr when not built for AArch64.
const KernelOps* NeonOpsIfBuilt();

}  // namespace cpgan::tensor::kernels::internal

#endif  // CPGAN_TENSOR_KERNELS_BACKENDS_H_
