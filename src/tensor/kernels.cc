#include "tensor/kernels.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "tensor/kernels_backends.h"
#include "util/aligned.h"
#include "util/cpuid.h"
#include "util/logging.h"

namespace cpgan::tensor::kernels {

namespace {

/// Known backend names, for distinguishing "unknown" from "unavailable
/// here" in error messages.
constexpr const char* kKnownNames[] = {"scalar", "avx2", "neon"};

std::mutex g_select_mutex;
std::atomic<const KernelOps*> g_active{nullptr};

std::mutex g_tile_mutex;
std::atomic<int> g_tile_cols{0};

const KernelOps* FindAvailable(std::string_view name) {
  for (const KernelOps* ops : AvailableBackends()) {
    if (name == ops->name) return ops;
  }
  return nullptr;
}

bool IsKnownName(std::string_view name) {
  for (const char* known : kKnownNames) {
    if (name == known) return true;
  }
  return false;
}

const KernelOps* AutoDetect() {
  if (const KernelOps* avx2 = Avx2()) return avx2;
  if (const KernelOps* neon = Neon()) return neon;
  return &Scalar();
}

/// Mirrors the selection into the obs gauges: kernels.backend.<name> is 1
/// for the active backend and 0 for every other available one, and
/// kernels.cpu_simd_avx2 records the raw CPUID answer (so a forced-scalar
/// run is distinguishable from a pre-AVX2 machine in a metrics snapshot).
void PublishSelection(const KernelOps& active) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const KernelOps* ops : AvailableBackends()) {
    registry.FindGauge(std::string("kernels.backend.") + ops->name)
        ->Set(ops == &active ? 1.0 : 0.0);
  }
  registry.FindGauge("kernels.cpu_simd_avx2")
      ->Set(util::CpuSupportsAvx2() ? 1.0 : 0.0);
}

/// Env var > CPUID. An env value naming an unknown or locally unavailable
/// backend logs a warning and falls back to auto-detection — startup must
/// not fail because a config was written on different hardware.
const KernelOps* SelectFromEnvironment() {
  const char* env = std::getenv("CPGAN_KERNEL_BACKEND");
  if (env != nullptr && *env != '\0') {
    if (const KernelOps* named = FindAvailable(env)) return named;
    CPGAN_LOG(Warning) << "CPGAN_KERNEL_BACKEND='" << env << "' is "
                       << (IsKnownName(env) ? "not available on this machine"
                                            : "not a known backend")
                       << " (available: " << AvailableBackendNames()
                       << "); auto-detecting";
  }
  return AutoDetect();
}

/// Times `ops.matmul_tile` at width `jb` over a synthetic hot tile and
/// returns nanoseconds per multiply-add (lower is better). Serial on the
/// calling thread; the sweep never touches the thread pool.
double TimeTileWidth(const KernelOps& ops, int jb) {
  constexpr int kTileK = 64;  // matches the fixed k-tile in matrix.cc
  util::AlignedFloats a, tile, out;
  a.assign(kTileK, 0.5f);
  tile.assign(static_cast<int64_t>(kTileK) * jb, 0.25f);
  out.assign(jb, 0.0f);
  const int64_t flops_per_call = static_cast<int64_t>(kTileK) * jb;
  const int calls = static_cast<int>((int64_t{1} << 22) / flops_per_call) + 1;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < calls; ++i) {
      ops.matmul_tile(a.data(), tile.data(), out.data(), kTileK, jb);
    }
    const auto end = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(end - start).count() /
        (static_cast<double>(calls) * flops_per_call);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

/// Sweeps AutotuneCandidates() and returns the fastest width. The choice
/// only moves wall-clock: per-element accumulation order is fixed by the k
/// loop, so every candidate yields bitwise-identical products (pinned by
/// tests/numeric/kernel_backend_test.cc).
int AutotuneTileCols(const KernelOps& ops) {
  int best_width = AutotuneCandidates().front();
  double best_ns = 0.0;
  for (int width : AutotuneCandidates()) {
    const double ns = TimeTileWidth(ops, width);
    if (best_ns == 0.0 || ns < best_ns) {
      best_ns = ns;
      best_width = width;
    }
  }
  CPGAN_LOG(Info) << "kernel autotuner: matmul tile width " << best_width
                  << " (" << best_ns << " ns/flop, backend " << ops.name
                  << ")";
  return best_width;
}

void PublishTileCols(int cols) {
  CPGAN_GAUGE_SET("kernels.matmul_tile_cols", cols);
}

}  // namespace

const KernelOps& Scalar() { return internal::ScalarOps(); }

const KernelOps* Avx2() {
  const KernelOps* ops = internal::Avx2OpsIfBuilt();
  if (ops == nullptr || !util::CpuSupportsAvx2()) return nullptr;
  return ops;
}

const KernelOps* Neon() {
  const KernelOps* ops = internal::NeonOpsIfBuilt();
  if (ops == nullptr || !util::CpuSupportsNeon()) return nullptr;
  return ops;
}

std::vector<const KernelOps*> AvailableBackends() {
  std::vector<const KernelOps*> backends = {&Scalar()};
  if (const KernelOps* avx2 = Avx2()) backends.push_back(avx2);
  if (const KernelOps* neon = Neon()) backends.push_back(neon);
  return backends;
}

const std::vector<std::string>& OpNames() {
  static const std::vector<std::string> names = {
      "matmul_tile", "axpy", "add", "scale", "dot", "sum", "sumsq",
  };
  return names;
}

std::string AvailableBackendNames() {
  std::string joined;
  for (const KernelOps* ops : AvailableBackends()) {
    if (!joined.empty()) joined += ", ";
    joined += ops->name;
  }
  return joined;
}

const KernelOps& Active() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops != nullptr) return *ops;
  std::lock_guard<std::mutex> lock(g_select_mutex);
  ops = g_active.load(std::memory_order_relaxed);
  if (ops == nullptr) {
    ops = SelectFromEnvironment();
    g_active.store(ops, std::memory_order_release);
    PublishSelection(*ops);
    CPGAN_LOG(Info) << "kernel backend: " << ops->name
                    << " (cpu simd: " << util::CpuSimdSummary()
                    << "; available: " << AvailableBackendNames() << ")";
  }
  return *ops;
}

bool SetBackend(std::string_view name, std::string* error) {
  const KernelOps* ops = FindAvailable(name);
  if (ops == nullptr) {
    if (error != nullptr) {
      *error = std::string(name) +
               (IsKnownName(name) ? " is not available on this machine"
                                  : " is not a known backend") +
               " (available: " + AvailableBackendNames() + ")";
    }
    return false;
  }
  std::lock_guard<std::mutex> lock(g_select_mutex);
  g_active.store(ops, std::memory_order_release);
  PublishSelection(*ops);
  return true;
}

void ReselectFromEnvironment() {
  std::lock_guard<std::mutex> lock(g_select_mutex);
  const KernelOps* ops = SelectFromEnvironment();
  g_active.store(ops, std::memory_order_release);
  PublishSelection(*ops);
}

const std::vector<int>& AutotuneCandidates() {
  static const std::vector<int> candidates = {32, 64, 128, 256};
  return candidates;
}

int MatmulTileCols() {
  int cols = g_tile_cols.load(std::memory_order_acquire);
  if (cols > 0) return cols;
  // Resolve the backend before taking the tile lock (Active() takes the
  // selection lock; holding both in a fixed order avoids any deadlock).
  const KernelOps& ops = Active();
  std::lock_guard<std::mutex> lock(g_tile_mutex);
  cols = g_tile_cols.load(std::memory_order_relaxed);
  if (cols > 0) return cols;
  const char* env = std::getenv("CPGAN_KERNEL_TILE_COLS");
  if (env != nullptr && *env != '\0') {
    const int parsed = std::atoi(env);
    if (parsed > 0 && parsed % 8 == 0) {
      cols = parsed;
    } else {
      CPGAN_LOG(Warning) << "CPGAN_KERNEL_TILE_COLS='" << env
                         << "' is not a positive multiple of 8; autotuning";
    }
  }
  if (cols == 0) cols = AutotuneTileCols(ops);
  g_tile_cols.store(cols, std::memory_order_release);
  PublishTileCols(cols);
  return cols;
}

void SetMatmulTileCols(int cols) {
  std::lock_guard<std::mutex> lock(g_tile_mutex);
  if (cols <= 0) {
    g_tile_cols.store(0, std::memory_order_release);
    return;
  }
  if (cols % 8 != 0) {
    CPGAN_LOG(Warning) << "SetMatmulTileCols(" << cols
                       << ") ignored: width must be a multiple of 8";
    return;
  }
  g_tile_cols.store(cols, std::memory_order_release);
  PublishTileCols(cols);
}

}  // namespace cpgan::tensor::kernels
