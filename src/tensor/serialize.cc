#include "tensor/serialize.h"

#include <cstdint>
#include <cstdio>

namespace cpgan::tensor {
namespace {

constexpr uint32_t kMagic = 0x4350474Eu;  // "CPGN"

}  // namespace

bool SaveParameters(const std::vector<Tensor>& params,
                    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = true;
  uint32_t magic = kMagic;
  uint32_t count = static_cast<uint32_t>(params.size());
  ok = ok && std::fwrite(&magic, sizeof(magic), 1, f) == 1;
  ok = ok && std::fwrite(&count, sizeof(count), 1, f) == 1;
  for (const Tensor& p : params) {
    int32_t rows = p.rows();
    int32_t cols = p.cols();
    ok = ok && std::fwrite(&rows, sizeof(rows), 1, f) == 1;
    ok = ok && std::fwrite(&cols, sizeof(cols), 1, f) == 1;
    size_t n = static_cast<size_t>(p.value().size());
    ok = ok && (n == 0 || std::fwrite(p.value().data(), sizeof(float), n, f) == n);
    if (!ok) break;
  }
  std::fclose(f);
  return ok;
}

bool LoadParameters(std::vector<Tensor>& params, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  bool ok = true;
  uint32_t magic = 0;
  uint32_t count = 0;
  ok = ok && std::fread(&magic, sizeof(magic), 1, f) == 1 && magic == kMagic;
  ok = ok && std::fread(&count, sizeof(count), 1, f) == 1 &&
       count == params.size();
  for (size_t i = 0; ok && i < params.size(); ++i) {
    int32_t rows = 0;
    int32_t cols = 0;
    ok = ok && std::fread(&rows, sizeof(rows), 1, f) == 1;
    ok = ok && std::fread(&cols, sizeof(cols), 1, f) == 1;
    ok = ok && rows == params[i].rows() && cols == params[i].cols();
    if (ok) {
      size_t n = static_cast<size_t>(params[i].value().size());
      ok = n == 0 || std::fread(params[i].mutable_value().data(), sizeof(float),
                                n, f) == n;
    }
  }
  std::fclose(f);
  return ok;
}

}  // namespace cpgan::tensor
