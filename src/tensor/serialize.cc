#include "tensor/serialize.h"

#include <cstdint>
#include <cstdio>

#include "util/crc32.h"
#include "util/fileio.h"

namespace cpgan::tensor {
namespace {

constexpr uint32_t kMagicV1 = 0x4350474Eu;  // "CPGN" — legacy, no checksums
constexpr uint32_t kMagicV2 = 0x32475043u;  // "CPG2"
constexpr uint32_t kVersion = 2;

void SetError(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
}

/// Writes `n` bytes, feeding them into `crc` as well.
bool WriteChecked(std::FILE* f, const void* data, size_t n,
                  util::Crc32& crc) {
  crc.Update(data, n);
  return std::fwrite(data, 1, n, f) == n;
}

/// Reads `n` bytes, feeding them into `crc` as well.
bool ReadChecked(std::FILE* f, void* data, size_t n, util::Crc32& crc) {
  if (std::fread(data, 1, n, f) != n) return false;
  crc.Update(data, n);
  return true;
}

/// Bytes left between the current position and EOF, or -1 if the stream is
/// not seekable. Guards shape fields against corrupt headers that would
/// otherwise trigger multi-gigabyte allocations before the payload read
/// fails.
int64_t RemainingBytes(std::FILE* f) {
  long pos = std::ftell(f);
  if (pos < 0) return -1;
  if (std::fseek(f, 0, SEEK_END) != 0) return -1;
  long end = std::ftell(f);
  if (std::fseek(f, pos, SEEK_SET) != 0) return -1;
  return end >= pos ? end - pos : -1;
}

bool PlausiblePayload(std::FILE* f, int32_t rows, int32_t cols) {
  int64_t bytes = static_cast<int64_t>(rows) * cols * sizeof(float);
  int64_t remaining = RemainingBytes(f);
  return remaining < 0 || bytes <= remaining;
}

/// Legacy v1 body (magic already consumed): count, then
/// (rows, cols, floats) per tensor. No checksums.
bool ReadV1Body(std::FILE* f, std::vector<Matrix>* out, std::string* error) {
  uint32_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1) {
    SetError(error, "truncated v1 header");
    return false;
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int32_t rows = 0;
    int32_t cols = 0;
    if (std::fread(&rows, sizeof(rows), 1, f) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f) != 1 || rows < 0 || cols < 0 ||
        !PlausiblePayload(f, rows, cols)) {
      SetError(error, "truncated or invalid v1 tensor header");
      return false;
    }
    Matrix m(rows, cols);
    size_t n = static_cast<size_t>(m.size());
    if (n > 0 && std::fread(m.data(), sizeof(float), n, f) != n) {
      SetError(error, "truncated v1 tensor payload");
      return false;
    }
    out->push_back(std::move(m));
  }
  return true;
}

}  // namespace

bool WriteTensorBlock(std::FILE* f, const std::vector<Tensor>& params) {
  util::Crc32 file_crc;
  uint32_t magic = kMagicV2;
  uint32_t version = kVersion;
  uint32_t count = static_cast<uint32_t>(params.size());
  bool ok = WriteChecked(f, &magic, sizeof(magic), file_crc) &&
            WriteChecked(f, &version, sizeof(version), file_crc) &&
            WriteChecked(f, &count, sizeof(count), file_crc);
  for (const Tensor& p : params) {
    if (!ok) break;
    int32_t rows = p.rows();
    int32_t cols = p.cols();
    size_t n = static_cast<size_t>(p.value().size());
    uint32_t payload_crc =
        util::Crc32Of(p.value().data(), n * sizeof(float));
    ok = WriteChecked(f, &rows, sizeof(rows), file_crc) &&
         WriteChecked(f, &cols, sizeof(cols), file_crc) &&
         WriteChecked(f, &payload_crc, sizeof(payload_crc), file_crc) &&
         (n == 0 ||
          WriteChecked(f, p.value().data(), n * sizeof(float), file_crc));
  }
  uint32_t digest = file_crc.Digest();
  ok = ok && std::fwrite(&digest, sizeof(digest), 1, f) == 1;
  return ok;
}

bool ReadTensorBlock(std::FILE* f, std::vector<Matrix>* out,
                     std::string* error) {
  util::Crc32 file_crc;
  uint32_t magic = 0;
  if (!ReadChecked(f, &magic, sizeof(magic), file_crc)) {
    SetError(error, "file too short for magic");
    return false;
  }
  if (magic == kMagicV1) return ReadV1Body(f, out, error);
  if (magic != kMagicV2) {
    SetError(error, "bad magic (not a CPGAN parameter file)");
    return false;
  }
  uint32_t version = 0;
  uint32_t count = 0;
  if (!ReadChecked(f, &version, sizeof(version), file_crc) ||
      !ReadChecked(f, &count, sizeof(count), file_crc)) {
    SetError(error, "truncated header");
    return false;
  }
  if (version != kVersion) {
    SetError(error, "unsupported format version");
    return false;
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int32_t rows = 0;
    int32_t cols = 0;
    uint32_t payload_crc = 0;
    if (!ReadChecked(f, &rows, sizeof(rows), file_crc) ||
        !ReadChecked(f, &cols, sizeof(cols), file_crc) ||
        !ReadChecked(f, &payload_crc, sizeof(payload_crc), file_crc) ||
        rows < 0 || cols < 0 || !PlausiblePayload(f, rows, cols)) {
      SetError(error, "truncated or invalid tensor header");
      return false;
    }
    Matrix m(rows, cols);
    size_t n = static_cast<size_t>(m.size());
    if (n > 0 && !ReadChecked(f, m.data(), n * sizeof(float), file_crc)) {
      SetError(error, "truncated tensor payload");
      return false;
    }
    if (util::Crc32Of(m.data(), n * sizeof(float)) != payload_crc) {
      SetError(error, "tensor payload checksum mismatch (corrupt file)");
      return false;
    }
    out->push_back(std::move(m));
  }
  uint32_t expected = file_crc.Digest();
  uint32_t stored = 0;
  if (std::fread(&stored, sizeof(stored), 1, f) != 1) {
    SetError(error, "missing file checksum (truncated file)");
    return false;
  }
  if (stored != expected) {
    SetError(error, "file checksum mismatch (corrupt file)");
    return false;
  }
  return true;
}

bool SaveParameters(const std::vector<Tensor>& params,
                    const std::string& path) {
  return util::AtomicWriteFile(
      path, [&params](std::FILE* f) { return WriteTensorBlock(f, params); });
}

bool LoadParameters(std::vector<Tensor>& params, const std::string& path,
                    std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetError(error, "cannot open file");
    return false;
  }
  std::vector<Matrix> loaded;
  bool ok = ReadTensorBlock(f, &loaded, error);
  std::fclose(f);
  if (!ok) return false;

  // Validate everything against the destination before committing anything.
  if (loaded.size() != params.size()) {
    SetError(error, "tensor count mismatch");
    return false;
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!loaded[i].SameShape(params[i].value())) {
      SetError(error, "tensor shape mismatch");
      return false;
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = std::move(loaded[i]);
  }
  return true;
}

}  // namespace cpgan::tensor
