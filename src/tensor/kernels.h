#ifndef CPGAN_TENSOR_KERNELS_H_
#define CPGAN_TENSOR_KERNELS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cpgan::tensor::kernels {

/// \file
/// Kernel backend layer: one definition per hot primitive, multiple
/// implementations selected at runtime (docs/INTERNALS.md, "Kernel
/// backends"). Structured after the functor-per-op idiom of TF's
/// softplus_op.h / Dali's device-parameterized tensor functions: the blocked
/// matmul, SpMM, elementwise and reduction kernels in matrix.cc / sparse.cc
/// call through a KernelOps function-pointer table instead of open-coded
/// loops, and the table is chosen once per process.
///
/// Backends:
///   scalar — the PR-2 loops, verbatim. Always available; the reference.
///   avx2   — 8-wide FMA micro-kernels (x86-64 with AVX2+FMA only; the TU is
///            compiled with -mavx2 -mfma and its code is reached exclusively
///            through this table after a CPUID check).
///   neon   — AArch64 stub: registered on AArch64 builds, currently
///            delegating to the scalar loops until real NEON micro-kernels
///            land. Keeps the dispatch surface identical across ISAs.
///
/// Selection order (first match wins), performed once on first Active()
/// call: CPGAN_KERNEL_BACKEND env var (or the CLI's --kernel-backend, which
/// calls SetBackend before any kernel runs) > CPUID detection (avx2 when
/// supported, else neon, else scalar). An env/flag naming an unavailable
/// backend logs a warning and falls back to auto-detection; "scalar" always
/// honors the request, even on AVX2 hardware.
///
/// Determinism contract (docs/INTERNALS.md, "Determinism"): results are
/// bitwise identical across thread counts *within* a backend — the PR-2
/// guarantee, now stated per-backend. Different backends may round
/// differently (FMA contraction, vector-lane summation); every backend is
/// validated against the double-accumulator references at tile-boundary
/// shapes by tests/numeric/ (ctest -L kernels), and the coverage registry in
/// src/testing/kernel_coverage.h fails that suite when a compiled backend
/// ships an op without a differential check.

/// One backend: a name plus an implementation of every kernel primitive.
/// All pointers are non-null in a registered backend.
struct KernelOps {
  const char* name;

  /// Matmul macro-kernel: out[0..jb) += sum_{r<kb} a[r] * tile[r*jb + 0..jb)
  /// for one output row against one packed B tile (tile rows are stored
  /// contiguously with stride jb). Per output element the accumulation runs
  /// in ascending r, so the result does not depend on the j-tile width —
  /// which is what lets the autotuner pick the width freely (see
  /// MatmulTileCols) without perturbing a single bit.
  void (*matmul_tile)(const float* a, const float* tile, float* out, int kb,
                      int jb);

  /// y[0..n) += alpha * x[0..n). The SpMM row kernel: one call per sparse
  /// entry, streaming the dense row.
  void (*axpy)(float alpha, const float* x, float* y, int64_t n);

  /// y[0..n) += x[0..n).
  void (*add)(const float* x, float* y, int64_t n);

  /// y[0..n) *= alpha.
  void (*scale)(float alpha, float* y, int64_t n);

  /// sum_{i<n} a[i] * b[i], accumulated in double (MatmulNT inner loop).
  double (*dot)(const float* a, const float* b, int64_t n);

  /// sum_{i<n} x[i], accumulated in double.
  double (*sum)(const float* x, int64_t n);

  /// sum_{i<n} x[i]^2, accumulated in double (Frobenius norm).
  double (*sumsq)(const float* x, int64_t n);
};

/// The scalar backend (always available).
const KernelOps& Scalar();

/// The avx2 backend, or nullptr when the build target or the running CPU
/// lacks AVX2+FMA.
const KernelOps* Avx2();

/// The neon stub backend, or nullptr on non-AArch64 builds.
const KernelOps* Neon();

/// Every backend usable on this machine, scalar first.
std::vector<const KernelOps*> AvailableBackends();

/// Canonical op-name list, in KernelOps declaration order. The differential
/// coverage registry requires a check for every (backend, op) pair.
const std::vector<std::string>& OpNames();

/// The active backend. First call performs the env/CPUID selection above,
/// publishes the choice to the obs gauges (kernels.backend.<name> = 1) and
/// logs it; later calls are a single acquire load.
const KernelOps& Active();

/// Forces the active backend by name ("scalar", "avx2", "neon"). Returns
/// false and leaves the selection unchanged when the name is unknown or the
/// backend is unavailable on this machine; `error` (optional) receives the
/// reason. Not thread-safe against concurrently running kernels — call it
/// from the control thread between parallel regions (startup, CLI parsing,
/// tests).
bool SetBackend(std::string_view name, std::string* error = nullptr);

/// Re-runs the selection (env var, then CPUID) as if the process had just
/// started. For tests that set CPGAN_KERNEL_BACKEND after startup.
void ReselectFromEnvironment();

/// Names of every registered backend (available on this machine), for help
/// text and error messages.
std::string AvailableBackendNames();

// ---------------------------------------------------------------------------
// Matmul tile autotuner.
// ---------------------------------------------------------------------------

/// The j-tile width (packed B tile columns) used by the blocked matmul.
/// Resolution order, once per process: CPGAN_KERNEL_TILE_COLS env var if it
/// parses to a positive multiple of 8, else a timing sweep of
/// AutotuneCandidates() over the active backend's matmul_tile micro-kernel
/// (cached; the winning width goes to the kernels.matmul_tile_cols gauge).
/// The width is a pure performance knob: per-element accumulation order is
/// fixed by the k loop, so any width gives bitwise-identical products —
/// pinned by tests/numeric/kernel_backend_test.cc.
int MatmulTileCols();

/// Overrides the tile width (tests, benchmarks). `cols` must be a positive
/// multiple of 8; 0 clears the cache so the next MatmulTileCols() re-tunes.
void SetMatmulTileCols(int cols);

/// Candidate widths the autotuner sweeps.
const std::vector<int>& AutotuneCandidates();

}  // namespace cpgan::tensor::kernels

#endif  // CPGAN_TENSOR_KERNELS_H_
