#ifndef CPGAN_TENSOR_SERIALIZE_H_
#define CPGAN_TENSOR_SERIALIZE_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cpgan::tensor {

/// Writes the parameter values to a simple binary container:
/// magic, count, then (rows, cols, row-major floats) per tensor.
/// Returns false on IO failure.
bool SaveParameters(const std::vector<Tensor>& params,
                    const std::string& path);

/// Loads parameter values saved by SaveParameters into `params`. Shapes must
/// match exactly. Returns false on IO failure or shape mismatch.
bool LoadParameters(std::vector<Tensor>& params, const std::string& path);

}  // namespace cpgan::tensor

#endif  // CPGAN_TENSOR_SERIALIZE_H_
