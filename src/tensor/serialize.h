#ifndef CPGAN_TENSOR_SERIALIZE_H_
#define CPGAN_TENSOR_SERIALIZE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cpgan::tensor {

/// \file
/// Parameter serialization.
///
/// v2 container (current write format), all fields little-endian:
///
///   u32 magic   "CPG2" (0x32475043)
///   u32 version 2
///   u32 count   number of tensors
///   per tensor:
///     i32 rows
///     i32 cols
///     u32 crc32  of the rows*cols row-major float payload
///     f32 data[rows*cols]
///   u32 file_crc32  over every preceding byte (header + all tensors)
///
/// The trailing file checksum turns truncation and header corruption into
/// load failures; the per-tensor checksums localize payload bit rot. Writes
/// are atomic (tmp + fsync + rename) and loads are transactional: the file is
/// fully parsed and validated into temporaries before any destination tensor
/// is touched, so a failed load never leaves `params` half-overwritten.
///
/// The legacy v1 container (magic "CPGN", no version, no checksums) remains
/// readable for one release; see LoadParameters.

/// Writes the parameter values to `path` in the v2 container atomically.
/// Returns false on IO failure.
bool SaveParameters(const std::vector<Tensor>& params,
                    const std::string& path);

/// Loads parameter values saved by SaveParameters into `params`. Accepts v2
/// (checksummed) and legacy v1 files. Shapes and count must match exactly.
/// Returns false on IO failure, checksum mismatch, version mismatch, or
/// shape mismatch — and in every failure case leaves `params` untouched.
/// When `error` is non-null it receives a human-readable reason on failure.
bool LoadParameters(std::vector<Tensor>& params, const std::string& path,
                    std::string* error = nullptr);

/// Lower-level building blocks so other containers (e.g. training
/// checkpoints) can embed the same validated tensor block after their own
/// header. `WriteTensorBlock` emits the v2 container byte-for-byte into an
/// open stream; `ReadTensorBlock` parses and checksum-validates one into
/// `out` without touching any model state.
bool WriteTensorBlock(std::FILE* f, const std::vector<Tensor>& params);
bool ReadTensorBlock(std::FILE* f, std::vector<Matrix>* out,
                     std::string* error);

}  // namespace cpgan::tensor

#endif  // CPGAN_TENSOR_SERIALIZE_H_
