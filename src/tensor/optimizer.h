#ifndef CPGAN_TENSOR_OPTIMIZER_H_
#define CPGAN_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace cpgan::tensor {

/// Base class for gradient-descent optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params, float lr);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently accumulated on the
  /// parameters, then leaves the gradients untouched (call ZeroGrad next).
  virtual void Step() = 0;

  /// Clears the gradient accumulators of every parameter.
  void ZeroGrad();

  /// Multiplies the learning rate by `factor` (used for the paper's
  /// decay-0.3-per-400-epochs schedule).
  void DecayLearningRate(float factor) { lr_ *= factor; }

  float learning_rate() const { return lr_; }
  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
  float lr_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// Clips every parameter gradient to [-clip, clip] elementwise. Helps keep
/// adversarial training stable on small graphs.
void ClipGradients(const std::vector<Tensor>& params, float clip);

}  // namespace cpgan::tensor

#endif  // CPGAN_TENSOR_OPTIMIZER_H_
