// Scalar kernel backend: the PR-2 loops, verbatim. This is both the
// portable fallback and the semantic reference — the golden/regression
// suites pin numbers produced by these loops, and every other backend is
// differential-tested against the same double-accumulator references these
// are (tests/numeric/, ctest -L kernels).

#include "tensor/kernels_backends.h"

namespace cpgan::tensor::kernels::internal {

namespace {

void ScalarMatmulTile(const float* a, const float* tile, float* out, int kb,
                      int jb) {
  for (int r = 0; r < kb; ++r) {
    const float aik = a[r];
    // The zero-skip is part of the scalar backend's numeric identity (it
    // preserves signed zeros in `out` that += 0.0f * x would flush).
    if (aik == 0.0f) continue;
    const float* trow = tile + static_cast<int64_t>(r) * jb;
    for (int c = 0; c < jb; ++c) out[c] += aik * trow[c];
  }
}

void ScalarAxpy(float alpha, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarAdd(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

void ScalarScale(float alpha, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] *= alpha;
}

double ScalarDot(const float* a, const float* b, int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

double ScalarSum(const float* x, int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

double ScalarSumSq(const float* x, int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * x[i];
  }
  return acc;
}

}  // namespace

const KernelOps& ScalarOps() {
  static const KernelOps ops = {
      "scalar",    ScalarMatmulTile, ScalarAxpy,  ScalarAdd,
      ScalarScale, ScalarDot,        ScalarSum,   ScalarSumSq,
  };
  return ops;
}

}  // namespace cpgan::tensor::kernels::internal
