#include "tensor/optimizer.h"

#include <cmath>

namespace cpgan::tensor {

Optimizer::Optimizer(std::vector<Tensor> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const Tensor& p : params_) {
    CPGAN_CHECK(p.defined());
    CPGAN_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const Tensor& p : params_) {
      velocity_.emplace_back(p.rows(), p.cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const Matrix& g = p.grad();
    Matrix& value = p.mutable_value();
    if (momentum_ > 0.0f) {
      Matrix& vel = velocity_[i];
      vel.Scale(momentum_);
      vel.Axpy(1.0f, g);
      value.Axpy(-lr_, vel);
    } else {
      value.Axpy(-lr_, g);
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.rows(), p.cols());
    v_.emplace_back(p.rows(), p.cols());
  }
}

void Adam::Step() {
  ++t_;
  float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const Matrix& g = p.grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    Matrix& value = p.mutable_value();
    for (int64_t j = 0; j < value.size(); ++j) {
      float gj = g.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0f - beta1_) * gj;
      v.data()[j] = beta2_ * v.data()[j] + (1.0f - beta2_) * gj * gj;
      float m_hat = m.data()[j] / bias1;
      float v_hat = v.data()[j] / bias2;
      value.data()[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

void ClipGradients(const std::vector<Tensor>& params, float clip) {
  CPGAN_CHECK_GT(clip, 0.0f);
  for (const Tensor& p : params) {
    if (!p.defined() || !p.requires_grad()) continue;
    // grad() materializes lazily; mutate through the node.
    Matrix& g = const_cast<Matrix&>(p.grad());
    for (int64_t i = 0; i < g.size(); ++i) {
      float v = g.data()[i];
      if (v > clip) g.data()[i] = clip;
      if (v < -clip) g.data()[i] = -clip;
    }
  }
}

}  // namespace cpgan::tensor
