#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>

#include "util/memory_tracker.h"

namespace cpgan::tensor {

SparseMatrix::SparseMatrix(int rows, int cols, std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  CPGAN_CHECK(rows >= 0 && cols >= 0);
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_offsets_.assign(rows_ + 1, 0);
  col_indices_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    const Triplet& t = triplets[i];
    CPGAN_CHECK(t.row >= 0 && t.row < rows_ && t.col >= 0 && t.col < cols_);
    float sum = 0.0f;
    size_t j = i;
    while (j < triplets.size() && triplets[j].row == t.row &&
           triplets[j].col == t.col) {
      sum += triplets[j].value;
      ++j;
    }
    col_indices_.push_back(t.col);
    values_.push_back(sum);
    row_offsets_[t.row + 1] += 1;
    i = j;
  }
  for (int r = 0; r < rows_; ++r) row_offsets_[r + 1] += row_offsets_[r];
  util::MemoryTracker::Global().Allocate(values_.size() * sizeof(float) +
                                         col_indices_.size() * sizeof(int));
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  CPGAN_CHECK_EQ(cols_, dense.rows());
  Matrix out(rows_, dense.cols());
  const int d = dense.cols();
  for (int r = 0; r < rows_; ++r) {
    float* orow = out.Row(r);
    for (int64_t idx = row_offsets_[r]; idx < row_offsets_[r + 1]; ++idx) {
      float v = values_[idx];
      const float* drow = dense.Row(col_indices_[idx]);
      for (int c = 0; c < d; ++c) orow[c] += v * drow[c];
    }
  }
  return out;
}

Matrix SparseMatrix::MultiplyTransposed(const Matrix& dense) const {
  CPGAN_CHECK_EQ(rows_, dense.rows());
  Matrix out(cols_, dense.cols());
  const int d = dense.cols();
  for (int r = 0; r < rows_; ++r) {
    const float* drow = dense.Row(r);
    for (int64_t idx = row_offsets_[r]; idx < row_offsets_[r + 1]; ++idx) {
      float v = values_[idx];
      float* orow = out.Row(col_indices_[idx]);
      for (int c = 0; c < d; ++c) orow[c] += v * drow[c];
    }
  }
  return out;
}

Matrix SparseMatrix::RowSums() const {
  Matrix out(rows_, 1);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int64_t idx = row_offsets_[r]; idx < row_offsets_[r + 1]; ++idx) {
      acc += values_[idx];
    }
    out.At(r, 0) = static_cast<float>(acc);
  }
  return out;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t idx = row_offsets_[r]; idx < row_offsets_[r + 1]; ++idx) {
      out.At(r, col_indices_[idx]) = values_[idx];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<Triplet> triplets;
  triplets.reserve(values_.size());
  for (int r = 0; r < rows_; ++r) {
    for (int64_t idx = row_offsets_[r]; idx < row_offsets_[r + 1]; ++idx) {
      triplets.push_back({col_indices_[idx], r, values_[idx]});
    }
  }
  return SparseMatrix(cols_, rows_, std::move(triplets));
}

SparseMatrix NormalizedAdjacency(
    int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<double> degree(n, 1.0);  // self-loop contributes 1
  std::vector<Triplet> triplets;
  triplets.reserve(edges.size() * 2 + n);
  for (const auto& [u, v] : edges) {
    CPGAN_CHECK(u >= 0 && u < n && v >= 0 && v < n);
    if (u == v) continue;
    degree[u] += 1.0;
    degree[v] += 1.0;
  }
  std::vector<float> inv_sqrt(n);
  for (int i = 0; i < n; ++i) {
    inv_sqrt[i] = static_cast<float>(1.0 / std::sqrt(degree[i]));
  }
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    float w = inv_sqrt[u] * inv_sqrt[v];
    triplets.push_back({u, v, w});
    triplets.push_back({v, u, w});
  }
  for (int i = 0; i < n; ++i) {
    triplets.push_back({i, i, inv_sqrt[i] * inv_sqrt[i]});
  }
  return SparseMatrix(n, n, std::move(triplets));
}

SparseMatrix TwoHopNormalizedAdjacency(
    int n, const std::vector<std::pair<int, int>>& edges,
    float two_hop_weight) {
  // Build one-hop neighbor lists.
  std::vector<std::vector<int>> neighbors(n);
  for (const auto& [u, v] : edges) {
    CPGAN_CHECK(u >= 0 && u < n && v >= 0 && v < n);
    if (u == v) continue;
    neighbors[u].push_back(v);
    neighbors[v].push_back(u);
  }
  // Weighted adjacency W = A + w * A2 (A2 = distinct two-hop pairs).
  std::vector<Triplet> triplets;
  std::vector<double> degree(n, 1.0);  // self-loop mass
  std::vector<int> mark(n, -1);
  std::vector<std::pair<int, float>> row;
  for (int u = 0; u < n; ++u) {
    row.clear();
    for (int v : neighbors[u]) {
      if (mark[v] != u) {
        mark[v] = u;
        row.push_back({v, 1.0f});
      }
    }
    for (int v : neighbors[u]) {
      for (int w : neighbors[v]) {
        if (w == u) continue;
        if (mark[w] != u) {
          mark[w] = u;
          row.push_back({w, two_hop_weight});
        }
      }
    }
    for (const auto& [v, weight] : row) {
      triplets.push_back({u, v, weight});
      degree[u] += weight;
    }
  }
  std::vector<float> inv_sqrt(n);
  for (int i = 0; i < n; ++i) {
    inv_sqrt[i] = static_cast<float>(1.0 / std::sqrt(degree[i]));
  }
  for (Triplet& t : triplets) {
    t.value *= inv_sqrt[t.row] * inv_sqrt[t.col];
  }
  for (int i = 0; i < n; ++i) {
    triplets.push_back({i, i, inv_sqrt[i] * inv_sqrt[i]});
  }
  return SparseMatrix(n, n, std::move(triplets));
}

}  // namespace cpgan::tensor
