#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.h"
#include "tensor/kernels.h"
#include "util/memory_tracker.h"
#include "util/thread_pool.h"

namespace cpgan::tensor {

namespace {

/// Target work (entry-column products) per SpMM chunk. Rows are chunked so
/// a chunk covers roughly this many multiply-adds on an average row; the
/// grain is a pure function of the matrix shape, never the thread count.
constexpr int64_t kSpmmGrainFlops = 1 << 14;

int64_t SpmmRowGrain(int64_t rows, int64_t nnz, int64_t dense_cols) {
  const int64_t avg_row_flops =
      std::max<int64_t>(1, (nnz / std::max<int64_t>(rows, 1)) * dense_cols);
  return std::max<int64_t>(1, kSpmmGrainFlops / avg_row_flops);
}

}  // namespace

SparseMatrix::SparseMatrix(int rows, int cols, std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  CPGAN_CHECK(rows >= 0 && cols >= 0);
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_offsets_.assign(rows_ + 1, 0);
  col_indices_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    const Triplet& t = triplets[i];
    CPGAN_CHECK(t.row >= 0 && t.row < rows_ && t.col >= 0 && t.col < cols_);
    float sum = 0.0f;
    size_t j = i;
    while (j < triplets.size() && triplets[j].row == t.row &&
           triplets[j].col == t.col) {
      sum += triplets[j].value;
      ++j;
    }
    col_indices_.push_back(t.col);
    values_.push_back(sum);
    row_offsets_[t.row + 1] += 1;
    i = j;
  }
  for (int r = 0; r < rows_; ++r) row_offsets_[r + 1] += row_offsets_[r];
  util::MemoryTracker::Global().Allocate(values_.size() * sizeof(float) +
                                         col_indices_.size() * sizeof(int));
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  CPGAN_CHECK_EQ(cols_, dense.rows());
  CPGAN_TRACE_SPAN("tensor/spmm");
  Matrix out(rows_, dense.cols());
  const int d = dense.cols();
  // Each output row is owned by exactly one chunk; within a row, entries
  // accumulate in CSR (column-ascending) order for any thread count.
  const kernels::KernelOps& ops = kernels::Active();
  util::ParallelFor(
      0, rows_, SpmmRowGrain(rows_, nnz(), d), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          float* orow = out.Row(static_cast<int>(r));
          for (int64_t idx = row_offsets_[r]; idx < row_offsets_[r + 1];
               ++idx) {
            ops.axpy(values_[idx], dense.Row(col_indices_[idx]), orow, d);
          }
        }
      });
  return out;
}

Matrix SparseMatrix::MultiplyTransposed(const Matrix& dense) const {
  CPGAN_CHECK_EQ(rows_, dense.rows());
  return TransposedCached().Multiply(dense);
}

SparseMatrix SparseMatrix::BuildTransposed() const {
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_offsets_.assign(cols_ + 1, 0);
  t.col_indices_.resize(values_.size());
  t.values_.resize(values_.size());
  for (int c : col_indices_) t.row_offsets_[c + 1] += 1;
  for (int c = 0; c < cols_; ++c) t.row_offsets_[c + 1] += t.row_offsets_[c];
  std::vector<int64_t> cursor(t.row_offsets_.begin(), t.row_offsets_.end() - 1);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t idx = row_offsets_[r]; idx < row_offsets_[r + 1]; ++idx) {
      int64_t dst = cursor[col_indices_[idx]]++;
      t.col_indices_[dst] = r;  // ascending per transposed row
      t.values_[dst] = values_[idx];
    }
  }
  util::MemoryTracker::Global().Allocate(t.values_.size() * sizeof(float) +
                                         t.col_indices_.size() * sizeof(int));
  return t;
}

const SparseMatrix& SparseMatrix::TransposedCached() const {
  std::lock_guard<std::mutex> lock(transpose_mutex_);
  if (!transpose_cache_) {
    transpose_cache_ = std::make_shared<const SparseMatrix>(BuildTransposed());
  }
  return *transpose_cache_;
}

SparseMatrix::SparseMatrix(const SparseMatrix& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      row_offsets_(other.row_offsets_),
      col_indices_(other.col_indices_),
      values_(other.values_),
      transpose_cache_(other.transpose_cache_) {}

SparseMatrix& SparseMatrix::operator=(const SparseMatrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_offsets_ = other.row_offsets_;
  col_indices_ = other.col_indices_;
  values_ = other.values_;
  transpose_cache_ = other.transpose_cache_;
  return *this;
}

SparseMatrix::SparseMatrix(SparseMatrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      row_offsets_(std::move(other.row_offsets_)),
      col_indices_(std::move(other.col_indices_)),
      values_(std::move(other.values_)),
      transpose_cache_(std::move(other.transpose_cache_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

SparseMatrix& SparseMatrix::operator=(SparseMatrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_offsets_ = std::move(other.row_offsets_);
  col_indices_ = std::move(other.col_indices_);
  values_ = std::move(other.values_);
  transpose_cache_ = std::move(other.transpose_cache_);
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

Matrix SparseMatrix::RowSums() const {
  Matrix out(rows_, 1);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int64_t idx = row_offsets_[r]; idx < row_offsets_[r + 1]; ++idx) {
      acc += values_[idx];
    }
    out.At(r, 0) = static_cast<float>(acc);
  }
  return out;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t idx = row_offsets_[r]; idx < row_offsets_[r + 1]; ++idx) {
      out.At(r, col_indices_[idx]) = values_[idx];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::Transposed() const { return BuildTransposed(); }

SparseMatrix NormalizedAdjacency(
    int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<double> degree(n, 1.0);  // self-loop contributes 1
  std::vector<Triplet> triplets;
  triplets.reserve(edges.size() * 2 + n);
  for (const auto& [u, v] : edges) {
    CPGAN_CHECK(u >= 0 && u < n && v >= 0 && v < n);
    if (u == v) continue;
    degree[u] += 1.0;
    degree[v] += 1.0;
  }
  std::vector<float> inv_sqrt(n);
  for (int i = 0; i < n; ++i) {
    inv_sqrt[i] = static_cast<float>(1.0 / std::sqrt(degree[i]));
  }
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    float w = inv_sqrt[u] * inv_sqrt[v];
    triplets.push_back({u, v, w});
    triplets.push_back({v, u, w});
  }
  for (int i = 0; i < n; ++i) {
    triplets.push_back({i, i, inv_sqrt[i] * inv_sqrt[i]});
  }
  return SparseMatrix(n, n, std::move(triplets));
}

SparseMatrix TwoHopNormalizedAdjacency(
    int n, const std::vector<std::pair<int, int>>& edges,
    float two_hop_weight) {
  // Build one-hop neighbor lists.
  std::vector<std::vector<int>> neighbors(n);
  for (const auto& [u, v] : edges) {
    CPGAN_CHECK(u >= 0 && u < n && v >= 0 && v < n);
    if (u == v) continue;
    neighbors[u].push_back(v);
    neighbors[v].push_back(u);
  }
  // Weighted adjacency W = A + w * A2 (A2 = distinct two-hop pairs).
  std::vector<Triplet> triplets;
  std::vector<double> degree(n, 1.0);  // self-loop mass
  std::vector<int> mark(n, -1);
  std::vector<std::pair<int, float>> row;
  for (int u = 0; u < n; ++u) {
    row.clear();
    for (int v : neighbors[u]) {
      if (mark[v] != u) {
        mark[v] = u;
        row.push_back({v, 1.0f});
      }
    }
    for (int v : neighbors[u]) {
      for (int w : neighbors[v]) {
        if (w == u) continue;
        if (mark[w] != u) {
          mark[w] = u;
          row.push_back({w, two_hop_weight});
        }
      }
    }
    for (const auto& [v, weight] : row) {
      triplets.push_back({u, v, weight});
      degree[u] += weight;
    }
  }
  std::vector<float> inv_sqrt(n);
  for (int i = 0; i < n; ++i) {
    inv_sqrt[i] = static_cast<float>(1.0 / std::sqrt(degree[i]));
  }
  for (Triplet& t : triplets) {
    t.value *= inv_sqrt[t.row] * inv_sqrt[t.col];
  }
  for (int i = 0; i < n; ++i) {
    triplets.push_back({i, i, inv_sqrt[i] * inv_sqrt[i]});
  }
  return SparseMatrix(n, n, std::move(triplets));
}

}  // namespace cpgan::tensor
