#include "tensor/ops.h"

#include <cmath>
#include <cstring>

#include "util/thread_pool.h"

namespace cpgan::tensor {
namespace {

constexpr float kLogEps = 1e-12f;

using internal::Node;

/// Flat elementwise kernels are chunked at this many elements; row-wise
/// kernels convert it into a row grain. Grains depend only on shapes, so
/// chunk boundaries — and therefore results — are thread-count independent.
constexpr int64_t kElemGrain = 1 << 15;

int64_t RowGrain(int rows, int cols) {
  (void)rows;
  return std::max<int64_t>(1, kElemGrain / std::max(cols, 1));
}

/// out[0][c] = sum_r row_term(r)[c], computed as per-chunk partial row sums
/// combined in chunk order: deterministic for any thread count. `add_row`
/// must add row r of the reduced quantity into the float* accumulator.
template <typename AddRowFn>
Matrix ColumnSumReduce(int rows, int cols, const AddRowFn& add_row) {
  Matrix out(1, cols);
  const int64_t grain = RowGrain(rows, cols);
  const int64_t num_chunks = util::ThreadPool::NumChunks(0, rows, grain);
  float* orow = out.Row(0);
  if (num_chunks <= 1) {
    for (int r = 0; r < rows; ++r) add_row(r, orow);
    return out;
  }
  std::vector<float> partials(static_cast<size_t>(num_chunks) * cols, 0.0f);
  util::ThreadPool::Global().ParallelForChunked(
      0, rows, grain, [&](int64_t r0, int64_t r1, int64_t chunk) {
        float* acc = partials.data() + chunk * cols;
        for (int64_t r = r0; r < r1; ++r) add_row(static_cast<int>(r), acc);
      });
  for (int64_t chunk = 0; chunk < num_chunks; ++chunk) {
    const float* acc = partials.data() + chunk * cols;
    for (int c = 0; c < cols; ++c) orow[c] += acc[c];
  }
  return out;
}

float StableSoftplus(float x) {
  // log(1 + e^x) = max(x, 0) + log1p(e^{-|x|}).
  float m = x > 0.0f ? x : 0.0f;
  return m + std::log1p(std::exp(-std::fabs(x)));
}

float StableSigmoid(float x) {
  if (x >= 0.0f) {
    float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  float e = std::exp(x);
  return e / (1.0f + e);
}

/// Applies fn(value) elementwise and wires a backward of the form
/// dx = g * dfn(x, y).
template <typename Fwd, typename Bwd>
Tensor ElementwiseUnary(const Tensor& x, Fwd fwd, Bwd bwd) {
  Matrix out(x.rows(), x.cols());
  const float* src = x.value().data();
  float* dst = out.data();
  util::ParallelFor(0, x.value().size(), kElemGrain,
                    [&](int64_t b, int64_t e) {
                      for (int64_t i = b; i < e; ++i) dst[i] = fwd(src[i]);
                    });
  return Tensor::MakeNode(
      std::move(out), {x}, [bwd](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(g.rows(), g.cols());
        const float* gp = g.data();
        const float* xp = input->value.data();
        const float* yp = self.value.data();
        float* dp = dx.data();
        util::ParallelFor(0, g.size(), kElemGrain, [&](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) dp[i] = gp[i] * bwd(xp[i], yp[i]);
        });
        input->AccumulateGrad(dx);
      });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CPGAN_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddInPlace(b.value());
  return Tensor::MakeNode(std::move(out), {a, b},
                          [](const Matrix& g, Node& self) {
                            for (int i = 0; i < 2; ++i) {
                              Node* input = self.inputs[i].get();
                              if (input->requires_grad) input->AccumulateGrad(g);
                            }
                          });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CPGAN_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.Axpy(-1.0f, b.value());
  return Tensor::MakeNode(std::move(out), {a, b},
                          [](const Matrix& g, Node& self) {
                            Node* a_in = self.inputs[0].get();
                            Node* b_in = self.inputs[1].get();
                            if (a_in->requires_grad) a_in->AccumulateGrad(g);
                            if (b_in->requires_grad) {
                              Matrix neg = g;
                              neg.Scale(-1.0f);
                              b_in->AccumulateGrad(neg);
                            }
                          });
}

namespace {

/// dst[i] = x[i] * y[i] over the whole flat range, in parallel.
void ElementwiseProduct(const float* x, const float* y, float* dst,
                        int64_t size) {
  util::ParallelFor(0, size, kElemGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) dst[i] = x[i] * y[i];
  });
}

}  // namespace

Tensor Mul(const Tensor& a, const Tensor& b) {
  CPGAN_CHECK(a.value().SameShape(b.value()));
  Matrix out(a.rows(), a.cols());
  ElementwiseProduct(a.value().data(), b.value().data(), out.data(),
                     out.size());
  return Tensor::MakeNode(
      std::move(out), {a, b}, [](const Matrix& g, Node& self) {
        Node* a_in = self.inputs[0].get();
        Node* b_in = self.inputs[1].get();
        if (a_in->requires_grad) {
          Matrix da(g.rows(), g.cols());
          ElementwiseProduct(g.data(), b_in->value.data(), da.data(),
                             g.size());
          a_in->AccumulateGrad(da);
        }
        if (b_in->requires_grad) {
          Matrix db(g.rows(), g.cols());
          ElementwiseProduct(g.data(), a_in->value.data(), db.data(),
                             g.size());
          b_in->AccumulateGrad(db);
        }
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CPGAN_CHECK(a.value().SameShape(b.value()));
  Matrix out(a.rows(), a.cols());
  {
    const float* ap = a.value().data();
    const float* bp = b.value().data();
    float* op = out.data();
    util::ParallelFor(0, out.size(), kElemGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) op[i] = ap[i] / bp[i];
    });
  }
  return Tensor::MakeNode(
      std::move(out), {a, b}, [](const Matrix& g, Node& self) {
        Node* a_in = self.inputs[0].get();
        Node* b_in = self.inputs[1].get();
        const float* gp = g.data();
        if (a_in->requires_grad) {
          Matrix da(g.rows(), g.cols());
          const float* bp = b_in->value.data();
          float* dp = da.data();
          util::ParallelFor(0, g.size(), kElemGrain,
                            [&](int64_t lo, int64_t hi) {
                              for (int64_t i = lo; i < hi; ++i) {
                                dp[i] = gp[i] / bp[i];
                              }
                            });
          a_in->AccumulateGrad(da);
        }
        if (b_in->requires_grad) {
          Matrix db(g.rows(), g.cols());
          const float* ap = a_in->value.data();
          const float* bp = b_in->value.data();
          float* dp = db.data();
          util::ParallelFor(0, g.size(), kElemGrain,
                            [&](int64_t lo, int64_t hi) {
                              for (int64_t i = lo; i < hi; ++i) {
                                float bv = bp[i];
                                dp[i] = -gp[i] * ap[i] / (bv * bv);
                              }
                            });
          b_in->AccumulateGrad(db);
        }
      });
}

Tensor AddRowVec(const Tensor& x, const Tensor& v) {
  CPGAN_CHECK_EQ(v.rows(), 1);
  CPGAN_CHECK_EQ(v.cols(), x.cols());
  Matrix out = x.value();
  const float* vec = v.value().Row(0);
  const int cols = out.cols();
  util::ParallelFor(0, out.rows(), RowGrain(out.rows(), cols),
                    [&](int64_t r0, int64_t r1) {
                      for (int64_t r = r0; r < r1; ++r) {
                        float* row = out.Row(static_cast<int>(r));
                        for (int c = 0; c < cols; ++c) row[c] += vec[c];
                      }
                    });
  return Tensor::MakeNode(
      std::move(out), {x, v}, [](const Matrix& g, Node& self) {
        Node* x_in = self.inputs[0].get();
        Node* v_in = self.inputs[1].get();
        if (x_in->requires_grad) x_in->AccumulateGrad(g);
        if (v_in->requires_grad) {
          const int cols = g.cols();
          Matrix dv = ColumnSumReduce(
              g.rows(), cols, [&g, cols](int r, float* acc) {
                const float* row = g.Row(r);
                for (int c = 0; c < cols; ++c) acc[c] += row[c];
              });
          v_in->AccumulateGrad(dv);
        }
      });
}

Tensor MulRowVec(const Tensor& x, const Tensor& v) {
  CPGAN_CHECK_EQ(v.rows(), 1);
  CPGAN_CHECK_EQ(v.cols(), x.cols());
  Matrix out = x.value();
  const float* vec = v.value().Row(0);
  const int cols = out.cols();
  util::ParallelFor(0, out.rows(), RowGrain(out.rows(), cols),
                    [&](int64_t r0, int64_t r1) {
                      for (int64_t r = r0; r < r1; ++r) {
                        float* row = out.Row(static_cast<int>(r));
                        for (int c = 0; c < cols; ++c) row[c] *= vec[c];
                      }
                    });
  return Tensor::MakeNode(
      std::move(out), {x, v}, [](const Matrix& g, Node& self) {
        Node* x_in = self.inputs[0].get();
        Node* v_in = self.inputs[1].get();
        const int cols = g.cols();
        if (x_in->requires_grad) {
          Matrix dx(g.rows(), cols);
          const float* vec = v_in->value.Row(0);
          util::ParallelFor(0, g.rows(), RowGrain(g.rows(), cols),
                            [&](int64_t r0, int64_t r1) {
                              for (int64_t r = r0; r < r1; ++r) {
                                const float* grow = g.Row(static_cast<int>(r));
                                float* drow = dx.Row(static_cast<int>(r));
                                for (int c = 0; c < cols; ++c) {
                                  drow[c] = grow[c] * vec[c];
                                }
                              }
                            });
          x_in->AccumulateGrad(dx);
        }
        if (v_in->requires_grad) {
          const Matrix& xv = x_in->value;
          Matrix dv = ColumnSumReduce(
              g.rows(), cols, [&g, &xv, cols](int r, float* acc) {
                const float* grow = g.Row(r);
                const float* xrow = xv.Row(r);
                for (int c = 0; c < cols; ++c) acc[c] += grow[c] * xrow[c];
              });
          v_in->AccumulateGrad(dv);
        }
      });
}

Tensor MulColVec(const Tensor& x, const Tensor& v) {
  CPGAN_CHECK_EQ(v.cols(), 1);
  CPGAN_CHECK_EQ(v.rows(), x.rows());
  Matrix out = x.value();
  const int cols = out.cols();
  const float* vcol = v.value().data();  // n x 1: column is the flat buffer
  util::ParallelFor(0, out.rows(), RowGrain(out.rows(), cols),
                    [&](int64_t r0, int64_t r1) {
                      for (int64_t r = r0; r < r1; ++r) {
                        float scale = vcol[r];
                        float* row = out.Row(static_cast<int>(r));
                        for (int c = 0; c < cols; ++c) row[c] *= scale;
                      }
                    });
  return Tensor::MakeNode(
      std::move(out), {x, v}, [](const Matrix& g, Node& self) {
        Node* x_in = self.inputs[0].get();
        Node* v_in = self.inputs[1].get();
        const int cols = g.cols();
        if (x_in->requires_grad) {
          Matrix dx(g.rows(), cols);
          const float* vcol = v_in->value.data();
          util::ParallelFor(0, g.rows(), RowGrain(g.rows(), cols),
                            [&](int64_t r0, int64_t r1) {
                              for (int64_t r = r0; r < r1; ++r) {
                                float scale = vcol[r];
                                const float* grow = g.Row(static_cast<int>(r));
                                float* drow = dx.Row(static_cast<int>(r));
                                for (int c = 0; c < cols; ++c) {
                                  drow[c] = grow[c] * scale;
                                }
                              }
                            });
          x_in->AccumulateGrad(dx);
        }
        if (v_in->requires_grad) {
          Matrix dv(g.rows(), 1);
          const Matrix& xv = x_in->value;
          float* dcol = dv.data();
          util::ParallelFor(0, g.rows(), RowGrain(g.rows(), cols),
                            [&](int64_t r0, int64_t r1) {
                              for (int64_t r = r0; r < r1; ++r) {
                                const float* grow = g.Row(static_cast<int>(r));
                                const float* xrow =
                                    xv.Row(static_cast<int>(r));
                                double acc = 0.0;
                                for (int c = 0; c < cols; ++c) {
                                  acc += grow[c] * xrow[c];
                                }
                                dcol[r] = static_cast<float>(acc);
                              }
                            });
          v_in->AccumulateGrad(dv);
        }
      });
}

Tensor Scale(const Tensor& x, float alpha) {
  Matrix out = x.value();
  out.Scale(alpha);
  return Tensor::MakeNode(std::move(out), {x},
                          [alpha](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            Matrix dx = g;
                            dx.Scale(alpha);
                            input->AccumulateGrad(dx);
                          });
}

Tensor AddConst(const Tensor& x, float c) {
  Matrix out = x.value();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] += c;
  return Tensor::MakeNode(std::move(out), {x},
                          [](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (input->requires_grad) input->AccumulateGrad(g);
                          });
}

Tensor Neg(const Tensor& x) { return Scale(x, -1.0f); }

Tensor Relu(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float xv, float) { return xv > 0.0f ? 1.0f : 0.0f; });
}

Tensor Sigmoid(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return StableSigmoid(v); },
                          [](float, float yv) { return yv * (1.0f - yv); });
}

Tensor Tanh(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return std::tanh(v); },
                          [](float, float yv) { return 1.0f - yv * yv; });
}

Tensor Exp(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return std::exp(v); },
                          [](float, float yv) { return yv; });
}

Tensor Log(const Tensor& x) {
  return ElementwiseUnary(
      x,
      [](float v) { return std::log(v > kLogEps ? v : kLogEps); },
      [](float xv, float) { return 1.0f / (xv > kLogEps ? xv : kLogEps); });
}

Tensor Square(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return v * v; },
                          [](float xv, float) { return 2.0f * xv; });
}

Tensor Sqrt(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return std::sqrt(v > 0.0f ? v : 0.0f); },
      [](float, float yv) { return 0.5f / (yv > 1e-6f ? yv : 1e-6f); });
}

Tensor Softplus(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return StableSoftplus(v); },
                          [](float xv, float) { return StableSigmoid(xv); });
}

Tensor LogSigmoid(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return -StableSoftplus(-v); },
      [](float xv, float) { return 1.0f - StableSigmoid(xv); });
}

Tensor Reciprocal(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return 1.0f / v; },
                          [](float, float yv) { return -yv * yv; });
}

Tensor SoftmaxRows(const Tensor& x) {
  Matrix out(x.rows(), x.cols());
  const Matrix& xv = x.value();
  const int cols = xv.cols();
  // Zero-column rows have no entries: the max-subtraction below would read
  // row[0] out of bounds. The softmax of an empty row is the empty row.
  if (cols == 0) {
    return Tensor::MakeNode(std::move(out), {x},
                            [](const Matrix&, Node&) {});
  }
  util::ParallelFor(
      0, xv.rows(), RowGrain(xv.rows(), cols), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* row = xv.Row(static_cast<int>(r));
          float* orow = out.Row(static_cast<int>(r));
          float maxv = row[0];
          for (int c = 1; c < cols; ++c) maxv = std::max(maxv, row[c]);
          double total = 0.0;
          for (int c = 0; c < cols; ++c) {
            orow[c] = std::exp(row[c] - maxv);
            total += orow[c];
          }
          float inv = static_cast<float>(1.0 / total);
          for (int c = 0; c < cols; ++c) orow[c] *= inv;
        }
      });
  return Tensor::MakeNode(
      std::move(out), {x}, [](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        const Matrix& y = self.value;
        Matrix dx(g.rows(), g.cols());
        const int cols = g.cols();
        util::ParallelFor(
            0, g.rows(), RowGrain(g.rows(), cols),
            [&](int64_t r0, int64_t r1) {
              for (int64_t r = r0; r < r1; ++r) {
                const float* grow = g.Row(static_cast<int>(r));
                const float* yrow = y.Row(static_cast<int>(r));
                double dot = 0.0;
                for (int c = 0; c < cols; ++c) dot += grow[c] * yrow[c];
                float* drow = dx.Row(static_cast<int>(r));
                for (int c = 0; c < cols; ++c) {
                  drow[c] = yrow[c] * (grow[c] - static_cast<float>(dot));
                }
              }
            });
        input->AccumulateGrad(dx);
      });
}

Tensor Dropout(const Tensor& x, float p, util::Rng& rng, bool train) {
  if (!train || p <= 0.0f) return x;
  CPGAN_CHECK_LT(p, 1.0f);
  // Serial by contract: the mask must consume the RNG stream in index
  // order, which is part of the end-to-end reproducibility guarantee.
  auto mask = std::make_shared<Matrix>(x.rows(), x.cols());
  float keep_scale = 1.0f / (1.0f - p);
  Matrix out(x.rows(), x.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    float m = rng.Bernoulli(p) ? 0.0f : keep_scale;
    mask->data()[i] = m;
    out.data()[i] = x.value().data()[i] * m;
  }
  return Tensor::MakeNode(std::move(out), {x},
                          [mask](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            Matrix dx(g.rows(), g.cols());
                            for (int64_t i = 0; i < g.size(); ++i) {
                              dx.data()[i] = g.data()[i] * mask->data()[i];
                            }
                            input->AccumulateGrad(dx);
                          });
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  Matrix out = Matmul(a.value(), b.value());
  return Tensor::MakeNode(
      std::move(out), {a, b}, [](const Matrix& g, Node& self) {
        Node* a_in = self.inputs[0].get();
        Node* b_in = self.inputs[1].get();
        if (a_in->requires_grad) a_in->AccumulateGrad(MatmulNT(g, b_in->value));
        if (b_in->requires_grad) b_in->AccumulateGrad(MatmulTN(a_in->value, g));
      });
}

Tensor Spmm(std::shared_ptr<const SparseMatrix> s, const Tensor& x) {
  CPGAN_CHECK(s != nullptr);
  Matrix out = s->Multiply(x.value());
  return Tensor::MakeNode(std::move(out), {x},
                          [s](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            input->AccumulateGrad(s->MultiplyTransposed(g));
                          });
}

Tensor Transpose(const Tensor& x) {
  return Tensor::MakeNode(x.value().Transposed(), {x},
                          [](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            input->AccumulateGrad(g.Transposed());
                          });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  CPGAN_CHECK(!parts.empty());
  int cols = parts[0].cols();
  int rows = 0;
  for (const Tensor& part : parts) {
    CPGAN_CHECK_EQ(part.cols(), cols);
    rows += part.rows();
  }
  Matrix out(rows, cols);
  int offset = 0;
  for (const Tensor& part : parts) {
    for (int r = 0; r < part.rows(); ++r) {
      const float* src = part.value().Row(r);
      float* dst = out.Row(offset + r);
      for (int c = 0; c < cols; ++c) dst[c] = src[c];
    }
    offset += part.rows();
  }
  return Tensor::MakeNode(
      std::move(out), parts, [](const Matrix& g, Node& self) {
        int offset = 0;
        for (auto& input : self.inputs) {
          int r_count = input->value.rows();
          if (input->requires_grad) {
            Matrix slice(r_count, g.cols());
            for (int r = 0; r < r_count; ++r) {
              const float* src = g.Row(offset + r);
              float* dst = slice.Row(r);
              for (int c = 0; c < g.cols(); ++c) dst[c] = src[c];
            }
            input->AccumulateGrad(slice);
          }
          offset += r_count;
        }
      });
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  CPGAN_CHECK(!parts.empty());
  int rows = parts[0].rows();
  int cols = 0;
  for (const Tensor& part : parts) {
    CPGAN_CHECK_EQ(part.rows(), rows);
    cols += part.cols();
  }
  Matrix out(rows, cols);
  int offset = 0;
  for (const Tensor& part : parts) {
    for (int r = 0; r < rows; ++r) {
      const float* src = part.value().Row(r);
      float* dst = out.Row(r) + offset;
      for (int c = 0; c < part.cols(); ++c) dst[c] = src[c];
    }
    offset += part.cols();
  }
  return Tensor::MakeNode(
      std::move(out), parts, [](const Matrix& g, Node& self) {
        int offset = 0;
        for (auto& input : self.inputs) {
          int c_count = input->value.cols();
          if (input->requires_grad) {
            Matrix slice(g.rows(), c_count);
            for (int r = 0; r < g.rows(); ++r) {
              const float* src = g.Row(r) + offset;
              float* dst = slice.Row(r);
              for (int c = 0; c < c_count; ++c) dst[c] = src[c];
            }
            input->AccumulateGrad(slice);
          }
          offset += c_count;
        }
      });
}

Tensor GatherRows(const Tensor& x, std::vector<int> indices) {
  Matrix out(static_cast<int>(indices.size()), x.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    int idx = indices[i];
    CPGAN_CHECK(idx >= 0 && idx < x.rows());
    const float* src = x.value().Row(idx);
    float* dst = out.Row(static_cast<int>(i));
    for (int c = 0; c < x.cols(); ++c) dst[c] = src[c];
  }
  auto shared_indices = std::make_shared<std::vector<int>>(std::move(indices));
  return Tensor::MakeNode(
      std::move(out), {x}, [shared_indices](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(input->value.rows(), input->value.cols());
        for (size_t i = 0; i < shared_indices->size(); ++i) {
          const float* src = g.Row(static_cast<int>(i));
          float* dst = dx.Row((*shared_indices)[i]);
          for (int c = 0; c < g.cols(); ++c) dst[c] += src[c];
        }
        input->AccumulateGrad(dx);
      });
}

Tensor SliceCols(const Tensor& x, int start, int len) {
  CPGAN_CHECK(start >= 0 && len >= 0 && start + len <= x.cols());
  Matrix out(x.rows(), len);
  for (int r = 0; r < x.rows(); ++r) {
    const float* src = x.value().Row(r) + start;
    float* dst = out.Row(r);
    for (int c = 0; c < len; ++c) dst[c] = src[c];
  }
  return Tensor::MakeNode(
      std::move(out), {x}, [start, len](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(input->value.rows(), input->value.cols());
        for (int r = 0; r < g.rows(); ++r) {
          const float* src = g.Row(r);
          float* dst = dx.Row(r) + start;
          for (int c = 0; c < len; ++c) dst[c] = src[c];
        }
        input->AccumulateGrad(dx);
      });
}

Tensor Reshape(const Tensor& x, int rows, int cols) {
  CPGAN_CHECK_EQ(static_cast<int64_t>(rows) * cols, x.value().size());
  Matrix out(rows, cols);
  std::memcpy(out.data(), x.value().data(), out.size() * sizeof(float));
  return Tensor::MakeNode(
      std::move(out), {x}, [](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(input->value.rows(), input->value.cols());
        std::memcpy(dx.data(), g.data(), g.size() * sizeof(float));
        input->AccumulateGrad(dx);
      });
}

Tensor SumAll(const Tensor& x) {
  Matrix out(1, 1);
  out.At(0, 0) = x.value().Sum();
  return Tensor::MakeNode(std::move(out), {x},
                          [](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            Matrix dx(input->value.rows(), input->value.cols(),
                                      g.At(0, 0));
                            input->AccumulateGrad(dx);
                          });
}

Tensor MeanAll(const Tensor& x) {
  return Scale(SumAll(x), 1.0f / static_cast<float>(x.value().size()));
}

Tensor ColMean(const Tensor& x) {
  const Matrix& xv = x.value();
  const int cols = xv.cols();
  Matrix out = ColumnSumReduce(xv.rows(), cols, [&xv, cols](int r,
                                                            float* acc) {
    const float* row = xv.Row(r);
    for (int c = 0; c < cols; ++c) acc[c] += row[c];
  });
  float inv = 1.0f / static_cast<float>(x.rows());
  out.Scale(inv);
  return Tensor::MakeNode(
      std::move(out), {x}, [inv](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(input->value.rows(), input->value.cols());
        const float* grow = g.Row(0);
        const int cols = dx.cols();
        util::ParallelFor(0, dx.rows(), RowGrain(dx.rows(), cols),
                          [&](int64_t r0, int64_t r1) {
                            for (int64_t r = r0; r < r1; ++r) {
                              float* drow = dx.Row(static_cast<int>(r));
                              for (int c = 0; c < cols; ++c) {
                                drow[c] = grow[c] * inv;
                              }
                            }
                          });
        input->AccumulateGrad(dx);
      });
}

Tensor RowSum(const Tensor& x) {
  Matrix out(x.rows(), 1);
  const Matrix& xv = x.value();
  const int cols = xv.cols();
  float* ocol = out.data();
  util::ParallelFor(0, xv.rows(), RowGrain(xv.rows(), cols),
                    [&](int64_t r0, int64_t r1) {
                      for (int64_t r = r0; r < r1; ++r) {
                        const float* row = xv.Row(static_cast<int>(r));
                        double acc = 0.0;
                        for (int c = 0; c < cols; ++c) acc += row[c];
                        ocol[r] = static_cast<float>(acc);
                      }
                    });
  return Tensor::MakeNode(
      std::move(out), {x}, [](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(input->value.rows(), input->value.cols());
        const float* gcol = g.data();
        const int cols = dx.cols();
        util::ParallelFor(0, dx.rows(), RowGrain(dx.rows(), cols),
                          [&](int64_t r0, int64_t r1) {
                            for (int64_t r = r0; r < r1; ++r) {
                              float gv = gcol[r];
                              float* drow = dx.Row(static_cast<int>(r));
                              for (int c = 0; c < cols; ++c) drow[c] = gv;
                            }
                          });
        input->AccumulateGrad(dx);
      });
}

Tensor RowMean(const Tensor& x) {
  return Scale(RowSum(x), 1.0f / static_cast<float>(x.cols()));
}

Tensor RowL2Norm(const Tensor& x) {
  Matrix out(x.rows(), 1);
  const Matrix& xv = x.value();
  const int cols = xv.cols();
  float* ocol = out.data();
  util::ParallelFor(
      0, xv.rows(), RowGrain(xv.rows(), cols), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* row = xv.Row(static_cast<int>(r));
          double acc = 0.0;
          for (int c = 0; c < cols; ++c) {
            acc += static_cast<double>(row[c]) * row[c];
          }
          ocol[r] = static_cast<float>(std::sqrt(acc));
        }
      });
  return Tensor::MakeNode(
      std::move(out), {x}, [](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(input->value.rows(), input->value.cols());
        const float* norms = self.value.data();
        const float* gcol = g.data();
        const int cols = dx.cols();
        util::ParallelFor(
            0, dx.rows(), RowGrain(dx.rows(), cols),
            [&](int64_t r0, int64_t r1) {
              for (int64_t r = r0; r < r1; ++r) {
                float norm = norms[r];
                float scale = gcol[r] / (norm > 1e-6f ? norm : 1e-6f);
                const float* xrow = input->value.Row(static_cast<int>(r));
                float* drow = dx.Row(static_cast<int>(r));
                for (int c = 0; c < cols; ++c) drow[c] = scale * xrow[c];
              }
            });
        input->AccumulateGrad(dx);
      });
}

Tensor BceWithLogits(const Tensor& logits, const Matrix& targets,
                     float pos_weight) {
  CPGAN_CHECK(logits.value().SameShape(targets));
  auto shared_targets = std::make_shared<Matrix>(targets);
  const Matrix& x = logits.value();
  const float* xp = x.data();
  const float* tp = targets.data();
  double total = util::ParallelSum(
      0, x.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
        double acc = 0.0;
        for (int64_t i = i0; i < i1; ++i) {
          float xv = xp[i];
          float t = tp[i];
          // pos_weight * t * softplus(-x) + (1 - t) * softplus(x)
          acc += pos_weight * t * StableSoftplus(-xv) +
                 (1.0f - t) * StableSoftplus(xv);
        }
        return acc;
      });
  Matrix out(1, 1);
  float inv = 1.0f / static_cast<float>(x.size());
  out.At(0, 0) = static_cast<float>(total) * inv;
  return Tensor::MakeNode(
      std::move(out), {logits},
      [shared_targets, pos_weight, inv](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        float gv = g.At(0, 0) * inv;
        Matrix dx(input->value.rows(), input->value.cols());
        const float* xp = input->value.data();
        const float* tp = shared_targets->data();
        float* dp = dx.data();
        util::ParallelFor(0, dx.size(), kElemGrain, [&](int64_t i0,
                                                        int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            float xv = xp[i];
            float t = tp[i];
            float s = StableSigmoid(xv);
            // d/dx [pw * t * softplus(-x) + (1-t) * softplus(x)]
            dp[i] = gv * (-pos_weight * t * (1.0f - s) + (1.0f - t) * s);
          }
        });
        input->AccumulateGrad(dx);
      });
}

Tensor MseLoss(const Tensor& a, const Tensor& b) {
  return MeanAll(Square(Sub(a, b)));
}

Tensor Constant(Matrix value) { return Tensor(std::move(value), false); }

Tensor ScalarConstant(float value) {
  Matrix m(1, 1);
  m.At(0, 0) = value;
  return Tensor(std::move(m), false);
}

bool AllFinite(const Matrix& m) {
  const float* p = m.data();
  for (int64_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool ValueFinite(const Tensor& t) {
  return t.defined() && AllFinite(t.value());
}

bool GradsFinite(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) {
    if (!p.defined()) continue;
    if (!AllFinite(p.grad())) return false;
  }
  return true;
}

float MaxAbsGrad(const std::vector<Tensor>& params) {
  float max_abs = 0.0f;
  for (const Tensor& p : params) {
    if (!p.defined()) continue;
    const Matrix& g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      float a = std::fabs(g.data()[i]);
      if (a > max_abs) max_abs = a;
    }
  }
  return max_abs;
}

}  // namespace cpgan::tensor
