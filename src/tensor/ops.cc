#include "tensor/ops.h"

#include <cmath>

namespace cpgan::tensor {
namespace {

constexpr float kLogEps = 1e-12f;

using internal::Node;

float StableSoftplus(float x) {
  // log(1 + e^x) = max(x, 0) + log1p(e^{-|x|}).
  float m = x > 0.0f ? x : 0.0f;
  return m + std::log1p(std::exp(-std::fabs(x)));
}

float StableSigmoid(float x) {
  if (x >= 0.0f) {
    float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  float e = std::exp(x);
  return e / (1.0f + e);
}

/// Applies fn(value) elementwise and wires a backward of the form
/// dx = g * dfn(x, y).
template <typename Fwd, typename Bwd>
Tensor ElementwiseUnary(const Tensor& x, Fwd fwd, Bwd bwd) {
  Matrix out(x.rows(), x.cols());
  const Matrix& xv = x.value();
  for (int64_t i = 0; i < xv.size(); ++i) {
    out.data()[i] = fwd(xv.data()[i]);
  }
  return Tensor::MakeNode(
      std::move(out), {x}, [bwd](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(g.rows(), g.cols());
        const Matrix& xv = input->value;
        const Matrix& yv = self.value;
        for (int64_t i = 0; i < g.size(); ++i) {
          dx.data()[i] = g.data()[i] * bwd(xv.data()[i], yv.data()[i]);
        }
        input->AccumulateGrad(dx);
      });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CPGAN_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddInPlace(b.value());
  return Tensor::MakeNode(std::move(out), {a, b},
                          [](const Matrix& g, Node& self) {
                            for (int i = 0; i < 2; ++i) {
                              Node* input = self.inputs[i].get();
                              if (input->requires_grad) input->AccumulateGrad(g);
                            }
                          });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CPGAN_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.Axpy(-1.0f, b.value());
  return Tensor::MakeNode(std::move(out), {a, b},
                          [](const Matrix& g, Node& self) {
                            Node* a_in = self.inputs[0].get();
                            Node* b_in = self.inputs[1].get();
                            if (a_in->requires_grad) a_in->AccumulateGrad(g);
                            if (b_in->requires_grad) {
                              Matrix neg = g;
                              neg.Scale(-1.0f);
                              b_in->AccumulateGrad(neg);
                            }
                          });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CPGAN_CHECK(a.value().SameShape(b.value()));
  Matrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = a.value().data()[i] * b.value().data()[i];
  }
  return Tensor::MakeNode(
      std::move(out), {a, b}, [](const Matrix& g, Node& self) {
        Node* a_in = self.inputs[0].get();
        Node* b_in = self.inputs[1].get();
        if (a_in->requires_grad) {
          Matrix da(g.rows(), g.cols());
          for (int64_t i = 0; i < g.size(); ++i) {
            da.data()[i] = g.data()[i] * b_in->value.data()[i];
          }
          a_in->AccumulateGrad(da);
        }
        if (b_in->requires_grad) {
          Matrix db(g.rows(), g.cols());
          for (int64_t i = 0; i < g.size(); ++i) {
            db.data()[i] = g.data()[i] * a_in->value.data()[i];
          }
          b_in->AccumulateGrad(db);
        }
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CPGAN_CHECK(a.value().SameShape(b.value()));
  Matrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = a.value().data()[i] / b.value().data()[i];
  }
  return Tensor::MakeNode(
      std::move(out), {a, b}, [](const Matrix& g, Node& self) {
        Node* a_in = self.inputs[0].get();
        Node* b_in = self.inputs[1].get();
        if (a_in->requires_grad) {
          Matrix da(g.rows(), g.cols());
          for (int64_t i = 0; i < g.size(); ++i) {
            da.data()[i] = g.data()[i] / b_in->value.data()[i];
          }
          a_in->AccumulateGrad(da);
        }
        if (b_in->requires_grad) {
          Matrix db(g.rows(), g.cols());
          for (int64_t i = 0; i < g.size(); ++i) {
            float bv = b_in->value.data()[i];
            db.data()[i] = -g.data()[i] * a_in->value.data()[i] / (bv * bv);
          }
          b_in->AccumulateGrad(db);
        }
      });
}

Tensor AddRowVec(const Tensor& x, const Tensor& v) {
  CPGAN_CHECK_EQ(v.rows(), 1);
  CPGAN_CHECK_EQ(v.cols(), x.cols());
  Matrix out = x.value();
  const float* vec = v.value().Row(0);
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] += vec[c];
  }
  return Tensor::MakeNode(
      std::move(out), {x, v}, [](const Matrix& g, Node& self) {
        Node* x_in = self.inputs[0].get();
        Node* v_in = self.inputs[1].get();
        if (x_in->requires_grad) x_in->AccumulateGrad(g);
        if (v_in->requires_grad) {
          Matrix dv(1, g.cols());
          for (int r = 0; r < g.rows(); ++r) {
            const float* row = g.Row(r);
            for (int c = 0; c < g.cols(); ++c) dv.At(0, c) += row[c];
          }
          v_in->AccumulateGrad(dv);
        }
      });
}

Tensor MulRowVec(const Tensor& x, const Tensor& v) {
  CPGAN_CHECK_EQ(v.rows(), 1);
  CPGAN_CHECK_EQ(v.cols(), x.cols());
  Matrix out = x.value();
  const float* vec = v.value().Row(0);
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] *= vec[c];
  }
  return Tensor::MakeNode(
      std::move(out), {x, v}, [](const Matrix& g, Node& self) {
        Node* x_in = self.inputs[0].get();
        Node* v_in = self.inputs[1].get();
        if (x_in->requires_grad) {
          Matrix dx(g.rows(), g.cols());
          const float* vec = v_in->value.Row(0);
          for (int r = 0; r < g.rows(); ++r) {
            const float* grow = g.Row(r);
            float* drow = dx.Row(r);
            for (int c = 0; c < g.cols(); ++c) drow[c] = grow[c] * vec[c];
          }
          x_in->AccumulateGrad(dx);
        }
        if (v_in->requires_grad) {
          Matrix dv(1, g.cols());
          for (int r = 0; r < g.rows(); ++r) {
            const float* grow = g.Row(r);
            const float* xrow = x_in->value.Row(r);
            for (int c = 0; c < g.cols(); ++c) {
              dv.At(0, c) += grow[c] * xrow[c];
            }
          }
          v_in->AccumulateGrad(dv);
        }
      });
}

Tensor MulColVec(const Tensor& x, const Tensor& v) {
  CPGAN_CHECK_EQ(v.cols(), 1);
  CPGAN_CHECK_EQ(v.rows(), x.rows());
  Matrix out = x.value();
  for (int r = 0; r < out.rows(); ++r) {
    float scale = v.value().At(r, 0);
    float* row = out.Row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] *= scale;
  }
  return Tensor::MakeNode(
      std::move(out), {x, v}, [](const Matrix& g, Node& self) {
        Node* x_in = self.inputs[0].get();
        Node* v_in = self.inputs[1].get();
        if (x_in->requires_grad) {
          Matrix dx(g.rows(), g.cols());
          for (int r = 0; r < g.rows(); ++r) {
            float scale = v_in->value.At(r, 0);
            const float* grow = g.Row(r);
            float* drow = dx.Row(r);
            for (int c = 0; c < g.cols(); ++c) drow[c] = grow[c] * scale;
          }
          x_in->AccumulateGrad(dx);
        }
        if (v_in->requires_grad) {
          Matrix dv(g.rows(), 1);
          for (int r = 0; r < g.rows(); ++r) {
            const float* grow = g.Row(r);
            const float* xrow = x_in->value.Row(r);
            double acc = 0.0;
            for (int c = 0; c < g.cols(); ++c) acc += grow[c] * xrow[c];
            dv.At(r, 0) = static_cast<float>(acc);
          }
          v_in->AccumulateGrad(dv);
        }
      });
}

Tensor Scale(const Tensor& x, float alpha) {
  Matrix out = x.value();
  out.Scale(alpha);
  return Tensor::MakeNode(std::move(out), {x},
                          [alpha](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            Matrix dx = g;
                            dx.Scale(alpha);
                            input->AccumulateGrad(dx);
                          });
}

Tensor AddConst(const Tensor& x, float c) {
  Matrix out = x.value();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] += c;
  return Tensor::MakeNode(std::move(out), {x},
                          [](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (input->requires_grad) input->AccumulateGrad(g);
                          });
}

Tensor Neg(const Tensor& x) { return Scale(x, -1.0f); }

Tensor Relu(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float xv, float) { return xv > 0.0f ? 1.0f : 0.0f; });
}

Tensor Sigmoid(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return StableSigmoid(v); },
                          [](float, float yv) { return yv * (1.0f - yv); });
}

Tensor Tanh(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return std::tanh(v); },
                          [](float, float yv) { return 1.0f - yv * yv; });
}

Tensor Exp(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return std::exp(v); },
                          [](float, float yv) { return yv; });
}

Tensor Log(const Tensor& x) {
  return ElementwiseUnary(
      x,
      [](float v) { return std::log(v > kLogEps ? v : kLogEps); },
      [](float xv, float) { return 1.0f / (xv > kLogEps ? xv : kLogEps); });
}

Tensor Square(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return v * v; },
                          [](float xv, float) { return 2.0f * xv; });
}

Tensor Sqrt(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return std::sqrt(v > 0.0f ? v : 0.0f); },
      [](float, float yv) { return 0.5f / (yv > 1e-6f ? yv : 1e-6f); });
}

Tensor Softplus(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return StableSoftplus(v); },
                          [](float xv, float) { return StableSigmoid(xv); });
}

Tensor LogSigmoid(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return -StableSoftplus(-v); },
      [](float xv, float) { return 1.0f - StableSigmoid(xv); });
}

Tensor Reciprocal(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return 1.0f / v; },
                          [](float, float yv) { return -yv * yv; });
}

Tensor SoftmaxRows(const Tensor& x) {
  Matrix out(x.rows(), x.cols());
  const Matrix& xv = x.value();
  for (int r = 0; r < xv.rows(); ++r) {
    const float* row = xv.Row(r);
    float* orow = out.Row(r);
    float maxv = row[0];
    for (int c = 1; c < xv.cols(); ++c) maxv = std::max(maxv, row[c]);
    double total = 0.0;
    for (int c = 0; c < xv.cols(); ++c) {
      orow[c] = std::exp(row[c] - maxv);
      total += orow[c];
    }
    float inv = static_cast<float>(1.0 / total);
    for (int c = 0; c < xv.cols(); ++c) orow[c] *= inv;
  }
  return Tensor::MakeNode(
      std::move(out), {x}, [](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        const Matrix& y = self.value;
        Matrix dx(g.rows(), g.cols());
        for (int r = 0; r < g.rows(); ++r) {
          const float* grow = g.Row(r);
          const float* yrow = y.Row(r);
          double dot = 0.0;
          for (int c = 0; c < g.cols(); ++c) dot += grow[c] * yrow[c];
          float* drow = dx.Row(r);
          for (int c = 0; c < g.cols(); ++c) {
            drow[c] = yrow[c] * (grow[c] - static_cast<float>(dot));
          }
        }
        input->AccumulateGrad(dx);
      });
}

Tensor Dropout(const Tensor& x, float p, util::Rng& rng, bool train) {
  if (!train || p <= 0.0f) return x;
  CPGAN_CHECK_LT(p, 1.0f);
  auto mask = std::make_shared<Matrix>(x.rows(), x.cols());
  float keep_scale = 1.0f / (1.0f - p);
  Matrix out(x.rows(), x.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    float m = rng.Bernoulli(p) ? 0.0f : keep_scale;
    mask->data()[i] = m;
    out.data()[i] = x.value().data()[i] * m;
  }
  return Tensor::MakeNode(std::move(out), {x},
                          [mask](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            Matrix dx(g.rows(), g.cols());
                            for (int64_t i = 0; i < g.size(); ++i) {
                              dx.data()[i] = g.data()[i] * mask->data()[i];
                            }
                            input->AccumulateGrad(dx);
                          });
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  Matrix out = Matmul(a.value(), b.value());
  return Tensor::MakeNode(
      std::move(out), {a, b}, [](const Matrix& g, Node& self) {
        Node* a_in = self.inputs[0].get();
        Node* b_in = self.inputs[1].get();
        if (a_in->requires_grad) a_in->AccumulateGrad(MatmulNT(g, b_in->value));
        if (b_in->requires_grad) b_in->AccumulateGrad(MatmulTN(a_in->value, g));
      });
}

Tensor Spmm(std::shared_ptr<const SparseMatrix> s, const Tensor& x) {
  CPGAN_CHECK(s != nullptr);
  Matrix out = s->Multiply(x.value());
  return Tensor::MakeNode(std::move(out), {x},
                          [s](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            input->AccumulateGrad(s->MultiplyTransposed(g));
                          });
}

Tensor Transpose(const Tensor& x) {
  return Tensor::MakeNode(x.value().Transposed(), {x},
                          [](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            input->AccumulateGrad(g.Transposed());
                          });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  CPGAN_CHECK(!parts.empty());
  int cols = parts[0].cols();
  int rows = 0;
  for (const Tensor& part : parts) {
    CPGAN_CHECK_EQ(part.cols(), cols);
    rows += part.rows();
  }
  Matrix out(rows, cols);
  int offset = 0;
  for (const Tensor& part : parts) {
    for (int r = 0; r < part.rows(); ++r) {
      const float* src = part.value().Row(r);
      float* dst = out.Row(offset + r);
      for (int c = 0; c < cols; ++c) dst[c] = src[c];
    }
    offset += part.rows();
  }
  return Tensor::MakeNode(
      std::move(out), parts, [](const Matrix& g, Node& self) {
        int offset = 0;
        for (auto& input : self.inputs) {
          int r_count = input->value.rows();
          if (input->requires_grad) {
            Matrix slice(r_count, g.cols());
            for (int r = 0; r < r_count; ++r) {
              const float* src = g.Row(offset + r);
              float* dst = slice.Row(r);
              for (int c = 0; c < g.cols(); ++c) dst[c] = src[c];
            }
            input->AccumulateGrad(slice);
          }
          offset += r_count;
        }
      });
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  CPGAN_CHECK(!parts.empty());
  int rows = parts[0].rows();
  int cols = 0;
  for (const Tensor& part : parts) {
    CPGAN_CHECK_EQ(part.rows(), rows);
    cols += part.cols();
  }
  Matrix out(rows, cols);
  int offset = 0;
  for (const Tensor& part : parts) {
    for (int r = 0; r < rows; ++r) {
      const float* src = part.value().Row(r);
      float* dst = out.Row(r) + offset;
      for (int c = 0; c < part.cols(); ++c) dst[c] = src[c];
    }
    offset += part.cols();
  }
  return Tensor::MakeNode(
      std::move(out), parts, [](const Matrix& g, Node& self) {
        int offset = 0;
        for (auto& input : self.inputs) {
          int c_count = input->value.cols();
          if (input->requires_grad) {
            Matrix slice(g.rows(), c_count);
            for (int r = 0; r < g.rows(); ++r) {
              const float* src = g.Row(r) + offset;
              float* dst = slice.Row(r);
              for (int c = 0; c < c_count; ++c) dst[c] = src[c];
            }
            input->AccumulateGrad(slice);
          }
          offset += c_count;
        }
      });
}

Tensor GatherRows(const Tensor& x, std::vector<int> indices) {
  Matrix out(static_cast<int>(indices.size()), x.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    int idx = indices[i];
    CPGAN_CHECK(idx >= 0 && idx < x.rows());
    const float* src = x.value().Row(idx);
    float* dst = out.Row(static_cast<int>(i));
    for (int c = 0; c < x.cols(); ++c) dst[c] = src[c];
  }
  auto shared_indices = std::make_shared<std::vector<int>>(std::move(indices));
  return Tensor::MakeNode(
      std::move(out), {x}, [shared_indices](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(input->value.rows(), input->value.cols());
        for (size_t i = 0; i < shared_indices->size(); ++i) {
          const float* src = g.Row(static_cast<int>(i));
          float* dst = dx.Row((*shared_indices)[i]);
          for (int c = 0; c < g.cols(); ++c) dst[c] += src[c];
        }
        input->AccumulateGrad(dx);
      });
}

Tensor SliceCols(const Tensor& x, int start, int len) {
  CPGAN_CHECK(start >= 0 && len >= 0 && start + len <= x.cols());
  Matrix out(x.rows(), len);
  for (int r = 0; r < x.rows(); ++r) {
    const float* src = x.value().Row(r) + start;
    float* dst = out.Row(r);
    for (int c = 0; c < len; ++c) dst[c] = src[c];
  }
  return Tensor::MakeNode(
      std::move(out), {x}, [start, len](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(input->value.rows(), input->value.cols());
        for (int r = 0; r < g.rows(); ++r) {
          const float* src = g.Row(r);
          float* dst = dx.Row(r) + start;
          for (int c = 0; c < len; ++c) dst[c] = src[c];
        }
        input->AccumulateGrad(dx);
      });
}

Tensor Reshape(const Tensor& x, int rows, int cols) {
  CPGAN_CHECK_EQ(static_cast<int64_t>(rows) * cols, x.value().size());
  Matrix out(rows, cols);
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] = x.value().data()[i];
  return Tensor::MakeNode(
      std::move(out), {x}, [](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(input->value.rows(), input->value.cols());
        for (int64_t i = 0; i < g.size(); ++i) dx.data()[i] = g.data()[i];
        input->AccumulateGrad(dx);
      });
}

Tensor SumAll(const Tensor& x) {
  Matrix out(1, 1);
  out.At(0, 0) = x.value().Sum();
  return Tensor::MakeNode(std::move(out), {x},
                          [](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            Matrix dx(input->value.rows(), input->value.cols(),
                                      g.At(0, 0));
                            input->AccumulateGrad(dx);
                          });
}

Tensor MeanAll(const Tensor& x) {
  return Scale(SumAll(x), 1.0f / static_cast<float>(x.value().size()));
}

Tensor ColMean(const Tensor& x) {
  Matrix out(1, x.cols());
  for (int r = 0; r < x.rows(); ++r) {
    const float* row = x.value().Row(r);
    for (int c = 0; c < x.cols(); ++c) out.At(0, c) += row[c];
  }
  float inv = 1.0f / static_cast<float>(x.rows());
  out.Scale(inv);
  return Tensor::MakeNode(std::move(out), {x},
                          [inv](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            Matrix dx(input->value.rows(), input->value.cols());
                            for (int r = 0; r < dx.rows(); ++r) {
                              float* drow = dx.Row(r);
                              for (int c = 0; c < dx.cols(); ++c) {
                                drow[c] = g.At(0, c) * inv;
                              }
                            }
                            input->AccumulateGrad(dx);
                          });
}

Tensor RowSum(const Tensor& x) {
  Matrix out(x.rows(), 1);
  for (int r = 0; r < x.rows(); ++r) {
    const float* row = x.value().Row(r);
    double acc = 0.0;
    for (int c = 0; c < x.cols(); ++c) acc += row[c];
    out.At(r, 0) = static_cast<float>(acc);
  }
  return Tensor::MakeNode(std::move(out), {x},
                          [](const Matrix& g, Node& self) {
                            Node* input = self.inputs[0].get();
                            if (!input->requires_grad) return;
                            Matrix dx(input->value.rows(), input->value.cols());
                            for (int r = 0; r < dx.rows(); ++r) {
                              float gv = g.At(r, 0);
                              float* drow = dx.Row(r);
                              for (int c = 0; c < dx.cols(); ++c) drow[c] = gv;
                            }
                            input->AccumulateGrad(dx);
                          });
}

Tensor RowMean(const Tensor& x) {
  return Scale(RowSum(x), 1.0f / static_cast<float>(x.cols()));
}

Tensor RowL2Norm(const Tensor& x) {
  Matrix out(x.rows(), 1);
  for (int r = 0; r < x.rows(); ++r) {
    const float* row = x.value().Row(r);
    double acc = 0.0;
    for (int c = 0; c < x.cols(); ++c) acc += static_cast<double>(row[c]) * row[c];
    out.At(r, 0) = static_cast<float>(std::sqrt(acc));
  }
  return Tensor::MakeNode(
      std::move(out), {x}, [](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        Matrix dx(input->value.rows(), input->value.cols());
        for (int r = 0; r < dx.rows(); ++r) {
          float norm = self.value.At(r, 0);
          float scale = g.At(r, 0) / (norm > 1e-6f ? norm : 1e-6f);
          const float* xrow = input->value.Row(r);
          float* drow = dx.Row(r);
          for (int c = 0; c < dx.cols(); ++c) drow[c] = scale * xrow[c];
        }
        input->AccumulateGrad(dx);
      });
}

Tensor BceWithLogits(const Tensor& logits, const Matrix& targets,
                     float pos_weight) {
  CPGAN_CHECK(logits.value().SameShape(targets));
  auto shared_targets = std::make_shared<Matrix>(targets);
  const Matrix& x = logits.value();
  double total = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) {
    float xv = x.data()[i];
    float t = targets.data()[i];
    // pos_weight * t * softplus(-x) + (1 - t) * softplus(x)
    total += pos_weight * t * StableSoftplus(-xv) +
             (1.0f - t) * StableSoftplus(xv);
  }
  Matrix out(1, 1);
  float inv = 1.0f / static_cast<float>(x.size());
  out.At(0, 0) = static_cast<float>(total) * inv;
  return Tensor::MakeNode(
      std::move(out), {logits},
      [shared_targets, pos_weight, inv](const Matrix& g, Node& self) {
        Node* input = self.inputs[0].get();
        if (!input->requires_grad) return;
        float gv = g.At(0, 0) * inv;
        Matrix dx(input->value.rows(), input->value.cols());
        for (int64_t i = 0; i < dx.size(); ++i) {
          float xv = input->value.data()[i];
          float t = shared_targets->data()[i];
          float s = StableSigmoid(xv);
          // d/dx [pw * t * softplus(-x) + (1-t) * softplus(x)]
          dx.data()[i] = gv * (-pos_weight * t * (1.0f - s) + (1.0f - t) * s);
        }
        input->AccumulateGrad(dx);
      });
}

Tensor MseLoss(const Tensor& a, const Tensor& b) {
  return MeanAll(Square(Sub(a, b)));
}

Tensor Constant(Matrix value) { return Tensor(std::move(value), false); }

Tensor ScalarConstant(float value) {
  Matrix m(1, 1);
  m.At(0, 0) = value;
  return Tensor(std::move(m), false);
}

bool AllFinite(const Matrix& m) {
  const float* p = m.data();
  for (int64_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool ValueFinite(const Tensor& t) {
  return t.defined() && AllFinite(t.value());
}

bool GradsFinite(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) {
    if (!p.defined()) continue;
    if (!AllFinite(p.grad())) return false;
  }
  return true;
}

float MaxAbsGrad(const std::vector<Tensor>& params) {
  float max_abs = 0.0f;
  for (const Tensor& p : params) {
    if (!p.defined()) continue;
    const Matrix& g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      float a = std::fabs(g.data()[i]);
      if (a > max_abs) max_abs = a;
    }
  }
  return max_abs;
}

}  // namespace cpgan::tensor
