#ifndef CPGAN_TENSOR_MATRIX_H_
#define CPGAN_TENSOR_MATRIX_H_

#include <cstdint>

#include "util/aligned.h"
#include "util/check.h"
#include "util/rng.h"

namespace cpgan::tensor {

/// Dense row-major 2-D float matrix.
///
/// This is the storage type underlying the autograd engine. All shapes in the
/// library are rank-2; higher-rank quantities (e.g. the n x k x d ladder
/// features) are represented as vectors of matrices, one per hierarchy level.
/// Storage is 64-byte aligned (util::AlignedFloats) so the SIMD kernel
/// backends issue unmasked vector loads, and every allocation — alignment
/// padding included — is reported to util::MemoryTracker so the benchmarks
/// and the serving memory-pressure ladder see the real footprint.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix();

  /// rows x cols matrix, zero-initialized.
  Matrix(int rows, int cols);

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(int rows, int cols, float fill);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(Matrix&& other) noexcept;
  ~Matrix();

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }

  float& At(int r, int c) {
    CPGAN_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<int64_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    CPGAN_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<int64_t>(r) * cols_ + c];
  }

  /// Unchecked element access for hot loops.
  float* Row(int r) { return data_.data() + static_cast<int64_t>(r) * cols_; }
  const float* Row(int r) const {
    return data_.data() + static_cast<int64_t>(r) * cols_;
  }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every entry to `value`.
  void Fill(float value);

  /// Fills with N(0, stddev^2) samples.
  void FillNormal(util::Rng& rng, float stddev);

  /// Fills with U(lo, hi) samples.
  void FillUniform(util::Rng& rng, float lo, float hi);

  /// True if shapes match.
  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Frobenius norm.
  float Norm() const;

  /// Sum of all entries.
  float Sum() const;

  /// this += other (shapes must match).
  void AddInPlace(const Matrix& other);

  /// this += alpha * other (shapes must match).
  void Axpy(float alpha, const Matrix& other);

  /// this *= alpha.
  void Scale(float alpha);

  /// Returns the transpose.
  Matrix Transposed() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  util::AlignedFloats data_;
};

/// C = A * B.
Matrix Matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B without materializing A^T.
Matrix MatmulTN(const Matrix& a, const Matrix& b);

/// C = A * B^T without materializing B^T.
Matrix MatmulNT(const Matrix& a, const Matrix& b);

/// C += A * B into an existing accumulator (shape checked).
void MatmulAccum(const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace cpgan::tensor

#endif  // CPGAN_TENSOR_MATRIX_H_
