#include "tensor/tensor.h"

#include <unordered_set>

namespace cpgan::tensor {

Tensor::Tensor(Matrix value, bool requires_grad)
    : node_(std::make_shared<internal::Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

int Tensor::rows() const {
  CPGAN_CHECK(defined());
  return node_->value.rows();
}

int Tensor::cols() const {
  CPGAN_CHECK(defined());
  return node_->value.cols();
}

const Matrix& Tensor::value() const {
  CPGAN_CHECK(defined());
  return node_->value;
}

Matrix& Tensor::mutable_value() {
  CPGAN_CHECK(defined());
  return node_->value;
}

const Matrix& Tensor::grad() const {
  CPGAN_CHECK(defined());
  if (!node_->grad_initialized) {
    // Lazily materialize a zero gradient of matching shape.
    node_->grad = Matrix(node_->value.rows(), node_->value.cols());
    node_->grad_initialized = true;
  }
  return node_->grad;
}

bool Tensor::requires_grad() const {
  CPGAN_CHECK(defined());
  return node_->requires_grad;
}

void Tensor::ZeroGrad() {
  CPGAN_CHECK(defined());
  node_->grad = Matrix();
  node_->grad_initialized = false;
}

float Tensor::Scalar() const {
  CPGAN_CHECK(defined());
  CPGAN_CHECK(node_->value.rows() == 1 && node_->value.cols() == 1);
  return node_->value.At(0, 0);
}

Tensor Tensor::Detach() const {
  CPGAN_CHECK(defined());
  return Tensor(node_->value, /*requires_grad=*/false);
}

Tensor Tensor::MakeNode(
    Matrix value, std::vector<Tensor> inputs,
    std::function<void(const Matrix&, internal::Node&)> backward) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  bool any_grad = false;
  for (const Tensor& input : inputs) {
    CPGAN_CHECK(input.defined());
    if (input.requires_grad()) any_grad = true;
    node->inputs.push_back(input.node_ptr());
  }
  node->requires_grad = any_grad;
  if (any_grad) node->backward = std::move(backward);
  return Tensor(std::move(node));
}

namespace internal {

void Node::AccumulateGrad(const Matrix& delta) {
  if (!grad_initialized) {
    grad = Matrix(value.rows(), value.cols());
    grad_initialized = true;
  }
  grad.AddInPlace(delta);
}

}  // namespace internal

void Backward(const Tensor& loss) {
  CPGAN_CHECK(loss.defined());
  CPGAN_CHECK(loss.rows() == 1 && loss.cols() == 1);
  using internal::Node;

  // Iterative post-order DFS for a topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(loss.node(), 0);
  visited.insert(loss.node());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->inputs.size()) {
      Node* next = node->inputs[child].get();
      ++child;
      if (next->requires_grad && visited.insert(next).second) {
        stack.emplace_back(next, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  Matrix seed(1, 1);
  seed.At(0, 0) = 1.0f;
  loss.node()->AccumulateGrad(seed);

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (!node->backward) continue;
    if (!node->grad_initialized) continue;  // unreachable from the loss
    node->backward(node->grad, *node);
  }
}

}  // namespace cpgan::tensor
