#ifndef CPGAN_CORE_DECODER_H_
#define CPGAN_CORE_DECODER_H_

#include <memory>
#include <vector>

#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace cpgan::core {

/// CPGAN graph decoder (Section III-E): a GRU folds the hierarchy-level
/// latent features into one node representation h_k (eq. 13), then a 2-layer
/// MLP g_theta embeds nodes and edges are scored by the inner product
/// sigmoid(g(h_i)^T g(h_j)) (eq. 14).
///
/// The CPGAN-C ablation replaces the GRU with a concatenation of all levels
/// followed by a linear projection.
class GraphDecoder : public nn::Module {
 public:
  GraphDecoder(int latent_dim, int hidden_dim, int num_levels,
               bool concat_levels, util::Rng& rng);

  /// Folds the per-level latent features (each n x latent) into node
  /// representations h_k: n x hidden.
  tensor::Tensor DecodeNodes(const std::vector<tensor::Tensor>& z_vae) const;

  /// Edge-probability logits for all pairs of the given nodes:
  /// logits = g(h) g(h)^T, shape n x n (pre-sigmoid).
  tensor::Tensor EdgeLogits(const tensor::Tensor& h) const;

  /// Node embeddings g_theta(h): n x hidden.
  tensor::Tensor EdgeEmbeddings(const tensor::Tensor& h) const;

  int hidden_dim() const { return hidden_dim_; }

  /// Current value of the global edge-logit bias.
  float edge_bias() const { return bias_.value().At(0, 0); }

 private:
  int latent_dim_;
  int hidden_dim_;
  int num_levels_;
  bool concat_levels_;
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::Linear> concat_proj_;
  std::unique_ptr<nn::Mlp> g_theta_;
  /// Learnable global logit offset, initialized to the sparsity prior so
  /// non-edges start near probability 0 instead of 0.5.
  tensor::Tensor bias_;
};

}  // namespace cpgan::core

#endif  // CPGAN_CORE_DECODER_H_
