#include "core/hier_assembly.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace cpgan::core {

namespace {

/// Distributes `total` over items proportionally to `mass`, capped at
/// `capacity`, with deterministic largest-remainder rounding and a greedy
/// top-up pass so capped blocks hand their excess to blocks with room.
std::vector<int64_t> ProportionalSplit(int64_t total,
                                       const std::vector<double>& mass,
                                       const std::vector<int64_t>& capacity) {
  const size_t n = mass.size();
  std::vector<int64_t> out(n, 0);
  double total_mass = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (capacity[i] > 0) total_mass += std::max(0.0, mass[i]);
  }
  if (total <= 0 || total_mass <= 0.0) return out;
  std::vector<double> raw(n, 0.0);
  int64_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    if (capacity[i] <= 0) continue;
    raw[i] = static_cast<double>(total) * std::max(0.0, mass[i]) / total_mass;
    out[i] = std::min(static_cast<int64_t>(raw[i]), capacity[i]);
    assigned += out[i];
  }
  // Top-up in descending fractional-remainder order (index tie-break).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double ra = raw[a] - static_cast<double>(out[a]);
    double rb = raw[b] - static_cast<double>(out[b]);
    return ra != rb ? ra > rb : a < b;
  });
  int64_t leftover = total - assigned;
  while (leftover > 0) {
    bool progressed = false;
    for (size_t i : order) {
      if (leftover == 0) break;
      if (out[i] < capacity[i]) {
        ++out[i];
        --leftover;
        progressed = true;
      }
    }
    if (!progressed) break;  // every block is at capacity
  }
  return out;
}

/// Picks up to `count` member indices evenly spread over the community (a
/// pure function of (size, count), so stitching is thread-count
/// independent).
std::vector<int> SpreadPick(const std::vector<int>& members, int count) {
  const int size = static_cast<int>(members.size());
  count = std::min(count, size);
  std::vector<int> picked;
  picked.reserve(count);
  for (int i = 0; i < count; ++i) {
    picked.push_back(members[static_cast<int64_t>(i) * size / count]);
  }
  return picked;
}

}  // namespace

uint64_t HierStreamSeed(uint64_t seed, uint64_t stream) {
  // SplitMix64 finalizer over the combined state: streams are decorrelated
  // even for adjacent community indices.
  uint64_t z = seed + stream * 0x9E3779B97F4A7C15ULL + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

CommunitySkeleton BuildSkeleton(
    const std::vector<int>& observed_labels, int num_nodes,
    int64_t target_edges,
    const std::vector<std::vector<double>>& block_density) {
  CPGAN_CHECK_GE(num_nodes, 0);
  CPGAN_CHECK_GE(target_edges, 0);
  CommunitySkeleton skeleton;
  skeleton.num_nodes = num_nodes;

  int num_communities = 0;
  for (int label : observed_labels) {
    CPGAN_CHECK_GE(label, 0);
    num_communities = std::max(num_communities, label + 1);
  }
  if (num_communities == 0) num_communities = 1;
  CPGAN_CHECK_EQ(static_cast<int>(block_density.size()), num_communities);

  // Observed community sizes, scaled to num_nodes with largest remainder.
  std::vector<int64_t> observed_sizes(num_communities, 0);
  for (int label : observed_labels) observed_sizes[label] += 1;
  std::vector<double> size_mass(observed_sizes.begin(), observed_sizes.end());
  if (observed_labels.empty()) size_mass[0] = 1.0;  // one flat community
  // Communities with no observed members stay empty (capacity 0), so every
  // output node can borrow an observed latent row from its community.
  std::vector<int64_t> size_cap(num_communities, 0);
  for (int c = 0; c < num_communities; ++c) {
    if (size_mass[c] > 0.0) size_cap[c] = num_nodes;
  }
  std::vector<int64_t> sizes =
      ProportionalSplit(num_nodes, size_mass, size_cap);

  skeleton.members.resize(num_communities);
  int next_id = 0;
  for (int c = 0; c < num_communities; ++c) {
    skeleton.members[c].resize(sizes[c]);
    std::iota(skeleton.members[c].begin(), skeleton.members[c].end(),
              next_id);
    next_id += static_cast<int>(sizes[c]);
  }
  CPGAN_CHECK_EQ(next_id, num_nodes);

  // Budgets: target_edges split over blocks by density x pair count.
  std::vector<double> block_mass;
  std::vector<int64_t> block_cap;
  std::vector<std::pair<int, int>> block_of;
  for (int a = 0; a < num_communities; ++a) {
    CPGAN_CHECK_EQ(static_cast<int>(block_density[a].size()),
                   num_communities);
    for (int b = a; b < num_communities; ++b) {
      const int64_t pairs =
          a == b ? sizes[a] * (sizes[a] - 1) / 2 : sizes[a] * sizes[b];
      block_cap.push_back(std::max<int64_t>(pairs, 0));
      block_mass.push_back(std::max(0.0, block_density[a][b]) *
                           static_cast<double>(std::max<int64_t>(pairs, 0)));
      block_of.push_back({a, b});
    }
  }
  double total_mass = 0.0;
  for (double m : block_mass) total_mass += m;
  if (total_mass <= 0.0) {
    // Degenerate probe (all-zero densities): fall back to pair-count
    // proportional budgets so the skeleton still carries the target.
    for (size_t i = 0; i < block_mass.size(); ++i) {
      block_mass[i] = static_cast<double>(block_cap[i]);
    }
  }
  std::vector<int64_t> budgets =
      ProportionalSplit(target_edges, block_mass, block_cap);

  skeleton.budget.assign(num_communities,
                         std::vector<int64_t>(num_communities, 0));
  for (size_t i = 0; i < block_of.size(); ++i) {
    const auto& [a, b] = block_of[i];
    skeleton.budget[a][b] = budgets[i];
    skeleton.budget[b][a] = budgets[i];
  }
  return skeleton;
}

graph::Graph HierAssembleGraph(const CommunitySkeleton& skeleton,
                               const SubgraphScorer& scorer,
                               const HierAssemblyOptions& options) {
  CPGAN_TRACE_SPAN("hier/assemble");
  if (options.aborted != nullptr) *options.aborted = false;
  const int num_communities = skeleton.num_communities();
  const int num_nodes = skeleton.num_nodes;
  CPGAN_GAUGE_SET("hier.communities",
                  static_cast<double>(num_communities));
  if (num_nodes < 2 || num_communities == 0) {
    return graph::Graph(num_nodes, {});
  }

  bool stopped = false;
  auto poll_abort = [&options, &stopped]() {
    if (stopped) return true;
    if (options.should_abort && options.should_abort()) {
      stopped = true;
      if (options.aborted != nullptr) *options.aborted = true;
      CPGAN_COUNTER_ADD("hier.aborts", 1);
    }
    return stopped;
  };
  auto run_phase = [&options](const std::function<void()>& phase) {
    if (options.run_phase) {
      options.run_phase(phase);
    } else {
      phase();
    }
  };
  util::ThreadPool& pool = util::ThreadPool::Global();
  const int wave =
      options.wave_size > 0 ? options.wave_size : pool.num_threads();

  // ----- Intra-community decodes, fanned out in waves. Each community is
  // its own AssembleGraph on its own RNG stream; per-community abort flags
  // avoid cross-thread writes to one shared out-param. -----
  std::vector<std::vector<graph::Edge>> intra(num_communities);
  std::vector<uint8_t> community_aborted(num_communities, 0);
  int waves = 0;
  for (int start = 0; start < num_communities && !poll_abort();
       start += wave) {
    const int end = std::min(num_communities, start + wave);
    ++waves;
    run_phase([&, start, end]() {
      CPGAN_TRACE_SPAN("hier/intra_wave");
      pool.ParallelFor(start, end, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t c = lo; c < hi; ++c) {
          const std::vector<int>& members = skeleton.members[c];
          const int size = static_cast<int>(members.size());
          const int64_t target = skeleton.budget[c][c];
          if (size < 2 || target <= 0) continue;
          AssemblyOptions local = options.assembly;
          bool local_aborted = false;
          local.should_abort = options.should_abort;
          local.aborted = &local_aborted;
          util::Rng rng(HierStreamSeed(options.seed,
                                       static_cast<uint64_t>(c)));
          graph::Graph block = AssembleGraph(
              size, target,
              [&scorer, &members](const std::vector<int>& local_ids) {
                std::vector<int> global_ids(local_ids.size());
                for (size_t i = 0; i < local_ids.size(); ++i) {
                  global_ids[i] = members[local_ids[i]];
                }
                return scorer(global_ids);
              },
              local, rng);
          std::vector<graph::Edge> edges = block.Edges();
          for (auto& [u, v] : edges) {
            u = members[u];
            v = members[v];
          }
          intra[c] = std::move(edges);
          community_aborted[c] = local_aborted ? 1 : 0;
        }
      });
    });
  }
  for (uint8_t flag : community_aborted) {
    if (flag && options.aborted != nullptr) *options.aborted = true;
    if (flag) stopped = true;
  }

  // ----- Cross-community stitching: per block pair, decode a boundary
  // union and draw the budget without replacement, proportional to the
  // decoded cross-block probabilities. -----
  struct StitchPair {
    int a = 0;
    int b = 0;
    int64_t budget = 0;
    uint64_t stream = 0;
  };
  std::vector<StitchPair> pairs;
  {
    uint64_t pair_index = 0;
    for (int a = 0; a < num_communities; ++a) {
      for (int b = a + 1; b < num_communities; ++b, ++pair_index) {
        if (skeleton.budget[a][b] <= 0) continue;
        if (skeleton.members[a].empty() || skeleton.members[b].empty()) {
          continue;
        }
        pairs.push_back({a, b, skeleton.budget[a][b],
                         static_cast<uint64_t>(num_communities) +
                             pair_index});
      }
    }
  }
  std::vector<std::vector<graph::Edge>> inter(pairs.size());
  for (size_t start = 0; start < pairs.size() && !poll_abort();
       start += static_cast<size_t>(wave)) {
    const size_t end =
        std::min(pairs.size(), start + static_cast<size_t>(wave));
    ++waves;
    run_phase([&, start, end]() {
      CPGAN_TRACE_SPAN("hier/stitch_wave");
      pool.ParallelFor(
          static_cast<int64_t>(start), static_cast<int64_t>(end), 1,
          [&](int64_t lo, int64_t hi) {
            for (int64_t p = lo; p < hi; ++p) {
              const StitchPair& sp = pairs[p];
              // Boundary candidates scale with the budget so tiny blocks
              // pay for tiny decodes, capped by stitch_candidates.
              const int want = static_cast<int>(std::min<int64_t>(
                  options.stitch_candidates,
                  4 + static_cast<int64_t>(
                          std::ceil(2.0 * std::sqrt(
                                              static_cast<double>(
                                                  sp.budget))))));
              std::vector<int> cand_a =
                  SpreadPick(skeleton.members[sp.a], want);
              std::vector<int> cand_b =
                  SpreadPick(skeleton.members[sp.b], want);
              const int na = static_cast<int>(cand_a.size());
              const int nb = static_cast<int>(cand_b.size());
              if (na == 0 || nb == 0) continue;
              // Communities own disjoint ascending id ranges, so the
              // concatenation is already sorted.
              std::vector<int> ids;
              ids.reserve(na + nb);
              ids.insert(ids.end(), cand_a.begin(), cand_a.end());
              ids.insert(ids.end(), cand_b.begin(), cand_b.end());
              tensor::Matrix probs = scorer(ids);
              std::vector<double> weights(
                  static_cast<size_t>(na) * nb);
              for (int i = 0; i < na; ++i) {
                for (int j = 0; j < nb; ++j) {
                  weights[static_cast<size_t>(i) * nb + j] = std::max(
                      1e-12, static_cast<double>(probs.At(i, na + j)));
                }
              }
              const int64_t draws = std::min<int64_t>(
                  sp.budget, static_cast<int64_t>(weights.size()));
              util::Rng rng(HierStreamSeed(options.seed, sp.stream));
              std::vector<int> picked =
                  rng.WeightedSampleWithoutReplacement(
                      weights, static_cast<int>(draws));
              std::sort(picked.begin(), picked.end());
              std::vector<graph::Edge>& out = inter[p];
              out.reserve(picked.size());
              for (int flat : picked) {
                out.push_back({cand_a[flat / nb], cand_b[flat % nb]});
              }
            }
          });
    });
  }

  // Deterministic merge: community order, then block-pair order. Blocks are
  // disjoint, so no duplicate edges are possible.
  std::vector<graph::Edge> edges;
  int64_t intra_total = 0, inter_total = 0;
  for (const auto& block : intra) intra_total += block.size();
  for (const auto& block : inter) inter_total += block.size();
  edges.reserve(intra_total + inter_total);
  for (const auto& block : intra) {
    edges.insert(edges.end(), block.begin(), block.end());
  }
  for (const auto& block : inter) {
    edges.insert(edges.end(), block.begin(), block.end());
  }
  CPGAN_COUNTER_ADD("hier.waves", static_cast<uint64_t>(waves));
  CPGAN_COUNTER_ADD("hier.intra_edges", static_cast<uint64_t>(intra_total));
  CPGAN_COUNTER_ADD("hier.inter_edges", static_cast<uint64_t>(inter_total));
  return graph::Graph(num_nodes, edges);
}

}  // namespace cpgan::core
