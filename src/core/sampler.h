#ifndef CPGAN_CORE_SAMPLER_H_
#define CPGAN_CORE_SAMPLER_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::core {

/// Per-node selection weights used by DegreeProportionalSample: deg_i for
/// connected nodes, and for isolated nodes a floor *relative to the graph's
/// minimum positive degree* (kIsolatedFloorFraction of it). The floor used
/// to be the absolute constant 0.01, so isolated nodes were ~2% of a
/// min-degree node on one graph and 1% of *any* node's weight on another —
/// their selection probability collapsed on large/dense graphs and
/// dominated on tiny sparse ones. A relative floor keeps the
/// isolated : min-degree selection ratio scale-invariant. All-isolated
/// graphs get uniform weight 1.0.
std::vector<double> DegreeSampleWeights(const graph::Graph& g);

/// Isolated-node weight as a fraction of the minimum positive degree.
inline constexpr double kIsolatedFloorFraction = 0.01;

/// Samples `count` distinct nodes with probability proportional to degree
/// (P_i = deg_i / sum deg, Section III-E), isolated nodes floored per
/// DegreeSampleWeights. Returns sorted node ids.
std::vector<int> DegreeProportionalSample(const graph::Graph& g, int count,
                                          util::Rng& rng);

/// Uniformly samples `count` distinct node ids from [0, n). Sorted.
std::vector<int> UniformNodeSample(int n, int count, util::Rng& rng);

/// A sensitivity-sampled coreset: distinct node ids (sorted) plus one
/// importance weight per node. Weights make coreset sums unbiased: for any
/// per-node cost c_i, E[sum_{i in coreset} w_i c_i] = sum_i c_i, so
/// training statistics computed on the coreset stand in for the full
/// graph's (the minicore IndexCoreset idiom; Lucic et al.-style mixture
/// sensitivities).
struct CoresetSample {
  std::vector<int> nodes;
  std::vector<double> weights;  // aligned with nodes; strictly positive

  size_t size() const { return nodes.size(); }
};

/// Draws a coreset of at most `count` distinct nodes by sensitivity-style
/// importance sampling: node i's sensitivity is the mixture
///
///   s_i = 1/2 * deg_i / (2m)  +  1/2 * 1/n
///
/// (cost-proportional term + uniform regularizer, so zero-degree nodes keep
/// nonzero mass and no node's weight can explode). `count` draws are taken
/// WITH replacement from p_i = s_i, each carrying weight 1/(count * p_i);
/// repeated draws are compacted by summing their weights (minicore
/// `IndexCoreset::compact`), which is what makes the estimator above exactly
/// unbiased. Degenerate graphs (no edges) fall back to uniform sampling.
/// The distinct-node count is <= count, approaching it as count << n.
CoresetSample SensitivityCoresetSample(const graph::Graph& g, int count,
                                       util::Rng& rng);

}  // namespace cpgan::core

#endif  // CPGAN_CORE_SAMPLER_H_
