#ifndef CPGAN_CORE_SAMPLER_H_
#define CPGAN_CORE_SAMPLER_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::core {

/// Samples `count` distinct nodes with probability proportional to degree
/// (P_i = deg_i / sum deg, Section III-E), falling back to uniform for
/// degree-0 graphs. Returns sorted node ids.
std::vector<int> DegreeProportionalSample(const graph::Graph& g, int count,
                                          util::Rng& rng);

/// Uniformly samples `count` distinct node ids from [0, n). Sorted.
std::vector<int> UniformNodeSample(int n, int count, util::Rng& rng);

}  // namespace cpgan::core

#endif  // CPGAN_CORE_SAMPLER_H_
