#include "core/sampler.h"

#include <algorithm>

#include "util/check.h"

namespace cpgan::core {

std::vector<int> DegreeProportionalSample(const graph::Graph& g, int count,
                                          util::Rng& rng) {
  int n = g.num_nodes();
  count = std::min(count, n);
  std::vector<double> weights(n);
  double total = 0.0;
  for (int v = 0; v < n; ++v) {
    weights[v] = static_cast<double>(g.degree(v));
    total += weights[v];
  }
  std::vector<int> nodes;
  if (total <= 0.0) {
    nodes = rng.SampleWithoutReplacement(n, count);
  } else {
    // Give isolated nodes a small weight so they can still be selected.
    for (double& w : weights) {
      if (w <= 0.0) w = 0.01;
    }
    nodes = rng.WeightedSampleWithoutReplacement(weights, count);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

std::vector<int> UniformNodeSample(int n, int count, util::Rng& rng) {
  count = std::min(count, n);
  std::vector<int> nodes = rng.SampleWithoutReplacement(n, count);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace cpgan::core
