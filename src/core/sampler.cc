#include "core/sampler.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "util/check.h"

namespace cpgan::core {

std::vector<double> DegreeSampleWeights(const graph::Graph& g) {
  int n = g.num_nodes();
  std::vector<double> weights(n);
  int min_positive = 0;
  for (int v = 0; v < n; ++v) {
    int d = g.degree(v);
    weights[v] = static_cast<double>(d);
    if (d > 0 && (min_positive == 0 || d < min_positive)) min_positive = d;
  }
  if (min_positive == 0) {
    // No edges at all: uniform.
    std::fill(weights.begin(), weights.end(), 1.0);
    return weights;
  }
  const double floor = kIsolatedFloorFraction * min_positive;
  for (double& w : weights) {
    if (w <= 0.0) w = floor;
  }
  return weights;
}

std::vector<int> DegreeProportionalSample(const graph::Graph& g, int count,
                                          util::Rng& rng) {
  int n = g.num_nodes();
  count = std::min(count, n);
  std::vector<int> nodes =
      rng.WeightedSampleWithoutReplacement(DegreeSampleWeights(g), count);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

std::vector<int> UniformNodeSample(int n, int count, util::Rng& rng) {
  count = std::min(count, n);
  std::vector<int> nodes = rng.SampleWithoutReplacement(n, count);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

CoresetSample SensitivityCoresetSample(const graph::Graph& g, int count,
                                       util::Rng& rng) {
  CoresetSample result;
  const int n = g.num_nodes();
  if (n == 0 || count <= 0) return result;
  count = std::min(count, n);
  const double total_degree = 2.0 * static_cast<double>(g.num_edges());

  if (total_degree <= 0.0) {
    result.nodes = rng.SampleWithoutReplacement(n, count);
    std::sort(result.nodes.begin(), result.nodes.end());
    // Uniform without-replacement inclusion probability is count/n, so the
    // Horvitz-Thompson weight n/count keeps coreset sums unbiased.
    result.weights.assign(result.nodes.size(),
                          static_cast<double>(n) / count);
    return result;
  }

  // Mixture sensitivities: half cost-proportional, half uniform. They sum
  // to 1 by construction, so s_i is directly the draw probability p_i.
  std::vector<double> p(n);
  for (int v = 0; v < n; ++v) {
    p[v] = 0.5 * static_cast<double>(g.degree(v)) / total_degree +
           0.5 / static_cast<double>(n);
  }

  // `count` draws with replacement, compacted by summing the weights of
  // repeated indices (an ordered map so the output is sorted as a side
  // effect). O(log n) per draw via the cumulative table.
  util::CumulativeSampler sampler(p);
  std::map<int, double> picked;
  for (int draw = 0; draw < count; ++draw) {
    int v = sampler.Sample(rng);
    picked[v] += 1.0 / (static_cast<double>(count) * p[v]);
  }
  result.nodes.reserve(picked.size());
  result.weights.reserve(picked.size());
  for (const auto& [v, w] : picked) {
    result.nodes.push_back(v);
    result.weights.push_back(w);
  }
  CPGAN_GAUGE_SET("coreset.distinct_nodes",
                  static_cast<int64_t>(result.nodes.size()));
  CPGAN_GAUGE_SET("coreset.requested_nodes", count);
  return result;
}

}  // namespace cpgan::core
