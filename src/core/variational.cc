#include "core/variational.h"

#include "util/check.h"

namespace cpgan::core {

namespace t = cpgan::tensor;

VariationalInference::VariationalInference(int in_dim, int hidden_dim,
                                           int latent_dim, util::Rng& rng)
    : latent_dim_(latent_dim) {
  g_mu_ = std::make_unique<nn::Mlp>(
      std::vector<int>{in_dim, hidden_dim, latent_dim}, rng);
  RegisterModule(g_mu_.get());
  g_sigma_ = std::make_unique<nn::Mlp>(
      std::vector<int>{in_dim, hidden_dim, latent_dim}, rng);
  RegisterModule(g_sigma_.get());
}

VariationalOutput VariationalInference::Forward(
    const std::vector<t::Tensor>& z_rec, util::Rng& rng, bool sample) const {
  CPGAN_CHECK(!z_rec.empty());
  VariationalOutput out;
  out.kl = t::ScalarConstant(0.0f);
  for (const t::Tensor& level : z_rec) {
    int n = level.rows();
    t::Tensor mu = g_mu_->Forward(level);          // n x d'
    t::Tensor s = g_sigma_->Forward(level);        // n x d'
    // sigma_bar^2 = (1/n^2) sum_i s_i^2 = ColMean(s^2) / n  (eq. 12).
    t::Tensor sigma2 =
        t::AddConst(t::Scale(t::ColMean(t::Square(s)), 1.0f / n), 1e-8f);
    if (sample) {
      t::Matrix eps(n, latent_dim_);
      eps.FillNormal(rng, 1.0f);
      t::Tensor sigma_bar = t::Sqrt(sigma2);       // 1 x d'
      out.z_vae.push_back(
          t::Add(mu, t::MulRowVec(t::Constant(std::move(eps)), sigma_bar)));
    } else {
      out.z_vae.push_back(mu);
    }
    // KL(N(mu_bar, diag(sigma_bar^2)) || N(0, I)) per eq. (19).
    t::Tensor mu_bar = t::ColMean(mu);
    t::Tensor kl_level = t::Scale(
        t::SumAll(t::Sub(t::Add(sigma2, t::Square(mu_bar)),
                         t::AddConst(t::Log(sigma2), 1.0f))),
        0.5f);
    out.kl = t::Add(out.kl, kl_level);
  }
  return out;
}

}  // namespace cpgan::core
