#ifndef CPGAN_CORE_LOSSES_H_
#define CPGAN_CORE_LOSSES_H_

#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace cpgan::core {

/// \file
/// Per-node loss terms shared by the training loop and the coreset-weighted
/// estimators. Everything here is composed from the primitive ops in
/// tensor/ops.h, so gradient coverage comes from the existing gradcheck
/// registry entries — no new autograd nodes.

/// Assignment negative log-likelihood: -mean_i log S[i, y_i] via a one-hot
/// mask. `s` is n x c (rows on the simplex), `y` holds n labels clamped to
/// [0, c).
tensor::Tensor AssignmentNll(const tensor::Tensor& s,
                             const std::vector<int>& y);

/// Importance-weighted assignment NLL: -inv_norm * sum_i w_i log S[i, y_i].
/// With `weights` all 1 and inv_norm = 1/n this equals AssignmentNll
/// bitwise. With Horvitz-Thompson coreset weights and inv_norm = 1/n_full
/// (scaled by the batch fraction of the coreset) the term is an unbiased
/// estimate of the full-graph mean NLL for costs fixed per node
/// (tests/core/coreset_test.cc pins this against full-graph gradients).
tensor::Tensor WeightedAssignmentNll(const tensor::Tensor& s,
                                     const std::vector<int>& y,
                                     const std::vector<float>& weights,
                                     float inv_norm);

/// Importance-weighted binary cross-entropy on logits:
///   inv_norm * sum_ij w_i w_j [pos_weight * t_ij * softplus(-x_ij)
///                              + (1 - t_ij) * softplus(x_ij)]
/// i.e. the stable elementwise BCE with each entry weighted by the product
/// of its row and column node weights (the pair-level Horvitz-Thompson
/// weight under with-replacement node sampling). With `node_weights` all 1
/// and inv_norm = 1/n^2 this matches tensor::BceWithLogits up to float
/// summation order.
tensor::Tensor WeightedBceWithLogits(const tensor::Tensor& logits,
                                     const tensor::Matrix& targets,
                                     const std::vector<float>& node_weights,
                                     float pos_weight, float inv_norm);

}  // namespace cpgan::core

#endif  // CPGAN_CORE_LOSSES_H_
