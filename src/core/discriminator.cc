#include "core/discriminator.h"

#include "obs/trace.h"
#include "util/check.h"

namespace cpgan::core {

namespace t = cpgan::tensor;

Discriminator::Discriminator(int num_levels, int hidden_dim, util::Rng& rng)
    : num_levels_(num_levels), hidden_dim_(hidden_dim) {
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{num_levels * hidden_dim, hidden_dim, 1}, rng);
  RegisterModule(mlp_.get());
}

t::Tensor Discriminator::ForwardLogit(const t::Tensor& readout) const {
  CPGAN_CHECK_EQ(readout.rows(), num_levels_);
  CPGAN_CHECK_EQ(readout.cols(), hidden_dim_);
  CPGAN_TRACE_SPAN("discriminator/forward");
  t::Tensor flat = t::Reshape(readout, 1, num_levels_ * hidden_dim_);
  return mlp_->Forward(flat);
}

t::Tensor Discriminator::Forward(const t::Tensor& readout) const {
  return t::Sigmoid(ForwardLogit(readout));
}

}  // namespace cpgan::core
