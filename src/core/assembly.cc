#include "core/assembly.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.h"

namespace cpgan::core {

graph::Graph AssembleGraph(int num_nodes, int64_t target_edges,
                           const SubgraphScorer& scorer,
                           const AssemblyOptions& options, util::Rng& rng) {
  CPGAN_CHECK_GE(num_nodes, 0);
  CPGAN_CHECK_GE(target_edges, 0);
  if (options.aborted != nullptr) *options.aborted = false;
  std::set<graph::Edge> edges;
  if (num_nodes < 2 || target_edges == 0) {
    return graph::Graph(num_nodes, {});
  }
  int ns = std::min(options.subgraph_size, num_nodes);
  int chunks_per_pass = (num_nodes + ns - 1) / ns;

  double total_pairs = 0.5 * num_nodes * (num_nodes - 1.0);

  std::vector<int> perm(num_nodes);
  for (int i = 0; i < num_nodes; ++i) perm[i] = i;

  auto aborting = [&options]() {
    if (!options.should_abort || !options.should_abort()) return false;
    if (options.aborted != nullptr) *options.aborted = true;
    return true;
  };

  for (int pass = 0;
       pass < options.max_passes &&
       static_cast<int64_t>(edges.size()) < target_edges;
       ++pass) {
    if (aborting()) break;
    rng.Shuffle(perm);
    for (int chunk = 0; chunk < chunks_per_pass; ++chunk) {
      if (static_cast<int64_t>(edges.size()) >= target_edges) break;
      if (aborting()) break;
      int begin = chunk * ns;
      int end = std::min(num_nodes, begin + ns);
      std::vector<int> ids(perm.begin() + begin, perm.begin() + end);
      std::sort(ids.begin(), ids.end());
      int k = static_cast<int>(ids.size());
      if (k < 2) continue;
      tensor::Matrix probs = scorer(ids);
      CPGAN_CHECK_EQ(probs.rows(), k);
      CPGAN_CHECK_EQ(probs.cols(), k);

      // Step 1: one categorical edge per node (keeps low-degree nodes in).
      std::vector<double> row(k);
      for (int i = 0; i < k; ++i) {
        double total = 0.0;
        for (int j = 0; j < k; ++j) {
          row[j] = (j == i) ? 0.0 : std::max(0.0f, probs.At(i, j));
          total += row[j];
        }
        if (total <= 0.0) continue;
        int j = rng.Categorical(row);
        int u = std::min(ids[i], ids[j]);
        int v = std::max(ids[i], ids[j]);
        edges.insert({u, v});
        if (static_cast<int64_t>(edges.size()) >= target_edges) break;
      }
      if (static_cast<int64_t>(edges.size()) >= target_edges) break;

      // Step 2: top-k fill proportional to the subset's share of all pairs.
      double chunk_pairs = 0.5 * k * (k - 1.0);
      int64_t quota = static_cast<int64_t>(
          static_cast<double>(target_edges) * chunk_pairs / total_pairs * 1.5);
      quota = std::max<int64_t>(quota, k / 2);
      std::vector<std::pair<double, graph::Edge>> scored;
      scored.reserve(static_cast<size_t>(k) * (k - 1) / 2);
      for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j) {
          double p = std::max(1e-9, static_cast<double>(probs.At(i, j)));
          double key = p;
          if (options.proportional_fill) {
            // Efraimidis-Spirakis: ranking by u^(1/p) draws without
            // replacement with probability proportional to p. Done in log
            // space — log(u)/p has the same order as u^(1/p) but cannot
            // underflow when 1/p reaches 1e9 (a float power collapses every
            // small-p key to 0.0f, degenerating the fill into arbitrary
            // tie-breaking among zeros).
            key = std::log(rng.Uniform()) / p;
          }
          scored.push_back({key, {ids[i], ids[j]}});
        }
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (const auto& [score, e] : scored) {
        if (quota <= 0 ||
            static_cast<int64_t>(edges.size()) >= target_edges) {
          break;
        }
        if (edges.insert(e).second) --quota;
      }
    }
  }
  std::vector<graph::Edge> edge_list(edges.begin(), edges.end());
  return graph::Graph(num_nodes, edge_list);
}

}  // namespace cpgan::core
