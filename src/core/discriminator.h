#ifndef CPGAN_CORE_DISCRIMINATOR_H_
#define CPGAN_CORE_DISCRIMINATOR_H_

#include <memory>

#include "nn/mlp.h"

namespace cpgan::core {

/// CPGAN graph discriminator head (Section III-F1): a two-layer MLP over the
/// flattened ladder readout s (num_levels x hidden), emitting a real/fake
/// logit. The sigmoid of eq. (15) is folded into the stable BCE-with-logits
/// losses during training.
class Discriminator : public nn::Module {
 public:
  Discriminator(int num_levels, int hidden_dim, util::Rng& rng);

  /// readout: num_levels x hidden -> 1x1 logit.
  tensor::Tensor ForwardLogit(const tensor::Tensor& readout) const;

  /// sigmoid(logit): probability the graph is real.
  tensor::Tensor Forward(const tensor::Tensor& readout) const;

 private:
  int num_levels_;
  int hidden_dim_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace cpgan::core

#endif  // CPGAN_CORE_DISCRIMINATOR_H_
