#ifndef CPGAN_CORE_CONFIG_H_
#define CPGAN_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cpgan::core {

/// Hyper-parameters of the CPGAN model and its training loop.
///
/// Defaults follow the paper's experiment section scaled to a single CPU
/// core: the paper uses kernel size 128 and pooling size 256 on a 24 GB GPU;
/// we default to smaller widths so the benchmarks finish in seconds while the
/// relative comparisons are preserved. Fig. 5's sensitivity sweep (spectral
/// input dimension, number of hierarchy levels) is exposed through
/// `feature_dim` and `num_levels`.
struct CpganConfig {
  /// Dimension of the spectral node embedding used as input features X(A).
  int feature_dim = 8;

  /// Graph-convolution kernel size (paper: 128).
  int hidden_dim = 32;

  /// Latent dimension d' of the variational module.
  int latent_dim = 16;

  /// Number of hierarchy levels k in the ladder encoder (Fig. 5: 2 is best).
  int num_levels = 2;

  /// Cluster counts per pooling step (size num_levels - 1). Empty means
  /// derived from the graph: level l pools to max(2, n / 8^(l+1)), capped by
  /// `max_pool_size`.
  std::vector<int> pool_sizes;

  /// Cap on any derived pooling size (paper: 256).
  int max_pool_size = 64;

  /// Training epochs (each epoch = one discriminator + one generator step on
  /// a sampled subgraph).
  int epochs = 120;

  /// Nodes sampled per training step (n_s in Section III-E).
  int subgraph_size = 128;

  /// Adam learning rate (paper: 1e-3).
  float learning_rate = 1e-3f;

  /// Learning-rate multiplier for the "memorization" parameter group — the
  /// trainable node features and the decoder (whose dot-product logits must
  /// grow to separate edges from the quadratically many non-edges). The
  /// adversarial parts keep the base rate for stability.
  float fast_lr_multiplier = 20.0f;

  /// Learning-rate decay factor and period in epochs (paper: 0.3 / 400).
  float lr_decay = 0.3f;
  int lr_decay_every = 400;

  /// Loss weights: adversarial terms, clustering consistency (L_clus),
  /// mapping consistency (L_rec), KL prior, and the reconstruction
  /// likelihood of eq. (14).
  float adv_weight = 0.1f;
  float clus_weight = 1.0f;
  float rec_weight = 1.0f;
  float kl_weight = 1e-2f;
  float bce_weight = 3.0f;

  /// Gradient clip (elementwise) for adversarial stability.
  float grad_clip = 5.0f;

  /// Run the discriminator update every this many epochs (the generator
  /// updates every epoch). 1 = the paper's strict alternation; larger values
  /// trade adversarial pressure for wall-clock on a single core.
  int disc_every = 2;

  /// Include the Gaussian-prior sample path (second expectation of eq. 16)
  /// every this many epochs.
  int prior_every = 4;

  /// Ablation switches (Table VI):
  /// CPGAN-C — replace the GRU node decoding with a concatenation.
  bool concat_decoder = false;
  /// CPGAN-noV — disable variational inference (use means, no KL).
  bool use_variational = true;
  /// CPGAN-noH — disable hierarchical pooling (single level).
  bool use_hierarchy = true;

  /// Use the A + A^2 connectivity-boosted normalized adjacency in the
  /// encoder (Section III-C1's "information can flow among nodes faster"
  /// variant). Off by default; costs extra fill-in on dense graphs.
  bool use_two_hop_adjacency = false;

  /// Train on a sensitivity-sampled coreset subgraph of at most this many
  /// nodes instead of the full observed graph (docs/INTERNALS.md,
  /// "Streaming ingest"): nodes are drawn by mixture-sensitivity importance
  /// sampling (core/sampler.h, SensitivityCoresetSample) and the induced
  /// subgraph replaces the observed graph for the whole run — spectral
  /// features, Louvain targets, and per-epoch subgraph sampling all operate
  /// on the coreset, so training cost and memory depend on coreset_size,
  /// not on the full graph. 0 (default) trains on the full graph. Ignored
  /// when >= the observed node count.
  int coreset_size = 0;

  /// Default generation mode for Generate()/GenerateWithSize(): when true,
  /// graphs are assembled hierarchically (docs/INTERNALS.md, "Hierarchical
  /// assembly") — community skeleton from the learned pooled
  /// representation, per-community decodes fanned out over the thread
  /// pool, cross-community stitching. Purely a generation-time switch: it
  /// does not affect training or the architecture hash, so checkpoints are
  /// interchangeable between modes. The serving protocol selects the mode
  /// per request (`hier=1`) regardless of this default.
  bool hierarchical_generation = false;

  /// Soft RAM budget in MiB enforced through util::MemoryTracker: set as
  /// the tracker budget for the run, and TrainStats::budget_exceeded
  /// reports whether the tracked peak (tensor storage + ingest CSR
  /// construction) overran it. The binary ingest path additionally refuses
  /// up front to build a CSR whose projected footprint exceeds the budget
  /// (graph/binary_io.h). 0 (default) = unlimited.
  int64_t mem_budget_mb = 0;

  /// Worker threads for the parallel kernels (matmul, SpMM, graph metrics).
  /// 0 keeps the process-wide default (CPGAN_NUM_THREADS env var, falling
  /// back to the hardware concurrency); > 0 resizes the global pool.
  /// Results are bitwise identical for any value (docs/INTERNALS.md,
  /// "Threading model").
  int num_threads = 0;

  /// Kernel backend for the dense/sparse tensor primitives: "scalar",
  /// "avx2", or "neon" (must be available on this machine). Empty keeps the
  /// process-wide selection (CPGAN_KERNEL_BACKEND env var, falling back to
  /// CPUID auto-detection). Results are bitwise reproducible within a
  /// backend; backends differ from each other below the differential-test
  /// tolerance (docs/INTERNALS.md, "Kernel backends").
  std::string kernel_backend;

  /// RNG seed for parameters, sampling, and generation.
  uint64_t seed = 1;

  /// Emit progress logs during training.
  bool verbose = false;

  // ----- Fault tolerance (src/train/; docs/INTERNALS.md) -----

  /// Numeric training guard: every optimizer step's loss and gradients are
  /// checked for NaN/Inf and explosion; a rejected step is skipped and the
  /// parameters roll back to the last-known-good snapshot.
  bool guard_enabled = true;

  /// Rolling window of recent good losses used as the explosion reference.
  int guard_window = 16;

  /// Reject a step whose |loss| exceeds this multiple of the windowed mean
  /// absolute loss (<= 0 disables the explosion check).
  float guard_explosion_factor = 25.0f;

  /// Learning-rate multiplier applied to all optimizers after each guard
  /// recovery (1 = keep the rate).
  float guard_lr_decay = 0.5f;

  /// Stop training after this many guard recoveries instead of thrashing
  /// (the model keeps its last-known-good weights). 0 = unlimited.
  int guard_max_recoveries = 0;

  /// Directory for periodic training checkpoints (created if missing).
  /// Empty disables checkpointing.
  std::string checkpoint_dir;

  /// Write a checkpoint every this many epochs; one is always written after
  /// the final epoch when checkpointing is enabled.
  int checkpoint_every = 50;

  // ----- Observability (src/obs/; docs/OBSERVABILITY.md) -----

  /// Structured run log: write one JSONL record per training epoch (losses,
  /// grad norm, guard trips, checkpoint latency, memory, RSS) to this path.
  /// Empty disables the run log.
  std::string metrics_out;

  /// Also append a full metrics-registry snapshot line (tagged
  /// "kind":"metrics_snapshot") to the run log every this many epochs, plus
  /// once after the final epoch. 0 (default) disables, keeping the run log
  /// at exactly one line per epoch for line-counting consumers.
  int metrics_snapshot_every = 0;

  /// Collect trace spans during training and print the aggregated profile
  /// table after Fit returns. Purely observational — enabling it cannot
  /// change any numeric result.
  bool profile = false;

  /// Record Chrome trace_event JSON for every span and write it to this
  /// path after Fit (load via chrome://tracing or Perfetto). Empty disables.
  std::string trace_out;
};

}  // namespace cpgan::core

#endif  // CPGAN_CORE_CONFIG_H_
