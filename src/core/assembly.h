#ifndef CPGAN_CORE_ASSEMBLY_H_
#define CPGAN_CORE_ASSEMBLY_H_

#include <functional>
#include <vector>

#include "graph/graph.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace cpgan::core {

/// Callback that scores a sampled node subset: given sorted distinct node
/// ids, returns a symmetric |ids| x |ids| edge-probability matrix.
using SubgraphScorer =
    std::function<tensor::Matrix(const std::vector<int>&)>;

/// Options for graph assembly (Section III-G).
struct AssemblyOptions {
  /// Nodes decoded per round (n_s). Values >= num_nodes decode in one shot.
  int subgraph_size = 256;

  /// Upper bound on decoding rounds, as a multiple of ceil(n / n_s).
  int max_passes = 8;

  /// Quota-fill strategy: true selects edges by probability-proportional
  /// sampling without replacement (preserves the decoder's relative
  /// community densities); false takes the strict top-k entries. The paper
  /// describes top-k; proportional filling is the lower-variance variant
  /// that keeps block densities faithful when probabilities are diffuse.
  bool proportional_fill = false;

  /// Cooperative cancellation, polled at every phase boundary (before each
  /// decode chunk and between passes). When it returns true, assembly stops
  /// and returns the edges built so far; the serving watchdog uses this to
  /// cancel decodes whose deadline expired without tearing down the worker
  /// (docs/SERVING.md). Unset = never abort.
  std::function<bool()> should_abort;

  /// Out-param: reset to false on entry to AssembleGraph and set to true
  /// when should_abort stopped the assembly early, so one options struct
  /// can be reused across runs without reporting a stale abort.
  bool* aborted = nullptr;
};

/// Assembles a full n-node graph from subgraph probability matrices:
/// every pass partitions a random permutation of the nodes into subsets,
/// decodes each subset, then (1) samples one edge per node from the
/// categorical distribution of its row (so low-degree nodes are not left
/// out) and (2) fills the remaining per-round quota with the top-scoring
/// entries, until `target_edges` edges exist (eq. in Section III-G).
graph::Graph AssembleGraph(int num_nodes, int64_t target_edges,
                           const SubgraphScorer& scorer,
                           const AssemblyOptions& options, util::Rng& rng);

}  // namespace cpgan::core

#endif  // CPGAN_CORE_ASSEMBLY_H_
