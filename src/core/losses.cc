#include "core/losses.h"

#include <algorithm>

#include "util/check.h"

namespace cpgan::core {

namespace t = tensor;

t::Tensor AssignmentNll(const t::Tensor& s, const std::vector<int>& y) {
  t::Matrix one_hot(s.rows(), s.cols());
  for (int i = 0; i < s.rows(); ++i) {
    one_hot.At(i, std::min(y[i], s.cols() - 1)) = 1.0f;
  }
  t::Tensor picked = t::Mul(t::Log(s), t::Constant(std::move(one_hot)));
  return t::Scale(t::SumAll(picked), -1.0f / static_cast<float>(s.rows()));
}

t::Tensor WeightedAssignmentNll(const t::Tensor& s, const std::vector<int>& y,
                                const std::vector<float>& weights,
                                float inv_norm) {
  CPGAN_CHECK_EQ(static_cast<int>(weights.size()), s.rows());
  // The weight folds into the one-hot mask, so the picked entry of row i is
  // w_i * log S[i, y_i] and everything else stays zero.
  t::Matrix mask(s.rows(), s.cols());
  for (int i = 0; i < s.rows(); ++i) {
    mask.At(i, std::min(y[i], s.cols() - 1)) = weights[i];
  }
  t::Tensor picked = t::Mul(t::Log(s), t::Constant(std::move(mask)));
  return t::Scale(t::SumAll(picked), -inv_norm);
}

t::Tensor WeightedBceWithLogits(const t::Tensor& logits,
                                const t::Matrix& targets,
                                const std::vector<float>& node_weights,
                                float pos_weight, float inv_norm) {
  const int n = logits.rows();
  CPGAN_CHECK_EQ(logits.cols(), n);
  CPGAN_CHECK_EQ(targets.rows(), n);
  CPGAN_CHECK_EQ(targets.cols(), n);
  CPGAN_CHECK_EQ(static_cast<int>(node_weights.size()), n);
  // Stable elementwise BCE: pos_weight*t*softplus(-x) + (1-t)*softplus(x),
  // assembled from masked Softplus terms.
  t::Matrix pos_mask(n, n);
  t::Matrix neg_mask(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const bool positive = targets.At(i, j) > 0.5f;
      pos_mask.At(i, j) = positive ? pos_weight : 0.0f;
      neg_mask.At(i, j) = positive ? 0.0f : 1.0f;
    }
  }
  t::Tensor elementwise =
      t::Add(t::Mul(t::Softplus(t::Neg(logits)),
                    t::Constant(std::move(pos_mask))),
             t::Mul(t::Softplus(logits), t::Constant(std::move(neg_mask))));
  // Pair weight w_i * w_j via a row scale then a column scale.
  t::Matrix col(n, 1);
  t::Matrix row(1, n);
  for (int i = 0; i < n; ++i) {
    col.At(i, 0) = node_weights[i];
    row.At(0, i) = node_weights[i];
  }
  t::Tensor weighted = t::MulRowVec(
      t::MulColVec(elementwise, t::Constant(std::move(col))),
      t::Constant(std::move(row)));
  return t::Scale(t::SumAll(weighted), inv_norm);
}

}  // namespace cpgan::core
