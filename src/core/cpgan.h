#ifndef CPGAN_CORE_CPGAN_H_
#define CPGAN_CORE_CPGAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "community/louvain.h"
#include "core/config.h"
#include "core/decoder.h"
#include "core/discriminator.h"
#include "core/ladder_encoder.h"
#include "core/variational.h"
#include "graph/graph.h"
#include "tensor/optimizer.h"
#include "train/fault.h"

namespace cpgan::core {

/// Per-training-run statistics.
struct TrainStats {
  std::vector<float> d_loss;     // discriminator loss per epoch
  std::vector<float> g_loss;     // generator loss per epoch
  std::vector<float> clus_loss;  // clustering-consistency loss per epoch
  double train_seconds = 0.0;
  int64_t peak_bytes = 0;        // peak tensor memory during training

  /// Distinct nodes in the sensitivity coreset training actually ran on
  /// (0 when coreset training was off; see CpganConfig::coreset_size).
  int coreset_nodes = 0;

  /// True when peak_bytes exceeded CpganConfig::mem_budget_mb (only ever
  /// set when a budget was configured).
  bool budget_exceeded = false;

  /// Mean reconstruction probability on the final training subgraph's
  /// positive / negative pairs (training-domain diagnostic).
  float final_pos_prob = 0.0f;
  float final_neg_prob = 0.0f;

  // ----- Fault-tolerance counters (src/train/) -----

  /// Optimizer steps rejected by the training guard (NaN/Inf/explosion) and
  /// rolled back to the last-known-good parameters.
  int recoveries = 0;

  /// Epoch the run started at (> 0 when resumed from a checkpoint).
  int start_epoch = 0;

  /// Checkpoints successfully written during this run.
  int checkpoints_written = 0;

  /// True when training stopped early because guard_max_recoveries was
  /// reached; the model keeps its last-known-good weights.
  bool guard_exhausted = false;

  /// True when a fault-plan simulated crash stopped the run (tests only).
  bool stopped_by_fault = false;

  /// True when a SIGINT/SIGTERM stop request (train/signal.h) ended the run
  /// early; a final checkpoint was written (when checkpointing is enabled)
  /// and all sinks were flushed before Fit returned.
  bool interrupted = false;

  /// Checkpoint/weight writes that needed transient-I/O retries
  /// (util/backoff.h) before succeeding.
  int checkpoint_retries = 0;

  /// JSONL records written to config.metrics_out (0 when disabled).
  int metrics_records = 0;
};

/// Controls for the reentrant generation path used by the serving runtime
/// (src/serve/). Unlike Generate()/GenerateWithSize() — which draw from the
/// model's own RNG and therefore mutate it — GenerateWith() is const and
/// takes a per-request RNG stream, so concurrent requests against one warm
/// model are independent and bitwise reproducible per seed.
struct GenerateControls {
  /// Nodes in the generated graph; 0 = the observed graph's node count.
  int num_nodes = 0;

  /// Target edge count; 0 = the observed graph's edge count.
  int64_t num_edges = 0;

  /// Draw latents from the Gaussian prior even at the observed size (the
  /// GenerateWithSize path). Sizes other than the observed one always use
  /// the prior, since posterior latents only exist per observed node.
  bool from_prior = false;

  /// Assembly batch: nodes decoded per round. 0 picks the default heuristic
  /// (the serving degradation policy shrinks this under pressure).
  int subgraph_size = 0;

  /// Upper bound on assembly passes (reduced-fidelity generation lowers it;
  /// see AssemblyOptions::max_passes).
  int max_passes = 8;

  /// Cooperative cancellation, polled at phase boundaries (the serving
  /// watchdog's deadline enforcement). Unset = never abort.
  std::function<bool()> should_abort;

  /// Set to true when should_abort stopped assembly early.
  bool* aborted = nullptr;

  /// Hierarchical community-wise generation (docs/INTERNALS.md,
  /// "Hierarchical assembly"): derive the community skeleton from the
  /// learned pooled representation, decode each community independently
  /// over the thread pool, then stitch cross-community edges from the
  /// inter-community budget. Bitwise-deterministic at any thread count.
  bool hierarchical = false;

  /// Hierarchical mode only: every kernel-heavy phase (a wave of
  /// per-community decodes, a stitching wave) runs inside this wrapper, so
  /// the serving runtime can hold serve::KernelLock() per phase instead of
  /// across the whole generation. Unset = phases run directly.
  std::function<void(const std::function<void()>&)> run_phase;
};

/// Community-Preserving GAN — the paper's primary contribution.
///
/// Wires the ladder encoder, variational module, GRU decoder, and
/// discriminator into the adversarial training loop of Section III-F, with
/// degree-proportional subgraph sampling for scalability (Section III-E) and
/// the assembly procedure of Section III-G for full-graph generation.
class Cpgan {
 public:
  explicit Cpgan(const CpganConfig& config);

  /// Trains on one observed graph. Safe to call once per instance.
  TrainStats Fit(const graph::Graph& observed);

  /// Trains on a *set* of observed graphs (the paper's problem statement
  /// allows learning from a training set): every epoch samples its subgraph
  /// from a uniformly chosen training graph, sharing all model parameters.
  /// Each graph gets its own trainable feature table. Generation and edge
  /// probabilities refer to the first graph.
  TrainStats FitMany(const std::vector<graph::Graph>& observed);

  /// Generates a graph with the observed size/edge count from the posterior
  /// latents of the observed graph (the mode evaluated in Tables III/IV).
  graph::Graph Generate();

  /// Generates a graph of arbitrary size from the Gaussian prior
  /// (Section III-G; "new graphs of arbitrary sizes").
  graph::Graph GenerateWithSize(int num_nodes, int64_t num_edges);

  /// Reentrant generation with a caller-owned RNG stream: const, so any
  /// number of requests can run against one trained model without mutating
  /// it (kernel execution itself must still be serialized by the caller —
  /// the thread pool accepts one top-level parallel region at a time; the
  /// serving runtime holds its decode lock around this call).
  graph::Graph GenerateWith(const GenerateControls& controls,
                            util::Rng& rng) const;

  /// Latent features of the observed graph under the posterior means, one
  /// n x latent matrix per hierarchy level. Deterministic (no RNG), so the
  /// serving layer computes this once per model load and reuses it across
  /// requests via GenerateFromLatents.
  std::vector<tensor::Matrix> PosteriorMeanLatents() const;

  /// Assembly over precomputed latents (posterior means or prior draws).
  /// `num_nodes` must match the latents' row count.
  graph::Graph GenerateFromLatents(const std::vector<tensor::Matrix>& latents,
                                   int num_nodes, int64_t num_edges,
                                   const GenerateControls& controls,
                                   util::Rng& rng) const;

  /// Community label per observed node from the learned pooled
  /// representation: the argmax of the encoder's level-0 assignment matrix
  /// (trained against the Louvain targets), falling back to the Louvain
  /// partition itself when pooling is disabled. Deterministic, so callers
  /// (the serving registry) compute it once per model and reuse it.
  std::vector<int> LearnedCommunityLabels() const;

  /// Hierarchical community-wise generation over precomputed observed-size
  /// latents (docs/INTERNALS.md, "Hierarchical assembly"): output nodes are
  /// split into communities proportionally to `community_labels` (sizes
  /// scaled to `num_nodes`, which may exceed the observed count), each
  /// output node borrows the latent row of an observed member of its
  /// community, the inter-community edge-budget matrix comes from a decoded
  /// probe of the block densities, per-community decodes fan out over the
  /// thread pool with per-community RNG streams, and cross-community edges
  /// are stitched from boundary-node scores. Bitwise-deterministic at any
  /// thread count for a fixed `rng` seed.
  graph::Graph GenerateHierarchicalFromLatents(
      const std::vector<tensor::Matrix>& latents,
      const std::vector<int>& community_labels, int num_nodes,
      int64_t num_edges, const GenerateControls& controls,
      util::Rng& rng) const;

  /// Builds the model architecture for `observed` and restores the full
  /// parameter set from a training checkpoint, without running any training
  /// epochs — the warm-load path of the serving model registry. The
  /// checkpoint's CRCs and architecture hash are validated before any
  /// parameter changes; on failure the model stays untrained and `error`
  /// (if non-null) explains why. The graph must match the one the
  /// checkpoint was trained on (the architecture hash covers its size).
  bool WarmStart(const graph::Graph& observed,
                 const std::string& checkpoint_path,
                 std::string* error = nullptr);

  /// Edge probability for each node pair under the trained
  /// reconstruction path (used for NLL evaluation, Table V).
  std::vector<double> EdgeProbabilities(const std::vector<graph::Edge>& pairs);

  const CpganConfig& config() const { return config_; }
  int64_t ParameterCount() const;
  bool trained() const { return trained_; }

  /// Persists the trained weights (all module parameters plus the trainable
  /// node-feature table) to `path`. Returns false (with the reason logged)
  /// on an untrained model or IO failure.
  bool SaveWeights(const std::string& path) const;

  /// Restores weights saved by SaveWeights into this model. The model must
  /// have been trained (or at least Fit) on a graph with identical shape
  /// parameters so the architectures match. Returns false on mismatch/IO
  /// failure with the reason logged.
  bool LoadWeights(const std::string& path);

  /// Arms resumption from a training checkpoint written by a previous run
  /// with `checkpoint_dir` set: the next Fit/FitMany call restores the
  /// checkpointed parameters and continues from its epoch instead of epoch
  /// 0. The file's checksums are validated immediately; returns false (with
  /// the reason logged) on a missing, corrupt, or wrong-version file, in
  /// which case the next Fit trains from scratch. Shape/architecture
  /// validation happens inside Fit once the modules exist.
  bool ResumeFrom(const std::string& checkpoint_path);

  /// Installs a deterministic fault-injection plan for the next Fit call
  /// (test harness for the guard/checkpoint recovery paths; see
  /// train/fault.h). Call before Fit.
  void SetFaultPlan(const train::FaultPlan& plan) { fault_plan_ = plan; }

 private:
  /// Derives pooling sizes from the training subgraph size if unset.
  std::vector<int> ResolvePoolSizes(int subgraph_nodes) const;

  /// Shared model construction for Fit/FitMany and WarmStart: observed-graph
  /// context, spectral features, Louvain targets, and all modules.
  void BuildModel(const std::vector<graph::Graph>& graphs);

  /// Every trainable parameter in checkpoint order (modules, then the
  /// primary feature table, then per-extra-graph feature tables).
  std::vector<tensor::Tensor> CollectAllParams() const;

  /// Per-graph training context for multi-graph fitting.
  struct TrainContext {
    graph::Graph graph{0};
    tensor::Tensor features;                    // trainable, n x feature_dim
    std::vector<std::vector<int>> targets;      // per pooling step
  };

  /// Clustering-consistency loss over the assignment matrices (Section
  /// III-F2): -sum_l mean_i log S^l[i, y^l_i]. `targets` are the remapped
  /// community labels of the graph the subgraph came from. `node_weights`
  /// (empty = unweighted) are the coreset importance weights of the batch
  /// nodes; when present, the level-0 per-node NLL terms are weighted and
  /// normalized by `level0_inv_norm` (losses.h) and the coarse-level
  /// majority votes are weight-tallied.
  tensor::Tensor ClusteringLoss(
      const std::vector<tensor::Tensor>& assignments,
      const std::vector<int>& node_ids,
      const std::vector<std::vector<int>>& targets,
      const std::vector<float>& node_weights, float level0_inv_norm) const;

  /// Decoder pass over constant latents restricted to `ids`.
  tensor::Matrix ScoreSubgraph(const std::vector<tensor::Matrix>& latents,
                               const std::vector<int>& ids) const;

  /// Fingerprint of the architecture-relevant config fields, stored in
  /// checkpoints so resuming into a mismatched model fails loudly.
  uint64_t ArchitectureHash() const;

  CpganConfig config_;
  util::Rng rng_;
  bool trained_ = false;
  train::FaultPlan fault_plan_;
  /// Pending checkpoint to restore at the top of the next Fit (ResumeFrom).
  std::string resume_from_;

  // Observed-graph context (populated by Fit).
  std::unique_ptr<graph::Graph> observed_;
  /// Trainable per-node input features (n x feature_dim), initialized from
  /// the spectral embedding of A. The paper's default X is the identity
  /// matrix, i.e. a free embedding row per node; a trainable table is the
  /// subgraph-sampling-compatible equivalent (rows are gathered per batch),
  /// warm-started with X(A)'s spectral structure.
  tensor::Tensor features_;
  community::LouvainResult louvain_;
  /// targets_by_level_[l][v]: community label of original node v used to
  /// constrain pooling step l, remapped into [0, pool_sizes[l]).
  std::vector<std::vector<int>> targets_by_level_;
  /// Additional training graphs beyond the primary one (FitMany).
  std::vector<TrainContext> extra_contexts_;
  int effective_levels_ = 1;

  /// Horvitz-Thompson importance weights of the coreset nodes (aligned with
  /// the relabeled coreset graph's node ids; empty when coreset training is
  /// off) and the full graph's node count they normalize against.
  std::vector<float> coreset_weights_;
  int coreset_full_nodes_ = 0;

  // Modules.
  std::unique_ptr<LadderEncoder> encoder_;
  std::unique_ptr<VariationalInference> vae_;
  std::unique_ptr<GraphDecoder> decoder_;
  std::unique_ptr<Discriminator> discriminator_;
};

}  // namespace cpgan::core

#endif  // CPGAN_CORE_CPGAN_H_
