#include "core/ladder_encoder.h"

#include "nn/pairnorm.h"
#include "obs/trace.h"
#include "util/check.h"

namespace cpgan::core {

namespace t = cpgan::tensor;

LadderEncoder::LadderEncoder(int feature_dim, int hidden_dim,
                             const std::vector<int>& pool_sizes,
                             util::Rng& rng)
    : feature_dim_(feature_dim),
      hidden_dim_(hidden_dim),
      pool_sizes_(pool_sizes) {
  int levels = num_levels();
  for (int l = 0; l < levels; ++l) {
    int in = (l == 0) ? feature_dim_ : hidden_dim_;
    embed_.push_back(std::make_unique<nn::GcnConv>(in, hidden_dim_, rng));
    RegisterModule(embed_.back().get());
  }
  for (size_t l = 0; l < pool_sizes_.size(); ++l) {
    CPGAN_CHECK_GE(pool_sizes_[l], 1);
    pool_.push_back(
        std::make_unique<nn::GcnConv>(hidden_dim_, pool_sizes_[l], rng));
    RegisterModule(pool_.back().get());
    depool_.push_back(
        std::make_unique<nn::GcnConv>(hidden_dim_, pool_sizes_[l], rng));
    RegisterModule(depool_.back().get());
  }
}

EncoderOutput LadderEncoder::Forward(
    const std::shared_ptr<const t::SparseMatrix>& a_hat,
    const t::Tensor& x) const {
  CPGAN_CHECK(a_hat != nullptr);
  CPGAN_CHECK_EQ(x.cols(), feature_dim_);
  CPGAN_TRACE_SPAN("encoder/forward");
  EncoderOutput out;
  t::Tensor z0 = nn::PairNorm(t::Relu(embed_[0]->Forward(a_hat, x)));
  out.z.push_back(z0);
  out.z_rec.push_back(z0);
  if (pool_.empty()) {
    BuildReadout(out);
    return out;
  }
  CPGAN_TRACE_SPAN("encoder/pool");
  t::Tensor s0 = t::SoftmaxRows(pool_[0]->Forward(a_hat, z0));
  out.assignments.push_back(s0);
  // S_depool^(0) = softmax(GCN_depool(Z, A)^T); we keep its transpose
  // (n x c1), the matrix that chains coarse features back to fine nodes.
  t::Tensor depool0_t =
      t::Transpose(t::SoftmaxRows(t::Transpose(depool_[0]->Forward(a_hat, z0))));
  // Coarsen: A1 = S^T A S (eq. 8), with the sparse level-0 adjacency.
  t::Tensor a_s = t::Spmm(a_hat, s0);                // n x c1
  t::Tensor a1 = t::Matmul(t::Transpose(s0), a_s);   // c1 x c1
  t::Tensor x1 = t::Matmul(t::Transpose(s0), z0);    // c1 x hidden
  FinishLevels(out, a1, x1, depool0_t);
  return out;
}

EncoderOutput LadderEncoder::ForwardDense(const t::Tensor& a,
                                          const t::Tensor& x) const {
  CPGAN_CHECK_EQ(a.rows(), a.cols());
  CPGAN_CHECK_EQ(a.rows(), x.rows());
  CPGAN_CHECK_EQ(x.cols(), feature_dim_);
  CPGAN_TRACE_SPAN("encoder/forward");
  EncoderOutput out;
  t::Tensor a_norm = nn::RowNormalizeAdjacency(a);
  t::Tensor z0 = nn::PairNorm(t::Relu(embed_[0]->ForwardDense(a_norm, x)));
  out.z.push_back(z0);
  out.z_rec.push_back(z0);
  if (pool_.empty()) {
    BuildReadout(out);
    return out;
  }
  CPGAN_TRACE_SPAN("encoder/pool");
  t::Tensor s0 = t::SoftmaxRows(pool_[0]->ForwardDense(a_norm, z0));
  out.assignments.push_back(s0);
  t::Tensor depool0_t = t::Transpose(
      t::SoftmaxRows(t::Transpose(depool_[0]->ForwardDense(a_norm, z0))));
  t::Tensor a1 = t::Matmul(t::Transpose(s0), t::Matmul(a, s0));
  t::Tensor x1 = t::Matmul(t::Transpose(s0), z0);
  FinishLevels(out, a1, x1, depool0_t);
  return out;
}

void LadderEncoder::FinishLevels(EncoderOutput& out, t::Tensor a_l,
                                 t::Tensor x_l, t::Tensor depool0_t) const {
  int levels = num_levels();
  // `chain` maps level-l features back to level-0 nodes (eq. 11).
  t::Tensor chain = depool0_t;  // n x c1
  for (int l = 1; l < levels; ++l) {
    t::Tensor a_norm = nn::RowNormalizeAdjacency(a_l);
    t::Tensor z_l = nn::PairNorm(t::Relu(embed_[l]->ForwardDense(a_norm, x_l)));
    out.z.push_back(z_l);
    out.z_rec.push_back(t::Matmul(chain, z_l));
    if (l < levels - 1) {
      t::Tensor s_l = t::SoftmaxRows(pool_[l]->ForwardDense(a_norm, z_l));
      out.assignments.push_back(s_l);
      t::Tensor depool_t = t::Transpose(t::SoftmaxRows(
          t::Transpose(depool_[l]->ForwardDense(a_norm, z_l))));
      chain = t::Matmul(chain, depool_t);
      a_l = t::Matmul(t::Transpose(s_l), t::Matmul(a_l, s_l));
      x_l = t::Matmul(t::Transpose(s_l), z_l);
    }
  }
  BuildReadout(out);
}

void LadderEncoder::BuildReadout(EncoderOutput& out) const {
  std::vector<t::Tensor> means;
  means.reserve(out.z.size());
  for (const t::Tensor& z : out.z) means.push_back(t::ColMean(z));
  out.readout = means.size() == 1 ? means[0] : t::ConcatRows(means);
}

}  // namespace cpgan::core
