#include "core/decoder.h"

#include "obs/trace.h"
#include "util/check.h"

namespace cpgan::core {

namespace t = cpgan::tensor;

GraphDecoder::GraphDecoder(int latent_dim, int hidden_dim, int num_levels,
                           bool concat_levels, util::Rng& rng)
    : latent_dim_(latent_dim),
      hidden_dim_(hidden_dim),
      num_levels_(num_levels),
      concat_levels_(concat_levels) {
  if (concat_levels_) {
    concat_proj_ = std::make_unique<nn::Linear>(latent_dim * num_levels,
                                                hidden_dim, rng);
    RegisterModule(concat_proj_.get());
  } else {
    gru_ = std::make_unique<nn::GruCell>(latent_dim, hidden_dim, rng);
    RegisterModule(gru_.get());
  }
  g_theta_ = std::make_unique<nn::Mlp>(
      std::vector<int>{hidden_dim, hidden_dim, hidden_dim}, rng);
  RegisterModule(g_theta_.get());
  bias_ = AddZeroParameter("edge_bias", 1, 1);
  bias_.mutable_value().At(0, 0) = -3.0f;
}

t::Tensor GraphDecoder::DecodeNodes(
    const std::vector<t::Tensor>& z_vae) const {
  CPGAN_CHECK(!z_vae.empty());
  CPGAN_CHECK_EQ(static_cast<int>(z_vae.size()), num_levels_);
  CPGAN_TRACE_SPAN("decoder/decode");
  if (concat_levels_) {
    t::Tensor stacked =
        z_vae.size() == 1 ? z_vae[0] : t::ConcatCols(z_vae);
    return t::Relu(concat_proj_->Forward(stacked));
  }
  // h_{l+1} = GRU(h_l, Z_vae^{(l+1)}), h_0 = 0 (eq. 13).
  t::Tensor h = gru_->InitialState(z_vae[0].rows());
  for (const t::Tensor& level : z_vae) {
    h = gru_->Forward(level, h);
  }
  return h;
}

t::Tensor GraphDecoder::EdgeEmbeddings(const t::Tensor& h) const {
  return g_theta_->Forward(h);
}

t::Tensor GraphDecoder::EdgeLogits(const t::Tensor& h) const {
  CPGAN_TRACE_SPAN("decoder/edge_logits");
  t::Tensor e = EdgeEmbeddings(h);
  t::Tensor logits = t::Matmul(e, t::Transpose(e));
  // Broadcast the scalar sparsity bias over all pairs.
  int n = logits.rows();
  t::Tensor ones_col = t::Constant(t::Matrix(n, 1, 1.0f));
  t::Tensor ones_row = t::Constant(t::Matrix(1, n, 1.0f));
  return t::Add(logits, t::Matmul(t::Matmul(ones_col, bias_), ones_row));
}

}  // namespace cpgan::core
