#include "core/cpgan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>

#include "core/assembly.h"
#include "core/hier_assembly.h"
#include "core/losses.h"
#include "core/sampler.h"
#include "graph/spectral.h"
#include "obs/metrics.h"
#include "obs/run_logger.h"
#include "obs/trace.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "train/checkpoint.h"
#include "train/guard.h"
#include "train/signal.h"
#include "util/backoff.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/memory_tracker.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cpgan::core {

namespace t = cpgan::tensor;

namespace {

/// Gathers rows of a plain matrix.
t::Matrix GatherMatrixRows(const t::Matrix& m, const std::vector<int>& ids) {
  t::Matrix out(static_cast<int>(ids.size()), m.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    const float* src = m.Row(ids[i]);
    float* dst = out.Row(static_cast<int>(i));
    for (int c = 0; c < m.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

/// Remaps raw community labels into [0, buckets) by size rank (largest
/// community -> bucket 0, ..., wrapping with modulo).
std::vector<int> RemapLabels(const std::vector<int>& labels, int buckets) {
  std::unordered_map<int, int> sizes;
  for (int label : labels) sizes[label] += 1;
  std::vector<std::pair<int, int>> ranked(sizes.begin(), sizes.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::unordered_map<int, int> bucket_of;
  for (size_t rank = 0; rank < ranked.size(); ++rank) {
    bucket_of[ranked[rank].first] = static_cast<int>(rank % buckets);
  }
  std::vector<int> out(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) out[i] = bucket_of[labels[i]];
  return out;
}

std::vector<int> ArgmaxRows(const t::Matrix& m) {
  std::vector<int> out(m.rows());
  for (int r = 0; r < m.rows(); ++r) {
    const float* row = m.Row(r);
    int best = 0;
    for (int c = 1; c < m.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

t::Matrix BinaryTargets(float value) {
  t::Matrix m(1, 1);
  m.At(0, 0) = value;
  return m;
}

/// L2 norm over the gradients of `params` (telemetry only).
double GradNorm(const std::vector<t::Tensor>& params) {
  double sum_sq = 0.0;
  for (const t::Tensor& p : params) {
    const t::Matrix& g = p.grad();
    const float* data = g.data();
    int64_t size = static_cast<int64_t>(g.rows()) * g.cols();
    for (int64_t i = 0; i < size; ++i) {
      sum_sq += static_cast<double>(data[i]) * data[i];
    }
  }
  return std::sqrt(sum_sq);
}

/// Restores the tracing switches that FitMany may override via config.
class TraceFlagsGuard {
 public:
  TraceFlagsGuard()
      : tracing_(obs::TracingEnabled()), events_(obs::TraceEventsEnabled()) {}
  ~TraceFlagsGuard() {
    obs::SetTracingEnabled(tracing_);
    obs::SetTraceEventsEnabled(events_);
  }

 private:
  bool tracing_;
  bool events_;
};

}  // namespace

Cpgan::Cpgan(const CpganConfig& config) : config_(config), rng_(config.seed) {
  CPGAN_CHECK_GE(config_.num_levels, 1);
  CPGAN_CHECK_GE(config_.feature_dim, 1);
  if (config_.num_threads > 0) {
    util::ThreadPool::SetGlobalThreads(config_.num_threads);
  }
  if (!config_.kernel_backend.empty()) {
    std::string error;
    if (!tensor::kernels::SetBackend(config_.kernel_backend, &error)) {
      CPGAN_LOG(Warning) << "kernel_backend: " << error
                         << "; keeping process-wide selection";
    }
  }
}

std::vector<int> Cpgan::ResolvePoolSizes(int subgraph_nodes) const {
  if (!config_.pool_sizes.empty()) return config_.pool_sizes;
  std::vector<int> sizes;
  int levels = config_.use_hierarchy ? config_.num_levels : 1;
  int current = std::min(config_.max_pool_size,
                         std::max(2, subgraph_nodes / 4));
  for (int l = 0; l + 1 < levels; ++l) {
    sizes.push_back(std::max(2, current));
    current = std::max(2, current / 4);
  }
  return sizes;
}

TrainStats Cpgan::Fit(const graph::Graph& observed) {
  return FitMany({observed});
}

void Cpgan::BuildModel(const std::vector<graph::Graph>& graphs) {
  const graph::Graph& observed = graphs[0];
  observed_ = std::make_unique<graph::Graph>(observed);
  int n = observed.num_nodes();
  int ns = std::min(config_.subgraph_size, n);
  CPGAN_CHECK_GE(ns, 2);

  features_ = t::Tensor(
      graph::SpectralEmbedding(observed, config_.feature_dim, rng_),
      /*requires_grad=*/true);
  louvain_ = community::Louvain(observed, rng_);

  std::vector<int> pool_sizes = ResolvePoolSizes(ns);
  effective_levels_ = static_cast<int>(pool_sizes.size()) + 1;

  // Per-pooling-step community targets from the Louvain hierarchy: step l is
  // constrained by a Louvain level of matching granularity (DESIGN.md §2.5).
  int louvain_levels = static_cast<int>(louvain_.levels.size());
  targets_by_level_.clear();
  for (size_t l = 0; l < pool_sizes.size(); ++l) {
    int lv = std::min(static_cast<int>(l), louvain_levels - 1);
    targets_by_level_.push_back(
        RemapLabels(louvain_.levels[lv].labels(), pool_sizes[l]));
  }

  // Secondary training graphs: own features + community targets each.
  extra_contexts_.clear();
  for (size_t gi = 1; gi < graphs.size(); ++gi) {
    TrainContext ctx;
    ctx.graph = graphs[gi];
    ctx.features = t::Tensor(
        graph::SpectralEmbedding(ctx.graph, config_.feature_dim, rng_),
        /*requires_grad=*/true);
    community::LouvainResult lv = community::Louvain(ctx.graph, rng_);
    int lv_levels = static_cast<int>(lv.levels.size());
    for (size_t l = 0; l < pool_sizes.size(); ++l) {
      int which = std::min(static_cast<int>(l), lv_levels - 1);
      ctx.targets.push_back(
          RemapLabels(lv.levels[which].labels(), pool_sizes[l]));
    }
    extra_contexts_.push_back(std::move(ctx));
  }

  encoder_ = std::make_unique<LadderEncoder>(config_.feature_dim,
                                             config_.hidden_dim, pool_sizes,
                                             rng_);
  vae_ = std::make_unique<VariationalInference>(
      config_.hidden_dim, config_.hidden_dim, config_.latent_dim, rng_);
  decoder_ = std::make_unique<GraphDecoder>(config_.latent_dim,
                                            config_.hidden_dim,
                                            effective_levels_,
                                            config_.concat_decoder, rng_);
  discriminator_ = std::make_unique<Discriminator>(effective_levels_,
                                                   config_.hidden_dim, rng_);
}

std::vector<t::Tensor> Cpgan::CollectAllParams() const {
  std::vector<t::Tensor> params;
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(encoder_.get()),
        static_cast<const nn::Module*>(vae_.get()),
        static_cast<const nn::Module*>(decoder_.get()),
        static_cast<const nn::Module*>(discriminator_.get())}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  params.push_back(features_);
  for (const TrainContext& ctx : extra_contexts_) {
    params.push_back(ctx.features);
  }
  return params;
}

bool Cpgan::WarmStart(const graph::Graph& observed,
                      const std::string& checkpoint_path, std::string* error) {
  CPGAN_CHECK(!trained_);
  BuildModel({observed});
  std::vector<t::Tensor> params_all = CollectAllParams();
  train::CheckpointMeta meta;
  std::string err;
  if (!train::LoadCheckpoint(checkpoint_path, &meta, params_all,
                             ArchitectureHash(), &err)) {
    CPGAN_LOG(Error) << "WarmStart(" << checkpoint_path << "): " << err;
    if (error != nullptr) *error = err;
    return false;
  }
  trained_ = true;
  return true;
}

TrainStats Cpgan::FitMany(const std::vector<graph::Graph>& graphs) {
  CPGAN_CHECK(!graphs.empty());
  CPGAN_CHECK(!trained_);
  util::Timer timer;
  util::MemoryTracker::Global().ResetPeak();
  if (config_.mem_budget_mb > 0) {
    util::MemoryTracker::Global().SetBudgetBytes(config_.mem_budget_mb << 20);
  }

  // Coreset training (docs/INTERNALS.md, "Streaming ingest"): swap the
  // primary graph for the induced subgraph of a sensitivity sample before
  // anything downstream (spectral features, Louvain, the epoch loop) sees
  // it, so every per-node cost scales with the coreset, not the full graph.
  // Secondary graphs are left alone — they are small by construction.
  std::vector<graph::Graph> coreset_graphs;
  const std::vector<graph::Graph>* training = &graphs;
  int coreset_nodes = 0;
  if (config_.coreset_size > 1 &&
      config_.coreset_size < graphs[0].num_nodes()) {
    CPGAN_TRACE_SPAN("train/coreset_sample");
    CoresetSample coreset =
        SensitivityCoresetSample(graphs[0], config_.coreset_size, rng_);
    coreset_nodes = static_cast<int>(coreset.size());
    coreset_graphs.reserve(graphs.size());
    coreset_graphs.push_back(graphs[0].InducedSubgraph(coreset.nodes));
    coreset_graphs.insert(coreset_graphs.end(), graphs.begin() + 1,
                          graphs.end());
    training = &coreset_graphs;
    // Keep the Horvitz-Thompson importance weights, aligned with the
    // relabeled coreset node ids (InducedSubgraph preserves coreset.nodes
    // order), so the per-node loss terms can debias the coreset estimator.
    coreset_weights_.assign(coreset.weights.begin(), coreset.weights.end());
    coreset_full_nodes_ = graphs[0].num_nodes();
    CPGAN_LOG(Info) << "coreset training: " << coreset_nodes << " of "
                    << graphs[0].num_nodes() << " nodes ("
                    << coreset_graphs[0].num_edges() << " of "
                    << graphs[0].num_edges()
                    << " edges), importance-weighted losses";
  }
  const graph::Graph& observed = (*training)[0];

  // ----- Observability setup (src/obs/; docs/OBSERVABILITY.md) -----
  TraceFlagsGuard trace_flags_guard;
  if (config_.profile || !config_.trace_out.empty()) {
    // Only reset collected spans when this run explicitly asked for
    // tracing; a caller (e.g. bench_util) that enabled tracing itself owns
    // the collection window.
    obs::ResetTraces();
    obs::SetTracingEnabled(true);
    if (!config_.trace_out.empty()) obs::SetTraceEventsEnabled(true);
  }
  obs::RunLogger run_logger;
  if (!config_.metrics_out.empty()) run_logger.Open(config_.metrics_out);
  const int run_threads = util::ThreadPool::Global().num_threads();

  BuildModel(*training);
  int ns = std::min(config_.subgraph_size, observed.num_nodes());

  auto collect = [](std::initializer_list<const nn::Module*> modules) {
    std::vector<t::Tensor> params;
    for (const nn::Module* m : modules) {
      auto p = m->Parameters();
      params.insert(params.end(), p.begin(), p.end());
    }
    return params;
  };
  std::vector<t::Tensor> params_d =
      collect({discriminator_.get(), encoder_.get()});
  // Generator parameters split into a slow (adversarially sensitive) group
  // and a fast (reconstruction/memorization) group.
  std::vector<t::Tensor> params_g_slow =
      collect({encoder_.get(), vae_.get()});
  std::vector<t::Tensor> params_g_fast = decoder_->Parameters();
  params_g_fast.push_back(features_);
  for (TrainContext& ctx : extra_contexts_) {
    params_g_fast.push_back(ctx.features);
  }
  std::vector<t::Tensor> params_g = params_g_slow;
  params_g.insert(params_g.end(), params_g_fast.begin(), params_g_fast.end());
  t::Adam opt_d(params_d, config_.learning_rate);
  t::Adam opt_g(params_g_slow, config_.learning_rate);
  t::Adam opt_g_fast(params_g_fast,
                     config_.learning_rate * config_.fast_lr_multiplier);

  // ----- Fault-tolerance runtime (docs/INTERNALS.md) -----
  // The guard snapshots/restores the union of every trainable parameter;
  // the same list is what checkpoints persist.
  std::vector<t::Tensor> params_all = CollectAllParams();

  train::GuardConfig guard_config;
  guard_config.enabled = config_.guard_enabled;
  guard_config.window = config_.guard_window;
  guard_config.explosion_factor = config_.guard_explosion_factor;
  guard_config.lr_decay_on_recovery = config_.guard_lr_decay;
  guard_config.max_recoveries = config_.guard_max_recoveries;
  train::TrainingGuard guard(guard_config, params_all);
  constexpr int kDiscStream = 0;
  constexpr int kGenStream = 1;
  auto decay_all = [&](float factor) {
    opt_d.DecayLearningRate(factor);
    opt_g.DecayLearningRate(factor);
    opt_g_fast.DecayLearningRate(factor);
  };

  const uint64_t arch_hash = ArchitectureHash();
  TrainStats stats;
  stats.coreset_nodes = coreset_nodes;
  int start_epoch = 0;
  if (!resume_from_.empty()) {
    train::CheckpointMeta meta;
    std::string err;
    // The file's checksums were vetted in ResumeFrom; this re-parse also
    // validates shape/count against the freshly built model, so resuming
    // into a different architecture or graph fails before any training.
    CPGAN_CHECK_MSG(train::LoadCheckpoint(resume_from_, &meta, params_all,
                                          arch_hash, &err),
                    ("resume failed: " + err).c_str());
    start_epoch = std::min(meta.epoch, config_.epochs);
    stats.start_epoch = start_epoch;
    // Catch the learning-rate schedule up to the resumed epoch.
    if (config_.lr_decay_every > 0) {
      for (int e = 0; e < start_epoch; ++e) {
        if ((e + 1) % config_.lr_decay_every == 0) decay_all(config_.lr_decay);
      }
    }
    CPGAN_LOG(Info) << "resumed from " << resume_from_ << " at epoch "
                    << start_epoch;
    resume_from_.clear();
  }
  bool checkpointing =
      !config_.checkpoint_dir.empty() && config_.checkpoint_every > 0;
  if (checkpointing && !util::MakeDirs(config_.checkpoint_dir)) {
    CPGAN_LOG(Warning) << "cannot create checkpoint dir '"
                       << config_.checkpoint_dir << "'; checkpoints disabled";
    checkpointing = false;
  }
  // Checkpoint writes go through retry-with-backoff so a single flaky
  // rename/fsync cannot lose the run. The jitter RNG is a separate stream
  // from the training RNG so transient I/O can never perturb the numerics.
  util::Rng io_rng(config_.seed ^ 0xC3A5C85C97CB3127ULL);
  util::BackoffPolicy io_backoff;
  auto write_checkpoint = [&](int completed_epochs) -> bool {
    train::CheckpointMeta meta;
    meta.epoch = completed_epochs;
    meta.config_hash = arch_hash;
    std::string path =
        train::CheckpointPath(config_.checkpoint_dir, completed_epochs);
    util::RetryResult retried = util::RetryWithBackoff(
        io_backoff, io_rng,
        [&] { return train::SaveCheckpoint(path, meta, params_all); });
    stats.checkpoint_retries += retried.retries();
    if (retried.ok) {
      ++stats.checkpoints_written;
      if (retried.retries() > 0) {
        CPGAN_LOG(Warning) << "checkpoint " << path << " written after "
                           << retried.retries() << " transient I/O retries";
      }
    } else {
      CPGAN_LOG(Warning) << "failed to write checkpoint " << path << " after "
                         << retried.attempts << " attempts";
    }
    return retried.ok;
  };
  // Per-epoch guard telemetry for the structured run log.
  int epoch_trips = 0;
  int epoch_rollbacks = 0;
  // Handles a step rejected by the guard: skip the optimizer, roll the
  // parameters back to the last-known-good snapshot, and back the learning
  // rate off. The epoch continues with restored weights.
  auto recover = [&](const char* which, int epoch, train::StepVerdict verdict,
                     float loss) {
    guard.Recover();
    decay_all(guard_config.lr_decay_on_recovery);
    ++stats.recoveries;
    ++epoch_trips;
    if (guard.has_snapshot()) ++epoch_rollbacks;
    CPGAN_LOG(Warning) << "guard: " << which << " step rejected at epoch "
                       << epoch << " (" << train::StepVerdictName(verdict)
                       << ", loss=" << loss << "); "
                       << (guard.has_snapshot()
                               ? "rolled back to last good parameters"
                               : "no snapshot yet, step skipped");
  };

  auto zero_all = [this]() {
    encoder_->ZeroGrad();
    vae_->ZeroGrad();
    decoder_->ZeroGrad();
    discriminator_->ZeroGrad();
    features_.ZeroGrad();
    for (TrainContext& ctx : extra_contexts_) ctx.features.ZeroGrad();
  };

  t::Matrix real_target = BinaryTargets(1.0f);
  t::Matrix fake_target = BinaryTargets(0.0f);

  bool killed = false;
  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    CPGAN_TRACE_SPAN("train/epoch");
    util::Timer epoch_timer;
    epoch_trips = 0;
    epoch_rollbacks = 0;
    int64_t enc_peak = 0, dec_peak = 0, disc_peak = 0;
    double epoch_grad_norm = 0.0;
    bool wrote_checkpoint = false;
    double checkpoint_ms = 0.0;

    // Uniformly pick a training graph (multi-graph fitting).
    int which = static_cast<int>(
        rng_.UniformInt(1 + static_cast<int64_t>(extra_contexts_.size())));
    const graph::Graph& current =
        which == 0 ? observed : extra_contexts_[which - 1].graph;
    t::Tensor& current_features =
        which == 0 ? features_ : extra_contexts_[which - 1].features;
    const std::vector<std::vector<int>>& current_targets =
        which == 0 ? targets_by_level_ : extra_contexts_[which - 1].targets;

    int ns_cur = std::min(ns, current.num_nodes());
    std::vector<int> idx;
    graph::Graph sub{0};
    std::shared_ptr<t::SparseMatrix> a_hat;
    t::Tensor x_s;
    t::Matrix a_dense;
    float pos_weight = 1.0f;
    int k = 0;
    {
      CPGAN_TRACE_SPAN("train/sample");
      idx = DegreeProportionalSample(current, ns_cur, rng_);
      sub = current.InducedSubgraph(idx);
      a_hat = std::make_shared<t::SparseMatrix>(
          config_.use_two_hop_adjacency
              ? t::TwoHopNormalizedAdjacency(sub.num_nodes(), sub.Edges())
              : t::NormalizedAdjacency(sub.num_nodes(), sub.Edges()));
      x_s = t::GatherRows(current_features, idx);

      // Dense 0/1 adjacency target for the reconstruction likelihood.
      k = sub.num_nodes();
      a_dense = t::Matrix(k, k);
      for (const auto& [u, v] : sub.Edges()) {
        a_dense.At(u, v) = 1.0f;
        a_dense.At(v, u) = 1.0f;
      }
      double m_s = static_cast<double>(sub.num_edges());
      pos_weight = static_cast<float>(std::clamp(
          (static_cast<double>(k) * k - 2.0 * m_s) / std::max(1.0, 2.0 * m_s),
          1.0, 8.0));
    }

    // Coreset importance weights for this batch (primary graph only; empty
    // = unweighted). The normalizers are the full graph's node count scaled
    // by the batch's fraction of the coreset, so with unit weights they
    // reduce to the plain 1/k and 1/k^2 means.
    std::vector<float> batch_weights;
    float node_inv_norm = 0.0f;
    float pair_inv_norm = 0.0f;
    if (which == 0 && !coreset_weights_.empty()) {
      batch_weights.resize(idx.size());
      for (size_t i = 0; i < idx.size(); ++i) {
        batch_weights[i] = coreset_weights_[idx[i]];
      }
      const double denom = static_cast<double>(coreset_full_nodes_) *
                           static_cast<double>(k) / current.num_nodes();
      node_inv_norm = static_cast<float>(1.0 / denom);
      pair_inv_norm = static_cast<float>(1.0 / (denom * denom));
    }

    auto sample_prior = [&]() {
      std::vector<t::Tensor> z;
      for (int l = 0; l < effective_levels_; ++l) {
        t::Matrix noise(k, config_.latent_dim);
        noise.FillNormal(rng_, 1.0f);
        z.push_back(t::Constant(std::move(noise)));
      }
      return z;
    };

    bool disc_epoch =
        config_.disc_every > 0 && epoch % config_.disc_every == 0;
    bool prior_epoch =
        config_.prior_every > 0 && epoch % config_.prior_every == 0;

    // ----- Discriminator step (eq. 16/17) -----
    if (disc_epoch) {
      CPGAN_TRACE_SPAN("train/disc_step");
      EncoderOutput enc_real = encoder_->Forward(a_hat, x_s);
      t::Tensor d_real = discriminator_->ForwardLogit(enc_real.readout);
      t::Tensor l_clus = ClusteringLoss(enc_real.assignments, idx,
                                        current_targets, batch_weights,
                                        node_inv_norm);

      VariationalOutput vae_out =
          vae_->Forward(enc_real.z_rec, rng_, config_.use_variational);
      t::Tensor h = decoder_->DecodeNodes(vae_out.z_vae);
      t::Tensor probs_rec =
          t::Sigmoid(decoder_->EdgeLogits(h)).Detach();
      t::Tensor d_fake = discriminator_->ForwardLogit(
          encoder_->ForwardDense(probs_rec, x_s).readout);
      t::Tensor fake_losses = t::BceWithLogits(d_fake, fake_target);
      if (prior_epoch) {
        t::Tensor h_prior = decoder_->DecodeNodes(sample_prior());
        t::Tensor probs_prior =
            t::Sigmoid(decoder_->EdgeLogits(h_prior)).Detach();
        t::Tensor d_prior = discriminator_->ForwardLogit(
            encoder_->ForwardDense(probs_prior, x_s).readout);
        fake_losses = t::Scale(
            t::Add(fake_losses, t::BceWithLogits(d_prior, fake_target)), 0.5f);
      }
      t::Tensor loss_d =
          t::Add(t::Add(t::BceWithLogits(d_real, real_target), fake_losses),
                 t::Scale(l_clus, config_.clus_weight));
      {
        CPGAN_TRACE_SPAN("train/backward");
        t::Backward(loss_d);
      }
      float d_loss_value = loss_d.Scalar();
      train::StepVerdict verdict =
          guard.Inspect(d_loss_value, params_d, kDiscStream);
      if (verdict == train::StepVerdict::kOk) {
        CPGAN_TRACE_SPAN("train/optimizer");
        t::ClipGradients(params_d, config_.grad_clip);
        opt_d.Step();
        guard.CommitGood(d_loss_value, kDiscStream);
      } else {
        recover("discriminator", epoch, verdict, d_loss_value);
      }
      zero_all();
      stats.d_loss.push_back(d_loss_value);
      stats.clus_loss.push_back(l_clus.Scalar());
    }

    // ----- Generator step (eq. 18/19 merged; see DESIGN.md) -----
    {
      CPGAN_TRACE_SPAN("train/gen_step");
      // Each forward phase runs inside a MemoryRegion so its peak live
      // bytes are attributable in the run log (Table IX's analogue).
      EncoderOutput enc;
      VariationalOutput vae_out;
      {
        util::MemoryRegion region;
        enc = encoder_->Forward(a_hat, x_s);
        vae_out = vae_->Forward(enc.z_rec, rng_, config_.use_variational);
        enc_peak = region.PeakBytes();
      }
      t::Tensor h, logits, probs;
      {
        util::MemoryRegion region;
        h = decoder_->DecodeNodes(vae_out.z_vae);
        logits = decoder_->EdgeLogits(h);
        probs = t::Sigmoid(logits);
        dec_peak = region.PeakBytes();
      }

      EncoderOutput enc_fake;
      t::Tensor adv;
      {
        util::MemoryRegion region;
        enc_fake = encoder_->ForwardDense(probs, x_s);
        adv = t::BceWithLogits(
            discriminator_->ForwardLogit(enc_fake.readout), real_target);
        if (prior_epoch) {
          t::Tensor h_prior = decoder_->DecodeNodes(sample_prior());
          t::Tensor probs_prior = t::Sigmoid(decoder_->EdgeLogits(h_prior));
          EncoderOutput enc_prior = encoder_->ForwardDense(probs_prior, x_s);
          t::Tensor adv_prior = t::BceWithLogits(
              discriminator_->ForwardLogit(enc_prior.readout), real_target);
          adv = t::Scale(t::Add(adv, adv_prior), 0.5f);
        }
        disc_peak = region.PeakBytes();
      }

      t::Tensor l_rec = t::MseLoss(enc.readout, enc_fake.readout);
      // Coreset batches debias the reconstruction likelihood with the pair
      // weights w_i * w_j; the unweighted path is bitwise-unchanged.
      t::Tensor l_bce =
          batch_weights.empty()
              ? t::BceWithLogits(logits, a_dense, pos_weight)
              : WeightedBceWithLogits(logits, a_dense, batch_weights,
                                      pos_weight, pair_inv_norm);

      t::Tensor loss_g = t::Add(
          t::Add(t::Scale(adv, config_.adv_weight),
                 t::Scale(l_rec, config_.rec_weight)),
          t::Add(t::Scale(vae_out.kl, config_.kl_weight),
                 t::Scale(l_bce, config_.bce_weight)));
      {
        CPGAN_TRACE_SPAN("train/backward");
        t::Backward(loss_g);
      }
      if (run_logger.ok()) epoch_grad_norm = GradNorm(params_g);
      float g_loss_value = loss_g.Scalar();
      // Deterministic fault injection (tests only; a default plan is inert).
      if (fault_plan_.InjectNanGrad(epoch)) {
        train::PoisonGradient(params_g, fault_plan_.nan_grad_param);
      }
      if (fault_plan_.InjectInfLoss(epoch)) {
        g_loss_value = std::numeric_limits<float>::infinity();
      }
      train::StepVerdict verdict =
          guard.Inspect(g_loss_value, params_g, kGenStream);
      if (verdict == train::StepVerdict::kOk) {
        CPGAN_TRACE_SPAN("train/optimizer");
        t::ClipGradients(params_g, config_.grad_clip);
        opt_g.Step();
        opt_g_fast.Step();
        guard.CommitGood(g_loss_value, kGenStream);
      } else {
        recover("generator", epoch, verdict, g_loss_value);
      }
      zero_all();
      stats.g_loss.push_back(g_loss_value);

      if (epoch + 1 == config_.epochs) {
        const t::Matrix& p = probs.value();
        double pos_total = 0.0, neg_total = 0.0;
        int64_t pos_count = 0, neg_count = 0;
        for (int r = 0; r < k; ++r) {
          for (int c = r + 1; c < k; ++c) {
            if (a_dense.At(r, c) > 0.5f) {
              pos_total += p.At(r, c);
              ++pos_count;
            } else {
              neg_total += p.At(r, c);
              ++neg_count;
            }
          }
        }
        stats.final_pos_prob =
            pos_count > 0 ? static_cast<float>(pos_total / pos_count) : 0.0f;
        stats.final_neg_prob =
            neg_count > 0 ? static_cast<float>(neg_total / neg_count) : 0.0f;
      }
    }

    if (config_.lr_decay_every > 0 && (epoch + 1) % config_.lr_decay_every == 0) {
      opt_d.DecayLearningRate(config_.lr_decay);
      opt_g.DecayLearningRate(config_.lr_decay);
      opt_g_fast.DecayLearningRate(config_.lr_decay);
    }
    if (config_.verbose && (epoch % 20 == 0 || epoch + 1 == config_.epochs)) {
      CPGAN_LOG(Info) << "epoch " << epoch << " d_loss=" << stats.d_loss.back()
                      << " g_loss=" << stats.g_loss.back()
                      << " clus=" << stats.clus_loss.back();
    }

    // Periodic checkpoint at the epoch boundary (plus one after the final
    // epoch) so a killed run can resume via ResumeFrom.
    if (fault_plan_.InjectIoFailure(epoch)) {
      util::InjectAtomicWriteFailures(fault_plan_.io_fail_count);
    }
    bool final_epoch = epoch + 1 == config_.epochs;
    if (checkpointing &&
        ((epoch + 1) % config_.checkpoint_every == 0 || final_epoch)) {
      util::Timer checkpoint_timer;
      wrote_checkpoint = write_checkpoint(epoch + 1);
      checkpoint_ms = checkpoint_timer.Millis();
    }

    if (run_logger.ok()) {
      obs::EpochRecord record;
      record.epoch = epoch;
      record.graph_index = which;
      record.has_d_loss = disc_epoch;
      if (disc_epoch) record.d_loss = stats.d_loss.back();
      record.g_loss = stats.g_loss.back();
      record.has_clus_loss = disc_epoch;
      if (disc_epoch) record.clus_loss = stats.clus_loss.back();
      record.grad_norm = epoch_grad_norm;
      record.guard_trips = epoch_trips;
      record.rollbacks = epoch_rollbacks;
      record.wrote_checkpoint = wrote_checkpoint;
      record.checkpoint_ms = checkpoint_ms;
      record.peak_bytes = util::MemoryTracker::Global().peak_bytes();
      record.encoder_peak_bytes = enc_peak;
      record.decoder_peak_bytes = dec_peak;
      record.discriminator_peak_bytes = disc_peak;
      record.threads = run_threads;
      record.rss_bytes = obs::CurrentRssBytes();
      record.epoch_ms = epoch_timer.Millis();
      if (run_logger.Log(record)) ++stats.metrics_records;
      if (config_.metrics_snapshot_every > 0 &&
          ((epoch + 1) % config_.metrics_snapshot_every == 0 ||
           final_epoch)) {
        run_logger.LogMetricsSnapshot(epoch);
      }
    }
    if (guard.exhausted()) {
      CPGAN_LOG(Error) << "guard: " << guard.recoveries()
                       << " recoveries reached the configured maximum; "
                          "stopping with last-known-good weights";
      stats.guard_exhausted = true;
      break;
    }
    if (fault_plan_.StopAfter(epoch)) {
      // Simulated crash: leave the model untrained, like a killed process.
      stats.stopped_by_fault = true;
      killed = true;
      break;
    }
    // Graceful SIGINT/SIGTERM shutdown (train/signal.h): finish the epoch,
    // persist a final checkpoint, and fall through to the sink flushes below
    // instead of dying mid-epoch. The model keeps its current weights.
    if (train::StopRequested()) {
      CPGAN_LOG(Info) << "stop requested; ending training after epoch "
                      << epoch;
      if (checkpointing && !wrote_checkpoint) write_checkpoint(epoch + 1);
      stats.interrupted = true;
      break;
    }
  }
  trained_ = !killed;
  stats.train_seconds = timer.Seconds();
  stats.peak_bytes = util::MemoryTracker::Global().peak_bytes();
  if (config_.mem_budget_mb > 0 &&
      stats.peak_bytes > (config_.mem_budget_mb << 20)) {
    stats.budget_exceeded = true;
    CPGAN_LOG(Warning) << "memory budget exceeded: peak " << stats.peak_bytes
                       << " bytes > " << config_.mem_budget_mb << " MiB";
  }
  run_logger.Close();
  if (config_.profile) {
    std::fputs(obs::RenderProfile().c_str(), stdout);
  }
  if (!config_.trace_out.empty() && !obs::WriteChromeTrace(config_.trace_out)) {
    CPGAN_LOG(Warning) << "failed to write trace " << config_.trace_out;
  }
  return stats;
}

uint64_t Cpgan::ArchitectureHash() const {
  std::vector<int64_t> fields = {
      config_.feature_dim,   config_.hidden_dim,
      config_.latent_dim,    config_.num_levels,
      config_.max_pool_size, config_.use_hierarchy ? 1 : 0,
      config_.concat_decoder ? 1 : 0,
      observed_ != nullptr ? observed_->num_nodes() : 0,
      static_cast<int64_t>(extra_contexts_.size())};
  for (int size : config_.pool_sizes) fields.push_back(size);
  return train::HashFields(fields);
}

bool Cpgan::ResumeFrom(const std::string& checkpoint_path) {
  train::CheckpointMeta meta;
  std::string err;
  // Architecture validation against the live hash happens inside Fit (the
  // modules do not exist yet); this pass catches unreadable, truncated,
  // corrupt, and wrong-version files immediately.
  if (!train::ValidateCheckpoint(checkpoint_path, &meta, 0, &err)) {
    CPGAN_LOG(Error) << "ResumeFrom(" << checkpoint_path
                     << "): rejected: " << err;
    resume_from_.clear();
    return false;
  }
  resume_from_ = checkpoint_path;
  return true;
}

tensor::Tensor Cpgan::ClusteringLoss(
    const std::vector<t::Tensor>& assignments,
    const std::vector<int>& node_ids,
    const std::vector<std::vector<int>>& targets,
    const std::vector<float>& node_weights, float level0_inv_norm) const {
  t::Tensor loss = t::ScalarConstant(0.0f);
  if (assignments.empty()) return loss;

  // Level 0: fine nodes labeled directly. Coreset batches weight each
  // node's NLL term by its importance weight (unbiased per-node estimator;
  // see losses.h); otherwise the plain mean.
  std::vector<int> labels(node_ids.size());
  for (size_t i = 0; i < node_ids.size(); ++i) {
    labels[i] = targets[0][node_ids[i]];
  }
  loss = t::Add(loss, node_weights.empty()
                          ? AssignmentNll(assignments[0], labels)
                          : WeightedAssignmentNll(assignments[0], labels,
                                                  node_weights,
                                                  level0_inv_norm));

  // Deeper levels: coarse node j inherits the majority label (at the coarser
  // Louvain level) of the fine nodes whose argmax assignment is j. The vote
  // uses the forward values only (stop-gradient); coreset batches weight
  // each vote by the node's importance weight (unit weights leave the
  // tallies unchanged).
  std::vector<int> node_to_coarse = ArgmaxRows(assignments[0].value());
  for (size_t l = 1; l < assignments.size(); ++l) {
    int coarse_count = assignments[l].rows();
    int buckets = assignments[l].cols();
    std::vector<std::unordered_map<int, double>> votes(coarse_count);
    for (size_t i = 0; i < node_ids.size(); ++i) {
      int coarse = std::min(node_to_coarse[i], coarse_count - 1);
      votes[coarse][targets[l][node_ids[i]]] +=
          node_weights.empty() ? 1.0 : node_weights[i];
    }
    std::vector<int> coarse_labels(coarse_count, 0);
    for (int j = 0; j < coarse_count; ++j) {
      double best_count = -1.0;
      for (const auto& [label, count] : votes[j]) {
        if (count > best_count) {
          best_count = count;
          coarse_labels[j] = std::min(label, buckets - 1);
        }
      }
    }
    loss = t::Add(loss, AssignmentNll(assignments[l], coarse_labels));

    // Chain the argmax mapping for the next level.
    std::vector<int> coarse_to_next = ArgmaxRows(assignments[l].value());
    for (size_t i = 0; i < node_to_coarse.size(); ++i) {
      node_to_coarse[i] =
          coarse_to_next[std::min(node_to_coarse[i], coarse_count - 1)];
    }
  }
  return loss;
}

std::vector<t::Matrix> Cpgan::PosteriorMeanLatents() const {
  CPGAN_CHECK(trained_);
  auto a_hat = std::make_shared<t::SparseMatrix>(
      config_.use_two_hop_adjacency
          ? t::TwoHopNormalizedAdjacency(observed_->num_nodes(),
                                         observed_->Edges())
          : t::NormalizedAdjacency(observed_->num_nodes(),
                                   observed_->Edges()));
  t::Tensor x = features_.Detach();
  EncoderOutput enc = encoder_->Forward(a_hat, x);
  // sample=false keeps the posterior means and draws nothing, so the local
  // RNG is never advanced and the result is a pure function of the weights.
  util::Rng unused_rng(0);
  VariationalOutput vae_out =
      vae_->Forward(enc.z_rec, unused_rng, /*sample=*/false);
  std::vector<t::Matrix> latents;
  latents.reserve(vae_out.z_vae.size());
  for (const t::Tensor& z : vae_out.z_vae) latents.push_back(z.value());
  return latents;
}

t::Matrix Cpgan::ScoreSubgraph(const std::vector<t::Matrix>& latents,
                               const std::vector<int>& ids) const {
  std::vector<t::Tensor> z;
  z.reserve(latents.size());
  for (const t::Matrix& level : latents) {
    z.push_back(t::Constant(GatherMatrixRows(level, ids)));
  }
  t::Tensor h = decoder_->DecodeNodes(z);
  return t::Sigmoid(decoder_->EdgeLogits(h)).value();
}

graph::Graph Cpgan::GenerateFromLatents(const std::vector<t::Matrix>& latents,
                                        int num_nodes, int64_t num_edges,
                                        const GenerateControls& controls,
                                        util::Rng& rng) const {
  CPGAN_CHECK(trained_);
  CPGAN_CHECK(!latents.empty());
  CPGAN_CHECK_EQ(latents[0].rows(), num_nodes);
  AssemblyOptions options;
  if (controls.subgraph_size > 0) {
    options.subgraph_size = controls.subgraph_size;
  } else if (controls.from_prior || num_nodes != observed_->num_nodes()) {
    options.subgraph_size = std::max(config_.subgraph_size, 256);
  } else {
    options.subgraph_size =
        std::min(num_nodes, std::max(config_.subgraph_size, 1024));
  }
  options.max_passes = controls.max_passes;
  options.should_abort = controls.should_abort;
  options.aborted = controls.aborted;
  return AssembleGraph(
      num_nodes, num_edges,
      [this, &latents](const std::vector<int>& ids) {
        return ScoreSubgraph(latents, ids);
      },
      options, rng);
}

std::vector<int> Cpgan::LearnedCommunityLabels() const {
  CPGAN_CHECK(trained_);
  auto a_hat = std::make_shared<t::SparseMatrix>(
      config_.use_two_hop_adjacency
          ? t::TwoHopNormalizedAdjacency(observed_->num_nodes(),
                                         observed_->Edges())
          : t::NormalizedAdjacency(observed_->num_nodes(),
                                   observed_->Edges()));
  t::Tensor x = features_.Detach();
  EncoderOutput enc = encoder_->Forward(a_hat, x);
  if (!enc.assignments.empty()) {
    return ArgmaxRows(enc.assignments[0].value());
  }
  // Pooling disabled (CPGAN-noH): the Louvain targets are the learned
  // representation's training signal; use them directly.
  return louvain_.FinalPartition().labels();
}

graph::Graph Cpgan::GenerateHierarchicalFromLatents(
    const std::vector<t::Matrix>& latents,
    const std::vector<int>& community_labels, int num_nodes,
    int64_t num_edges, const GenerateControls& controls,
    util::Rng& rng) const {
  CPGAN_CHECK(trained_);
  CPGAN_CHECK(!latents.empty());
  CPGAN_CHECK_EQ(static_cast<int>(community_labels.size()),
                 latents[0].rows());
  CPGAN_TRACE_SPAN("hier/generate");

  // Per-request stream base, drawn before any early exit so the RNG
  // position stays deterministic.
  const uint64_t stream_seed = rng.engine()();

  bool local_aborted = false;
  bool* aborted = controls.aborted != nullptr ? controls.aborted
                                              : &local_aborted;
  *aborted = false;
  auto run_phase = [&controls](const std::function<void()>& phase) {
    if (controls.run_phase) {
      controls.run_phase(phase);
    } else {
      phase();
    }
  };
  auto abort_now = [&controls]() {
    return controls.should_abort && controls.should_abort();
  };

  // Observed members per learned community.
  int num_communities = 0;
  for (int label : community_labels) {
    num_communities = std::max(num_communities, label + 1);
  }
  if (num_communities == 0) num_communities = 1;
  std::vector<std::vector<int>> obs_members(num_communities);
  for (size_t v = 0; v < community_labels.size(); ++v) {
    obs_members[community_labels[v]].push_back(static_cast<int>(v));
  }

  // Probe decode: a few evenly spread members per community scored in one
  // decoder pass; block densities are the mean decoded probability per
  // community pair. This is the skeleton's inter-community edge-budget
  // signal, read straight from the learned pooled representation.
  constexpr int kProbePerCommunity = 8;
  std::vector<int> probe_ids;
  std::vector<int> probe_community;
  for (int c = 0; c < num_communities; ++c) {
    const auto& members = obs_members[c];
    const int count =
        std::min<int>(kProbePerCommunity, static_cast<int>(members.size()));
    for (int i = 0; i < count; ++i) {
      probe_ids.push_back(
          members[static_cast<int64_t>(i) * members.size() / count]);
      probe_community.push_back(c);
    }
  }
  {
    // Sort the union by id (scorer contract) carrying the community tags.
    std::vector<int> order(probe_ids.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return probe_ids[a] < probe_ids[b];
    });
    std::vector<int> sorted_ids(probe_ids.size());
    std::vector<int> sorted_community(probe_ids.size());
    for (size_t i = 0; i < order.size(); ++i) {
      sorted_ids[i] = probe_ids[order[i]];
      sorted_community[i] = probe_community[order[i]];
    }
    probe_ids = std::move(sorted_ids);
    probe_community = std::move(sorted_community);
  }
  std::vector<std::vector<double>> density(
      num_communities, std::vector<double>(num_communities, 0.0));
  if (abort_now()) {
    *aborted = true;
    return graph::Graph(num_nodes, {});
  }
  if (probe_ids.size() >= 2) {
    run_phase([&]() {
      CPGAN_TRACE_SPAN("hier/probe");
      t::Matrix probs = ScoreSubgraph(latents, probe_ids);
      std::vector<std::vector<double>> count(
          num_communities, std::vector<double>(num_communities, 0.0));
      const int k = static_cast<int>(probe_ids.size());
      for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j) {
          int a = probe_community[i];
          int b = probe_community[j];
          if (a > b) std::swap(a, b);
          density[a][b] += std::max(0.0f, probs.At(i, j));
          count[a][b] += 1.0;
        }
      }
      for (int a = 0; a < num_communities; ++a) {
        for (int b = a; b < num_communities; ++b) {
          if (count[a][b] > 0.0) density[a][b] /= count[a][b];
          density[b][a] = density[a][b];
        }
      }
    });
  }

  CommunitySkeleton skeleton =
      BuildSkeleton(community_labels, num_nodes, num_edges, density);

  // Each output node borrows the latent row of an observed member of its
  // community (cycling when the output outgrows the training graph).
  std::vector<int> row_of(num_nodes, 0);
  for (int c = 0; c < skeleton.num_communities(); ++c) {
    const auto& out_members = skeleton.members[c];
    const auto& observed = obs_members[c];
    CPGAN_CHECK(out_members.empty() || !observed.empty());
    for (size_t i = 0; i < out_members.size(); ++i) {
      row_of[out_members[i]] = observed[i % observed.size()];
    }
  }

  HierAssemblyOptions options;
  if (controls.subgraph_size > 0) {
    options.assembly.subgraph_size = controls.subgraph_size;
  } else {
    options.assembly.subgraph_size = std::max(config_.subgraph_size, 256);
  }
  options.assembly.max_passes = controls.max_passes;
  options.seed = stream_seed;
  options.run_phase = controls.run_phase;
  options.should_abort = controls.should_abort;
  options.aborted = aborted;
  return HierAssembleGraph(
      skeleton,
      [this, &latents, &row_of](const std::vector<int>& ids) {
        std::vector<int> rows(ids.size());
        for (size_t i = 0; i < ids.size(); ++i) rows[i] = row_of[ids[i]];
        return ScoreSubgraph(latents, rows);
      },
      options);
}

graph::Graph Cpgan::GenerateWith(const GenerateControls& controls,
                                 util::Rng& rng) const {
  CPGAN_CHECK(trained_);
  int num_nodes =
      controls.num_nodes > 0 ? controls.num_nodes : observed_->num_nodes();
  int64_t num_edges =
      controls.num_edges > 0 ? controls.num_edges : observed_->num_edges();
  if (controls.hierarchical) {
    // The encoder passes (posterior latents + learned labels) are
    // kernel-heavy; run them as a phase so the serving runtime's narrowed
    // lock covers them too.
    std::vector<t::Matrix> latents;
    std::vector<int> labels;
    auto prepare = [&]() {
      latents = PosteriorMeanLatents();
      labels = LearnedCommunityLabels();
    };
    if (controls.run_phase) {
      controls.run_phase(prepare);
    } else {
      prepare();
    }
    return GenerateHierarchicalFromLatents(latents, labels, num_nodes,
                                           num_edges, controls, rng);
  }
  bool prior = controls.from_prior || num_nodes != observed_->num_nodes();
  std::vector<t::Matrix> latents;
  if (prior) {
    for (int l = 0; l < effective_levels_; ++l) {
      t::Matrix noise(num_nodes, config_.latent_dim);
      noise.FillNormal(rng, 1.0f);
      latents.push_back(std::move(noise));
    }
  } else {
    latents = PosteriorMeanLatents();
  }
  return GenerateFromLatents(latents, num_nodes, num_edges, controls, rng);
}

graph::Graph Cpgan::Generate() {
  CPGAN_CHECK(trained_);
  // Posterior means: the sampled-prior path is exposed via GenerateWithSize;
  // Table III/IV evaluation uses the mean latents, whose decoded structure
  // carries the learned community signal with the least noise.
  GenerateControls controls;
  controls.hierarchical = config_.hierarchical_generation;
  return GenerateWith(controls, rng_);
}

graph::Graph Cpgan::GenerateWithSize(int num_nodes, int64_t num_edges) {
  CPGAN_CHECK(trained_);
  GenerateControls controls;
  controls.num_nodes = num_nodes;
  controls.num_edges = num_edges;
  controls.from_prior = true;
  controls.hierarchical = config_.hierarchical_generation;
  return GenerateWith(controls, rng_);
}

std::vector<double> Cpgan::EdgeProbabilities(
    const std::vector<graph::Edge>& pairs) {
  CPGAN_CHECK(trained_);
  std::vector<t::Matrix> latents = PosteriorMeanLatents();
  std::vector<t::Tensor> z;
  z.reserve(latents.size());
  for (t::Matrix& level : latents) z.push_back(t::Constant(std::move(level)));
  t::Tensor h = decoder_->DecodeNodes(z);
  t::Matrix e = decoder_->EdgeEmbeddings(h).value();
  std::vector<double> probs;
  probs.reserve(pairs.size());
  double bias = decoder_->edge_bias();
  for (const auto& [u, v] : pairs) {
    double dot = bias;
    const float* eu = e.Row(u);
    const float* ev = e.Row(v);
    for (int c = 0; c < e.cols(); ++c) dot += static_cast<double>(eu[c]) * ev[c];
    probs.push_back(1.0 / (1.0 + std::exp(-dot)));
  }
  return probs;
}


namespace {

std::vector<t::Tensor> AllModelParameters(
    const LadderEncoder& encoder, const VariationalInference& vae,
    const GraphDecoder& decoder, const Discriminator& discriminator,
    const t::Tensor& features) {
  std::vector<t::Tensor> params = encoder.Parameters();
  auto append = [&params](const std::vector<t::Tensor>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  append(vae.Parameters());
  append(decoder.Parameters());
  append(discriminator.Parameters());
  params.push_back(features);
  return params;
}

}  // namespace

bool Cpgan::SaveWeights(const std::string& path) const {
  if (!trained_) {
    CPGAN_LOG(Error) << "SaveWeights(" << path
                     << "): model is untrained — call Fit first";
    return false;
  }
  std::vector<t::Tensor> params = AllModelParameters(
      *encoder_, *vae_, *decoder_, *discriminator_, features_);
  if (!t::SaveParameters(params, path)) {
    CPGAN_LOG(Error) << "SaveWeights(" << path << "): write failed";
    return false;
  }
  return true;
}

bool Cpgan::LoadWeights(const std::string& path) {
  if (encoder_ == nullptr) {
    CPGAN_LOG(Error) << "LoadWeights(" << path
                     << "): model architecture not initialized — Fit on a "
                        "graph with matching shape parameters first";
    return false;
  }
  std::vector<t::Tensor> params = AllModelParameters(
      *encoder_, *vae_, *decoder_, *discriminator_, features_);
  std::string err;
  if (!t::LoadParameters(params, path, &err)) {
    CPGAN_LOG(Error) << "LoadWeights(" << path << "): " << err;
    return false;
  }
  return true;
}

int64_t Cpgan::ParameterCount() const {
  if (encoder_ == nullptr) return 0;
  return encoder_->ParameterCount() + vae_->ParameterCount() +
         decoder_->ParameterCount() + discriminator_->ParameterCount();
}

}  // namespace cpgan::core
