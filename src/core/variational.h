#ifndef CPGAN_CORE_VARIATIONAL_H_
#define CPGAN_CORE_VARIATIONAL_H_

#include <memory>
#include <vector>

#include "nn/mlp.h"

namespace cpgan::core {

/// Output of the variational module: per-level latent features plus the
/// KL-divergence regularizer of eq. (19).
struct VariationalOutput {
  /// Z_vae^(l): n x latent_dim per hierarchy level.
  std::vector<tensor::Tensor> z_vae;

  /// Sum of KL(q || N(0, I)) over levels (1x1 tensor).
  tensor::Tensor kl;
};

/// Variational inference over the reconstructed ladder features (eq. 12).
///
/// One MLP pair (g_mu, g_sigma) is shared across hierarchy levels. Following
/// DESIGN.md substitution 4, we keep per-node means mu_i = g_mu(Z_rec)_i,
/// compute the paper's averaged statistics
///   mu_bar      = (1/n)   sum_i g_mu(Z_rec)_i
///   sigma_bar^2 = (1/n^2) sum_i g_sigma(Z_rec)_i^2
/// and sample z_i = mu_i + eps_i * sigma_bar with the KL term evaluated at
/// (mu_bar, sigma_bar^2) exactly as written in the paper.
class VariationalInference : public nn::Module {
 public:
  VariationalInference(int in_dim, int hidden_dim, int latent_dim,
                       util::Rng& rng);

  /// `sample` toggles the reparameterized noise (true during training and
  /// generation, false for deterministic reconstruction / CPGAN-noV).
  VariationalOutput Forward(const std::vector<tensor::Tensor>& z_rec,
                            util::Rng& rng, bool sample) const;

  int latent_dim() const { return latent_dim_; }

 private:
  int latent_dim_;
  std::unique_ptr<nn::Mlp> g_mu_;
  std::unique_ptr<nn::Mlp> g_sigma_;
};

}  // namespace cpgan::core

#endif  // CPGAN_CORE_VARIATIONAL_H_
