#ifndef CPGAN_CORE_LADDER_ENCODER_H_
#define CPGAN_CORE_LADDER_ENCODER_H_

#include <memory>
#include <vector>

#include "nn/gcn.h"
#include "nn/module.h"

namespace cpgan::core {

/// Output of one encoder pass (Section III-C).
struct EncoderOutput {
  /// Per-level embedded node features Z^(l): n_l x hidden.
  std::vector<tensor::Tensor> z;

  /// Assignment matrices S^(l): n_l x n_{l+1} (softmax rows), one per
  /// pooling step (size num_levels - 1). Eq. (7).
  std::vector<tensor::Tensor> assignments;

  /// Per-level features distributed back to level-0 nodes via transposed
  /// pooling: each entry is n x hidden. Eq. (11).
  std::vector<tensor::Tensor> z_rec;

  /// Graph readout s: num_levels x hidden (per-level mean). Eq. (9).
  tensor::Tensor readout;
};

/// Ladder message-transmission encoder: stacked GCN + differentiable pooling
/// (DiffPool-style) with PairNorm after every convolution, plus the
/// transposed-pooling path that distributes coarse community features back to
/// the original nodes (Sections III-C1..III-C4).
///
/// Permutation-invariance: all layers act row-wise or through the adjacency,
/// so E(P A P^T) = E(A) up to the row permutation of node-level outputs and
/// exactly for the readout (eq. 5); verified in tests/core/encoder_test.cc.
class LadderEncoder : public nn::Module {
 public:
  /// `pool_sizes` has num_levels-1 entries: the cluster count after each
  /// pooling step (empty for a single-level, CPGAN-noH encoder).
  LadderEncoder(int feature_dim, int hidden_dim,
                const std::vector<int>& pool_sizes, util::Rng& rng);

  /// Encodes a graph whose level-0 adjacency is a constant sparse matrix
  /// (observed graphs).
  EncoderOutput Forward(
      const std::shared_ptr<const tensor::SparseMatrix>& a_hat,
      const tensor::Tensor& x) const;

  /// Encodes a graph whose level-0 adjacency is a dense differentiable
  /// probability matrix (generated graphs); gradients flow into `a`.
  EncoderOutput ForwardDense(const tensor::Tensor& a,
                             const tensor::Tensor& x) const;

  int num_levels() const { return static_cast<int>(pool_sizes_.size()) + 1; }
  int hidden_dim() const { return hidden_dim_; }
  const std::vector<int>& pool_sizes() const { return pool_sizes_; }

 private:
  /// Levels >= 1 (dense coarse graphs) plus readout / z_rec construction.
  /// `a1` and `x1` are the first coarsened adjacency/features; `depool0` is
  /// the level-0 transposed-pooling matrix S_depool^(0)T (n x c1).
  void FinishLevels(EncoderOutput& out, tensor::Tensor a1, tensor::Tensor x1,
                    tensor::Tensor depool0_t) const;

  /// Builds the readout from out.z.
  void BuildReadout(EncoderOutput& out) const;

  int feature_dim_;
  int hidden_dim_;
  std::vector<int> pool_sizes_;
  std::vector<std::unique_ptr<nn::GcnConv>> embed_;
  std::vector<std::unique_ptr<nn::GcnConv>> pool_;
  std::vector<std::unique_ptr<nn::GcnConv>> depool_;
};

}  // namespace cpgan::core

#endif  // CPGAN_CORE_LADDER_ENCODER_H_
