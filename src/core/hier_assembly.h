#ifndef CPGAN_CORE_HIER_ASSEMBLY_H_
#define CPGAN_CORE_HIER_ASSEMBLY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/assembly.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::core {

/// \file
/// Hierarchical community-wise assembly (docs/INTERNALS.md, "Hierarchical
/// assembly"): instead of one flat AssembleGraph over random node subsets,
/// the output graph is built from a community skeleton — per-community node
/// sets plus a symmetric inter-community edge-budget matrix. Every
/// community runs its own AssembleGraph on its own RNG stream (fanned out
/// over util::ThreadPool in waves), then cross-community edges are stitched
/// by sampling each block's budget from decoded boundary-node scores. The
/// result is bitwise identical at any thread count: per-community streams
/// never interact, the wave partition is static, and edges are concatenated
/// in community/block order.

/// Community-level skeleton of the output graph.
struct CommunitySkeleton {
  /// Output node ids per community; contiguous ascending ranges in
  /// community order, covering [0, num_nodes) exactly once. Communities may
  /// be empty.
  std::vector<std::vector<int>> members;

  /// Symmetric community-by-community edge budgets: budget[a][a] is the
  /// intra-community target of AssembleGraph on community a, budget[a][b]
  /// (a != b) the number of cross edges to stitch between a and b.
  std::vector<std::vector<int64_t>> budget;

  int num_nodes = 0;

  int num_communities() const { return static_cast<int>(members.size()); }
};

/// Builds a skeleton for `num_nodes` output nodes from observed community
/// labels and estimated block densities:
///  - output community sizes are the observed ones scaled to `num_nodes`
///    (largest-remainder rounding, so outputs larger than the training
///    graph keep the observed community-size profile);
///  - `block_density[a][b]` is the estimated mean edge probability of block
///    (a, b) (symmetric, C x C, C = max label + 1); the target edge count
///    is split over blocks proportionally to density x block pair count,
///    again with largest-remainder rounding, capped at each block's pair
///    count.
CommunitySkeleton BuildSkeleton(
    const std::vector<int>& observed_labels, int num_nodes,
    int64_t target_edges,
    const std::vector<std::vector<double>>& block_density);

struct HierAssemblyOptions {
  /// Per-community assembly knobs. `assembly.should_abort` and
  /// `assembly.aborted` are ignored — cancellation is wired through the
  /// fields below so each community tracks its own abort state.
  AssemblyOptions assembly;

  /// Communities (and stitch block pairs) processed per locked phase; each
  /// wave is one `run_phase` invocation and one ThreadPool fan-out, and
  /// `should_abort` is polled between waves. 0 = the global pool's thread
  /// count.
  int wave_size = 0;

  /// Upper bound on boundary nodes sampled per community side when
  /// stitching a block (the actual count also shrinks with the block's
  /// budget, so tiny budgets only pay for tiny decodes).
  int stitch_candidates = 32;

  /// Base of the per-community (and per-block-pair) RNG streams: community
  /// c draws from Rng(mix(seed, c)), block pair (a, b) from
  /// Rng(mix(seed, C + pair_index)). Streams never interact, which is what
  /// makes the fan-out order irrelevant to the output.
  uint64_t seed = 0;

  /// Every kernel-heavy phase (a wave of per-community decodes, a stitch
  /// wave) runs inside this wrapper; the serving runtime passes a
  /// KernelLock() scope so other requests interleave between waves. Unset =
  /// run directly.
  std::function<void(const std::function<void()>&)> run_phase;

  /// Cooperative cancellation, polled between waves and (via the inner
  /// AssemblyOptions) at every per-community phase boundary. A cancelled
  /// run returns the valid partial graph built so far.
  std::function<bool()> should_abort;

  /// Out-param: reset to false on entry, true when should_abort stopped any
  /// phase early.
  bool* aborted = nullptr;
};

/// Assembles the skeleton into a full graph. `scorer` receives sorted
/// distinct *output* node ids (community subsets or cross-block boundary
/// unions) and returns the symmetric edge-probability matrix, exactly like
/// flat assembly's SubgraphScorer.
graph::Graph HierAssembleGraph(const CommunitySkeleton& skeleton,
                               const SubgraphScorer& scorer,
                               const HierAssemblyOptions& options);

/// SplitMix64 of (seed, stream) — the per-community stream derivation,
/// exposed for the determinism tests.
uint64_t HierStreamSeed(uint64_t seed, uint64_t stream);

}  // namespace cpgan::core

#endif  // CPGAN_CORE_HIER_ASSEMBLY_H_
