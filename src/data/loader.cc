#include "data/loader.h"

#include <sys/stat.h>

#include "data/datasets.h"
#include "graph/binary_io.h"
#include "graph/io.h"
#include "util/check.h"

namespace cpgan::data {

bool IsFilePath(const std::string& ref) {
  struct stat st;
  return ::stat(ref.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

graph::Graph LoadGraph(const std::string& ref, uint64_t seed) {
  return LoadGraph(ref, graph::LoadOptions{}, seed);
}

graph::Graph LoadGraph(const std::string& ref, const graph::LoadOptions& options,
                       uint64_t seed) {
  if (IsFilePath(ref)) {
    // Binary (.cpge) files are routed by magic sniff, not extension, so a
    // converted file works wherever a text edge list does.
    graph::LoadResult result =
        graph::IsBinaryEdgeList(ref)
            ? graph::LoadBinaryEdgeListDetailed(ref, options)
            : graph::LoadEdgeListDetailed(ref, options);
    CPGAN_CHECK_MSG(result.ok(), result.error.c_str());
    return *result.graph;
  }
  return MakeDataset(ref, seed);
}

}  // namespace cpgan::data
