#include "data/loader.h"

#include <sys/stat.h>

#include "data/datasets.h"
#include "graph/io.h"
#include "util/check.h"

namespace cpgan::data {

bool IsFilePath(const std::string& ref) {
  struct stat st;
  return ::stat(ref.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

graph::Graph LoadGraph(const std::string& ref, uint64_t seed) {
  if (IsFilePath(ref)) {
    auto loaded = graph::LoadEdgeList(ref);
    CPGAN_CHECK_MSG(loaded.has_value(), "failed to read edge list");
    return *loaded;
  }
  return MakeDataset(ref, seed);
}

}  // namespace cpgan::data
