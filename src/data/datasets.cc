#include "data/datasets.h"

#include "data/synthetic.h"
#include "util/check.h"
#include "util/rng.h"

namespace cpgan::data {
namespace {

/// Construction recipe for one dataset at a reference scale.
struct Recipe {
  const char* name;
  int num_nodes;
  int64_t num_edges;
  int num_communities;
  double degree_exponent;
  double intra_fraction;
  double size_skew;
  double triangle_fraction;
};

// Scaled-down analogues of Table II: relative densities, community
// granularity, degree skew, and clustering level track the real networks.
constexpr Recipe kRecipes[] = {
    // Citeseer: very sparse, tree-like, many tiny communities, PWE ~2.9.
    {"citeseer_like", 560, 900, 45, 3.0, 0.90, 0.8, 0.02},
    // PubMed: sparse, strongly heavy-tailed degrees (GINI ~0.88).
    {"pubmed_like", 1200, 2700, 80, 2.1, 0.85, 1.0, 0.03},
    // PPI: denser biological network, moderate clustering.
    {"ppi_like", 480, 1350, 30, 2.4, 0.80, 0.7, 0.10},
    // Facebook: dense social pages network, high mean degree & clustering.
    {"facebook_like", 1400, 9000, 60, 2.3, 0.82, 0.9, 0.15},
    // Google web graph: moderately sparse, few giant communities.
    {"google_like", 1800, 8900, 18, 2.2, 0.78, 1.2, 0.08},
};

}  // namespace

std::vector<std::string> DatasetNames() {
  return {"citeseer_like",   "pubmed_like",   "ppi_like",
          "pointcloud_like", "facebook_like", "google_like"};
}

graph::Graph MakeScaledDataset(const std::string& name, int num_nodes,
                               uint64_t seed) {
  util::Rng rng(seed);
  if (name == "pointcloud_like") {
    // 3D Point Cloud: k-NN graph of object clusters (~mean degree 4.3,
    // very long characteristic path length).
    int objects = std::max(1, num_nodes / 4);
    return MakePointCloudGraph(num_nodes, objects, /*k=*/3, rng);
  }
  for (const Recipe& r : kRecipes) {
    if (name == r.name) {
      double scale = static_cast<double>(num_nodes) / r.num_nodes;
      CommunityGraphParams params;
      params.num_nodes = num_nodes;
      params.num_edges =
          static_cast<int64_t>(static_cast<double>(r.num_edges) * scale);
      params.num_communities =
          std::max(2, static_cast<int>(r.num_communities * scale));
      params.degree_exponent = r.degree_exponent;
      params.intra_fraction = r.intra_fraction;
      params.community_size_skew = r.size_skew;
      params.triangle_fraction = r.triangle_fraction;
      return MakeCommunityGraph(params, rng);
    }
  }
  CPGAN_CHECK_MSG(false, "unknown dataset name");
  return graph::Graph(0);
}

graph::Graph MakeDataset(const std::string& name, uint64_t seed) {
  if (name == "pointcloud_like") return MakeScaledDataset(name, 840, seed);
  for (const Recipe& r : kRecipes) {
    if (name == r.name) return MakeScaledDataset(name, r.num_nodes, seed);
  }
  CPGAN_CHECK_MSG(false, "unknown dataset name");
  return graph::Graph(0);
}

}  // namespace cpgan::data
