#ifndef CPGAN_DATA_SYNTHETIC_H_
#define CPGAN_DATA_SYNTHETIC_H_

#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::data {

/// Parameters of the community-structured synthetic graph family used as
/// stand-ins for the paper's real datasets (DESIGN.md §2-3): a degree-
/// corrected planted-partition process with power-law degree propensities,
/// skewed community sizes, and an optional triangle-closing pass.
struct CommunityGraphParams {
  int num_nodes = 500;
  int64_t num_edges = 1500;
  int num_communities = 40;
  /// Pareto tail exponent of the degree propensities (lower = heavier tail).
  double degree_exponent = 2.5;
  /// Fraction of edges placed inside communities.
  double intra_fraction = 0.85;
  /// Zipf exponent of the community-size distribution (0 = equal sizes).
  double community_size_skew = 1.0;
  /// Fraction of extra wedge-closing edges (raises clustering coefficient),
  /// relative to num_edges; the total edge budget stays num_edges.
  double triangle_fraction = 0.0;
};

/// Samples a community-structured graph. The realized edge count can fall
/// slightly below the target on very dense blocks (duplicate rejection).
graph::Graph MakeCommunityGraph(const CommunityGraphParams& params,
                                util::Rng& rng);

/// k-nearest-neighbor graph over 3-D points drawn from Gaussian object
/// clusters — the stand-in for the 3D Point Cloud dataset (long CPL, many
/// small communities).
graph::Graph MakePointCloudGraph(int num_points, int num_objects, int k,
                                 util::Rng& rng);

}  // namespace cpgan::data

#endif  // CPGAN_DATA_SYNTHETIC_H_
