#ifndef CPGAN_DATA_EDGE_STREAM_H_
#define CPGAN_DATA_EDGE_STREAM_H_

#include <cstdint>
#include <functional>
#include <string>

namespace cpgan::data {

/// Streaming generator for million-to-billion edge synthetic graphs: a ring
/// over n nodes plus `chords` pseudo-random chords per node. Designed for
/// the ingest benchmarks (bench/micro_ingest.cc), where the graph must be
/// written to disk without ever materializing its edge list in memory.
///
/// Structure guarantees (all by construction, no dedup pass needed):
///   - exactly n * (1 + chords) edges: n ring edges (i, i+1 mod n) and
///     chords distinct chord edges per node i, each (i, (i+j) mod n) with a
///     jump j in [2, n/2);
///   - no duplicates: two chords {i, i+j} and {i', i'+j'} coincide as an
///     unordered pair only when j + j' = n, impossible with both < n/2, and
///     a chord never equals a ring edge (jump 1 / n-1 excluded);
///   - no self-loops (jump 0 excluded);
///   - deterministic in `seed`: every call streams the identical edge
///     sequence, which lets the binary writer make two passes (CRC, then
///     payload) over the same stream.
struct RingChordSpec {
  int64_t num_nodes = 0;
  int chords = 0;       // distinct chords per node; requires n >= 2*(chords+2)
  uint64_t seed = 1;
};

/// Exact edge count of the spec: n * (1 + chords).
int64_t RingChordEdgeCount(const RingChordSpec& spec);

/// Streams every edge exactly once in canonical (u < v) form, in a
/// deterministic order. `emit` is called once per edge.
void StreamRingChordEdges(
    const RingChordSpec& spec,
    const std::function<void(uint32_t u, uint32_t v)>& emit);

/// Writes the graph as a text edge list (with the `# nodes N` header) using
/// O(1) memory. Atomic (temp file + rename). Returns false on IO failure.
bool WriteRingChordText(const RingChordSpec& spec, const std::string& path);

/// Writes the graph as a `.cpge` binary edge list (graph/binary_io.h) using
/// O(1) memory: pass 1 streams the edges through the payload CRC, pass 2
/// streams them again into the file body. Atomic. Returns false on IO
/// failure.
bool WriteRingChordBinary(const RingChordSpec& spec, const std::string& path);

}  // namespace cpgan::data

#endif  // CPGAN_DATA_EDGE_STREAM_H_
