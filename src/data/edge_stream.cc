#include "data/edge_stream.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/binary_io.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fileio.h"
#include "util/rng.h"

namespace cpgan::data {

namespace {

void ValidateSpec(const RingChordSpec& spec) {
  CPGAN_CHECK(spec.num_nodes >= 3);
  CPGAN_CHECK(spec.chords >= 0);
  // Chord jumps live in [2, n/2); each node needs `chords` distinct ones.
  CPGAN_CHECK(spec.num_nodes / 2 - 2 >= spec.chords);
  CPGAN_CHECK(spec.num_nodes <= int64_t{1} << 32);
}

}  // namespace

int64_t RingChordEdgeCount(const RingChordSpec& spec) {
  ValidateSpec(spec);
  return spec.num_nodes * (1 + spec.chords);
}

void StreamRingChordEdges(
    const RingChordSpec& spec,
    const std::function<void(uint32_t u, uint32_t v)>& emit) {
  ValidateSpec(spec);
  const int64_t n = spec.num_nodes;
  util::Rng rng(spec.seed);
  std::vector<int64_t> jumps(spec.chords);
  for (int64_t i = 0; i < n; ++i) {
    // Ring edge (i, i+1 mod n), canonical: the wrap edge is (0, n-1).
    if (i + 1 < n) {
      emit(static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1));
    } else {
      emit(0u, static_cast<uint32_t>(n - 1));
    }
    // `chords` distinct jumps in [2, n/2) by rejection; ValidateSpec keeps
    // the candidate pool at least chord-count sized, and in practice
    // (n >> chords) retries are vanishingly rare.
    for (int c = 0; c < spec.chords; ++c) {
      int64_t j;
      do {
        j = rng.UniformInt(2, n / 2 - 1);
      } while (std::find(jumps.begin(), jumps.begin() + c, j) !=
               jumps.begin() + c);
      jumps[c] = j;
      const int64_t other = (i + j) % n;
      emit(static_cast<uint32_t>(std::min(i, other)),
           static_cast<uint32_t>(std::max(i, other)));
    }
  }
}

bool WriteRingChordText(const RingChordSpec& spec, const std::string& path) {
  return util::AtomicWriteFile(path, [&spec](std::FILE* f) {
    if (std::fprintf(f, "# nodes %lld\n",
                     static_cast<long long>(spec.num_nodes)) < 0) {
      return false;
    }
    bool ok = true;
    StreamRingChordEdges(spec, [f, &ok](uint32_t u, uint32_t v) {
      if (ok && std::fprintf(f, "%u %u\n", u, v) < 0) ok = false;
    });
    return ok;
  });
}

bool WriteRingChordBinary(const RingChordSpec& spec, const std::string& path) {
  // Pass 1: payload CRC. The stream is deterministic in the seed, so pass 2
  // writes the identical byte sequence.
  util::Crc32 crc;
  StreamRingChordEdges(spec, [&crc](uint32_t u, uint32_t v) {
    const uint32_t record[2] = {u, v};
    crc.Update(record, sizeof(record));
  });
  uint8_t header[graph::kBinaryEdgeListHeaderBytes];
  graph::internal::EncodeBinaryHeader(
      static_cast<uint64_t>(spec.num_nodes),
      static_cast<uint64_t>(RingChordEdgeCount(spec)), crc.Digest(), header);
  return util::AtomicWriteFile(path, [&spec, &header](std::FILE* f) {
    if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header)) {
      return false;
    }
    // Pass 2: buffered payload write (no per-edge syscalls).
    std::vector<uint32_t> buffer;
    buffer.reserve(2 * 4096);
    bool ok = true;
    auto flush = [f, &buffer, &ok]() {
      if (buffer.empty() || !ok) return;
      const size_t bytes = buffer.size() * sizeof(uint32_t);
      if (std::fwrite(buffer.data(), 1, bytes, f) != bytes) ok = false;
      buffer.clear();
    };
    StreamRingChordEdges(spec, [&buffer, &flush](uint32_t u, uint32_t v) {
      buffer.push_back(u);
      buffer.push_back(v);
      if (buffer.size() >= 2 * 4096) flush();
    });
    flush();
    return ok;
  });
}

}  // namespace cpgan::data
