#ifndef CPGAN_DATA_DATASETS_H_
#define CPGAN_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace cpgan::data {

/// Names of the six benchmark datasets, in the paper's Table II order. Each
/// is a scaled-down synthetic stand-in for the corresponding real network
/// (see DESIGN.md §3 for the substitution rationale).
std::vector<std::string> DatasetNames();

/// Builds the named dataset deterministically from `seed`. Valid names:
/// "citeseer_like", "pubmed_like", "ppi_like", "pointcloud_like",
/// "facebook_like", "google_like". Aborts on unknown names.
graph::Graph MakeDataset(const std::string& name, uint64_t seed = 42);

/// Scales the named dataset's construction to approximately `num_nodes`
/// nodes, preserving its density and community granularity. Used by the
/// efficiency sweeps (Tables VII-IX).
graph::Graph MakeScaledDataset(const std::string& name, int num_nodes,
                               uint64_t seed = 42);

}  // namespace cpgan::data

#endif  // CPGAN_DATA_DATASETS_H_
