#ifndef CPGAN_DATA_LOADER_H_
#define CPGAN_DATA_LOADER_H_

#include <string>

#include "graph/graph.h"
#include "graph/io.h"

namespace cpgan::data {

/// Resolves a dataset reference: if `ref` is a path to an existing edge-list
/// file it is loaded (so users can drop in the real Citeseer/PubMed/... edge
/// lists); otherwise `ref` is treated as a synthetic dataset name from
/// DatasetNames(). Aborts if neither resolves.
graph::Graph LoadGraph(const std::string& ref, uint64_t seed = 42);

/// Same, but file loads go through LoadEdgeListDetailed with `options`
/// (e.g. strict mode). Aborts with the loader's error on failure.
graph::Graph LoadGraph(const std::string& ref, const graph::LoadOptions& options,
                       uint64_t seed = 42);

/// True if `ref` names a file on disk.
bool IsFilePath(const std::string& ref);

}  // namespace cpgan::data

#endif  // CPGAN_DATA_LOADER_H_
