#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.h"

namespace cpgan::data {

graph::Graph MakeCommunityGraph(const CommunityGraphParams& params,
                                util::Rng& rng) {
  int n = params.num_nodes;
  int k = std::max(1, std::min(params.num_communities, n));
  CPGAN_CHECK_GE(n, 2);

  // Zipf-skewed community sizes.
  std::vector<double> size_weights(k);
  for (int c = 0; c < k; ++c) {
    size_weights[c] = 1.0 / std::pow(c + 1.0, params.community_size_skew);
  }
  double weight_total = 0.0;
  for (double w : size_weights) weight_total += w;
  std::vector<int> community_of(n);
  std::vector<std::vector<int>> members(k);
  {
    // Deterministic proportional allocation, then round-robin remainder.
    int assigned = 0;
    for (int c = 0; c < k; ++c) {
      int quota = static_cast<int>(size_weights[c] / weight_total * n);
      if (c < k - 1) quota = std::max(1, quota);
      for (int i = 0; i < quota && assigned < n; ++i) {
        community_of[assigned] = c;
        members[c].push_back(assigned);
        ++assigned;
      }
    }
    int c = 0;
    while (assigned < n) {
      community_of[assigned] = c % k;
      members[c % k].push_back(assigned);
      ++assigned;
      ++c;
    }
  }

  // Pareto degree propensities.
  std::vector<double> theta(n);
  for (int v = 0; v < n; ++v) {
    double u = std::max(1e-9, rng.Uniform());
    theta[v] = std::pow(u, -1.0 / std::max(1.01, params.degree_exponent - 1.0));
    theta[v] = std::min(theta[v], 50.0);  // cap extreme hubs
  }

  int64_t target = params.num_edges;
  int64_t triangle_budget =
      static_cast<int64_t>(params.triangle_fraction * target);
  int64_t intra_budget = static_cast<int64_t>(
      params.intra_fraction * static_cast<double>(target - triangle_budget));
  int64_t inter_budget = target - triangle_budget - intra_budget;

  std::set<graph::Edge> edges;
  auto add_edge = [&edges](int u, int v) {
    if (u == v) return false;
    if (u > v) std::swap(u, v);
    return edges.insert({u, v}).second;
  };

  // Community pick weight: total propensity mass per community.
  std::vector<double> community_mass(k, 0.0);
  std::vector<std::vector<double>> member_theta(k);
  for (int c = 0; c < k; ++c) {
    for (int v : members[c]) {
      community_mass[c] += theta[v];
      member_theta[c].push_back(theta[v]);
    }
  }
  std::vector<double> intra_weight(k, 0.0);
  for (int c = 0; c < k; ++c) {
    intra_weight[c] =
        members[c].size() >= 2 ? community_mass[c] * community_mass[c] : 0.0;
  }

  // Intra-community edges.
  {
    int64_t placed = 0;
    int64_t attempts = 0;
    int64_t max_attempts = 30 * intra_budget + 100;
    while (placed < intra_budget && attempts < max_attempts) {
      ++attempts;
      int c = rng.Categorical(intra_weight);
      int u = members[c][rng.Categorical(member_theta[c])];
      int v = members[c][rng.Categorical(member_theta[c])];
      if (add_edge(u, v)) ++placed;
    }
  }
  // Inter-community edges.
  {
    int64_t placed = 0;
    int64_t attempts = 0;
    int64_t max_attempts = 30 * inter_budget + 100;
    util::CumulativeSampler node_sampler(theta);
    while (placed < inter_budget && attempts < max_attempts) {
      ++attempts;
      int u = node_sampler.Sample(rng);
      int v = node_sampler.Sample(rng);
      if (community_of[u] == community_of[v]) continue;
      if (add_edge(u, v)) ++placed;
    }
  }
  // Triangle closing: pick a node with >= 2 picked neighbors, connect two.
  if (triangle_budget > 0) {
    std::vector<std::vector<int>> adjacency(n);
    for (const auto& [u, v] : edges) {
      adjacency[u].push_back(v);
      adjacency[v].push_back(u);
    }
    int64_t placed = 0;
    int64_t attempts = 0;
    int64_t max_attempts = 40 * triangle_budget + 100;
    while (placed < triangle_budget && attempts < max_attempts) {
      ++attempts;
      int w = static_cast<int>(rng.UniformInt(n));
      if (adjacency[w].size() < 2) continue;
      int i = static_cast<int>(rng.UniformInt(
          static_cast<int64_t>(adjacency[w].size())));
      int j = static_cast<int>(rng.UniformInt(
          static_cast<int64_t>(adjacency[w].size())));
      if (i == j) continue;
      int u = adjacency[w][i];
      int v = adjacency[w][j];
      if (add_edge(u, v)) {
        adjacency[u].push_back(v);
        adjacency[v].push_back(u);
        ++placed;
      }
    }
  }
  // Connectivity pass: attach isolated nodes to a peer in their community
  // (or any node when the community is a singleton) so the graph is not
  // dominated by degree-0 fragments.
  {
    std::vector<int> degree(n, 0);
    for (const auto& [u, v] : edges) {
      degree[u] += 1;
      degree[v] += 1;
    }
    for (int v = 0; v < n; ++v) {
      if (degree[v] > 0) continue;
      int c = community_of[v];
      int peer = v;
      if (members[c].size() >= 2) {
        for (int tries = 0; tries < 8 && peer == v; ++tries) {
          peer = members[c][rng.UniformInt(
              static_cast<int64_t>(members[c].size()))];
        }
      }
      if (peer == v) {
        while (peer == v) peer = static_cast<int>(rng.UniformInt(n));
      }
      if (add_edge(v, peer)) {
        degree[v] += 1;
        degree[peer] += 1;
      }
    }
  }
  std::vector<graph::Edge> edge_list(edges.begin(), edges.end());
  return graph::Graph(n, edge_list);
}

graph::Graph MakePointCloudGraph(int num_points, int num_objects, int k,
                                 util::Rng& rng) {
  CPGAN_CHECK_GE(num_points, 2);
  CPGAN_CHECK_GE(num_objects, 1);
  CPGAN_CHECK_GE(k, 1);
  struct Point {
    double x, y, z;
  };
  std::vector<Point> centers(num_objects);
  for (Point& c : centers) {
    c = {rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0),
         rng.Uniform(0.0, 20.0)};
  }
  std::vector<Point> points(num_points);
  for (int i = 0; i < num_points; ++i) {
    const Point& c = centers[rng.UniformInt(num_objects)];
    points[i] = {c.x + rng.Normal(0.0, 0.8), c.y + rng.Normal(0.0, 0.8),
                 c.z + rng.Normal(0.0, 0.8)};
  }
  auto dist2 = [&points](int a, int b) {
    double dx = points[a].x - points[b].x;
    double dy = points[a].y - points[b].y;
    double dz = points[a].z - points[b].z;
    return dx * dx + dy * dy + dz * dz;
  };
  std::vector<graph::Edge> edges;
  std::vector<std::pair<double, int>> nearest;
  for (int i = 0; i < num_points; ++i) {
    nearest.clear();
    for (int j = 0; j < num_points; ++j) {
      if (j == i) continue;
      nearest.push_back({dist2(i, j), j});
    }
    int take = std::min<int>(k, static_cast<int>(nearest.size()));
    std::partial_sort(nearest.begin(), nearest.begin() + take, nearest.end());
    for (int t = 0; t < take; ++t) {
      edges.emplace_back(i, nearest[t].second);
    }
  }
  return graph::Graph(num_points, edges);
}

}  // namespace cpgan::data
