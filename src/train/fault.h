#ifndef CPGAN_TRAIN_FAULT_H_
#define CPGAN_TRAIN_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cpgan::train {

/// Deterministic fault injection for exercising the guard and checkpoint
/// recovery paths. A FaultPlan is attached to a Cpgan before Fit (see
/// Cpgan::SetFaultPlan); every field defaults to "inject nothing", so a
/// default-constructed plan is a no-op. The plan is the test harness for the
/// fault-tolerance subsystem: each recovery path has a knob that triggers it
/// at an exact, reproducible epoch.
struct FaultPlan {
  /// Epoch (0-based) at which to poison a generator-step gradient with NaN,
  /// after Backward and before the guard inspects it. -1 = never.
  int nan_grad_epoch = -1;

  /// Index into the generator parameter list of the gradient to poison.
  int nan_grad_param = 0;

  /// Epoch at which the generator loss is replaced with +Inf before the
  /// guard check (exercises the non-finite-loss verdict). -1 = never.
  int inf_loss_epoch = -1;

  /// Simulated crash: stop the training loop after completing this epoch
  /// (checkpoints written so far remain on disk; the model reports
  /// untrained). -1 = run to completion.
  int stop_after_epoch = -1;

  /// Transient checkpoint-I/O fault: arm util::InjectAtomicWriteFailures
  /// with `io_fail_count` immediately before the checkpoint write of this
  /// epoch (0-based, matching the epoch whose boundary writes the file).
  /// With the retry/backoff wrapper in place the write succeeds anyway as
  /// long as io_fail_count stays below the retry budget. -1 = never.
  int io_fail_epoch = -1;
  int io_fail_count = 1;

  bool InjectNanGrad(int epoch) const { return epoch == nan_grad_epoch; }
  bool InjectInfLoss(int epoch) const { return epoch == inf_loss_epoch; }
  bool InjectIoFailure(int epoch) const { return epoch == io_fail_epoch; }
  bool StopAfter(int epoch) const {
    return stop_after_epoch >= 0 && epoch >= stop_after_epoch;
  }
  bool Any() const {
    return nan_grad_epoch >= 0 || inf_loss_epoch >= 0 ||
           stop_after_epoch >= 0 || io_fail_epoch >= 0;
  }
};

/// Overwrites one entry of `params[param_index]`'s gradient with NaN
/// (clamping the index into range; no-op on an empty list or an untouched
/// gradient accumulator).
void PoisonGradient(const std::vector<tensor::Tensor>& params,
                    int param_index);

/// On-disk corruption helpers for checkpoint tests.
///
/// Truncates `path` to its first `keep_bytes` bytes. Returns false on IO
/// failure or if the file is shorter than `keep_bytes`.
bool TruncateFile(const std::string& path, int64_t keep_bytes);

/// Flips every bit of the byte at `offset` (XOR 0xFF) in place. Returns
/// false on IO failure or out-of-range offset.
bool FlipByte(const std::string& path, int64_t offset);

/// Size of `path` in bytes, or -1 on failure.
int64_t FileSize(const std::string& path);

}  // namespace cpgan::train

#endif  // CPGAN_TRAIN_FAULT_H_
