#ifndef CPGAN_TRAIN_GUARD_H_
#define CPGAN_TRAIN_GUARD_H_

#include <deque>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/tensor.h"

namespace cpgan::train {

/// Knobs for the numeric training guard (surfaced on core::CpganConfig).
struct GuardConfig {
  /// Master switch; a disabled guard approves every step and never snapshots.
  bool enabled = true;

  /// Number of recent good-step losses kept for the explosion reference.
  int window = 16;

  /// A step is rejected as an explosion when |loss| exceeds this multiple of
  /// the rolling mean absolute loss over a *full* window. <= 0 disables the
  /// explosion check (non-finite checks still apply).
  float explosion_factor = 25.0f;

  /// Learning-rate multiplier the caller should apply to its optimizers after
  /// each recovery (1 = keep the rate). The guard itself does not own the
  /// optimizers; Cpgan reads this knob.
  float lr_decay_on_recovery = 0.5f;

  /// Abort-training threshold: after this many recoveries the guard reports
  /// exhausted() and the caller should stop instead of thrashing. 0 =
  /// unlimited.
  int max_recoveries = 0;
};

/// Why a step was rejected.
enum class StepVerdict {
  kOk,
  kNonFiniteLoss,
  kNonFiniteGrad,
  kLossExplosion,
};

/// Human-readable verdict label for logs.
const char* StepVerdictName(StepVerdict verdict);

/// Numeric watchdog for an optimizer step, sitting between Backward() and
/// Optimizer::Step() (state machine documented in docs/INTERNALS.md):
///
///   Inspect(loss, step_params)  -> kOk: caller applies the step, then
///                                  CommitGood(loss) snapshots the params as
///                                  last-known-good.
///                               -> anything else: caller skips the step,
///                                  zeroes gradients, and calls Recover() to
///                                  roll the params back to the snapshot.
///
/// Because the check runs *before* Step(), a NaN gradient never reaches the
/// optimizer's moment buffers — recovery only has to restore parameter
/// values, not optimizer state.
class TrainingGuard {
 public:
  /// `params` is the full guarded parameter set (snapshot/restore target);
  /// per-step gradient checks run on the subset passed to Inspect.
  TrainingGuard(const GuardConfig& config, std::vector<tensor::Tensor> params);

  /// Judges the step about to be applied. `loss` is the freshly
  /// backpropagated scalar; gradients are read from `step_params`. `stream`
  /// selects an independent explosion window — losses of different
  /// magnitudes (e.g. discriminator vs generator) must not share a
  /// reference; the snapshot is shared across streams.
  StepVerdict Inspect(float loss,
                      const std::vector<tensor::Tensor>& step_params,
                      int stream = 0) const;

  /// Records a successful step: pushes `loss` into the stream's explosion
  /// window and snapshots every guarded parameter as last-known-good.
  void CommitGood(float loss, int stream = 0);

  /// Restores the last-known-good snapshot into the guarded parameters and
  /// counts a recovery. Returns false if no good step has been committed yet
  /// (parameters are left untouched; the recovery is still counted).
  bool Recover();

  int recoveries() const { return recoveries_; }

  /// True once max_recoveries (if set) has been reached.
  bool exhausted() const {
    return config_.max_recoveries > 0 &&
           recoveries_ >= config_.max_recoveries;
  }

  bool has_snapshot() const { return has_snapshot_; }

 private:
  GuardConfig config_;
  std::vector<tensor::Tensor> params_;
  std::vector<tensor::Matrix> snapshot_;
  bool has_snapshot_ = false;
  /// Per-stream windows of recent good losses (grown on demand).
  std::vector<std::deque<float>> recent_losses_;
  int recoveries_ = 0;
};

}  // namespace cpgan::train

#endif  // CPGAN_TRAIN_GUARD_H_
