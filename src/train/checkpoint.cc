#include "train/checkpoint.h"

#include <dirent.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "tensor/serialize.h"
#include "util/crc32.h"
#include "util/fileio.h"

namespace cpgan::train {
namespace {

constexpr uint32_t kMagic = 0x4B435043u;  // "CPCK"
constexpr uint32_t kVersion = 1;
constexpr const char* kPrefix = "ckpt_";
constexpr const char* kSuffix = ".cpck";

void SetError(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool SaveCheckpoint(const std::string& path, const CheckpointMeta& meta,
                    const std::vector<tensor::Tensor>& params) {
  CPGAN_STOPWATCH_SCOPE("train/checkpoint_write");
  bool ok = util::AtomicWriteFile(path, [&meta, &params](std::FILE* f) {
    util::Crc32 crc;
    uint32_t magic = kMagic;
    uint32_t version = kVersion;
    int32_t epoch = meta.epoch;
    uint64_t config_hash = meta.config_hash;
    crc.Update(&magic, sizeof(magic));
    crc.Update(&version, sizeof(version));
    crc.Update(&epoch, sizeof(epoch));
    crc.Update(&config_hash, sizeof(config_hash));
    uint32_t header_crc = crc.Digest();
    bool ok = std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
              std::fwrite(&version, sizeof(version), 1, f) == 1 &&
              std::fwrite(&epoch, sizeof(epoch), 1, f) == 1 &&
              std::fwrite(&config_hash, sizeof(config_hash), 1, f) == 1 &&
              std::fwrite(&header_crc, sizeof(header_crc), 1, f) == 1;
    return ok && tensor::WriteTensorBlock(f, params);
  });
  if (ok) {
    CPGAN_COUNTER_ADD("train/checkpoints", 1);
  } else {
    CPGAN_COUNTER_ADD("train/checkpoint_failures", 1);
  }
  return ok;
}

namespace {

/// Shared parse path: header + checksum validation + tensor block into
/// temporaries. Commits nothing.
bool ParseCheckpoint(const std::string& path, CheckpointMeta* meta,
                     std::vector<tensor::Matrix>* tensors,
                     uint64_t expected_config_hash, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetError(error, "cannot open checkpoint file");
    return false;
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  int32_t epoch = 0;
  uint64_t config_hash = 0;
  uint32_t stored_header_crc = 0;
  bool header_ok =
      std::fread(&magic, sizeof(magic), 1, f) == 1 &&
      std::fread(&version, sizeof(version), 1, f) == 1 &&
      std::fread(&epoch, sizeof(epoch), 1, f) == 1 &&
      std::fread(&config_hash, sizeof(config_hash), 1, f) == 1 &&
      std::fread(&stored_header_crc, sizeof(stored_header_crc), 1, f) == 1;
  if (!header_ok) {
    std::fclose(f);
    SetError(error, "truncated checkpoint header");
    return false;
  }
  if (magic != kMagic) {
    std::fclose(f);
    SetError(error, "bad checkpoint magic");
    return false;
  }
  if (version != kVersion) {
    std::fclose(f);
    SetError(error, "unsupported checkpoint version");
    return false;
  }
  util::Crc32 crc;
  crc.Update(&magic, sizeof(magic));
  crc.Update(&version, sizeof(version));
  crc.Update(&epoch, sizeof(epoch));
  crc.Update(&config_hash, sizeof(config_hash));
  if (crc.Digest() != stored_header_crc) {
    std::fclose(f);
    SetError(error, "checkpoint header checksum mismatch (corrupt file)");
    return false;
  }
  if (epoch < 0) {
    std::fclose(f);
    SetError(error, "invalid checkpoint epoch");
    return false;
  }
  if (expected_config_hash != 0 && config_hash != 0 &&
      config_hash != expected_config_hash) {
    std::fclose(f);
    SetError(error, "checkpoint was taken with a different model "
                    "architecture (config hash mismatch)");
    return false;
  }
  bool ok = tensor::ReadTensorBlock(f, tensors, error);
  std::fclose(f);
  if (!ok) return false;
  if (meta != nullptr) {
    meta->epoch = epoch;
    meta->config_hash = config_hash;
  }
  return true;
}

}  // namespace

bool LoadCheckpoint(const std::string& path, CheckpointMeta* meta,
                    std::vector<tensor::Tensor>& params,
                    uint64_t expected_config_hash, std::string* error) {
  CheckpointMeta parsed;
  std::vector<tensor::Matrix> loaded;
  if (!ParseCheckpoint(path, &parsed, &loaded, expected_config_hash, error)) {
    return false;
  }
  if (loaded.size() != params.size()) {
    SetError(error, "checkpoint tensor count mismatch");
    return false;
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!loaded[i].SameShape(params[i].value())) {
      SetError(error, "checkpoint tensor shape mismatch");
      return false;
    }
  }
  // Everything validated — commit.
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = std::move(loaded[i]);
  }
  if (meta != nullptr) *meta = parsed;
  return true;
}

bool ValidateCheckpoint(const std::string& path, CheckpointMeta* meta,
                        uint64_t expected_config_hash, std::string* error) {
  std::vector<tensor::Matrix> discarded;
  return ParseCheckpoint(path, meta, &discarded, expected_config_hash, error);
}

std::string CheckpointPath(const std::string& dir, int epoch) {
  return dir + "/" + kPrefix + std::to_string(epoch) + kSuffix;
}

std::string LatestCheckpoint(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return "";
  int best_epoch = -1;
  size_t prefix_len = std::strlen(kPrefix);
  size_t suffix_len = std::strlen(kSuffix);
  for (struct dirent* entry = ::readdir(d); entry != nullptr;
       entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() <= prefix_len + suffix_len) continue;
    if (name.compare(0, prefix_len, kPrefix) != 0) continue;
    if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
      continue;
    }
    std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    char* end = nullptr;
    long epoch = std::strtol(digits.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || epoch < 0) continue;
    if (epoch > best_epoch) best_epoch = static_cast<int>(epoch);
  }
  ::closedir(d);
  return best_epoch >= 0 ? CheckpointPath(dir, best_epoch) : "";
}

uint64_t HashFields(const std::vector<int64_t>& fields) {
  uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (int64_t field : fields) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= static_cast<uint64_t>(field >> (byte * 8)) & 0xFFu;
      hash *= 1099511628211ULL;  // FNV prime
    }
  }
  // Never produce the "don't validate" sentinel for a real config.
  return hash == 0 ? 1 : hash;
}

uint64_t HashFields(std::initializer_list<int64_t> fields) {
  return HashFields(std::vector<int64_t>(fields));
}

}  // namespace cpgan::train
