#include "train/signal.h"

#include <csignal>

namespace cpgan::train {

namespace {

// volatile sig_atomic_t is the only state a signal handler may touch
// portably; reads from the training loop are racy-by-design polling.
volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int /*signum*/) {
  if (g_stop_requested) {
    // Second signal: restore default behavior so the next one kills us.
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  }
  g_stop_requested = 1;
}

}  // namespace

void InstallStopSignalHandlers() {
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
}

bool StopRequested() { return g_stop_requested != 0; }

void RequestStop() { g_stop_requested = 1; }

void ClearStopRequest() { g_stop_requested = 0; }

}  // namespace cpgan::train
