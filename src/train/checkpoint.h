#ifndef CPGAN_TRAIN_CHECKPOINT_H_
#define CPGAN_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cpgan::train {

/// \file
/// Training checkpoints: epoch marker + architecture fingerprint + the full
/// parameter set, in a single crash-safe file.
///
/// On-disk layout (little-endian):
///
///   u32 magic        "CPCK" (0x4B435043)
///   u32 version      1
///   i32 epoch        epochs fully completed when the checkpoint was taken
///   u64 config_hash  architecture fingerprint (see HashFields)
///   u32 header_crc32 over the four fields above
///   ...              embedded v2 tensor block (self-checksummed; see
///                    tensor/serialize.h)
///
/// Writes are atomic (tmp + fsync + rename); loads are transactional — the
/// whole file is parsed and validated before any model parameter changes.

/// Non-tensor checkpoint payload.
struct CheckpointMeta {
  /// Number of epochs fully completed; resume starts at this epoch index.
  int epoch = 0;

  /// Fingerprint of architecture-relevant config (0 = don't validate).
  /// Loads fail when the stored and expected hashes are both nonzero and
  /// differ, catching resume-into-the-wrong-model mistakes early.
  uint64_t config_hash = 0;
};

/// Writes `meta` plus `params` to `path` atomically. Returns false on IO
/// failure.
bool SaveCheckpoint(const std::string& path, const CheckpointMeta& meta,
                    const std::vector<tensor::Tensor>& params);

/// Loads a checkpoint into `meta` and `params`. `expected_config_hash`
/// follows CheckpointMeta::config_hash semantics. On any failure (IO,
/// checksum, version, architecture or shape mismatch) `meta` and `params`
/// are left untouched and `error` (if non-null) explains why.
bool LoadCheckpoint(const std::string& path, CheckpointMeta* meta,
                    std::vector<tensor::Tensor>& params,
                    uint64_t expected_config_hash = 0,
                    std::string* error = nullptr);

/// Parses and checksum-validates a checkpoint without touching any model:
/// header magic/version/CRC, tensor-block CRCs, and (when both are nonzero)
/// the architecture hash. Fills `meta` on success. Used to vet a resume
/// target before the model is even constructed; shape validation against a
/// live parameter set still happens in LoadCheckpoint.
bool ValidateCheckpoint(const std::string& path, CheckpointMeta* meta,
                        uint64_t expected_config_hash = 0,
                        std::string* error = nullptr);

/// Canonical file name for the checkpoint taken after `epoch` epochs:
/// `<dir>/ckpt_<epoch>.cpck`.
std::string CheckpointPath(const std::string& dir, int epoch);

/// Scans `dir` for `ckpt_<epoch>.cpck` files and returns the one with the
/// highest epoch, or an empty string when none exist.
std::string LatestCheckpoint(const std::string& dir);

/// FNV-1a over a field list — the architecture fingerprint helper used to
/// fill CheckpointMeta::config_hash. Never returns 0 (the "don't validate"
/// sentinel).
uint64_t HashFields(const std::vector<int64_t>& fields);
uint64_t HashFields(std::initializer_list<int64_t> fields);

}  // namespace cpgan::train

#endif  // CPGAN_TRAIN_CHECKPOINT_H_
