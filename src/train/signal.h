#ifndef CPGAN_TRAIN_SIGNAL_H_
#define CPGAN_TRAIN_SIGNAL_H_

namespace cpgan::train {

/// Cooperative stop request for long-running training loops.
///
/// The training CLI installs SIGINT/SIGTERM handlers that only set an
/// async-signal-safe flag; Cpgan::Fit polls StopRequested() at each epoch
/// boundary and, when set, writes a final checkpoint, flushes the JSONL /
/// metrics sinks, and returns with TrainStats::interrupted instead of dying
/// mid-epoch. Tests drive the same path programmatically via RequestStop().
///
/// Installs handlers for SIGINT and SIGTERM (idempotent). The previous
/// disposition is not chained: a second signal while shutdown is already in
/// progress falls through to the default action, so a stuck run can still
/// be killed with a second Ctrl-C.
void InstallStopSignalHandlers();

/// True once a stop signal arrived (or RequestStop was called).
bool StopRequested();

/// Programmatic equivalent of receiving SIGINT (tests, embedders).
void RequestStop();

/// Clears the stop flag (test isolation; call between Fit runs).
void ClearStopRequest();

}  // namespace cpgan::train

#endif  // CPGAN_TRAIN_SIGNAL_H_
