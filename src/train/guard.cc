#include "train/guard.h"

#include <cmath>

#include "obs/metrics.h"
#include "tensor/ops.h"

namespace cpgan::train {

const char* StepVerdictName(StepVerdict verdict) {
  switch (verdict) {
    case StepVerdict::kOk:
      return "ok";
    case StepVerdict::kNonFiniteLoss:
      return "non-finite loss";
    case StepVerdict::kNonFiniteGrad:
      return "non-finite gradient";
    case StepVerdict::kLossExplosion:
      return "loss explosion";
  }
  return "unknown";
}

TrainingGuard::TrainingGuard(const GuardConfig& config,
                             std::vector<tensor::Tensor> params)
    : config_(config), params_(std::move(params)) {}

StepVerdict TrainingGuard::Inspect(
    float loss, const std::vector<tensor::Tensor>& step_params,
    int stream) const {
  if (!config_.enabled) return StepVerdict::kOk;
  if (!std::isfinite(loss)) return StepVerdict::kNonFiniteLoss;
  if (!tensor::GradsFinite(step_params)) return StepVerdict::kNonFiniteGrad;
  if (config_.explosion_factor > 0.0f && stream >= 0 &&
      stream < static_cast<int>(recent_losses_.size())) {
    const std::deque<float>& window = recent_losses_[stream];
    if (static_cast<int>(window.size()) >= config_.window) {
      double mean_abs = 0.0;
      for (float l : window) mean_abs += std::fabs(l);
      mean_abs /= static_cast<double>(window.size());
      // Floor the reference so near-zero converged losses don't turn
      // ordinary fluctuation into false explosions.
      mean_abs = std::max(mean_abs, 1e-3);
      if (std::fabs(loss) > config_.explosion_factor * mean_abs) {
        return StepVerdict::kLossExplosion;
      }
    }
  }
  return StepVerdict::kOk;
}

void TrainingGuard::CommitGood(float loss, int stream) {
  if (!config_.enabled || stream < 0) return;
  if (stream >= static_cast<int>(recent_losses_.size())) {
    recent_losses_.resize(stream + 1);
  }
  std::deque<float>& window = recent_losses_[stream];
  window.push_back(loss);
  while (static_cast<int>(window.size()) > config_.window) {
    window.pop_front();
  }
  if (snapshot_.size() != params_.size()) snapshot_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    snapshot_[i] = params_[i].value();
  }
  has_snapshot_ = true;
}

bool TrainingGuard::Recover() {
  ++recoveries_;
  CPGAN_COUNTER_ADD("train/guard_trips", 1);
  if (!has_snapshot_) return false;
  CPGAN_COUNTER_ADD("train/guard_rollbacks", 1);
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i].mutable_value() = snapshot_[i];
  }
  return true;
}

}  // namespace cpgan::train
