#include "train/fault.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

namespace cpgan::train {

void PoisonGradient(const std::vector<tensor::Tensor>& params,
                    int param_index) {
  if (params.empty()) return;
  int index = std::clamp(param_index, 0,
                         static_cast<int>(params.size()) - 1);
  const tensor::Tensor& p = params[index];
  if (!p.defined()) return;
  // The gradient accumulator is zero-shaped until Backward touches the node;
  // nothing to poison then (and the guard would not read it either).
  tensor::Matrix& g = p.node()->grad;
  if (g.size() == 0) return;
  g.data()[0] = std::numeric_limits<float>::quiet_NaN();
}

bool TruncateFile(const std::string& path, int64_t keep_bytes) {
  int64_t size = FileSize(path);
  if (size < 0 || keep_bytes < 0 || keep_bytes > size) return false;
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return false;
  std::vector<char> head(static_cast<size_t>(keep_bytes));
  bool ok = keep_bytes == 0 ||
            std::fread(head.data(), 1, head.size(), in) == head.size();
  std::fclose(in);
  if (!ok) return false;
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) return false;
  ok = keep_bytes == 0 ||
       std::fwrite(head.data(), 1, head.size(), out) == head.size();
  ok = std::fclose(out) == 0 && ok;
  return ok;
}

bool FlipByte(const std::string& path, int64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return false;
  bool ok = std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0;
  int byte = ok ? std::fgetc(f) : EOF;
  ok = ok && byte != EOF;
  ok = ok && std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0;
  ok = ok && std::fputc((byte ^ 0xFF) & 0xFF, f) != EOF;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

int64_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  int64_t size = -1;
  if (std::fseek(f, 0, SEEK_END) == 0) size = std::ftell(f);
  std::fclose(f);
  return size;
}

}  // namespace cpgan::train
