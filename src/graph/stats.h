#ifndef CPGAN_GRAPH_STATS_H_
#define CPGAN_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::graph {

/// Gini coefficient of the degree sequence — the paper's inequality measure
/// for degree distributions (Table II's GINI column).
double GiniCoefficient(const std::vector<int>& degrees);

/// Power-law exponent of the degree distribution via the discrete MLE of
/// Clauset et al. (alpha = 1 + n / sum ln(d / (dmin - 0.5)) over d >= dmin).
/// Degrees below `dmin` (default 1) are ignored. Returns NaN when the fit
/// is undefined (no degrees >= dmin, or a degenerate tail with log-sum 0);
/// a fitted value is always > 1, and callers comparing exponents must skip
/// or flag NaN rather than treat it as a number.
double PowerLawExponent(const std::vector<int>& degrees, int dmin = 1);

/// Degree assortativity: the Pearson correlation of the degrees at the two
/// ends of every edge (Newman, 2002). Positive for social-style networks,
/// negative for hub-and-spoke topologies; 0 when undefined (no variance).
double DegreeAssortativity(const Graph& g);

/// Normalized degree histogram up to `max_degree` (inclusive); tail mass is
/// folded into the last bucket. Used by the MMD metrics.
std::vector<double> DegreeHistogram(const Graph& g, int max_degree);

/// Histogram of local clustering coefficients with `bins` equal-width bins
/// over [0, 1]; normalized to sum to 1.
std::vector<double> ClusteringHistogram(const Graph& g, int bins);

/// Scalar summary of a graph in the shape of the paper's Table II row.
struct GraphSummary {
  int num_nodes = 0;
  int64_t num_edges = 0;
  int num_communities = 0;  // filled by callers with a community detector
  double mean_degree = 0.0;
  double cpl = 0.0;
  double gini = 0.0;
  double power_law_exponent = 0.0;  // NaN when the fit is undefined
  double avg_clustering = 0.0;
};

/// Computes all summary fields except num_communities.
GraphSummary ComputeSummary(const Graph& g, util::Rng& rng);

}  // namespace cpgan::graph

#endif  // CPGAN_GRAPH_STATS_H_
