#ifndef CPGAN_GRAPH_SPLIT_H_
#define CPGAN_GRAPH_SPLIT_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::graph {

/// Result of a random edge holdout (Section IV-C's 80/20 reconstruction
/// protocol).
struct EdgeSplit {
  Graph train;                    // graph with only the training edges
  std::vector<Edge> train_edges;  // canonical training edges
  std::vector<Edge> test_edges;   // held-out positive edges
  std::vector<Edge> negative_edges;  // sampled non-edges, |test_edges| many
};

/// Randomly keeps `train_fraction` of the edges in the training graph and
/// holds out the rest, along with an equal number of sampled non-edges for
/// NLL / link-prediction evaluation.
EdgeSplit RandomEdgeSplit(const Graph& g, double train_fraction,
                          util::Rng& rng);

}  // namespace cpgan::graph

#endif  // CPGAN_GRAPH_SPLIT_H_
