#ifndef CPGAN_GRAPH_BINARY_IO_H_
#define CPGAN_GRAPH_BINARY_IO_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "graph/io.h"

namespace cpgan::graph {

/// Versioned, CRC-validated binary edge-list format (".cpge") — the
/// million-edge ingest path (docs/INTERNALS.md, "Streaming ingest").
///
/// Layout, all fields little-endian, no padding:
///
///   [ 0]  u32 magic          0x45475043  ("CPGE")
///   [ 4]  u32 version        1
///   [ 8]  u64 num_nodes
///   [16]  u64 num_edges
///   [24]  u32 payload_crc32  CRC-32 (zlib variant) of the payload bytes
///   [28]  u32 header_crc32   CRC-32 of bytes [0, 28)
///   [32]  payload: num_edges records of {u32 u, u32 v}, canonical u < v,
///         deduplicated, self-loop free, ids already compacted to
///         [0, num_nodes). Record order is free; the loader canonicalizes.
///
/// Two checksums so truncation, bit rot, and header/payload mismatches are
/// all distinguishable before any bytes reach a Graph — the same discipline
/// as the v2 checkpoint container (train/checkpoint.cc).
inline constexpr uint32_t kBinaryEdgeListMagic = 0x45475043u;
inline constexpr uint32_t kBinaryEdgeListVersion = 1;
inline constexpr size_t kBinaryEdgeListHeaderBytes = 32;

/// Outcome of a text -> binary conversion: the written graph's dimensions
/// plus exactly the counters LoadEdgeListDetailed would have reported for
/// the same input and options — the converter IS the text loader minus the
/// CSR build, so dirty-input handling stays bit-for-bit identical across
/// the two ingest paths (pinned by tests/graph/ingest_parity_test.cc).
struct ConvertResult {
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  int64_t malformed_lines = 0;
  int64_t self_loops = 0;
  int64_t duplicate_edges = 0;

  /// Failure reason when !ok() (IO/parse error, or any irregularity in
  /// strict mode).
  std::string error;

  bool ok() const { return error.empty(); }
  int64_t total_skipped() const {
    return malformed_lines + self_loops + duplicate_edges;
  }
};

/// Streams the text edge list at `text_path` into a .cpge file at
/// `binary_path`, applying the text loader's exact parsing semantics
/// (comments, "# nodes N" header, CRLF/BOM tolerance, strict mode). The
/// write goes through util::AtomicWriteFile, so a crash mid-convert never
/// leaves a half-written binary behind.
ConvertResult ConvertEdgeListToBinary(const std::string& text_path,
                                      const std::string& binary_path,
                                      const LoadOptions& options = {});

/// Writes `g` as a .cpge file (canonical sorted edge order) through
/// util::AtomicWriteFile. Returns false on IO error.
bool SaveBinaryEdgeList(const Graph& g, const std::string& path);

/// True if `path` starts with the .cpge magic (sniffs 4 bytes; false on
/// unreadable or shorter files). Used by data::LoadGraph to route binary
/// files without relying on the extension.
bool IsBinaryEdgeList(const std::string& path);

namespace internal {

/// Serializes the 32-byte .cpge header (little-endian fields in layout
/// order, header CRC over the first 28 bytes appended last) for a payload
/// with the given dimensions and CRC. Shared with streaming writers that
/// produce the payload themselves (data/edge_stream.cc).
void EncodeBinaryHeader(uint64_t num_nodes, uint64_t num_edges,
                        uint32_t payload_crc,
                        uint8_t out[kBinaryEdgeListHeaderBytes]);

}  // namespace internal

/// Memory-maps and loads a .cpge file: header + CRC validation, then
/// chunked parallel CSR construction (graph/csr_builder.h) straight off the
/// mapping — the edge bytes are never copied to the heap. Binary loads are
/// always strict: the format guarantees canonical payloads, so any
/// irregularity (bad magic/version/checksum, truncation, non-canonical or
/// duplicate record) fails the load instead of being counted; the
/// LoadResult counters are always zero on success. When a MemoryTracker
/// budget is configured (--mem-budget-mb), the projected CSR footprint is
/// checked against it before anything is allocated.
LoadResult LoadBinaryEdgeListDetailed(const std::string& path,
                                      const LoadOptions& options = {});

}  // namespace cpgan::graph

#endif  // CPGAN_GRAPH_BINARY_IO_H_
