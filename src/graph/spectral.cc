#include "graph/spectral.h"

#include <cmath>

#include "obs/trace.h"
#include "tensor/sparse.h"
#include "util/check.h"

namespace cpgan::graph {
namespace {

/// A column counts as collapsed when projecting out the previous columns
/// removes all but this fraction of its norm. The threshold must be
/// *relative*: a linearly dependent column's float residual is not exactly
/// zero but rounding noise ~1e-7 of its magnitude, and normalizing that
/// noise yields a junk column still parallel to an earlier one. Healthy
/// power-iteration columns keep O(1) fractions of their norm, so they never
/// come near 1e-4.
constexpr double kCollapseRatio = 1e-4;

/// Gram-Schmidt orthonormalization of the columns of `m` in place, with
/// per-row pointers hoisted out of the inner loops (the checked At() calls
/// dominated this routine's runtime; the arithmetic — float products
/// accumulated in double — is unchanged, so results are bitwise identical).
///
/// A column whose post-projection norm collapses (see kCollapseRatio) is
/// re-drawn from the RNG and re-orthonormalized instead of being zeroed:
/// the old zero column stayed zero through every remaining power iteration,
/// so disconnected or tiny graphs silently lost embedding dimensions. With
/// cols() <= rows() (guaranteed by SpectralEmbedding) a fresh random draw
/// escapes the span of the previous columns with probability 1; the retry
/// cap only guards against pathological RNG streaks. Healthy columns never
/// touch the RNG, so non-degenerate embeddings are unchanged.
void Orthonormalize(tensor::Matrix& m, util::Rng& rng) {
  int n = m.rows();
  int k = m.cols();
  for (int c = 0; c < k; ++c) {
    constexpr int kMaxRedraws = 8;
    for (int attempt = 0; attempt <= kMaxRedraws; ++attempt) {
      double pre_norm = 0.0;
      for (int r = 0; r < n; ++r) {
        const float v = m.Row(r)[c];
        pre_norm += static_cast<double>(v) * v;
      }
      pre_norm = std::sqrt(pre_norm);
      for (int prev = 0; prev < c; ++prev) {
        double dot = 0.0;
        for (int r = 0; r < n; ++r) {
          const float* row = m.Row(r);
          dot += row[c] * row[prev];
        }
        const float fdot = static_cast<float>(dot);
        for (int r = 0; r < n; ++r) {
          float* row = m.Row(r);
          row[c] -= fdot * row[prev];
        }
      }
      double norm = 0.0;
      for (int r = 0; r < n; ++r) {
        const float v = m.Row(r)[c];
        norm += static_cast<double>(v) * v;
      }
      norm = std::sqrt(norm);
      if (norm > kCollapseRatio * pre_norm && norm > 0.0) {
        const float inv = static_cast<float>(1.0 / norm);
        for (int r = 0; r < n; ++r) m.Row(r)[c] *= inv;
        break;
      }
      if (attempt == kMaxRedraws || c >= n) {
        // Unreachable for c < n in practice; keep the old zeroing as the
        // last-resort fallback rather than looping forever.
        for (int r = 0; r < n; ++r) m.Row(r)[c] = 0.0f;
        break;
      }
      for (int r = 0; r < n; ++r) {
        m.Row(r)[c] = static_cast<float>(rng.Normal(0.0, 1.0));
      }
    }
  }
}

}  // namespace

tensor::Matrix SpectralEmbedding(const Graph& g, int dim, util::Rng& rng,
                                 int iterations) {
  CPGAN_CHECK_GE(dim, 1);
  CPGAN_TRACE_SPAN("graph/spectral_embedding");
  int n = g.num_nodes();
  int k = std::min(dim, n);
  tensor::SparseMatrix a_hat = tensor::NormalizedAdjacency(n, g.Edges());
  tensor::Matrix q(n, k);
  q.FillNormal(rng, 1.0f);
  Orthonormalize(q, rng);
  for (int it = 0; it < iterations; ++it) {
    // SparseMatrix::Multiply is the row-parallel SpMM kernel (bitwise
    // deterministic for any thread count); the power iteration inherits
    // both properties.
    q = a_hat.Multiply(q);
    Orthonormalize(q, rng);
  }
  if (k == dim) return q;
  // Pad with zero columns when the graph is smaller than the requested dim.
  tensor::Matrix out(n, dim);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < k; ++c) out.At(r, c) = q.At(r, c);
  }
  return out;
}

}  // namespace cpgan::graph
