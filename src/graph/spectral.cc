#include "graph/spectral.h"

#include <cmath>

#include "tensor/sparse.h"
#include "util/check.h"

namespace cpgan::graph {
namespace {

/// Gram-Schmidt orthonormalization of the columns of `m` in place.
void Orthonormalize(tensor::Matrix& m) {
  int n = m.rows();
  int k = m.cols();
  for (int c = 0; c < k; ++c) {
    for (int prev = 0; prev < c; ++prev) {
      double dot = 0.0;
      for (int r = 0; r < n; ++r) dot += m.At(r, c) * m.At(r, prev);
      for (int r = 0; r < n; ++r) {
        m.At(r, c) -= static_cast<float>(dot) * m.At(r, prev);
      }
    }
    double norm = 0.0;
    for (int r = 0; r < n; ++r) norm += static_cast<double>(m.At(r, c)) * m.At(r, c);
    norm = std::sqrt(norm);
    float inv = norm > 1e-9 ? static_cast<float>(1.0 / norm) : 0.0f;
    for (int r = 0; r < n; ++r) m.At(r, c) *= inv;
  }
}

}  // namespace

tensor::Matrix SpectralEmbedding(const Graph& g, int dim, util::Rng& rng,
                                 int iterations) {
  CPGAN_CHECK_GE(dim, 1);
  int n = g.num_nodes();
  int k = std::min(dim, n);
  tensor::SparseMatrix a_hat = tensor::NormalizedAdjacency(n, g.Edges());
  tensor::Matrix q(n, k);
  q.FillNormal(rng, 1.0f);
  Orthonormalize(q);
  for (int it = 0; it < iterations; ++it) {
    q = a_hat.Multiply(q);
    Orthonormalize(q);
  }
  if (k == dim) return q;
  // Pad with zero columns when the graph is smaller than the requested dim.
  tensor::Matrix out(n, dim);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < k; ++c) out.At(r, c) = q.At(r, c);
  }
  return out;
}

}  // namespace cpgan::graph
