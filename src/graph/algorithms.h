#ifndef CPGAN_GRAPH_ALGORITHMS_H_
#define CPGAN_GRAPH_ALGORITHMS_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::graph {

/// BFS distances from `source`; unreachable nodes get -1.
std::vector<int> BfsDistances(const Graph& g, int source);

/// Connected-component id per node (ids are 0..k-1 in discovery order).
std::vector<int> ConnectedComponents(const Graph& g);

/// Node ids of the largest connected component.
std::vector<int> LargestComponent(const Graph& g);

/// Local clustering coefficient per node (0 for degree < 2).
std::vector<double> LocalClusteringCoefficients(const Graph& g);

/// Mean of the local clustering coefficients.
double AverageClusteringCoefficient(const Graph& g);

/// Characteristic path length: mean shortest-path length within the largest
/// connected component, estimated by BFS from up to `num_sources` sampled
/// sources (exact when the component is small enough).
double CharacteristicPathLength(const Graph& g, util::Rng& rng,
                                int num_sources = 64);

/// BFS visiting order from `start` (ties broken by node id); nodes outside
/// the start's component are appended in id order. Used by GraphRNN-S.
std::vector<int> BfsOrder(const Graph& g, int start);

/// Total number of triangles in the graph.
int64_t CountTriangles(const Graph& g);

/// PageRank scores via power iteration (damping `alpha`, uniform teleport;
/// dangling mass redistributed uniformly). Scores sum to 1.
std::vector<double> PageRank(const Graph& g, double alpha = 0.85,
                             int iterations = 50);

/// Core number of every node (the largest k such that the node belongs to
/// the k-core), via the standard peeling algorithm in O(m + n).
std::vector<int> CoreNumbers(const Graph& g);

}  // namespace cpgan::graph

#endif  // CPGAN_GRAPH_ALGORITHMS_H_
