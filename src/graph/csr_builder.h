#ifndef CPGAN_GRAPH_CSR_BUILDER_H_
#define CPGAN_GRAPH_CSR_BUILDER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "graph/graph.h"

namespace cpgan::graph {

/// Chunked parallel CSR construction over the PR-2 thread pool.
///
/// `pairs` is a flat run of 2 * m node ids — m canonical records
/// {u, v} with u < v, deduplicated, in any order (the payload of a .cpge
/// file maps directly, see graph/binary_io.h). The build runs in four
/// phases (docs/INTERNALS.md, "Streaming ingest"):
///
///   1. parallel per-chunk validation + degree counting (atomic histogram;
///      integer increments commute, so the counts are exact and
///      thread-count independent),
///   2. serial prefix sum of the degree histogram into CSR offsets,
///   3. parallel scatter of both edge directions through per-node atomic
///      cursors (placement order is scheduling-dependent),
///   4. parallel per-node neighbor-list sort + duplicate scan, which erases
///      the scatter order again.
///
/// The result is therefore bitwise identical for any thread count: the only
/// nondeterministic intermediate (phase-3 placement) is fully canonicalized
/// by phase 4. Scratch and output arrays are registered with the global
/// MemoryTracker for the duration of the build, so an ingest RAM budget can
/// observe the true CSR footprint.
///
/// Returns nullopt and sets *error (when non-null) if a record is not
/// canonical (u >= v), an id is outside [0, num_nodes), or a duplicate
/// record exists.
std::optional<Graph> BuildGraphFromCanonicalEdges(
    int64_t num_nodes, std::span<const uint32_t> pairs,
    std::string* error = nullptr);

}  // namespace cpgan::graph

#endif  // CPGAN_GRAPH_CSR_BUILDER_H_
