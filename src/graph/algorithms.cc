#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

#include "util/check.h"
#include "util/thread_pool.h"

namespace cpgan::graph {

namespace {

/// Nodes per chunk for per-node metric loops. Per-node work is O(degree^2)
/// for clustering, so chunks stay small enough to balance skewed graphs;
/// the value is a pure function of nothing — chunk boundaries never depend
/// on the thread count.
constexpr int64_t kNodeGrain = 64;

}  // namespace

std::vector<int> BfsDistances(const Graph& g, int source) {
  CPGAN_CHECK(source >= 0 && source < g.num_nodes());
  std::vector<int> dist(g.num_nodes(), -1);
  std::queue<int> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop();
    for (int v : g.neighbors(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<int> ConnectedComponents(const Graph& g) {
  std::vector<int> component(g.num_nodes(), -1);
  int next_id = 0;
  std::vector<int> stack;
  for (int s = 0; s < g.num_nodes(); ++s) {
    if (component[s] >= 0) continue;
    component[s] = next_id;
    stack.push_back(s);
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (int v : g.neighbors(u)) {
        if (component[v] < 0) {
          component[v] = next_id;
          stack.push_back(v);
        }
      }
    }
    ++next_id;
  }
  return component;
}

std::vector<int> LargestComponent(const Graph& g) {
  std::vector<int> component = ConnectedComponents(g);
  int k = 0;
  for (int c : component) k = std::max(k, c + 1);
  std::vector<int> counts(k, 0);
  for (int c : component) counts[c] += 1;
  int best = 0;
  for (int c = 1; c < k; ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  std::vector<int> nodes;
  nodes.reserve(counts.empty() ? 0 : counts[best]);
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (component[v] == best) nodes.push_back(v);
  }
  return nodes;
}

std::vector<double> LocalClusteringCoefficients(const Graph& g) {
  std::vector<double> coeffs(g.num_nodes(), 0.0);
  // Each node's coefficient is independent (reads only, disjoint writes),
  // so the result is identical for any thread count.
  util::ParallelFor(0, g.num_nodes(), kNodeGrain, [&](int64_t v0, int64_t v1) {
    for (int64_t v = v0; v < v1; ++v) {
      auto nbrs = g.neighbors(static_cast<int>(v));
      int d = static_cast<int>(nbrs.size());
      if (d < 2) continue;
      int64_t links = 0;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          if (g.HasEdge(nbrs[i], nbrs[j])) ++links;
        }
      }
      coeffs[v] = 2.0 * static_cast<double>(links) /
                  (static_cast<double>(d) * (d - 1));
    }
  });
  return coeffs;
}

double AverageClusteringCoefficient(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  std::vector<double> coeffs = LocalClusteringCoefficients(g);
  double total = 0.0;
  for (double c : coeffs) total += c;
  return total / g.num_nodes();
}

double CharacteristicPathLength(const Graph& g, util::Rng& rng,
                                int num_sources) {
  std::vector<int> comp = LargestComponent(g);
  if (comp.size() < 2) return 0.0;
  Graph sub = g.InducedSubgraph(comp);
  int n = sub.num_nodes();
  std::vector<int> sources;
  if (n <= num_sources) {
    sources.resize(n);
    for (int i = 0; i < n; ++i) sources[i] = i;
  } else {
    sources = rng.SampleWithoutReplacement(n, num_sources);
  }
  // Sources are sampled serially above (fixed RNG stream position), then the
  // BFS sweeps fan out. Each source writes its own slot, and the final
  // accumulation walks sources in sampling order, so the value is identical
  // for any thread count. Integer distance sums per source avoid FP order
  // sensitivity entirely.
  const int num_src = static_cast<int>(sources.size());
  std::vector<int64_t> src_total(num_src, 0);
  std::vector<int64_t> src_pairs(num_src, 0);
  util::ParallelFor(0, num_src, 1, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      int s = sources[i];
      std::vector<int> dist = BfsDistances(sub, s);
      int64_t total = 0;
      int64_t pairs = 0;
      for (int v = 0; v < n; ++v) {
        if (v == s) continue;
        if (dist[v] > 0) {
          total += dist[v];
          ++pairs;
        }
      }
      src_total[i] = total;
      src_pairs[i] = pairs;
    }
  });
  double total = 0.0;
  int64_t pairs = 0;
  for (int i = 0; i < num_src; ++i) {
    total += static_cast<double>(src_total[i]);
    pairs += src_pairs[i];
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

std::vector<int> BfsOrder(const Graph& g, int start) {
  CPGAN_CHECK(start >= 0 && start < g.num_nodes());
  std::vector<int> order;
  order.reserve(g.num_nodes());
  std::vector<bool> seen(g.num_nodes(), false);
  std::queue<int> frontier;
  seen[start] = true;
  frontier.push(start);
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop();
    order.push_back(u);
    for (int v : g.neighbors(u)) {  // sorted, so ties break by id
      if (!seen[v]) {
        seen[v] = true;
        frontier.push(v);
      }
    }
  }
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (!seen[v]) order.push_back(v);
  }
  return order;
}

std::vector<double> PageRank(const Graph& g, double alpha, int iterations) {
  int n = g.num_nodes();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (int u = 0; u < n; ++u) {
      int d = g.degree(u);
      if (d == 0) {
        dangling += rank[u];
        continue;
      }
      double share = rank[u] / d;
      for (int v : g.neighbors(u)) next[v] += share;
    }
    // next[v] = alpha * (shares + dangling/n) + (1-alpha)/n: the dangling
    // mass joins the link shares inside the single damping factor (it is
    // rank a dangling node would have spread over every node), so it is
    // scaled by alpha exactly once. Summing over v gives
    // alpha*(1 - dangling) + alpha*dangling + (1-alpha) = 1 — the vector
    // stays a distribution every iteration, including with sinks
    // (tests/numeric/invariants_test.cc pins this).
    double teleport = (1.0 - alpha) / n + alpha * dangling / n;
    for (int v = 0; v < n; ++v) next[v] = alpha * next[v] + teleport;
    rank.swap(next);
  }
  return rank;
}

std::vector<int> CoreNumbers(const Graph& g) {
  int n = g.num_nodes();
  std::vector<int> degree(n);
  int max_degree = 0;
  for (int v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort nodes by degree (Batagelj-Zaversnik peeling).
  std::vector<int> bin(max_degree + 2, 0);
  for (int v = 0; v < n; ++v) bin[degree[v]] += 1;
  int start = 0;
  for (int d = 0; d <= max_degree; ++d) {
    int count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<int> position(n);
  std::vector<int> ordered(n);
  {
    std::vector<int> cursor(bin.begin(), bin.end() - 1);
    for (int v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      ordered[position[v]] = v;
      cursor[degree[v]] += 1;
    }
  }
  std::vector<int> core = degree;
  for (int i = 0; i < n; ++i) {
    int v = ordered[i];
    for (int u : g.neighbors(v)) {
      if (core[u] > core[v]) {
        // Move u one bucket down: swap it with the first node of its bucket.
        int du = core[u];
        int pu = position[u];
        int pw = bin[du];
        int w = ordered[pw];
        if (u != w) {
          std::swap(ordered[pu], ordered[pw]);
          position[u] = pw;
          position[w] = pu;
        }
        bin[du] += 1;
        core[u] -= 1;
      }
    }
  }
  return core;
}

int64_t CountTriangles(const Graph& g) {
  const int64_t num_chunks =
      util::ThreadPool::NumChunks(0, g.num_nodes(), kNodeGrain);
  std::vector<int64_t> partial(num_chunks, 0);
  // Integer count: per-chunk partials summed in chunk order give the exact
  // serial result for any thread count.
  util::ParallelForChunked(
      0, g.num_nodes(), kNodeGrain,
      [&](int64_t u0, int64_t u1, int64_t chunk) {
        int64_t triangles = 0;
        for (int64_t u = u0; u < u1; ++u) {
          auto nbrs = g.neighbors(static_cast<int>(u));
          for (size_t i = 0; i < nbrs.size(); ++i) {
            if (nbrs[i] <= u) continue;
            for (size_t j = i + 1; j < nbrs.size(); ++j) {
              if (g.HasEdge(nbrs[i], nbrs[j])) ++triangles;
            }
          }
        }
        partial[chunk] = triangles;
      });
  int64_t triangles = 0;
  for (int64_t p : partial) triangles += p;
  return triangles;
}

}  // namespace cpgan::graph
