#ifndef CPGAN_GRAPH_SPECTRAL_H_
#define CPGAN_GRAPH_SPECTRAL_H_

#include "graph/graph.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace cpgan::graph {

/// Spectral node embedding: the top-`dim` eigenvector directions of the
/// symmetric normalized adjacency D^{-1/2}(A+I)D^{-1/2}, computed by
/// orthogonal (subspace) power iteration. The paper uses spectral embeddings
/// of the adjacency matrix as the default node features X = X(A) of the
/// ladder encoder; Fig. 5 sweeps this dimension.
tensor::Matrix SpectralEmbedding(const Graph& g, int dim, util::Rng& rng,
                                 int iterations = 30);

}  // namespace cpgan::graph

#endif  // CPGAN_GRAPH_SPECTRAL_H_
