#ifndef CPGAN_GRAPH_GRAPH_H_
#define CPGAN_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace cpgan::graph {

/// An undirected edge (u, v); canonical form has u <= v.
using Edge = std::pair<int, int>;

/// Immutable undirected simple graph in CSR form.
///
/// The constructor symmetrizes, deduplicates, and drops self-loops, so the
/// invariants are: no parallel edges, no self-loops, neighbor lists sorted.
/// This matches the paper's problem statement (undirected simple graphs with
/// symmetric adjacency matrices).
class Graph {
 public:
  /// Empty graph with n isolated nodes.
  explicit Graph(int num_nodes = 0);

  /// Builds from an edge list over nodes [0, num_nodes).
  Graph(int num_nodes, const std::vector<Edge>& edges);

  /// Adopts prebuilt CSR arrays. Contract (checked only for size
  /// consistency — callers own the content invariants): offsets has
  /// num_nodes + 1 monotone entries with offsets[0] == 0 and
  /// offsets[num_nodes] == adjacency.size(); every neighbor list is sorted,
  /// symmetric, self-loop- and duplicate-free. The streaming ingest path
  /// (graph/csr_builder.cc) builds such arrays in parallel and hands them
  /// over here without the O(m log m) re-sort the edge-list constructor
  /// would pay.
  static Graph FromCsr(int num_nodes, std::vector<int64_t> offsets,
                       std::vector<int> adjacency);

  int num_nodes() const { return num_nodes_; }

  /// Number of undirected edges m.
  int64_t num_edges() const { return static_cast<int64_t>(adjacency_.size()) / 2; }

  /// Degree of node v.
  int degree(int v) const {
    return static_cast<int>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of node v.
  std::span<const int> neighbors(int v) const {
    return {adjacency_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// True if the undirected edge {u, v} exists (binary search).
  bool HasEdge(int u, int v) const;

  /// Canonical (u < v) edge list.
  std::vector<Edge> Edges() const;

  /// Degrees of every node.
  std::vector<int> Degrees() const;

  /// Mean degree 2m / n.
  double MeanDegree() const;

  /// Returns the subgraph induced by `nodes` with vertices relabeled to
  /// [0, nodes.size()) in the given order.
  Graph InducedSubgraph(const std::vector<int>& nodes) const;

 private:
  int num_nodes_ = 0;
  std::vector<int64_t> offsets_;
  std::vector<int> adjacency_;
};

}  // namespace cpgan::graph

#endif  // CPGAN_GRAPH_GRAPH_H_
