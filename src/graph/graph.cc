#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace cpgan::graph {

Graph::Graph(int num_nodes) : num_nodes_(num_nodes) {
  CPGAN_CHECK_GE(num_nodes, 0);
  offsets_.assign(num_nodes_ + 1, 0);
}

Graph::Graph(int num_nodes, const std::vector<Edge>& edges)
    : num_nodes_(num_nodes) {
  CPGAN_CHECK_GE(num_nodes, 0);
  std::vector<Edge> directed;
  directed.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    CPGAN_CHECK(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
    if (u == v) continue;
    directed.emplace_back(u, v);
    directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());
  offsets_.assign(num_nodes_ + 1, 0);
  adjacency_.reserve(directed.size());
  for (const auto& [u, v] : directed) {
    offsets_[u + 1] += 1;
    adjacency_.push_back(v);
  }
  for (int i = 0; i < num_nodes_; ++i) offsets_[i + 1] += offsets_[i];
}

Graph Graph::FromCsr(int num_nodes, std::vector<int64_t> offsets,
                     std::vector<int> adjacency) {
  CPGAN_CHECK_GE(num_nodes, 0);
  CPGAN_CHECK_EQ(static_cast<int64_t>(offsets.size()), num_nodes + 1);
  CPGAN_CHECK_EQ(offsets.empty() ? 0 : offsets.front(), 0);
  CPGAN_CHECK_EQ(offsets.back(), static_cast<int64_t>(adjacency.size()));
  Graph g(num_nodes);
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  return g;
}

bool Graph::HasEdge(int u, int v) const {
  CPGAN_CHECK(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (int u = 0; u < num_nodes_; ++u) {
    for (int v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::vector<int> Graph::Degrees() const {
  std::vector<int> degrees(num_nodes_);
  for (int v = 0; v < num_nodes_; ++v) degrees[v] = degree(v);
  return degrees;
}

double Graph::MeanDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / num_nodes_;
}

Graph Graph::InducedSubgraph(const std::vector<int>& nodes) const {
  std::vector<int> relabel(num_nodes_, -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    CPGAN_CHECK(nodes[i] >= 0 && nodes[i] < num_nodes_);
    CPGAN_CHECK_EQ(relabel[nodes[i]], -1);  // nodes must be distinct
    relabel[nodes[i]] = static_cast<int>(i);
  }
  std::vector<Edge> edges;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int v : neighbors(nodes[i])) {
      int rv = relabel[v];
      if (rv >= 0 && static_cast<int>(i) < rv) {
        edges.emplace_back(static_cast<int>(i), rv);
      }
    }
  }
  return Graph(static_cast<int>(nodes.size()), edges);
}

}  // namespace cpgan::graph
