#include "graph/csr_builder.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "util/memory_tracker.h"
#include "util/thread_pool.h"

namespace cpgan::graph {

namespace {

// Edges per phase-1/phase-3 chunk and nodes per phase-4 chunk. Coarse
// enough that the per-chunk dispatch cost vanishes, fine enough that a
// million-edge build load-balances across any realistic pool size.
constexpr int64_t kEdgeGrain = 1 << 16;
constexpr int64_t kNodeGrain = 1 << 12;

/// Balanced Allocate/Release registration of the builder's arrays with the
/// global MemoryTracker, so an ingest RAM budget (--mem-budget-mb) sees the
/// true CSR construction footprint in peak_bytes().
class TrackedBytes {
 public:
  explicit TrackedBytes(size_t bytes) : bytes_(bytes) {
    util::MemoryTracker::Global().Allocate(bytes_);
  }
  ~TrackedBytes() { util::MemoryTracker::Global().Release(bytes_); }
  TrackedBytes(const TrackedBytes&) = delete;
  TrackedBytes& operator=(const TrackedBytes&) = delete;

 private:
  size_t bytes_;
};

}  // namespace

std::optional<Graph> BuildGraphFromCanonicalEdges(
    int64_t num_nodes, std::span<const uint32_t> pairs, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (num_nodes < 0 || num_nodes > std::numeric_limits<int>::max()) {
    return fail("node count " + std::to_string(num_nodes) +
                " outside [0, INT_MAX]");
  }
  if (pairs.size() % 2 != 0) {
    return fail("odd id count " + std::to_string(pairs.size()) +
                " (payload must be u,v records)");
  }
  const int64_t m = static_cast<int64_t>(pairs.size()) / 2;
  const int n = static_cast<int>(num_nodes);
  CPGAN_STOPWATCH_SCOPE("ingest.csr.build");

  // Phase 1: parallel validation + degree histogram. The first offending
  // record index is reduced with an atomic min so the reported error is
  // deterministic regardless of which chunk trips first.
  std::vector<int64_t> degree(static_cast<size_t>(n), 0);
  TrackedBytes degree_bytes(degree.capacity() * sizeof(int64_t));
  std::atomic<int64_t> first_bad{std::numeric_limits<int64_t>::max()};
  util::ParallelFor(0, m, kEdgeGrain, [&](int64_t begin, int64_t end) {
    for (int64_t e = begin; e < end; ++e) {
      const uint32_t u = pairs[2 * e];
      const uint32_t v = pairs[2 * e + 1];
      if (u >= v || v >= static_cast<uint64_t>(num_nodes)) {
        int64_t seen = first_bad.load(std::memory_order_relaxed);
        while (e < seen && !first_bad.compare_exchange_weak(
                               seen, e, std::memory_order_relaxed)) {
        }
        continue;
      }
      std::atomic_ref<int64_t>(degree[u]).fetch_add(1,
                                                    std::memory_order_relaxed);
      std::atomic_ref<int64_t>(degree[v]).fetch_add(1,
                                                    std::memory_order_relaxed);
    }
  });
  if (int64_t bad = first_bad.load(std::memory_order_relaxed);
      bad != std::numeric_limits<int64_t>::max()) {
    const uint32_t u = pairs[2 * bad];
    const uint32_t v = pairs[2 * bad + 1];
    return fail("record " + std::to_string(bad) + " (" + std::to_string(u) +
                ", " + std::to_string(v) + ") is not canonical for " +
                std::to_string(num_nodes) +
                " nodes (need u < v < num_nodes)");
  }

  // Phase 2: serial prefix sum — offsets[v] is where node v's neighbor run
  // starts. A serial scan over n+1 entries is microseconds even at 10^7
  // nodes and keeps the offsets bit-exact by construction.
  std::vector<int64_t> offsets(static_cast<size_t>(n) + 1, 0);
  TrackedBytes offsets_bytes(offsets.capacity() * sizeof(int64_t));
  for (int v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degree[v];

  // Phase 3: parallel scatter of both directions through per-node cursors.
  std::vector<int64_t> cursor(offsets.begin(), offsets.end() - 1);
  TrackedBytes cursor_bytes(cursor.capacity() * sizeof(int64_t));
  std::vector<int> adjacency(static_cast<size_t>(2) * m);
  TrackedBytes adjacency_bytes(adjacency.capacity() * sizeof(int));
  util::ParallelFor(0, m, kEdgeGrain, [&](int64_t begin, int64_t end) {
    for (int64_t e = begin; e < end; ++e) {
      const int u = static_cast<int>(pairs[2 * e]);
      const int v = static_cast<int>(pairs[2 * e + 1]);
      const int64_t pu = std::atomic_ref<int64_t>(cursor[u]).fetch_add(
          1, std::memory_order_relaxed);
      adjacency[pu] = v;
      const int64_t pv = std::atomic_ref<int64_t>(cursor[v]).fetch_add(
          1, std::memory_order_relaxed);
      adjacency[pv] = u;
    }
  });

  // Phase 4: per-node sort canonicalizes the scatter order, and the
  // sorted runs make duplicate records a simple adjacent-equal scan.
  std::atomic<int> first_dup{std::numeric_limits<int>::max()};
  util::ParallelFor(0, n, kNodeGrain, [&](int64_t begin, int64_t end) {
    for (int64_t v = begin; v < end; ++v) {
      int* lo = adjacency.data() + offsets[v];
      int* hi = adjacency.data() + offsets[v + 1];
      std::sort(lo, hi);
      if (std::adjacent_find(lo, hi) != hi) {
        int node = static_cast<int>(v);
        int seen = first_dup.load(std::memory_order_relaxed);
        while (node < seen && !first_dup.compare_exchange_weak(
                                  seen, node, std::memory_order_relaxed)) {
        }
      }
    }
  });
  if (int dup = first_dup.load(std::memory_order_relaxed);
      dup != std::numeric_limits<int>::max()) {
    return fail("duplicate record incident to node " + std::to_string(dup));
  }

  CPGAN_GAUGE_SET("ingest.csr.bytes",
                  static_cast<int64_t>(offsets.capacity() * sizeof(int64_t) +
                                       adjacency.capacity() * sizeof(int)));
  return Graph::FromCsr(n, std::move(offsets), std::move(adjacency));
}

}  // namespace cpgan::graph
