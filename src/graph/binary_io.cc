#include "graph/binary_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "graph/csr_builder.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/fileio.h"
#include "util/memory_tracker.h"
#include "util/mmap_file.h"
#include "util/timer.h"

namespace cpgan::graph {

namespace {

struct Header {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint32_t payload_crc = 0;
};

void EncodeHeader(const Header& header,
                  uint8_t out[kBinaryEdgeListHeaderBytes]) {
  internal::EncodeBinaryHeader(header.num_nodes, header.num_edges,
                               header.payload_crc, out);
}

/// Computes the payload CRC and (when `f` is non-null) writes the records,
/// buffered so neither pass issues per-edge syscalls. One function for both
/// passes keeps the bytes-hashed and bytes-written definitions identical.
bool StreamPayload(const std::vector<Edge>& edges, util::Crc32* crc,
                   std::FILE* f) {
  std::vector<uint32_t> buffer;
  buffer.reserve(2 * 4096);
  auto flush = [&]() {
    if (buffer.empty()) return true;
    const size_t bytes = buffer.size() * sizeof(uint32_t);
    if (crc != nullptr) crc->Update(buffer.data(), bytes);
    if (f != nullptr &&
        std::fwrite(buffer.data(), 1, bytes, f) != bytes) {
      return false;
    }
    buffer.clear();
    return true;
  };
  for (const auto& [u, v] : edges) {
    buffer.push_back(static_cast<uint32_t>(std::min(u, v)));
    buffer.push_back(static_cast<uint32_t>(std::max(u, v)));
    if (buffer.size() >= 2 * 4096 && !flush()) return false;
  }
  return flush();
}

bool WriteBinaryEdgeList(const std::string& path, int64_t num_nodes,
                         const std::vector<Edge>& edges) {
  Header header;
  header.num_nodes = static_cast<uint64_t>(num_nodes);
  header.num_edges = static_cast<uint64_t>(edges.size());
  util::Crc32 crc;
  StreamPayload(edges, &crc, nullptr);
  header.payload_crc = crc.Digest();
  return util::AtomicWriteFile(path, [&](std::FILE* f) {
    uint8_t encoded[kBinaryEdgeListHeaderBytes];
    EncodeHeader(header, encoded);
    if (std::fwrite(encoded, 1, sizeof(encoded), f) != sizeof(encoded)) {
      return false;
    }
    return StreamPayload(edges, nullptr, f);
  });
}

}  // namespace

namespace internal {

// Field-by-field memcpy rather than a packed struct so the on-disk layout
// cannot drift with compiler padding rules.
void EncodeBinaryHeader(uint64_t num_nodes, uint64_t num_edges,
                        uint32_t payload_crc,
                        uint8_t out[kBinaryEdgeListHeaderBytes]) {
  uint32_t magic = kBinaryEdgeListMagic;
  uint32_t version = kBinaryEdgeListVersion;
  std::memcpy(out + 0, &magic, 4);
  std::memcpy(out + 4, &version, 4);
  std::memcpy(out + 8, &num_nodes, 8);
  std::memcpy(out + 16, &num_edges, 8);
  std::memcpy(out + 24, &payload_crc, 4);
  uint32_t header_crc = util::Crc32Of(out, 28);
  std::memcpy(out + 28, &header_crc, 4);
}

}  // namespace internal

ConvertResult ConvertEdgeListToBinary(const std::string& text_path,
                                      const std::string& binary_path,
                                      const LoadOptions& options) {
  CPGAN_STOPWATCH_SCOPE("ingest.convert");
  ConvertResult result;
  internal::ParsedEdgeList parsed =
      internal::ParseEdgeListText(text_path, options);
  result.malformed_lines = parsed.malformed_lines;
  result.self_loops = parsed.self_loops;
  result.duplicate_edges = parsed.duplicate_edges;
  if (!parsed.ok()) {
    result.error = std::move(parsed.error);
    return result;
  }
  result.num_nodes = parsed.num_nodes;
  result.num_edges = static_cast<int64_t>(parsed.edges.size());
  if (!WriteBinaryEdgeList(binary_path, parsed.num_nodes, parsed.edges)) {
    result.error = "cannot write '" + binary_path + "'";
    return result;
  }
  CPGAN_COUNTER_ADD("ingest.convert.edges", result.num_edges);
  return result;
}

bool SaveBinaryEdgeList(const Graph& g, const std::string& path) {
  return WriteBinaryEdgeList(path, g.num_nodes(), g.Edges());
}

bool IsBinaryEdgeList(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  uint32_t magic = 0;
  const bool read_ok = std::fread(&magic, 1, 4, f) == 4;
  std::fclose(f);
  return read_ok && magic == kBinaryEdgeListMagic;
}

LoadResult LoadBinaryEdgeListDetailed(const std::string& path,
                                      const LoadOptions& options) {
  (void)options;  // binary loads are always strict (see header comment)
  CPGAN_STOPWATCH_SCOPE("ingest.mmap.load");
  util::Timer timer;
  LoadResult result;
  auto fail = [&result, &path](const std::string& what) {
    result.error = "'" + path + "': " + what;
    result.graph.reset();
    return result;
  };

  std::string map_error;
  std::optional<util::MappedFile> mapped =
      util::MappedFile::Open(path, &map_error);
  if (!mapped.has_value()) {
    result.error = map_error;
    return result;
  }
  if (mapped->size() < kBinaryEdgeListHeaderBytes) {
    return fail("too short for a .cpge header (" +
                std::to_string(mapped->size()) + " bytes)");
  }
  const uint8_t* bytes = mapped->data();
  uint32_t magic = 0, version = 0, payload_crc = 0, header_crc = 0;
  uint64_t num_nodes = 0, num_edges = 0;
  std::memcpy(&magic, bytes + 0, 4);
  std::memcpy(&version, bytes + 4, 4);
  std::memcpy(&num_nodes, bytes + 8, 8);
  std::memcpy(&num_edges, bytes + 16, 8);
  std::memcpy(&payload_crc, bytes + 24, 4);
  std::memcpy(&header_crc, bytes + 28, 4);
  if (magic != kBinaryEdgeListMagic) return fail("not a .cpge file (bad magic)");
  if (header_crc != util::Crc32Of(bytes, 28)) {
    return fail("header checksum mismatch (corrupt header)");
  }
  if (version != kBinaryEdgeListVersion) {
    return fail("unsupported .cpge version " + std::to_string(version));
  }
  if (num_nodes > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return fail("node count " + std::to_string(num_nodes) + " exceeds INT_MAX");
  }
  const uint64_t expected_size =
      kBinaryEdgeListHeaderBytes + num_edges * 2 * sizeof(uint32_t);
  if (mapped->size() != expected_size) {
    return fail("size mismatch: header declares " + std::to_string(num_edges) +
                " edge(s) = " + std::to_string(expected_size) +
                " bytes, file has " + std::to_string(mapped->size()) +
                " (truncated or trailing bytes)");
  }

  // RAM-budget gate (--mem-budget-mb): the CSR build's tracked footprint is
  // predictable from the header alone, so an over-budget ingest fails here,
  // before a single byte is allocated. The mapping itself is page cache,
  // not heap, and deliberately does not count (util/mmap_file.h).
  util::MemoryTracker& tracker = util::MemoryTracker::Global();
  if (tracker.budget_bytes() > 0) {
    const int64_t projected =
        tracker.live_bytes() +
        static_cast<int64_t>((2 * num_nodes + (num_nodes + 1)) *
                                 sizeof(int64_t) +
                             2 * num_edges * sizeof(int));
    if (projected > tracker.budget_bytes()) {
      return fail("CSR construction needs ~" +
                  std::to_string(projected >> 20) +
                  " MiB, over the configured memory budget of " +
                  std::to_string(tracker.budget_bytes() >> 20) + " MiB");
    }
  }

  const uint8_t* payload = bytes + kBinaryEdgeListHeaderBytes;
  const size_t payload_bytes = mapped->size() - kBinaryEdgeListHeaderBytes;
  {
    CPGAN_STOPWATCH_SCOPE("ingest.mmap.crc");
    if (payload_crc != util::Crc32Of(payload, payload_bytes)) {
      return fail("payload checksum mismatch (corrupt or bit-rotted data)");
    }
  }

  std::string build_error;
  std::optional<Graph> graph = BuildGraphFromCanonicalEdges(
      static_cast<int64_t>(num_nodes),
      std::span<const uint32_t>(reinterpret_cast<const uint32_t*>(payload),
                                2 * num_edges),
      &build_error);
  if (!graph.has_value()) return fail(build_error);
  result.graph = std::move(graph);

  CPGAN_COUNTER_ADD("ingest.mmap.loads", 1);
  CPGAN_COUNTER_ADD("ingest.mmap.edges", static_cast<int64_t>(num_edges));
  const double seconds = timer.Seconds();
  if (seconds > 0.0) {
    CPGAN_GAUGE_SET("ingest.mmap.edges_per_sec",
                    static_cast<int64_t>(static_cast<double>(num_edges) /
                                         seconds));
  }
  return result;
}

}  // namespace cpgan::graph
