#ifndef CPGAN_GRAPH_IO_H_
#define CPGAN_GRAPH_IO_H_

#include <cstdint>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace cpgan::graph {

/// Options for LoadEdgeListDetailed.
struct LoadOptions {
  /// In strict mode any malformed line, self-loop, or duplicate edge fails
  /// the load (with the offending line recorded in LoadResult::error)
  /// instead of being skipped and counted.
  bool strict = false;
};

/// Outcome of an edge-list load: the graph plus counters for every input
/// irregularity that was skipped, so callers can decide whether a dirty file
/// is acceptable instead of silently training on it.
struct LoadResult {
  std::optional<Graph> graph;

  /// Lines that were not exactly "u v" with non-negative integers — bad
  /// tokens, negative ids, or trailing garbage after the two ids (comments
  /// and blank lines are not counted).
  int64_t malformed_lines = 0;
  /// Edges with u == v, dropped (the node itself is kept).
  int64_t self_loops = 0;
  /// Repeated undirected pairs beyond the first occurrence, dropped.
  int64_t duplicate_edges = 0;

  /// Failure reason when !ok().
  std::string error;

  bool ok() const { return graph.has_value(); }
  int64_t total_skipped() const {
    return malformed_lines + self_loops + duplicate_edges;
  }
};

/// Loads a whitespace-separated edge list (exactly "u v" per line — extra
/// trailing tokens are malformed; lines beginning with '#' or '%' are
/// comments). Node ids may be arbitrary non-negative integers; they are
/// compacted to [0, n) in first-appearance order.
/// Malformed lines, self-loops, and duplicate edges are skipped and counted
/// (a warning is logged when any count is nonzero), or fail the load in
/// strict mode. Fails on IO error.
LoadResult LoadEdgeListDetailed(const std::string& path,
                                const LoadOptions& options = {});

/// Convenience wrapper over LoadEdgeListDetailed that discards the counters
/// (they are still logged). Returns nullopt on IO error.
std::optional<Graph> LoadEdgeList(const std::string& path);

/// Writes the canonical edge list, one "u v" per line. Returns false on IO
/// error.
bool SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace cpgan::graph

#endif  // CPGAN_GRAPH_IO_H_
