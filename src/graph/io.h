#ifndef CPGAN_GRAPH_IO_H_
#define CPGAN_GRAPH_IO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace cpgan::graph {

/// Options for LoadEdgeListDetailed.
struct LoadOptions {
  /// In strict mode any malformed line, self-loop, or duplicate edge fails
  /// the load (with the offending line recorded in LoadResult::error)
  /// instead of being skipped and counted.
  bool strict = false;
};

/// Outcome of an edge-list load: the graph plus counters for every input
/// irregularity that was skipped, so callers can decide whether a dirty file
/// is acceptable instead of silently training on it.
struct LoadResult {
  std::optional<Graph> graph;

  /// Lines that were not exactly "u v" with non-negative integers — bad
  /// tokens, negative ids, ids >= the declared "# nodes N" count, or
  /// trailing garbage after the two ids (comments and blank lines are not
  /// counted).
  int64_t malformed_lines = 0;
  /// Edges with u == v, dropped (the node itself is kept).
  int64_t self_loops = 0;
  /// Repeated undirected pairs beyond the first occurrence, dropped.
  int64_t duplicate_edges = 0;

  /// Failure reason when !ok().
  std::string error;

  bool ok() const { return graph.has_value(); }
  int64_t total_skipped() const {
    return malformed_lines + self_loops + duplicate_edges;
  }
};

/// Loads a whitespace-separated edge list (exactly "u v" per line — extra
/// trailing tokens are malformed; lines beginning with '#' or '%' are
/// comments). A leading "# nodes N" comment (what SaveEdgeList emits)
/// declares the node count: ids are then taken verbatim (they must lie in
/// [0, N)), so isolated nodes and node identities survive a save -> load
/// round trip. Without the header, node ids may be arbitrary non-negative
/// integers and are compacted to [0, n) in first-appearance order (the
/// legacy behavior, which silently dropped isolated nodes).
/// Malformed lines, self-loops, and duplicate edges are skipped and counted
/// (a warning is logged when any count is nonzero), or fail the load in
/// strict mode. Fails on IO error.
LoadResult LoadEdgeListDetailed(const std::string& path,
                                const LoadOptions& options = {});

/// Convenience wrapper over LoadEdgeListDetailed that discards the counters
/// (they are still logged). Returns nullopt on IO error.
std::optional<Graph> LoadEdgeList(const std::string& path);

/// Writes the canonical edge list behind a "# nodes N" header, one "u v"
/// per line, through util::AtomicWriteFile — a crash mid-write leaves the
/// previous file (or nothing), never a truncated-but-parseable edge list.
/// Returns false on IO error.
bool SaveEdgeList(const Graph& g, const std::string& path);

namespace internal {

/// Shared core of the text-edge-list consumers (LoadEdgeListDetailed and
/// binary_io.cc's ConvertEdgeListToBinary): parses, validates, interns, and
/// deduplicates without constructing a Graph, so the converter does not pay
/// for CSR assembly it will not use.
struct ParsedEdgeList {
  int num_nodes = 0;
  /// Validated deduplicated edges, orientation as read.
  std::vector<Edge> edges;
  int64_t malformed_lines = 0;
  int64_t self_loops = 0;
  int64_t duplicate_edges = 0;
  /// True when a "# nodes N" header fixed the node count (ids verbatim).
  bool declared_nodes = false;
  /// Nonempty on failure (IO error, or first irregularity in strict mode).
  std::string error;

  bool ok() const { return error.empty(); }
};

ParsedEdgeList ParseEdgeListText(const std::string& path,
                                 const LoadOptions& options);

}  // namespace internal

}  // namespace cpgan::graph

#endif  // CPGAN_GRAPH_IO_H_
