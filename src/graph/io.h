#ifndef CPGAN_GRAPH_IO_H_
#define CPGAN_GRAPH_IO_H_

#include <optional>
#include <string>

#include "graph/graph.h"

namespace cpgan::graph {

/// Loads a whitespace-separated edge list ("u v" per line; lines beginning
/// with '#' or '%' are comments). Node ids may be arbitrary non-negative
/// integers; they are compacted to [0, n). Returns nullopt on IO error.
std::optional<Graph> LoadEdgeList(const std::string& path);

/// Writes the canonical edge list, one "u v" per line. Returns false on IO
/// error.
bool SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace cpgan::graph

#endif  // CPGAN_GRAPH_IO_H_
