#include "graph/split.h"

#include "util/check.h"

namespace cpgan::graph {

EdgeSplit RandomEdgeSplit(const Graph& g, double train_fraction,
                          util::Rng& rng) {
  CPGAN_CHECK(train_fraction > 0.0 && train_fraction <= 1.0);
  std::vector<Edge> edges = g.Edges();
  rng.Shuffle(edges);
  size_t train_count =
      static_cast<size_t>(train_fraction * static_cast<double>(edges.size()));
  if (train_count == 0 && !edges.empty()) train_count = 1;

  EdgeSplit split;
  split.train_edges.assign(edges.begin(), edges.begin() + train_count);
  split.test_edges.assign(edges.begin() + train_count, edges.end());
  split.train = Graph(g.num_nodes(), split.train_edges);

  // Sample an equal number of non-edges (rejection sampling; graphs here are
  // sparse so this terminates quickly).
  int n = g.num_nodes();
  size_t want = split.test_edges.size();
  int64_t attempts = 0;
  int64_t max_attempts = static_cast<int64_t>(want) * 100 + 1000;
  while (split.negative_edges.size() < want && attempts < max_attempts) {
    ++attempts;
    int u = static_cast<int>(rng.UniformInt(n));
    int v = static_cast<int>(rng.UniformInt(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (g.HasEdge(u, v)) continue;
    split.negative_edges.emplace_back(u, v);
  }
  return split;
}

}  // namespace cpgan::graph
