#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace cpgan::graph {

std::optional<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  std::unordered_map<long, int> relabel;
  std::vector<Edge> edges;
  std::string line;
  auto intern = [&relabel](long raw) {
    auto [it, inserted] =
        relabel.emplace(raw, static_cast<int>(relabel.size()));
    return it->second;
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    long u = 0;
    long v = 0;
    if (!(ss >> u >> v)) continue;
    if (u < 0 || v < 0) continue;
    // Intern in reading order (argument evaluation order is unspecified).
    int iu = intern(u);
    int iv = intern(v);
    edges.emplace_back(iu, iv);
  }
  return Graph(static_cast<int>(relabel.size()), edges);
}

bool SaveEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = true;
  for (const auto& [u, v] : g.Edges()) {
    if (std::fprintf(f, "%d %d\n", u, v) < 0) {
      ok = false;
      break;
    }
  }
  std::fclose(f);
  return ok;
}

}  // namespace cpgan::graph
