#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace cpgan::graph {

LoadResult LoadEdgeListDetailed(const std::string& path,
                                const LoadOptions& options) {
  LoadResult result;
  std::ifstream in(path);
  if (!in.is_open()) {
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::unordered_map<long, int> relabel;
  std::unordered_set<uint64_t> seen_pairs;
  std::vector<Edge> edges;
  std::string line;
  int64_t line_number = 0;
  auto intern = [&relabel](long raw) {
    auto [it, inserted] =
        relabel.emplace(raw, static_cast<int>(relabel.size()));
    return it->second;
  };
  auto fail = [&](const char* what) {
    result.error = std::string(what) + " at line " +
                   std::to_string(line_number) + " of '" + path + "'";
    result.graph.reset();
    return result;
  };
  while (std::getline(in, line)) {
    ++line_number;
    // Windows exports: strip one trailing CR per line (getline keeps it on
    // files with CRLF endings, which would otherwise make every line's
    // second id "v\r" — trailing garbage in strict mode) and a UTF-8 BOM on
    // the first line. Neither is data, so neither counts as malformed.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_number == 1 && line.rfind("\xEF\xBB\xBF", 0) == 0) {
      line.erase(0, 3);
    }
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    long u = 0;
    long v = 0;
    if (!(ss >> u >> v) || u < 0 || v < 0) {
      if (options.strict) return fail("malformed line");
      ++result.malformed_lines;
      continue;
    }
    // Anything beyond "u v" is malformed: a trailing token silently dropped
    // here would accept e.g. weighted lists ("1 2 0.7") or "1 2.5" (parsed
    // as edge (1, 2)) as clean input. Checked before interning so malformed
    // lines cannot add nodes.
    char trailing = '\0';
    if (ss >> trailing) {
      if (options.strict) return fail("trailing garbage");
      ++result.malformed_lines;
      continue;
    }
    // Intern in reading order (argument evaluation order is unspecified).
    int iu = intern(u);
    int iv = intern(v);
    if (iu == iv) {
      if (options.strict) return fail("self-loop");
      ++result.self_loops;
      continue;
    }
    uint64_t key = iu < iv
                       ? (static_cast<uint64_t>(iu) << 32) |
                             static_cast<uint32_t>(iv)
                       : (static_cast<uint64_t>(iv) << 32) |
                             static_cast<uint32_t>(iu);
    if (!seen_pairs.insert(key).second) {
      if (options.strict) return fail("duplicate edge");
      ++result.duplicate_edges;
      continue;
    }
    edges.emplace_back(iu, iv);
  }
  result.graph.emplace(static_cast<int>(relabel.size()), edges);
  if (result.total_skipped() > 0) {
    CPGAN_LOG(Warning) << "LoadEdgeList('" << path << "'): skipped "
                       << result.malformed_lines << " malformed line(s), "
                       << result.self_loops << " self-loop(s), "
                       << result.duplicate_edges << " duplicate edge(s)";
  }
  return result;
}

std::optional<Graph> LoadEdgeList(const std::string& path) {
  LoadResult result = LoadEdgeListDetailed(path);
  return std::move(result.graph);
}

bool SaveEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = true;
  for (const auto& [u, v] : g.Edges()) {
    if (std::fprintf(f, "%d %d\n", u, v) < 0) {
      ok = false;
      break;
    }
  }
  std::fclose(f);
  return ok;
}

}  // namespace cpgan::graph
