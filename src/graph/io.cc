#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/fileio.h"
#include "util/logging.h"

namespace cpgan::graph {

namespace internal {

ParsedEdgeList ParseEdgeListText(const std::string& path,
                                 const LoadOptions& options) {
  ParsedEdgeList result;
  std::ifstream in(path);
  if (!in.is_open()) {
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::unordered_map<long, int> relabel;
  std::unordered_set<uint64_t> seen_pairs;
  std::string line;
  int64_t line_number = 0;
  long declared = -1;  // "# nodes N" header value, -1 = none seen
  bool saw_data = false;
  auto intern = [&relabel](long raw) {
    auto [it, inserted] =
        relabel.emplace(raw, static_cast<int>(relabel.size()));
    return it->second;
  };
  auto fail = [&](const char* what) {
    result.error = std::string(what) + " at line " +
                   std::to_string(line_number) + " of '" + path + "'";
    result.edges.clear();
    return result;
  };
  while (std::getline(in, line)) {
    ++line_number;
    // Windows exports: strip one trailing CR per line (getline keeps it on
    // files with CRLF endings, which would otherwise make every line's
    // second id "v\r" — trailing garbage in strict mode) and a UTF-8 BOM on
    // the first line. Neither is data, so neither counts as malformed.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_number == 1 && line.rfind("\xEF\xBB\xBF", 0) == 0) {
      line.erase(0, 3);
    }
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      // A "# nodes N" comment ahead of any edge declares the node count
      // (SaveEdgeList writes one so isolated nodes and node ids survive a
      // round trip). Comments that merely resemble it stay comments.
      if (!saw_data && declared < 0 && line[0] == '#') {
        std::istringstream header(line.substr(1));
        std::string word;
        long n = -1;
        char extra = '\0';
        if (header >> word >> n && word == "nodes" && n >= 0 &&
            !(header >> extra)) {
          declared = n;
        }
      }
      continue;
    }
    std::istringstream ss(line);
    long u = 0;
    long v = 0;
    if (!(ss >> u >> v) || u < 0 || v < 0) {
      if (options.strict) return fail("malformed line");
      ++result.malformed_lines;
      continue;
    }
    // Anything beyond "u v" is malformed: a trailing token silently dropped
    // here would accept e.g. weighted lists ("1 2 0.7") or "1 2.5" (parsed
    // as edge (1, 2)) as clean input. Checked before interning so malformed
    // lines cannot add nodes.
    char trailing = '\0';
    if (ss >> trailing) {
      if (options.strict) return fail("trailing garbage");
      ++result.malformed_lines;
      continue;
    }
    saw_data = true;
    int iu;
    int iv;
    if (declared >= 0) {
      // Declared node count: ids are canonical already and must be in
      // range. No interning, so isolated nodes below N are preserved and
      // ids are never permuted.
      if (u >= declared || v >= declared) {
        if (options.strict) return fail("node id out of declared range");
        ++result.malformed_lines;
        continue;
      }
      iu = static_cast<int>(u);
      iv = static_cast<int>(v);
    } else {
      // Intern in reading order (argument evaluation order is unspecified).
      iu = intern(u);
      iv = intern(v);
    }
    if (iu == iv) {
      if (options.strict) return fail("self-loop");
      ++result.self_loops;
      continue;
    }
    uint64_t key = iu < iv
                       ? (static_cast<uint64_t>(iu) << 32) |
                             static_cast<uint32_t>(iv)
                       : (static_cast<uint64_t>(iv) << 32) |
                             static_cast<uint32_t>(iu);
    if (!seen_pairs.insert(key).second) {
      if (options.strict) return fail("duplicate edge");
      ++result.duplicate_edges;
      continue;
    }
    result.edges.emplace_back(iu, iv);
  }
  result.declared_nodes = declared >= 0;
  result.num_nodes = declared >= 0 ? static_cast<int>(declared)
                                   : static_cast<int>(relabel.size());
  return result;
}

}  // namespace internal

LoadResult LoadEdgeListDetailed(const std::string& path,
                                const LoadOptions& options) {
  internal::ParsedEdgeList parsed = internal::ParseEdgeListText(path, options);
  LoadResult result;
  result.malformed_lines = parsed.malformed_lines;
  result.self_loops = parsed.self_loops;
  result.duplicate_edges = parsed.duplicate_edges;
  if (!parsed.ok()) {
    result.error = std::move(parsed.error);
    return result;
  }
  result.graph.emplace(parsed.num_nodes, parsed.edges);
  if (result.total_skipped() > 0) {
    CPGAN_LOG(Warning) << "LoadEdgeList('" << path << "'): skipped "
                       << result.malformed_lines << " malformed line(s), "
                       << result.self_loops << " self-loop(s), "
                       << result.duplicate_edges << " duplicate edge(s)";
  }
  return result;
}

std::optional<Graph> LoadEdgeList(const std::string& path) {
  LoadResult result = LoadEdgeListDetailed(path);
  return std::move(result.graph);
}

bool SaveEdgeList(const Graph& g, const std::string& path) {
  return util::AtomicWriteFile(path, [&g](std::FILE* f) {
    if (std::fprintf(f, "# nodes %d\n", g.num_nodes()) < 0) return false;
    for (const auto& [u, v] : g.Edges()) {
      if (std::fprintf(f, "%d %d\n", u, v) < 0) return false;
    }
    return true;
  });
}

}  // namespace cpgan::graph
