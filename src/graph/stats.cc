#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/algorithms.h"
#include "util/check.h"

namespace cpgan::graph {

double GiniCoefficient(const std::vector<int>& degrees) {
  if (degrees.empty()) return 0.0;
  std::vector<int> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  double weighted = 0.0;
  int n = static_cast<int>(sorted.size());
  for (int i = 0; i < n; ++i) {
    total += sorted[i];
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  if (total <= 0.0) return 0.0;
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double PowerLawExponent(const std::vector<int>& degrees, int dmin) {
  CPGAN_CHECK_GE(dmin, 1);
  double log_sum = 0.0;
  int64_t count = 0;
  for (int d : degrees) {
    if (d < dmin) continue;
    log_sum += std::log(static_cast<double>(d) / (dmin - 0.5));
    ++count;
  }
  // No fittable tail (no degrees >= dmin, or every qualifying degree equals
  // the minimum so the MLE diverges): the fit is undefined. NaN is the
  // sentinel — a fitted exponent is always > 1, so the old 0.0 sentinel was
  // indistinguishable from a (nonsensical but arithmetic-safe) value and
  // poisoned downstream |obs - gen| comparisons with misleading distances.
  if (count == 0 || log_sum <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return 1.0 + static_cast<double>(count) / log_sum;
}

double DegreeAssortativity(const Graph& g) {
  // Pearson correlation over directed edge endpoints (each undirected edge
  // contributes both orientations, which symmetrizes the estimator).
  double sum_x = 0.0, sum_y = 0.0, sum_xy = 0.0, sum_x2 = 0.0, sum_y2 = 0.0;
  int64_t count = 0;
  for (int u = 0; u < g.num_nodes(); ++u) {
    double du = g.degree(u);
    for (int v : g.neighbors(u)) {
      double dv = g.degree(v);
      sum_x += du;
      sum_y += dv;
      sum_xy += du * dv;
      sum_x2 += du * du;
      sum_y2 += dv * dv;
      ++count;
    }
  }
  if (count == 0) return 0.0;
  double n = static_cast<double>(count);
  double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  double var_x = sum_x2 / n - (sum_x / n) * (sum_x / n);
  double var_y = sum_y2 / n - (sum_y / n) * (sum_y / n);
  double denom = std::sqrt(var_x * var_y);
  return denom > 1e-12 ? cov / denom : 0.0;
}

std::vector<double> DegreeHistogram(const Graph& g, int max_degree) {
  CPGAN_CHECK_GE(max_degree, 1);
  std::vector<double> hist(max_degree + 1, 0.0);
  for (int v = 0; v < g.num_nodes(); ++v) {
    int d = std::min(g.degree(v), max_degree);
    hist[d] += 1.0;
  }
  if (g.num_nodes() > 0) {
    for (double& h : hist) h /= g.num_nodes();
  }
  return hist;
}

std::vector<double> ClusteringHistogram(const Graph& g, int bins) {
  CPGAN_CHECK_GE(bins, 1);
  std::vector<double> hist(bins, 0.0);
  std::vector<double> coeffs = LocalClusteringCoefficients(g);
  for (double c : coeffs) {
    int b = std::min(static_cast<int>(c * bins), bins - 1);
    hist[b] += 1.0;
  }
  if (!coeffs.empty()) {
    for (double& h : hist) h /= static_cast<double>(coeffs.size());
  }
  return hist;
}

GraphSummary ComputeSummary(const Graph& g, util::Rng& rng) {
  GraphSummary s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.mean_degree = g.MeanDegree();
  s.cpl = CharacteristicPathLength(g, rng);
  std::vector<int> degrees = g.Degrees();
  s.gini = GiniCoefficient(degrees);
  s.power_law_exponent = PowerLawExponent(degrees);
  s.avg_clustering = AverageClusteringCoefficient(g);
  return s;
}

}  // namespace cpgan::graph
