#include "testing/gradcheck.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace cpgan::testing {

std::string GradCheckResult::Summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAIL") << ": " << entries_failed << "/"
     << entries_checked << " gradient entries out of tolerance (max error "
     << "ratio " << max_error_ratio << ")";
  for (const GradCheckFailure& f : failures) {
    os << "\n  param " << f.param << " entry " << f.index
       << ": analytic=" << f.analytic << " numeric=" << f.numeric
       << " |diff|=" << f.error;
  }
  return os.str();
}

GradCheckResult GradCheck(const std::function<tensor::Tensor()>& loss_fn,
                          const std::vector<tensor::Tensor>& params,
                          const GradCheckOptions& options) {
  GradCheckResult result;
  for (const tensor::Tensor& p : params) {
    CPGAN_CHECK(p.defined());
    CPGAN_CHECK(p.requires_grad());
    // `const Tensor&` is a shared handle; ZeroGrad mutates the node.
    tensor::Tensor(p).ZeroGrad();
  }

  tensor::Tensor loss = loss_fn();
  CPGAN_CHECK_EQ(loss.rows(), 1);
  CPGAN_CHECK_EQ(loss.cols(), 1);
  tensor::Backward(loss);

  std::vector<tensor::Matrix> analytic;
  analytic.reserve(params.size());
  for (const tensor::Tensor& p : params) analytic.push_back(p.grad());

  const float step = options.step;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    tensor::Tensor param = params[pi];
    tensor::Matrix& value = param.mutable_value();
    const bool untouched = analytic[pi].size() == 0;  // grad never initialized
    for (int64_t i = 0; i < value.size(); ++i) {
      const float original = value.data()[i];
      value.data()[i] = original + step;
      const float up = loss_fn().Scalar();
      value.data()[i] = original - step;
      const float down = loss_fn().Scalar();
      value.data()[i] = original;
      const float numeric = (up - down) / (2.0f * step);
      const float a = untouched ? 0.0f : analytic[pi].data()[i];
      const float diff = std::fabs(a - numeric);
      const float tol = options.atol +
                        options.rtol * std::max(std::fabs(a),
                                                std::fabs(numeric));
      result.entries_checked += 1;
      if (tol > 0.0f) {
        result.max_error_ratio = std::max(
            result.max_error_ratio, static_cast<double>(diff) / tol);
      }
      if (diff > tol || !std::isfinite(diff)) {
        result.ok = false;
        result.entries_failed += 1;
        if (static_cast<int>(result.failures.size()) <
            options.max_failures_reported) {
          result.failures.push_back({static_cast<int>(pi), i, a, numeric,
                                     diff});
        }
      }
    }
  }
  for (const tensor::Tensor& p : params) tensor::Tensor(p).ZeroGrad();
  return result;
}

GradCheckRegistry& GradCheckRegistry::Global() {
  static GradCheckRegistry* registry = new GradCheckRegistry();
  return *registry;
}

const std::vector<std::string>& GradCheckRegistry::RequiredOps() {
  // Mirrors tensor/ops.h (one entry per differentiable op) and src/nn/ (one
  // entry per module forward). Keep sorted within each group.
  static const std::vector<std::string>* ops = new std::vector<std::string>{
      // Elementwise binary + broadcasts.
      "Add", "AddRowVec", "Div", "Mul", "MulColVec", "MulRowVec", "Sub",
      // Scalar-constant ops.
      "AddConst", "Neg", "Scale",
      // Elementwise unary.
      "Exp", "Log", "LogSigmoid", "Reciprocal", "Relu", "Sigmoid",
      "Softplus", "Sqrt", "Square", "Tanh",
      // Row-wise / stochastic.
      "Dropout", "SoftmaxRows",
      // Matrix products.
      "Matmul", "Spmm", "Transpose",
      // Structural.
      "ConcatCols", "ConcatRows", "GatherRows", "Reshape", "SliceCols",
      // Reductions.
      "ColMean", "MeanAll", "RowL2Norm", "RowMean", "RowSum", "SumAll",
      // Losses.
      "BceWithLogits", "MseLoss",
      // nn modules.
      "nn.GcnConv", "nn.GcnConvDense", "nn.GruCell", "nn.Linear", "nn.Mlp",
      "nn.PairNorm", "nn.TopKPool",
  };
  return *ops;
}

void GradCheckRegistry::MarkCovered(const std::string& op_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  covered_.insert(op_name);
}

std::vector<std::string> GradCheckRegistry::Missing() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> missing;
  for (const std::string& op : RequiredOps()) {
    if (covered_.find(op) == covered_.end()) missing.push_back(op);
  }
  std::sort(missing.begin(), missing.end());
  return missing;
}

std::vector<std::string> GradCheckRegistry::Covered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {covered_.begin(), covered_.end()};
}

GradCheckResult CheckOpGradient(const std::string& op_name,
                                const std::function<tensor::Tensor()>& loss_fn,
                                const std::vector<tensor::Tensor>& params,
                                const GradCheckOptions& options) {
  const std::vector<std::string>& required = GradCheckRegistry::RequiredOps();
  CPGAN_CHECK(std::find(required.begin(), required.end(), op_name) !=
              required.end());
  GradCheckRegistry::Global().MarkCovered(op_name);
  return GradCheck(loss_fn, params, options);
}

}  // namespace cpgan::testing
