#include "testing/eval_ref.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace cpgan::testing {
namespace {

// ---------------------------------------------------------------------------
// Historical MMD path: per-pair padding + normalization, no shared Gram
// matrix. Kept verbatim (modulo namespace) from the pre-rewrite
// src/eval/mmd.cc so the optimized path has a bitwise oracle.
// ---------------------------------------------------------------------------

void RefCommonSupportNormalized(const std::vector<double>& p,
                                const std::vector<double>& q,
                                std::vector<double>& pn,
                                std::vector<double>& qn) {
  const size_t size = std::max(p.size(), q.size());
  pn.assign(size, 0.0);
  qn.assign(size, 0.0);
  std::copy(p.begin(), p.end(), pn.begin());
  std::copy(q.begin(), q.end(), qn.begin());
  auto normalize = [](std::vector<double>& h) {
    double total = 0.0;
    for (double v : h) total += v;
    if (total <= 0.0) {
      std::fill(h.begin(), h.end(), 0.0);
      return;
    }
    for (double& v : h) v /= total;
  };
  normalize(pn);
  normalize(qn);
}

double RefEmd1D(const std::vector<double>& p, const std::vector<double>& q) {
  std::vector<double> pn;
  std::vector<double> qn;
  RefCommonSupportNormalized(p, q, pn, qn);
  double cdf_diff = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < pn.size(); ++i) {
    cdf_diff += pn[i] - qn[i];
    total += std::fabs(cdf_diff);
  }
  return total;
}

double RefTotalVariation(const std::vector<double>& p,
                         const std::vector<double>& q) {
  std::vector<double> pn;
  std::vector<double> qn;
  RefCommonSupportNormalized(p, q, pn, qn);
  double total = 0.0;
  for (size_t i = 0; i < pn.size(); ++i) total += std::fabs(pn[i] - qn[i]);
  return 0.5 * total;
}

double RefKernel(const std::vector<double>& p, const std::vector<double>& q,
                 eval::MmdKernel kernel, double sigma) {
  double dist = kernel == eval::MmdKernel::kGaussianEmd
                    ? RefEmd1D(p, q)
                    : RefTotalVariation(p, q);
  return std::exp(-dist * dist / (2.0 * sigma * sigma));
}

// ---------------------------------------------------------------------------
// Historical Louvain: per-node unordered_map accumulation over a map-of-maps
// weighted graph. Kept verbatim from the pre-rewrite src/community/louvain.cc.
// ---------------------------------------------------------------------------

struct RefWeightedGraph {
  std::vector<std::unordered_map<int, double>> adjacency;
  std::vector<double> self_loops;
  std::vector<double> weighted_degree;
  double total_weight = 0.0;  // 2m

  int size() const { return static_cast<int>(adjacency.size()); }
};

RefWeightedGraph RefFromGraph(const graph::Graph& g) {
  RefWeightedGraph wg;
  wg.adjacency.resize(g.num_nodes());
  wg.self_loops.assign(g.num_nodes(), 0.0);
  wg.weighted_degree.assign(g.num_nodes(), 0.0);
  for (int u = 0; u < g.num_nodes(); ++u) {
    for (int v : g.neighbors(u)) {
      wg.adjacency[u][v] = 1.0;
    }
    wg.weighted_degree[u] = static_cast<double>(g.degree(u));
    wg.total_weight += wg.weighted_degree[u];
  }
  return wg;
}

bool RefLocalMoving(const RefWeightedGraph& wg, util::Rng& rng,
                    double min_gain, std::vector<int>& community) {
  int n = wg.size();
  std::vector<double> community_degree(n, 0.0);
  for (int v = 0; v < n; ++v) {
    community_degree[community[v]] += wg.weighted_degree[v];
  }

  double two_m = wg.total_weight;
  if (two_m <= 0.0) return false;

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);

  bool any_move = false;
  bool improved = true;
  int sweeps = 0;
  while (improved && sweeps < 32) {
    improved = false;
    ++sweeps;
    for (int idx = 0; idx < n; ++idx) {
      int u = order[idx];
      int cu = community[u];
      std::unordered_map<int, double> links;
      for (const auto& [v, w] : wg.adjacency[u]) {
        links[community[v]] += w;
      }
      community_degree[cu] -= wg.weighted_degree[u];
      double base = links.count(cu) ? links[cu] : 0.0;
      double best_gain = 0.0;
      int best_comm = cu;
      for (const auto& [c, w] : links) {
        if (c == cu) continue;
        double gain = (w - base) -
                      wg.weighted_degree[u] *
                          (community_degree[c] - community_degree[cu]) / two_m;
        if (gain > best_gain + min_gain) {
          best_gain = gain;
          best_comm = c;
        }
      }
      community[u] = best_comm;
      community_degree[best_comm] += wg.weighted_degree[u];
      if (best_comm != cu) {
        improved = true;
        any_move = true;
      }
    }
  }
  return any_move;
}

RefWeightedGraph RefAggregate(const RefWeightedGraph& wg,
                              const std::vector<int>& community,
                              int num_comms) {
  RefWeightedGraph out;
  out.adjacency.resize(num_comms);
  out.self_loops.assign(num_comms, 0.0);
  out.weighted_degree.assign(num_comms, 0.0);
  out.total_weight = wg.total_weight;
  for (int u = 0; u < wg.size(); ++u) {
    int cu = community[u];
    out.self_loops[cu] += wg.self_loops[u];
    for (const auto& [v, w] : wg.adjacency[u]) {
      int cv = community[v];
      if (cu == cv) {
        out.self_loops[cu] += w;
      } else {
        out.adjacency[cu][cv] += w;
      }
    }
  }
  for (int c = 0; c < num_comms; ++c) {
    double deg = out.self_loops[c];
    for (const auto& [v, w] : out.adjacency[c]) deg += w;
    out.weighted_degree[c] = deg;
  }
  return out;
}

}  // namespace

double RefMmd(const std::vector<std::vector<double>>& a,
              const std::vector<std::vector<double>>& b,
              eval::MmdKernel kernel, double sigma,
              eval::MmdEstimator estimator) {
  auto cross_mean = [&](const std::vector<std::vector<double>>& x,
                        const std::vector<std::vector<double>>& y) {
    double total = 0.0;
    for (const auto& p : x) {
      for (const auto& q : y) total += RefKernel(p, q, kernel, sigma);
    }
    return total / (static_cast<double>(x.size()) * y.size());
  };
  auto within_mean = [&](const std::vector<std::vector<double>>& x) {
    const size_t n = x.size();
    if (estimator == eval::MmdEstimator::kBiased || n < 2) {
      return cross_mean(x, x);
    }
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        total += RefKernel(x[i], x[j], kernel, sigma);
      }
    }
    return total / (static_cast<double>(n) * (n - 1));
  };
  double mmd2 = within_mean(a) + within_mean(b) - 2.0 * cross_mean(a, b);
  return std::max(0.0, mmd2);
}

community::LouvainResult RefLouvain(const graph::Graph& g, util::Rng& rng,
                                    double min_gain, int max_levels) {
  community::LouvainResult result;
  int n = g.num_nodes();
  std::vector<int> node_to_super(n);
  for (int v = 0; v < n; ++v) node_to_super[v] = v;

  RefWeightedGraph wg = RefFromGraph(g);
  for (int level = 0; level < max_levels; ++level) {
    std::vector<int> community(wg.size());
    for (int v = 0; v < wg.size(); ++v) community[v] = v;
    bool moved = RefLocalMoving(wg, rng, min_gain, community);

    std::unordered_map<int, int> compact;
    for (int& c : community) {
      auto [it, ignored] = compact.emplace(c, static_cast<int>(compact.size()));
      c = it->second;
    }
    int num_comms = static_cast<int>(compact.size());

    std::vector<int> labels(n);
    for (int v = 0; v < n; ++v) {
      node_to_super[v] = community[node_to_super[v]];
      labels[v] = node_to_super[v];
    }
    result.levels.emplace_back(std::move(labels));

    if (!moved || num_comms == wg.size()) break;
    wg = RefAggregate(wg, community, num_comms);
    if (num_comms <= 1) break;
  }
  if (result.levels.empty()) {
    std::vector<int> labels(n, 0);
    if (n == 0) labels.clear();
    result.levels.emplace_back(std::move(labels));
  }
  result.modularity = community::Modularity(g, result.FinalPartition());
  return result;
}

}  // namespace cpgan::testing
