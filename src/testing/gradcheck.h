#ifndef CPGAN_TESTING_GRADCHECK_H_
#define CPGAN_TESTING_GRADCHECK_H_

#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cpgan::testing {

/// \file
/// Central finite-difference gradient checker for the autograd engine.
///
/// Every differentiable op in tensor/ops.h and every nn module has a
/// registered name in GradCheckRegistry::RequiredOps(); the numeric test
/// suite (tests/numeric/) calls CheckOpGradient for each, and a global test
/// environment asserts that no required op was left unchecked. Adding a new
/// op without a gradient check therefore fails `ctest -L numeric`.
/// See docs/TESTING.md.

struct GradCheckOptions {
  /// Central-difference step. Loss values are float, so the subtraction
  /// cancels ~eps*|loss|/(2*step) of precision; 1e-3 balances that against
  /// the O(step^2) truncation error for O(1) losses.
  float step = 1e-3f;
  /// An entry fails when |analytic - numeric| > atol + rtol * max(|analytic|,
  /// |numeric|) (the torch.allclose convention).
  float rtol = 2e-2f;
  float atol = 5e-3f;
  /// Failures recorded in GradCheckResult::failures (all are counted).
  int max_failures_reported = 8;
};

/// One failing gradient entry.
struct GradCheckFailure {
  int param = 0;        ///< Index into the `params` vector.
  int64_t index = 0;    ///< Flat entry index within the parameter.
  float analytic = 0.0f;
  float numeric = 0.0f;
  float error = 0.0f;   ///< |analytic - numeric|.
};

/// Outcome of one GradCheck run.
struct GradCheckResult {
  bool ok = true;
  int64_t entries_checked = 0;
  int64_t entries_failed = 0;
  /// Largest |analytic - numeric| / (atol + rtol * max(|a|, |n|)) ratio seen;
  /// <= 1 when ok.
  double max_error_ratio = 0.0;
  std::vector<GradCheckFailure> failures;

  /// Human-readable one-paragraph report (for test assertion messages).
  std::string Summary() const;
};

/// Checks the autograd gradients of `loss_fn` with respect to every tensor in
/// `params` against central finite differences.
///
/// `loss_fn` must rebuild the loss graph from the *current* values of the
/// parameters on every call (no reuse of old graph nodes) and return a 1x1
/// tensor. Stochastic ops (Dropout) must draw from a freshly re-seeded Rng
/// inside `loss_fn` so every call sees the same mask.
GradCheckResult GradCheck(const std::function<tensor::Tensor()>& loss_fn,
                          const std::vector<tensor::Tensor>& params,
                          const GradCheckOptions& options = {});

/// Tracks which required ops have been exercised by a gradient check in this
/// process. Thread-safe.
class GradCheckRegistry {
 public:
  static GradCheckRegistry& Global();

  /// The canonical list of ops/modules that must have a gradient check:
  /// every autograd op in tensor/ops.h plus every nn module. Extend this
  /// list when adding an op — the coverage assertion fails until a matching
  /// CheckOpGradient call exists.
  static const std::vector<std::string>& RequiredOps();

  /// Records that `op_name` has a gradient check.
  void MarkCovered(const std::string& op_name);

  /// Required ops with no recorded check, sorted.
  std::vector<std::string> Missing() const;

  /// Ops recorded so far, sorted.
  std::vector<std::string> Covered() const;

 private:
  mutable std::mutex mutex_;
  std::set<std::string> covered_;
};

/// Marks `op_name` covered in the global registry, then runs GradCheck.
/// `op_name` must be one of GradCheckRegistry::RequiredOps() (checked).
GradCheckResult CheckOpGradient(const std::string& op_name,
                                const std::function<tensor::Tensor()>& loss_fn,
                                const std::vector<tensor::Tensor>& params,
                                const GradCheckOptions& options = {});

}  // namespace cpgan::testing

#endif  // CPGAN_TESTING_GRADCHECK_H_
