#include "testing/diff_harness.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "tensor/kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace cpgan::testing {

namespace {

/// SplitMix64: cheap deterministic stream for harness inputs.
uint64_t NextState(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

float UnitFloat(uint64_t bits) {
  return static_cast<float>((bits >> 40) & 0xFFFFFF) / 16777216.0f;
}

}  // namespace

tensor::Matrix RefMatmul(const tensor::Matrix& a, const tensor::Matrix& b) {
  CPGAN_CHECK_EQ(a.cols(), b.rows());
  tensor::Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.At(i, k)) * b.At(k, j);
      }
      out.At(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

tensor::Matrix RefMatmulTN(const tensor::Matrix& a, const tensor::Matrix& b) {
  CPGAN_CHECK_EQ(a.rows(), b.rows());
  tensor::Matrix out(a.cols(), b.cols());
  for (int i = 0; i < a.cols(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int k = 0; k < a.rows(); ++k) {
        acc += static_cast<double>(a.At(k, i)) * b.At(k, j);
      }
      out.At(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

tensor::Matrix RefMatmulNT(const tensor::Matrix& a, const tensor::Matrix& b) {
  CPGAN_CHECK_EQ(a.cols(), b.cols());
  tensor::Matrix out(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (int k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.At(i, k)) * b.At(j, k);
      }
      out.At(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

tensor::Matrix RefSpmm(const tensor::SparseMatrix& s,
                       const tensor::Matrix& dense) {
  CPGAN_CHECK_EQ(s.cols(), dense.rows());
  tensor::Matrix out(s.rows(), dense.cols());
  const auto& offsets = s.row_offsets();
  const auto& cols = s.col_indices();
  const auto& vals = s.values();
  for (int r = 0; r < s.rows(); ++r) {
    for (int c = 0; c < dense.cols(); ++c) {
      double acc = 0.0;
      for (int64_t idx = offsets[r]; idx < offsets[r + 1]; ++idx) {
        acc += static_cast<double>(vals[idx]) * dense.At(cols[idx], c);
      }
      out.At(r, c) = static_cast<float>(acc);
    }
  }
  return out;
}

tensor::Matrix RefSpmmTransposed(const tensor::SparseMatrix& s,
                                 const tensor::Matrix& dense) {
  CPGAN_CHECK_EQ(s.rows(), dense.rows());
  tensor::Matrix out(s.cols(), dense.cols());
  // Scatter into double accumulators, then round once.
  std::vector<double> acc(static_cast<size_t>(out.size()), 0.0);
  const auto& offsets = s.row_offsets();
  const auto& cols = s.col_indices();
  const auto& vals = s.values();
  const int d = dense.cols();
  for (int r = 0; r < s.rows(); ++r) {
    for (int64_t idx = offsets[r]; idx < offsets[r + 1]; ++idx) {
      double v = vals[idx];
      double* arow = acc.data() + static_cast<int64_t>(cols[idx]) * d;
      for (int c = 0; c < d; ++c) {
        arow[c] += v * dense.At(r, c);
      }
    }
  }
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<float>(acc[i]);
  }
  return out;
}

tensor::Matrix RefTranspose(const tensor::Matrix& a) {
  tensor::Matrix out(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out.At(c, r) = a.At(r, c);
  }
  return out;
}

double RefSum(const tensor::Matrix& m) {
  double acc = 0.0;
  for (int64_t i = 0; i < m.size(); ++i) acc += m.data()[i];
  return acc;
}

double RefFrobeniusNorm(const tensor::Matrix& m) {
  double acc = 0.0;
  for (int64_t i = 0; i < m.size(); ++i) {
    acc += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  return std::sqrt(acc);
}

std::string DiffStats::Summary() const {
  std::ostringstream os;
  if (shape_mismatch) return "shape mismatch";
  os << "compared " << compared << " entries, max_abs_diff=" << max_abs_diff
     << " max_rel_diff=" << max_rel_diff;
  if (worst_row >= 0) {
    os << " (worst at [" << worst_row << "," << worst_col
       << "]: got=" << worst_got << " want=" << worst_want << ")";
  }
  return os.str();
}

DiffStats Compare(const tensor::Matrix& got, const tensor::Matrix& want) {
  DiffStats stats;
  if (!got.SameShape(want)) {
    stats.shape_mismatch = true;
    return stats;
  }
  for (int r = 0; r < got.rows(); ++r) {
    for (int c = 0; c < got.cols(); ++c) {
      const double g = got.At(r, c);
      const double w = want.At(r, c);
      const double abs_diff = std::fabs(g - w);
      const double rel = abs_diff / std::max(1.0, std::fabs(w));
      stats.compared += 1;
      stats.max_abs_diff = std::max(stats.max_abs_diff, abs_diff);
      if (rel > stats.max_rel_diff || stats.worst_row < 0) {
        stats.max_rel_diff = std::max(stats.max_rel_diff, rel);
        stats.worst_row = r;
        stats.worst_col = c;
        stats.worst_got = g;
        stats.worst_want = w;
      }
    }
  }
  return stats;
}

bool BitwiseEqual(const tensor::Matrix& a, const tensor::Matrix& b) {
  if (!a.SameShape(b)) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

tensor::Matrix RandomMatrix(int rows, int cols, uint64_t seed, float scale) {
  tensor::Matrix m(rows, cols);
  uint64_t state = seed * 0x2545F4914F6CDD1DULL + 1;
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = (UnitFloat(NextState(state)) - 0.5f) * 2.0f * scale;
  }
  return m;
}

tensor::SparseMatrix RandomSparse(int rows, int cols, double density,
                                  uint64_t seed) {
  std::vector<tensor::Triplet> triplets;
  uint64_t state = seed * 0x9E3779B97F4A7C15ULL + 3;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      uint64_t bits = NextState(state);
      if (UnitFloat(bits) < density) {
        float value = (UnitFloat(NextState(state)) - 0.5f) * 2.0f;
        triplets.push_back({r, c, value});
      }
    }
  }
  return tensor::SparseMatrix(rows, cols, std::move(triplets));
}

const std::vector<int>& BoundaryDims() {
  static const std::vector<int>* dims =
      new std::vector<int>{1, 2, 31, 63, 64, 65, 127};
  return *dims;
}

ScopedThreads::ScopedThreads(int num_threads)
    : previous_(util::ThreadPool::Global().num_threads()) {
  util::ThreadPool::SetGlobalThreads(num_threads);
}

ScopedThreads::~ScopedThreads() {
  util::ThreadPool::SetGlobalThreads(previous_);
}

ScopedBackend::ScopedBackend(const std::string& name)
    : previous_(tensor::kernels::Active().name) {
  std::string error;
  CPGAN_CHECK_MSG(tensor::kernels::SetBackend(name, &error), error.c_str());
}

ScopedBackend::~ScopedBackend() {
  CPGAN_CHECK(tensor::kernels::SetBackend(previous_));
}

}  // namespace cpgan::testing
