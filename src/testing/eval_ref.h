#ifndef CPGAN_TESTING_EVAL_REF_H_
#define CPGAN_TESTING_EVAL_REF_H_

#include <vector>

#include "community/louvain.h"
#include "eval/mmd.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::testing {

/// \file
/// Trusted references for the eval/community hot paths, preserved verbatim
/// from the pre-rewrite implementations (serial, per-pair re-normalizing
/// MMD; map-of-maps Louvain). The differential tests in tests/numeric/ pit
/// the optimized cached/flat-CSR versions against these — bitwise for MMD,
/// and exactly on the golden fixtures for Louvain (see RefLouvain's note on
/// tie-breaking). See docs/TESTING.md.

/// Squared MMD computed the historical way: every kernel evaluation pads
/// and normalizes its own pair of histograms and no Gram matrix is shared,
/// so each k(i,j) is recomputed per estimator term. Serial. Keeps the old
/// std::max(0.0, mmd2) clamp, so non-finite inputs produce 0 here — the
/// silent-NaN bug the optimized path fixes; compare only on finite inputs.
double RefMmd(const std::vector<std::vector<double>>& a,
              const std::vector<std::vector<double>>& b, eval::MmdKernel kernel,
              double sigma, eval::MmdEstimator estimator);

/// Louvain with the historical per-node `unordered_map` neighbor-community
/// accumulation and map-of-maps weighted graph. Every gain it computes is
/// bitwise identical to the flat-CSR rewrite (all weights are exact small
/// integers in double); the only divergence channel is the argmax scan
/// order over neighboring communities when two candidate moves have
/// *exactly* equal gain — the old code scanned in unordered_map iteration
/// order, the rewrite in deterministic first-touch order. On fixtures
/// without consequential ties the partitions agree exactly.
community::LouvainResult RefLouvain(const graph::Graph& g, util::Rng& rng,
                                    double min_gain = 1e-7,
                                    int max_levels = 12);

}  // namespace cpgan::testing

#endif  // CPGAN_TESTING_EVAL_REF_H_
