#ifndef CPGAN_TESTING_DIFF_HARNESS_H_
#define CPGAN_TESTING_DIFF_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace cpgan::testing {

/// \file
/// Kernel differential harness: trusted naive serial references for every
/// optimized kernel in tensor/ (the PR-2 blocked/parallel paths), plus
/// comparison helpers and a scoped thread-count override so the numeric
/// tests can pit the kernels against the references at 1/2/8 threads and at
/// shapes straddling the serial/blocked cutoffs and tile boundaries
/// (63/64/65). See docs/TESTING.md.
///
/// References accumulate in double and round once at the end, so they are
/// the most accurate float answer available; optimized float kernels are
/// compared against them with a small relative tolerance rather than
/// bitwise (their summation order differs by design).

/// C = A * B, naive triple loop, double accumulator per output entry.
tensor::Matrix RefMatmul(const tensor::Matrix& a, const tensor::Matrix& b);

/// C = A^T * B.
tensor::Matrix RefMatmulTN(const tensor::Matrix& a, const tensor::Matrix& b);

/// C = A * B^T.
tensor::Matrix RefMatmulNT(const tensor::Matrix& a, const tensor::Matrix& b);

/// C = S * D via the CSR arrays, double accumulator.
tensor::Matrix RefSpmm(const tensor::SparseMatrix& s,
                       const tensor::Matrix& dense);

/// C = S^T * D without building a transposed CSR (scatter form).
tensor::Matrix RefSpmmTransposed(const tensor::SparseMatrix& s,
                                 const tensor::Matrix& dense);

/// A^T, naive.
tensor::Matrix RefTranspose(const tensor::Matrix& a);

/// Sum of all entries, serial double accumulator.
double RefSum(const tensor::Matrix& m);

/// Frobenius norm, serial double accumulator.
double RefFrobeniusNorm(const tensor::Matrix& m);

/// Elementwise comparison statistics between an optimized result and a
/// reference.
struct DiffStats {
  bool shape_mismatch = false;
  int64_t compared = 0;
  double max_abs_diff = 0.0;
  /// |got - want| / max(1, |want|) — relative for large entries, absolute
  /// for small ones.
  double max_rel_diff = 0.0;
  int worst_row = -1;
  int worst_col = -1;
  double worst_got = 0.0;
  double worst_want = 0.0;

  std::string Summary() const;
};

/// Compares `got` (optimized kernel) against `want` (reference).
DiffStats Compare(const tensor::Matrix& got, const tensor::Matrix& want);

/// True if the two matrices have the same shape and identical bit patterns
/// (the determinism contract across thread counts).
bool BitwiseEqual(const tensor::Matrix& a, const tensor::Matrix& b);

/// Deterministic pseudo-random matrix in [-scale, scale] (no global RNG
/// stream involvement, so harness inputs never perturb reproducibility).
tensor::Matrix RandomMatrix(int rows, int cols, uint64_t seed,
                            float scale = 1.0f);

/// Deterministic random CSR matrix with approximately `density` nonzeros.
tensor::SparseMatrix RandomSparse(int rows, int cols, double density,
                                  uint64_t seed);

/// Dimensions straddling the kernel tile boundaries (kTileRows/K/Cols = 64)
/// and degenerate edges: {1, 2, 31, 63, 64, 65, 127}.
const std::vector<int>& BoundaryDims();

/// RAII override of the global thread-pool size; restores the previous
/// count on destruction.
class ScopedThreads {
 public:
  explicit ScopedThreads(int num_threads);
  ~ScopedThreads();

  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int previous_;
};

/// RAII override of the active kernel backend; restores the previous
/// selection on destruction. CHECK-fails on an unavailable name — tests
/// iterate kernels::AvailableBackends(), so a miss is a test bug, not an
/// environment condition.
class ScopedBackend {
 public:
  explicit ScopedBackend(const std::string& name);
  ~ScopedBackend();

  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  std::string previous_;
};

}  // namespace cpgan::testing

#endif  // CPGAN_TESTING_DIFF_HARNESS_H_
