#include "testing/kernel_coverage.h"

#include <algorithm>

#include "tensor/kernels.h"
#include "util/check.h"

namespace cpgan::testing {

namespace {

std::string PairKey(const std::string& backend, const std::string& op) {
  return backend + "/" + op;
}

bool IsKnownOp(const std::string& op) {
  const std::vector<std::string>& ops = tensor::kernels::OpNames();
  return std::find(ops.begin(), ops.end(), op) != ops.end();
}

}  // namespace

KernelCheckRegistry& KernelCheckRegistry::Global() {
  static KernelCheckRegistry* registry = new KernelCheckRegistry();
  return *registry;
}

std::vector<std::string> KernelCheckRegistry::RequiredChecks() {
  std::vector<std::string> required;
  for (const tensor::kernels::KernelOps* backend :
       tensor::kernels::AvailableBackends()) {
    for (const std::string& op : tensor::kernels::OpNames()) {
      required.push_back(PairKey(backend->name, op));
    }
  }
  std::sort(required.begin(), required.end());
  return required;
}

void KernelCheckRegistry::MarkCovered(const std::string& backend,
                                      const std::string& op_name) {
  CPGAN_CHECK_MSG(IsKnownOp(op_name), op_name.c_str());
  std::lock_guard<std::mutex> lock(mutex_);
  covered_.insert(PairKey(backend, op_name));
}

std::vector<std::string> KernelCheckRegistry::Missing() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> missing;
  for (const std::string& pair : RequiredChecks()) {
    if (covered_.find(pair) == covered_.end()) missing.push_back(pair);
  }
  return missing;
}

std::vector<std::string> KernelCheckRegistry::Covered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::string>(covered_.begin(), covered_.end());
}

}  // namespace cpgan::testing
