#ifndef CPGAN_TESTING_KERNEL_COVERAGE_H_
#define CPGAN_TESTING_KERNEL_COVERAGE_H_

#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace cpgan::testing {

/// \file
/// Backend x op coverage registry for the kernel differential suite,
/// mirroring GradCheckRegistry for autograd ops. The required set is the
/// cross product of kernels::AvailableBackends() and kernels::OpNames():
/// every backend compiled into this binary must validate every KernelOps
/// entry against the double-accumulator references. A backend that ships an
/// op without a differential check fails the bundle's coverage assertion
/// (tests/numeric/kernel_coverage.cc). See docs/TESTING.md.

/// Tracks which (backend, op) pairs have been exercised by a differential
/// check in this process. Thread-safe.
class KernelCheckRegistry {
 public:
  static KernelCheckRegistry& Global();

  /// Required pairs, as "backend/op" strings: every available backend
  /// crossed with every KernelOps function-pointer slot.
  static std::vector<std::string> RequiredChecks();

  /// Records that `op_name` was differentially validated under `backend`.
  /// `op_name` must be one of kernels::OpNames() (checked) so a typo cannot
  /// silently satisfy nothing.
  void MarkCovered(const std::string& backend, const std::string& op_name);

  /// Required pairs with no recorded check, sorted.
  std::vector<std::string> Missing() const;

  /// Pairs recorded so far, sorted.
  std::vector<std::string> Covered() const;

 private:
  mutable std::mutex mutex_;
  std::set<std::string> covered_;
};

}  // namespace cpgan::testing

#endif  // CPGAN_TESTING_KERNEL_COVERAGE_H_
