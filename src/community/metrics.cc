#include "community/metrics.h"

#include <cmath>

#include "util/check.h"

namespace cpgan::community {
namespace {

double Choose2(double x) { return x * (x - 1.0) / 2.0; }

}  // namespace

ContingencyTable::ContingencyTable(const Partition& a, const Partition& b)
    : rows_(a.num_communities()),
      cols_(b.num_communities()),
      cells_(static_cast<size_t>(rows_) * cols_, 0),
      row_sums_(rows_, 0),
      col_sums_(cols_, 0),
      total_(a.num_nodes()) {
  CPGAN_CHECK_EQ(a.num_nodes(), b.num_nodes());
  for (int v = 0; v < a.num_nodes(); ++v) {
    int i = a.label(v);
    int j = b.label(v);
    cells_[i * cols_ + j] += 1;
    row_sums_[i] += 1;
    col_sums_[j] += 1;
  }
}

double RandIndex(const Partition& a, const Partition& b) {
  ContingencyTable t(a, b);
  double n = static_cast<double>(t.total());
  if (n < 2) return 1.0;
  double sum_nij2 = 0.0;
  for (int i = 0; i < t.rows(); ++i) {
    for (int j = 0; j < t.cols(); ++j) {
      sum_nij2 += Choose2(static_cast<double>(t.count(i, j)));
    }
  }
  double sum_ai2 = 0.0;
  for (int i = 0; i < t.rows(); ++i) {
    sum_ai2 += Choose2(static_cast<double>(t.row_sum(i)));
  }
  double sum_bj2 = 0.0;
  for (int j = 0; j < t.cols(); ++j) {
    sum_bj2 += Choose2(static_cast<double>(t.col_sum(j)));
  }
  double pairs = Choose2(n);
  // TP = sum_nij2, FP = sum_ai2 - TP, FN = sum_bj2 - TP,
  // TN = pairs - TP - FP - FN.
  double tp = sum_nij2;
  double fp = sum_ai2 - tp;
  double fn = sum_bj2 - tp;
  double tn = pairs - tp - fp - fn;
  return (tp + tn) / pairs;
}

double AdjustedRandIndex(const Partition& a, const Partition& b) {
  ContingencyTable t(a, b);
  double n = static_cast<double>(t.total());
  if (n < 2) return 1.0;
  double sum_nij2 = 0.0;
  for (int i = 0; i < t.rows(); ++i) {
    for (int j = 0; j < t.cols(); ++j) {
      sum_nij2 += Choose2(static_cast<double>(t.count(i, j)));
    }
  }
  double sum_ai2 = 0.0;
  for (int i = 0; i < t.rows(); ++i) {
    sum_ai2 += Choose2(static_cast<double>(t.row_sum(i)));
  }
  double sum_bj2 = 0.0;
  for (int j = 0; j < t.cols(); ++j) {
    sum_bj2 += Choose2(static_cast<double>(t.col_sum(j)));
  }
  double expected = sum_ai2 * sum_bj2 / Choose2(n);
  double maximum = 0.5 * (sum_ai2 + sum_bj2);
  double denom = maximum - expected;
  if (std::fabs(denom) < 1e-12) return sum_nij2 >= maximum ? 1.0 : 0.0;
  return (sum_nij2 - expected) / denom;
}

double MutualInformation(const Partition& a, const Partition& b) {
  ContingencyTable t(a, b);
  double n = static_cast<double>(t.total());
  if (n <= 0) return 0.0;
  double mi = 0.0;
  for (int i = 0; i < t.rows(); ++i) {
    for (int j = 0; j < t.cols(); ++j) {
      double nij = static_cast<double>(t.count(i, j));
      if (nij <= 0.0) continue;
      double ai = static_cast<double>(t.row_sum(i));
      double bj = static_cast<double>(t.col_sum(j));
      mi += (nij / n) * std::log(n * nij / (ai * bj));
    }
  }
  return mi;
}

double PartitionEntropy(const Partition& p) {
  double n = static_cast<double>(p.num_nodes());
  if (n <= 0) return 0.0;
  double h = 0.0;
  for (int size : p.Sizes()) {
    if (size == 0) continue;
    double frac = size / n;
    h -= frac * std::log(frac);
  }
  return h;
}

double NormalizedMutualInformation(const Partition& a, const Partition& b) {
  double ha = PartitionEntropy(a);
  double hb = PartitionEntropy(b);
  if (ha <= 0.0 && hb <= 0.0) return 1.0;  // both trivial partitions
  if (ha <= 0.0 || hb <= 0.0) return 0.0;
  return MutualInformation(a, b) / std::sqrt(ha * hb);
}

}  // namespace cpgan::community
