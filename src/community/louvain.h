#ifndef CPGAN_COMMUNITY_LOUVAIN_H_
#define CPGAN_COMMUNITY_LOUVAIN_H_

#include <vector>

#include "community/partition.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::community {

/// Result of hierarchical Louvain community detection.
struct LouvainResult {
  /// Partition of the *original* nodes after each aggregation level, from
  /// finest (levels[0]) to coarsest (levels.back()). At least one level.
  std::vector<Partition> levels;

  /// Modularity of the final (coarsest) partition.
  double modularity = 0.0;

  const Partition& FinalPartition() const { return levels.back(); }
};

/// Louvain modularity maximization (Blondel et al., 2008) — the paper's
/// default community detector both for ground-truth labels during training
/// (Section III-F2) and for evaluation (Section IV-A). Runs the standard
/// local-moving + aggregation loop until modularity stops improving.
LouvainResult Louvain(const graph::Graph& g, util::Rng& rng,
                      double min_gain = 1e-7, int max_levels = 12);

}  // namespace cpgan::community

#endif  // CPGAN_COMMUNITY_LOUVAIN_H_
