#include "community/partition.h"

#include <unordered_map>

#include "util/check.h"

namespace cpgan::community {

Partition::Partition(std::vector<int> labels) : labels_(std::move(labels)) {
  std::unordered_map<int, int> compact;
  for (int& label : labels_) {
    CPGAN_CHECK_GE(label, 0);
    auto [it, inserted] = compact.emplace(label, static_cast<int>(compact.size()));
    label = it->second;
  }
  num_communities_ = static_cast<int>(compact.size());
}

std::vector<std::vector<int>> Partition::Communities() const {
  std::vector<std::vector<int>> communities(num_communities_);
  for (int v = 0; v < num_nodes(); ++v) communities[labels_[v]].push_back(v);
  return communities;
}

std::vector<int> Partition::Sizes() const {
  std::vector<int> sizes(num_communities_, 0);
  for (int label : labels_) sizes[label] += 1;
  return sizes;
}

double Modularity(const graph::Graph& g, const Partition& p) {
  CPGAN_CHECK_EQ(g.num_nodes(), p.num_nodes());
  double m = static_cast<double>(g.num_edges());
  if (m == 0.0) return 0.0;
  int k = p.num_communities();
  std::vector<double> internal(k, 0.0);     // 2 * edges inside community
  std::vector<double> total_degree(k, 0.0);
  for (int u = 0; u < g.num_nodes(); ++u) {
    int cu = p.label(u);
    total_degree[cu] += g.degree(u);
    for (int v : g.neighbors(u)) {
      if (p.label(v) == cu) internal[cu] += 1.0;  // counts both directions
    }
  }
  double q = 0.0;
  for (int c = 0; c < k; ++c) {
    q += internal[c] / (2.0 * m) -
         (total_degree[c] / (2.0 * m)) * (total_degree[c] / (2.0 * m));
  }
  return q;
}

}  // namespace cpgan::community
