#ifndef CPGAN_COMMUNITY_PARTITION_H_
#define CPGAN_COMMUNITY_PARTITION_H_

#include <vector>

#include "graph/graph.h"

namespace cpgan::community {

/// A node-to-community assignment. Community ids are dense: [0, num_communities).
class Partition {
 public:
  Partition() = default;

  /// Takes raw labels (arbitrary non-negative ints) and compacts them.
  explicit Partition(std::vector<int> labels);

  int num_nodes() const { return static_cast<int>(labels_.size()); }
  int num_communities() const { return num_communities_; }
  int label(int v) const { return labels_[v]; }
  const std::vector<int>& labels() const { return labels_; }

  /// Members of each community.
  std::vector<std::vector<int>> Communities() const;

  /// Size of each community.
  std::vector<int> Sizes() const;

 private:
  std::vector<int> labels_;
  int num_communities_ = 0;
};

/// Modularity Q of the partition on graph g (eq. 20 of the paper).
double Modularity(const graph::Graph& g, const Partition& p);

}  // namespace cpgan::community

#endif  // CPGAN_COMMUNITY_PARTITION_H_
