#include "community/louvain.h"

#include <unordered_map>

#include "util/check.h"

namespace cpgan::community {
namespace {

/// Weighted multigraph used between aggregation levels. `adjacency[u]` maps
/// neighbor -> edge weight; `self_loops[u]` holds twice the internal weight
/// (so degrees stay consistent with the modularity formula).
struct WeightedGraph {
  std::vector<std::unordered_map<int, double>> adjacency;
  std::vector<double> self_loops;
  std::vector<double> weighted_degree;  // sum of incident weights + self
  double total_weight = 0.0;            // 2m

  int size() const { return static_cast<int>(adjacency.size()); }
};

WeightedGraph FromGraph(const graph::Graph& g) {
  WeightedGraph wg;
  wg.adjacency.resize(g.num_nodes());
  wg.self_loops.assign(g.num_nodes(), 0.0);
  wg.weighted_degree.assign(g.num_nodes(), 0.0);
  for (int u = 0; u < g.num_nodes(); ++u) {
    for (int v : g.neighbors(u)) {
      wg.adjacency[u][v] = 1.0;
    }
    wg.weighted_degree[u] = static_cast<double>(g.degree(u));
    wg.total_weight += wg.weighted_degree[u];
  }
  return wg;
}

/// One local-moving pass; returns the (non-compacted) community labels and
/// whether any node moved.
bool LocalMoving(const WeightedGraph& wg, util::Rng& rng, double min_gain,
                 std::vector<int>& community) {
  int n = wg.size();
  std::vector<double> community_degree(n, 0.0);
  for (int v = 0; v < n; ++v) community_degree[community[v]] += wg.weighted_degree[v];

  double two_m = wg.total_weight;
  if (two_m <= 0.0) return false;

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);

  bool any_move = false;
  bool improved = true;
  int sweeps = 0;
  while (improved && sweeps < 32) {
    improved = false;
    ++sweeps;
    for (int idx = 0; idx < n; ++idx) {
      int u = order[idx];
      int cu = community[u];
      // Links from u to each neighboring community.
      std::unordered_map<int, double> links;
      for (const auto& [v, w] : wg.adjacency[u]) {
        links[community[v]] += w;
      }
      community_degree[cu] -= wg.weighted_degree[u];
      double base = links.count(cu) ? links[cu] : 0.0;
      double best_gain = 0.0;
      int best_comm = cu;
      for (const auto& [c, w] : links) {
        if (c == cu) continue;
        // dQ (up to a constant factor) of moving u from cu to c.
        double gain = (w - base) -
                      wg.weighted_degree[u] *
                          (community_degree[c] - community_degree[cu]) / two_m;
        if (gain > best_gain + min_gain) {
          best_gain = gain;
          best_comm = c;
        }
      }
      community[u] = best_comm;
      community_degree[best_comm] += wg.weighted_degree[u];
      if (best_comm != cu) {
        improved = true;
        any_move = true;
      }
    }
  }
  return any_move;
}

/// Aggregates communities into super-nodes.
WeightedGraph Aggregate(const WeightedGraph& wg,
                        const std::vector<int>& community, int num_comms) {
  WeightedGraph out;
  out.adjacency.resize(num_comms);
  out.self_loops.assign(num_comms, 0.0);
  out.weighted_degree.assign(num_comms, 0.0);
  out.total_weight = wg.total_weight;
  for (int u = 0; u < wg.size(); ++u) {
    int cu = community[u];
    out.self_loops[cu] += wg.self_loops[u];
    for (const auto& [v, w] : wg.adjacency[u]) {
      int cv = community[v];
      if (cu == cv) {
        out.self_loops[cu] += w;  // both directions visit; sums to 2*internal
      } else {
        out.adjacency[cu][cv] += w;
      }
    }
  }
  for (int c = 0; c < num_comms; ++c) {
    double deg = out.self_loops[c];
    for (const auto& [v, w] : out.adjacency[c]) deg += w;
    out.weighted_degree[c] = deg;
  }
  return out;
}

}  // namespace

LouvainResult Louvain(const graph::Graph& g, util::Rng& rng, double min_gain,
                      int max_levels) {
  LouvainResult result;
  int n = g.num_nodes();
  // node_to_super[v]: super-node of original node v at the current level.
  std::vector<int> node_to_super(n);
  for (int v = 0; v < n; ++v) node_to_super[v] = v;

  WeightedGraph wg = FromGraph(g);
  for (int level = 0; level < max_levels; ++level) {
    std::vector<int> community(wg.size());
    for (int v = 0; v < wg.size(); ++v) community[v] = v;
    bool moved = LocalMoving(wg, rng, min_gain, community);

    // Compact community ids.
    std::unordered_map<int, int> compact;
    for (int& c : community) {
      auto [it, ignored] = compact.emplace(c, static_cast<int>(compact.size()));
      c = it->second;
    }
    int num_comms = static_cast<int>(compact.size());

    // Map original nodes through this level.
    std::vector<int> labels(n);
    for (int v = 0; v < n; ++v) {
      node_to_super[v] = community[node_to_super[v]];
      labels[v] = node_to_super[v];
    }
    result.levels.emplace_back(std::move(labels));

    if (!moved || num_comms == wg.size()) break;
    wg = Aggregate(wg, community, num_comms);
    if (num_comms <= 1) break;
  }
  if (result.levels.empty()) {
    std::vector<int> labels(n, 0);
    if (n == 0) labels.clear();
    result.levels.emplace_back(std::move(labels));
  }
  result.modularity = Modularity(g, result.FinalPartition());
  return result;
}

}  // namespace cpgan::community
