#include "community/louvain.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace cpgan::community {
namespace {

/// Weighted multigraph used between aggregation levels, stored as flat CSR
/// arrays (offsets/neighbors/weights) instead of the former map-of-maps:
/// the local-moving inner loop touches every edge once per sweep, and the
/// per-node `unordered_map` churn dominated its runtime. `self_loops[u]`
/// holds twice the internal weight (so degrees stay consistent with the
/// modularity formula).
///
/// Every weight is a sum of the original unit edge weights, i.e. an exact
/// small integer in double, so the accumulation order here never changes a
/// value — the rewrite is numerically identical to the map-based one.
struct FlatGraph {
  std::vector<int64_t> offsets;  // size() + 1
  std::vector<int> neighbors;
  std::vector<double> weights;
  std::vector<double> self_loops;
  std::vector<double> weighted_degree;  // sum of incident weights + self
  double total_weight = 0.0;            // 2m

  int size() const { return static_cast<int>(self_loops.size()); }
};

/// Scratch buffers reused across local-moving sweeps and aggregation: a
/// dense per-community weight accumulator plus the touched-list that makes
/// resetting it O(degree) instead of O(communities) (the classic Louvain
/// optimization).
struct Scratch {
  std::vector<double> comm_weight;  // links to each community; zero outside
                                    // the entries listed in `touched`
  std::vector<int> touched;         // communities seen for the current node

  void Resize(int n) {
    comm_weight.assign(n, 0.0);
    touched.clear();
    touched.reserve(64);
  }

  void Reset() {
    for (int c : touched) comm_weight[c] = 0.0;
    touched.clear();
  }
};

FlatGraph FromGraph(const graph::Graph& g) {
  FlatGraph fg;
  const int n = g.num_nodes();
  fg.offsets.assign(n + 1, 0);
  fg.self_loops.assign(n, 0.0);
  fg.weighted_degree.assign(n, 0.0);
  int64_t nnz = 0;
  for (int u = 0; u < n; ++u) nnz += g.degree(u);
  fg.neighbors.reserve(nnz);
  fg.weights.assign(nnz, 1.0);
  for (int u = 0; u < n; ++u) {
    for (int v : g.neighbors(u)) fg.neighbors.push_back(v);
    fg.offsets[u + 1] = static_cast<int64_t>(fg.neighbors.size());
    fg.weighted_degree[u] = static_cast<double>(g.degree(u));
    fg.total_weight += fg.weighted_degree[u];
  }
  return fg;
}

/// One local-moving pass; returns the (non-compacted) community labels and
/// whether any node moved. Nodes are visited in one RNG-shuffled order (the
/// same RNG consumption as always); candidate communities are scanned in
/// first-touch order over the node's CSR neighbor list, and a move needs a
/// strictly positive gain margin, so the pass is fully deterministic.
bool LocalMoving(const FlatGraph& fg, util::Rng& rng, double min_gain,
                 std::vector<int>& community, Scratch& scratch) {
  CPGAN_TRACE_SPAN("community/louvain/local_moving");
  int n = fg.size();
  std::vector<double> community_degree(n, 0.0);
  for (int v = 0; v < n; ++v) community_degree[community[v]] += fg.weighted_degree[v];

  double two_m = fg.total_weight;
  if (two_m <= 0.0) return false;

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);

  scratch.Resize(n);
  bool any_move = false;
  bool improved = true;
  int sweeps = 0;
  while (improved && sweeps < 32) {
    improved = false;
    ++sweeps;
    for (int idx = 0; idx < n; ++idx) {
      int u = order[idx];
      int cu = community[u];
      // Links from u to each neighboring community, accumulated into the
      // dense scratch array; `touched` remembers which entries to reset.
      for (int64_t e = fg.offsets[u]; e < fg.offsets[u + 1]; ++e) {
        int c = community[fg.neighbors[e]];
        if (scratch.comm_weight[c] == 0.0) scratch.touched.push_back(c);
        scratch.comm_weight[c] += fg.weights[e];
      }
      community_degree[cu] -= fg.weighted_degree[u];
      double base = scratch.comm_weight[cu];
      double best_gain = 0.0;
      int best_comm = cu;
      for (int c : scratch.touched) {
        if (c == cu) continue;
        // dQ (up to a constant factor) of moving u from cu to c.
        double gain = (scratch.comm_weight[c] - base) -
                      fg.weighted_degree[u] *
                          (community_degree[c] - community_degree[cu]) / two_m;
        if (gain > best_gain + min_gain) {
          best_gain = gain;
          best_comm = c;
        }
      }
      community[u] = best_comm;
      community_degree[best_comm] += fg.weighted_degree[u];
      scratch.Reset();
      if (best_comm != cu) {
        improved = true;
        any_move = true;
      }
    }
  }
  return any_move;
}

/// Aggregates communities into super-nodes. Nodes are bucketed by community
/// with a counting sort (stable in node order) and each super-node's edge
/// list is accumulated through the same dense-scratch/touched-list pattern,
/// then emitted with sorted neighbor ids so the CSR is canonical.
FlatGraph Aggregate(const FlatGraph& fg, const std::vector<int>& community,
                    int num_comms, Scratch& scratch) {
  CPGAN_TRACE_SPAN("community/louvain/aggregate");
  const int n = fg.size();
  // Counting-sort nodes by community.
  std::vector<int64_t> comm_start(num_comms + 1, 0);
  for (int u = 0; u < n; ++u) ++comm_start[community[u] + 1];
  for (int c = 0; c < num_comms; ++c) comm_start[c + 1] += comm_start[c];
  std::vector<int> comm_nodes(n);
  {
    std::vector<int64_t> cursor(comm_start.begin(), comm_start.end() - 1);
    for (int u = 0; u < n; ++u) comm_nodes[cursor[community[u]]++] = u;
  }

  FlatGraph out;
  out.offsets.assign(num_comms + 1, 0);
  out.self_loops.assign(num_comms, 0.0);
  out.weighted_degree.assign(num_comms, 0.0);
  out.total_weight = fg.total_weight;
  out.neighbors.reserve(fg.neighbors.size());
  out.weights.reserve(fg.neighbors.size());
  scratch.Resize(num_comms);
  for (int cu = 0; cu < num_comms; ++cu) {
    for (int64_t i = comm_start[cu]; i < comm_start[cu + 1]; ++i) {
      const int u = comm_nodes[i];
      out.self_loops[cu] += fg.self_loops[u];
      for (int64_t e = fg.offsets[u]; e < fg.offsets[u + 1]; ++e) {
        const int cv = community[fg.neighbors[e]];
        if (cu == cv) {
          out.self_loops[cu] += fg.weights[e];  // both directions visit;
                                                // sums to 2*internal
        } else {
          if (scratch.comm_weight[cv] == 0.0) scratch.touched.push_back(cv);
          scratch.comm_weight[cv] += fg.weights[e];
        }
      }
    }
    std::sort(scratch.touched.begin(), scratch.touched.end());
    double deg = out.self_loops[cu];
    for (int cv : scratch.touched) {
      out.neighbors.push_back(cv);
      out.weights.push_back(scratch.comm_weight[cv]);
      deg += scratch.comm_weight[cv];
    }
    out.weighted_degree[cu] = deg;
    out.offsets[cu + 1] = static_cast<int64_t>(out.neighbors.size());
    scratch.Reset();
  }
  return out;
}

}  // namespace

LouvainResult Louvain(const graph::Graph& g, util::Rng& rng, double min_gain,
                      int max_levels) {
  CPGAN_TRACE_SPAN("community/louvain");
  LouvainResult result;
  int n = g.num_nodes();
  // node_to_super[v]: super-node of original node v at the current level.
  std::vector<int> node_to_super(n);
  for (int v = 0; v < n; ++v) node_to_super[v] = v;

  FlatGraph fg = FromGraph(g);
  Scratch scratch;
  for (int level = 0; level < max_levels; ++level) {
    std::vector<int> community(fg.size());
    for (int v = 0; v < fg.size(); ++v) community[v] = v;
    bool moved = LocalMoving(fg, rng, min_gain, community, scratch);

    // Compact community ids in first-seen order.
    std::vector<int> compact(fg.size(), -1);
    int num_comms = 0;
    for (int& c : community) {
      if (compact[c] < 0) compact[c] = num_comms++;
      c = compact[c];
    }

    // Map original nodes through this level.
    std::vector<int> labels(n);
    for (int v = 0; v < n; ++v) {
      node_to_super[v] = community[node_to_super[v]];
      labels[v] = node_to_super[v];
    }
    result.levels.emplace_back(std::move(labels));

    if (!moved || num_comms == fg.size()) break;
    fg = Aggregate(fg, community, num_comms, scratch);
    if (num_comms <= 1) break;
  }
  if (result.levels.empty()) {
    std::vector<int> labels(n, 0);
    if (n == 0) labels.clear();
    result.levels.emplace_back(std::move(labels));
  }
  result.modularity = Modularity(g, result.FinalPartition());
  return result;
}

}  // namespace cpgan::community
