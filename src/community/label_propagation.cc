#include "community/label_propagation.h"

#include <unordered_map>

namespace cpgan::community {

Partition LabelPropagation(const graph::Graph& g, util::Rng& rng,
                           int max_sweeps) {
  int n = g.num_nodes();
  std::vector<int> labels(n);
  for (int v = 0; v < n; ++v) labels[v] = v;

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    rng.Shuffle(order);
    bool changed = false;
    for (int u : order) {
      auto nbrs = g.neighbors(u);
      if (nbrs.empty()) continue;
      std::unordered_map<int, int> counts;
      for (int v : nbrs) counts[labels[v]] += 1;
      int best_label = labels[u];
      int best_count = 0;
      for (const auto& [label, count] : counts) {
        if (count > best_count ||
            (count == best_count && label == labels[u])) {
          best_count = count;
          best_label = label;
        }
      }
      if (best_label != labels[u]) {
        labels[u] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return Partition(std::move(labels));
}

}  // namespace cpgan::community
