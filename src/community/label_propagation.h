#ifndef CPGAN_COMMUNITY_LABEL_PROPAGATION_H_
#define CPGAN_COMMUNITY_LABEL_PROPAGATION_H_

#include "community/partition.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::community {

/// Asynchronous label propagation (Raghavan et al., 2007): each node adopts
/// the majority label among its neighbors until a fixed point (or
/// `max_sweeps`). A fast alternative community detector used in tests to
/// cross-check Louvain and in examples.
Partition LabelPropagation(const graph::Graph& g, util::Rng& rng,
                           int max_sweeps = 50);

}  // namespace cpgan::community

#endif  // CPGAN_COMMUNITY_LABEL_PROPAGATION_H_
