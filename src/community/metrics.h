#ifndef CPGAN_COMMUNITY_METRICS_H_
#define CPGAN_COMMUNITY_METRICS_H_

#include <vector>

#include "community/partition.h"

namespace cpgan::community {

/// Contingency table between two partitions of the same node set:
/// cell(i, j) = |community i of a ∩ community j of b| (Fig. 2 of the paper).
class ContingencyTable {
 public:
  ContingencyTable(const Partition& a, const Partition& b);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t count(int i, int j) const { return cells_[i * cols_ + j]; }
  int64_t row_sum(int i) const { return row_sums_[i]; }
  int64_t col_sum(int j) const { return col_sums_[j]; }
  int64_t total() const { return total_; }

 private:
  int rows_;
  int cols_;
  std::vector<int64_t> cells_;
  std::vector<int64_t> row_sums_;
  std::vector<int64_t> col_sums_;
  int64_t total_;
};

/// Rand Index (eq. 1).
double RandIndex(const Partition& a, const Partition& b);

/// Adjusted Rand Index (eq. 2): chance-corrected RI in [-1, 1].
double AdjustedRandIndex(const Partition& a, const Partition& b);

/// Mutual information in nats (eq. 3).
double MutualInformation(const Partition& a, const Partition& b);

/// Normalized mutual information: MI / sqrt(H(a) H(b)), in [0, 1].
double NormalizedMutualInformation(const Partition& a, const Partition& b);

/// Shannon entropy (nats) of the community-size distribution.
double PartitionEntropy(const Partition& p);

}  // namespace cpgan::community

#endif  // CPGAN_COMMUNITY_METRICS_H_
