#ifndef CPGAN_UTIL_CPUID_H_
#define CPGAN_UTIL_CPUID_H_

#include <string>

namespace cpgan::util {

/// \file
/// Runtime CPU feature detection for the kernel backend dispatch
/// (src/tensor/kernels.h). Queried exactly once per feature; the answers
/// never change while the process runs.

/// True when the CPU executes AVX2 and FMA instructions (both are required
/// by the avx2 kernel backend). Always false on non-x86 builds.
bool CpuSupportsAvx2();

/// True on AArch64 builds (NEON is mandatory there). Always false on x86.
bool CpuSupportsNeon();

/// Human-readable summary of the detected SIMD capability, for logs and the
/// obs snapshot: "avx2+fma", "neon", or "none".
std::string CpuSimdSummary();

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_CPUID_H_
