#include "util/crc32.h"

namespace cpgan::util {
namespace {

/// 256-entry lookup table for the reflected IEEE polynomial 0xEDB88320,
/// built once at first use.
const uint32_t* Table() {
  static uint32_t table[256];
  static bool built = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)built;
  return table;
}

}  // namespace

void Crc32::Update(const void* data, size_t len) {
  const uint32_t* table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = state_;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

uint32_t Crc32Of(const void* data, size_t len) {
  Crc32 crc;
  crc.Update(data, len);
  return crc.Digest();
}

}  // namespace cpgan::util
