#ifndef CPGAN_UTIL_MEMORY_TRACKER_H_
#define CPGAN_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cpgan::util {

/// Tracks live and peak bytes allocated by the tensor engine.
///
/// The paper reports peak GPU memory during training (Table IX); this repo
/// runs on CPU, so the analogous quantity is the peak number of bytes held by
/// tensor storage. Matrix/sparse storage report their allocations here.
/// Thread-safe: parallel kernels may allocate tracked storage from worker
/// threads, so the counters are atomics.
class MemoryTracker {
 public:
  /// Global tracker instance used by the tensor engine.
  static MemoryTracker& Global();

  /// Records an allocation of `bytes`.
  void Allocate(size_t bytes);

  /// Records a deallocation of `bytes`.
  void Release(size_t bytes);

  /// Currently live bytes.
  int64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }

  /// Maximum live bytes observed since the last ResetPeak().
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  /// Resets the peak watermark to the current live volume.
  void ResetPeak() {
    peak_bytes_.store(live_bytes(), std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
};

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_MEMORY_TRACKER_H_
