#ifndef CPGAN_UTIL_MEMORY_TRACKER_H_
#define CPGAN_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cpgan::util {

/// Tracks live and peak bytes allocated by the tensor engine.
///
/// The paper reports peak GPU memory during training (Table IX); this repo
/// runs on CPU, so the analogous quantity is the peak number of bytes held by
/// tensor storage. Matrix/sparse storage report their allocations here.
/// Thread-safe: parallel kernels may allocate tracked storage from worker
/// threads, so the counters are atomics.
///
/// Besides the global peak, the tracker supports a small stack of *regions*
/// for per-phase peak attribution (e.g. encoder vs decoder vs discriminator
/// inside one training step). Regions are entered/exited from one control
/// thread (nesting up to kMaxRegionDepth); allocations from any thread while
/// a region is active raise that region's peak.
class MemoryTracker {
 public:
  static constexpr int kMaxRegionDepth = 8;

  /// Global tracker instance used by the tensor engine.
  static MemoryTracker& Global();

  /// Records an allocation of `bytes`.
  void Allocate(size_t bytes);

  /// Records a deallocation of `bytes`.
  void Release(size_t bytes);

  /// Currently live bytes.
  int64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }

  /// Maximum live bytes observed since the last ResetPeak().
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  /// Resets the peak watermark to the current live volume.
  void ResetPeak() {
    peak_bytes_.store(live_bytes(), std::memory_order_relaxed);
  }

  /// Zeroes live/peak counters and abandons any active regions. Only for
  /// test isolation — real code must balance Allocate/Release instead.
  void Reset();

  /// Opens a region whose peak starts at the current live volume; returns a
  /// depth token for EndRegion. Returns -1 (region ignored) when nested
  /// deeper than kMaxRegionDepth. Call from one control thread only.
  int BeginRegion();

  /// Peak live bytes observed since the region opened (readable while the
  /// region is still active; 0 for token -1).
  int64_t RegionPeakBytes(int token) const;

  /// Closes the region and returns its peak live bytes.
  int64_t EndRegion(int token);

  /// Soft memory budget used by the serving runtime's load-shedding and
  /// degradation policy (docs/SERVING.md). 0 (the default) means unlimited.
  /// The budget is advisory: allocations never fail because of it; callers
  /// poll BudgetPressure() and back off when it runs hot.
  void SetBudgetBytes(int64_t bytes) {
    budget_bytes_.store(bytes > 0 ? bytes : 0, std::memory_order_relaxed);
  }

  int64_t budget_bytes() const {
    return budget_bytes_.load(std::memory_order_relaxed);
  }

  /// live_bytes / budget, with `extra_bytes` of simulated pressure added
  /// (chaos testing injects allocation pressure this way). 0 when no budget
  /// is configured.
  double BudgetPressure(int64_t extra_bytes = 0) const {
    int64_t budget = budget_bytes();
    if (budget <= 0) return 0.0;
    return static_cast<double>(live_bytes() + extra_bytes) /
           static_cast<double>(budget);
  }

 private:
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int64_t> budget_bytes_{0};
  std::atomic<int> region_depth_{0};
  std::atomic<int64_t> region_peaks_[kMaxRegionDepth]{};
};

/// RAII region on the global tracker:
///
///   int64_t enc_peak = 0;
///   { MemoryRegion region; ... encoder forward ...; enc_peak = region.PeakBytes(); }
class MemoryRegion {
 public:
  MemoryRegion() : token_(MemoryTracker::Global().BeginRegion()) {}
  ~MemoryRegion() { MemoryTracker::Global().EndRegion(token_); }

  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;

  /// Peak live bytes since the region opened.
  int64_t PeakBytes() const {
    return MemoryTracker::Global().RegionPeakBytes(token_);
  }

 private:
  int token_;
};

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_MEMORY_TRACKER_H_
