#ifndef CPGAN_UTIL_BACKOFF_H_
#define CPGAN_UTIL_BACKOFF_H_

#include <functional>

#include "util/rng.h"

namespace cpgan::util {

/// Retry-with-exponential-backoff for transient failures (flaky disk
/// renames/fsyncs, model-load races, JSONL appends). The delay schedule is
/// deterministic given the Rng: attempt k sleeps
///
///   delay_k = min(initial_delay_ms * multiplier^k, max_delay_ms)
///             * (1 - jitter * u),  u ~ Uniform[0, 1)
///
/// so retries from concurrent callers decorrelate while tests that pass a
/// seeded Rng (and a fake sleeper) stay reproducible.
struct BackoffPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 4;

  double initial_delay_ms = 1.0;
  double multiplier = 2.0;
  double max_delay_ms = 100.0;

  /// Fraction of each delay randomized away, in [0, 1).
  double jitter = 0.5;
};

/// Delay before retry number `attempt` (0-based: the delay after the first
/// failure is attempt 0), jittered with `rng`.
double BackoffDelayMs(const BackoffPolicy& policy, int attempt, Rng& rng);

/// Outcome of RetryWithBackoff.
struct RetryResult {
  bool ok = false;
  /// Attempts actually made (1 when the first try succeeded).
  int attempts = 0;
  /// Total injected sleep in milliseconds.
  double slept_ms = 0.0;

  int retries() const { return attempts > 0 ? attempts - 1 : 0; }
};

/// Runs `op` up to policy.max_attempts times, sleeping a jittered
/// exponential delay between attempts, until it returns true. `sleeper`
/// overrides the real std::this_thread sleep (tests pass a no-op to keep the
/// suite fast). Every retry increments the `io.retries` counter so callers
/// get transient-failure telemetry for free.
RetryResult RetryWithBackoff(const BackoffPolicy& policy, Rng& rng,
                             const std::function<bool()>& op,
                             const std::function<void(double)>& sleeper = {});

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_BACKOFF_H_
