#include "util/aligned.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/check.h"
#include "util/memory_tracker.h"

namespace cpgan::util {

size_t AlignedAllocationBytes(size_t bytes) {
  return (bytes + kKernelAlignment - 1) / kKernelAlignment * kKernelAlignment;
}

void AlignedFloats::AllocateRaw(int64_t n) {
  clear();
  if (n == 0) return;
  CPGAN_CHECK(n > 0);
  const size_t bytes =
      AlignedAllocationBytes(static_cast<size_t>(n) * sizeof(float));
  data_ = static_cast<float*>(std::aligned_alloc(kKernelAlignment, bytes));
  CPGAN_CHECK(data_ != nullptr);
  size_ = n;
  tracked_bytes_ = bytes;
  MemoryTracker::Global().Allocate(tracked_bytes_);
}

void AlignedFloats::assign(int64_t n, float value) {
  AllocateRaw(n);
  if (n > 0) std::fill(data_, data_ + n, value);
}

void AlignedFloats::clear() {
  if (data_ != nullptr) {
    std::free(data_);
    MemoryTracker::Global().Release(tracked_bytes_);
  }
  data_ = nullptr;
  size_ = 0;
  tracked_bytes_ = 0;
}

AlignedFloats::AlignedFloats(const AlignedFloats& other) {
  AllocateRaw(other.size_);
  if (size_ > 0) {
    std::memcpy(data_, other.data_, static_cast<size_t>(size_) * sizeof(float));
  }
}

AlignedFloats& AlignedFloats::operator=(const AlignedFloats& other) {
  if (this == &other) return *this;
  AllocateRaw(other.size_);
  if (size_ > 0) {
    std::memcpy(data_, other.data_, static_cast<size_t>(size_) * sizeof(float));
  }
  return *this;
}

AlignedFloats::AlignedFloats(AlignedFloats&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      tracked_bytes_(other.tracked_bytes_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.tracked_bytes_ = 0;
}

AlignedFloats& AlignedFloats::operator=(AlignedFloats&& other) noexcept {
  if (this == &other) return *this;
  clear();
  data_ = other.data_;
  size_ = other.size_;
  tracked_bytes_ = other.tracked_bytes_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.tracked_bytes_ = 0;
  return *this;
}

}  // namespace cpgan::util
