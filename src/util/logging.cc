#include "util/logging.h"

#include <cstdio>
#include <ctime>

namespace cpgan::util {
namespace {

LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }

LogLevel GetLogLevel() { return g_min_level; }

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "warning" || name == "warn") return LogLevel::kWarning;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_min_level) return;
  std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
}

}  // namespace internal
}  // namespace cpgan::util
