#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace cpgan::util {
namespace {

LogLevel g_min_level = LogLevel::kInfo;

// Sink state: stderr by default, or an owned append-mode FILE*. Guarded by
// a leaked mutex so logging stays usable during static destruction.
std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::FILE* g_log_file = nullptr;  // nullptr → stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Small sequential id for the calling thread (0 for the first thread that
/// logs, 1 for the next, ...) — far more readable than pthread ids.
int ThreadId() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// "2026-08-06T12:34:56Z" for the current wall-clock time (UTC). The wall
/// clock is only used for log prefixes; all measurement uses the monotonic
/// steady clock (see util/timer.h).
void FormatTimestamp(char* buffer, size_t size) {
  std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buffer, size, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }

LogLevel GetLogLevel() { return g_min_level; }

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "warning" || name == "warn") return LogLevel::kWarning;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

bool SetLogFile(const std::string& path) {
  std::FILE* file = nullptr;
  if (!path.empty()) {
    file = std::fopen(path.c_str(), "ab");
    if (file == nullptr) return false;
  }
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (g_log_file != nullptr) std::fclose(g_log_file);
  g_log_file = file;
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  char timestamp[24];
  FormatTimestamp(timestamp, sizeof(timestamp));
  stream_ << timestamp << " " << LevelName(level) << " [t" << ThreadId()
          << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_min_level) return;
  std::string message = stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::FILE* sink = g_log_file != nullptr ? g_log_file : stderr;
  std::fprintf(sink, "%s\n", message.c_str());
  if (g_log_file != nullptr) std::fflush(g_log_file);
}

}  // namespace internal
}  // namespace cpgan::util
