#ifndef CPGAN_UTIL_TABLE_H_
#define CPGAN_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace cpgan::util {

/// Text table renderer used by the benchmark harnesses to print rows in the
/// layout of the paper's tables.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells are padded with "", extra cells dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: first cell is a label, remaining cells are formatted
  /// doubles (compact format; NaN renders as "OOM" to mirror the paper).
  void AddRow(const std::string& label, const std::vector<double>& values);

  /// Renders the table with aligned columns and a header separator.
  std::string Render() const;

  /// Renders as comma-separated values (for machine-readable output files).
  std::string RenderCsv() const;

  /// Prints Render() to stdout.
  void Print() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_TABLE_H_
