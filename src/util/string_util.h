#ifndef CPGAN_UTIL_STRING_UTIL_H_
#define CPGAN_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace cpgan::util {

/// Splits `text` on any character in `delims`, dropping empty tokens.
std::vector<std::string> Split(const std::string& text,
                               const std::string& delims);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& text);

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items,
                 const std::string& sep);

/// Formats a double in a compact scientific/fixed style similar to the
/// paper's tables (e.g. "1.25e-3", "15.3", "0.410").
std::string FormatCompact(double value, int significant = 3);

/// Returns true if `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_STRING_UTIL_H_
