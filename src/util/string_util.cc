#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace cpgan::util {

std::vector<std::string> Split(const std::string& text,
                               const std::string& delims) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (delims.find(c) != std::string::npos) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) result += sep;
    result += items[i];
  }
  return result;
}

std::string FormatCompact(double value, int significant) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  double magnitude = std::fabs(value);
  char buffer[64];
  if (magnitude != 0.0 && (magnitude < 1e-2 || magnitude >= 1e5)) {
    std::snprintf(buffer, sizeof(buffer), "%.*e", significant - 1, value);
  } else {
    // Enough decimals to show `significant` significant digits.
    int decimals = significant;
    if (magnitude >= 1.0) {
      int int_digits = static_cast<int>(std::floor(std::log10(magnitude))) + 1;
      decimals = significant - int_digits;
      if (decimals < 0) decimals = 0;
    }
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  }
  return std::string(buffer);
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace cpgan::util
