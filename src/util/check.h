#ifndef CPGAN_UTIL_CHECK_H_
#define CPGAN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// CHECK-style assertion macros for programmer errors. These are enabled in
/// all build types: a violated CHECK indicates a bug in the caller, never a
/// data-dependent condition, so we fail fast instead of propagating a broken
/// state into training loops.

#define CPGAN_CHECK(cond)                                                        \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,    \
                   #cond);                                                       \
      std::abort();                                                              \
    }                                                                            \
  } while (0)

#define CPGAN_CHECK_MSG(cond, msg)                                               \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,         \
                   __LINE__, #cond, msg);                                        \
      std::abort();                                                              \
    }                                                                            \
  } while (0)

#define CPGAN_CHECK_EQ(a, b) CPGAN_CHECK((a) == (b))
#define CPGAN_CHECK_NE(a, b) CPGAN_CHECK((a) != (b))
#define CPGAN_CHECK_LT(a, b) CPGAN_CHECK((a) < (b))
#define CPGAN_CHECK_LE(a, b) CPGAN_CHECK((a) <= (b))
#define CPGAN_CHECK_GT(a, b) CPGAN_CHECK((a) > (b))
#define CPGAN_CHECK_GE(a, b) CPGAN_CHECK((a) >= (b))

#endif  // CPGAN_UTIL_CHECK_H_
