#ifndef CPGAN_UTIL_MMAP_FILE_H_
#define CPGAN_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace cpgan::util {

/// Read-only memory-mapped file.
///
/// The streaming ingest path (graph/binary_io.cc) maps binary edge lists
/// instead of reading them, so the kernel pages data in on demand and the
/// bytes never count against the tensor engine's MemoryTracker budget —
/// page-cache pages are reclaimable, heap copies are not. Mappings are
/// MAP_PRIVATE and never written through.
class MappedFile {
 public:
  /// Maps `path`. Returns nullopt (with a reason in *error when non-null)
  /// if the file cannot be opened, stat'ed, or mapped. An empty file maps
  /// successfully with data() == nullptr and size() == 0.
  static std::optional<MappedFile> Open(const std::string& path,
                                        std::string* error = nullptr);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_MMAP_FILE_H_
