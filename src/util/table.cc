#include "util/table.h"

#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace cpgan::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddRow(const std::string& label,
                   const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(std::isnan(v) ? "OOM" : FormatCompact(v));
  }
  AddRow(std::move(cells));
}

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::RenderCsv() const {
  std::string out = Join(headers_, ",") + "\n";
  for (const auto& row : rows_) out += Join(row, ",") + "\n";
  return out;
}

void Table::Print() const { std::printf("%s", Render().c_str()); }

}  // namespace cpgan::util
