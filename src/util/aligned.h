#ifndef CPGAN_UTIL_ALIGNED_H_
#define CPGAN_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>

namespace cpgan::util {

/// Alignment of every float buffer handed to the SIMD kernel backends: one
/// cache line, so a 16-float AVX-512 (or two 8-float AVX2) load never splits
/// a line and never needs a masked prologue when the count is a lane
/// multiple.
inline constexpr size_t kKernelAlignment = 64;

/// Bytes actually reserved for `bytes` of payload: std::aligned_alloc
/// requires the size to be a multiple of the alignment, so allocations round
/// up to the next cache line. Exposed so MemoryTracker accounting (and its
/// tests) can state the exact figure.
size_t AlignedAllocationBytes(size_t bytes);

/// Fixed-capacity float array, 64-byte aligned, MemoryTracker-registered.
///
/// Replaces std::vector<float> as Matrix storage. Two deliberate
/// differences: the data pointer is always kKernelAlignment-aligned, and the
/// bytes reported to util::MemoryTracker are the *rounded* allocation size
/// (AlignedAllocationBytes), so the serve degradation ladder's
/// memory-pressure thresholds see the real footprint, padding included.
class AlignedFloats {
 public:
  AlignedFloats() = default;
  ~AlignedFloats() { clear(); }

  AlignedFloats(const AlignedFloats& other);
  AlignedFloats& operator=(const AlignedFloats& other);
  AlignedFloats(AlignedFloats&& other) noexcept;
  AlignedFloats& operator=(AlignedFloats&& other) noexcept;

  /// Replaces the contents with `n` copies of `value`. Always reallocates to
  /// exactly `n` elements (Matrix storage never grows incrementally).
  void assign(int64_t n, float value);

  /// Replaces the contents with `n` uninitialized-then-zeroed elements
  /// without a fill when n == 0. Equivalent to assign(n, 0.0f).
  void resize(int64_t n) { assign(n, 0.0f); }

  /// Frees the buffer (size() becomes 0; deallocation is reported).
  void clear();

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float* data() { return data_; }
  const float* data() const { return data_; }

  float& operator[](int64_t i) { return data_[i]; }
  float operator[](int64_t i) const { return data_[i]; }

  float* begin() { return data_; }
  float* end() { return data_ + size_; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }

 private:
  /// Allocates (tracked) storage for n floats without initializing it.
  void AllocateRaw(int64_t n);

  float* data_ = nullptr;
  int64_t size_ = 0;
  size_t tracked_bytes_ = 0;  // rounded figure reported to MemoryTracker
};

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_ALIGNED_H_
