#include "util/backoff.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "obs/metrics.h"
#include "util/check.h"

namespace cpgan::util {

double BackoffDelayMs(const BackoffPolicy& policy, int attempt, Rng& rng) {
  CPGAN_CHECK_GE(attempt, 0);
  double delay = policy.initial_delay_ms *
                 std::pow(policy.multiplier, static_cast<double>(attempt));
  delay = std::min(delay, policy.max_delay_ms);
  double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  // The jittered draw happens even for jitter == 0 so the Rng stream a test
  // observes does not depend on the policy's jitter setting.
  double u = rng.Uniform();
  return std::max(0.0, delay * (1.0 - jitter * u));
}

RetryResult RetryWithBackoff(const BackoffPolicy& policy, Rng& rng,
                             const std::function<bool()>& op,
                             const std::function<void(double)>& sleeper) {
  RetryResult result;
  int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++result.attempts;
    if (op()) {
      result.ok = true;
      return result;
    }
    if (attempt + 1 == max_attempts) break;
    CPGAN_COUNTER_ADD("io.retries", 1);
    double delay_ms = BackoffDelayMs(policy, attempt, rng);
    result.slept_ms += delay_ms;
    if (sleeper) {
      sleeper(delay_ms);
    } else if (delay_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
    }
  }
  return result;
}

}  // namespace cpgan::util
