#include "util/memory_tracker.h"

namespace cpgan::util {

namespace {

/// Monotonic max on an atomic; racing updates converge to the true maximum.
void StoreMax(std::atomic<int64_t>& slot, int64_t value) {
  int64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::Allocate(size_t bytes) {
  int64_t live = live_bytes_.fetch_add(static_cast<int64_t>(bytes),
                                       std::memory_order_relaxed) +
                 static_cast<int64_t>(bytes);
  StoreMax(peak_bytes_, live);
  // Raise every active region's peak. `acquire` pairs with BeginRegion's
  // `release` so a freshly opened slot is initialized before workers see
  // the increased depth.
  int depth = region_depth_.load(std::memory_order_acquire);
  for (int i = 0; i < depth && i < kMaxRegionDepth; ++i) {
    StoreMax(region_peaks_[i], live);
  }
}

void MemoryTracker::Release(size_t bytes) {
  live_bytes_.fetch_sub(static_cast<int64_t>(bytes),
                        std::memory_order_relaxed);
}

void MemoryTracker::Reset() {
  live_bytes_.store(0, std::memory_order_relaxed);
  peak_bytes_.store(0, std::memory_order_relaxed);
  budget_bytes_.store(0, std::memory_order_relaxed);
  region_depth_.store(0, std::memory_order_relaxed);
  for (auto& slot : region_peaks_) slot.store(0, std::memory_order_relaxed);
}

int MemoryTracker::BeginRegion() {
  int depth = region_depth_.load(std::memory_order_relaxed);
  if (depth >= kMaxRegionDepth) return -1;
  region_peaks_[depth].store(live_bytes(), std::memory_order_relaxed);
  region_depth_.store(depth + 1, std::memory_order_release);
  return depth;
}

int64_t MemoryTracker::RegionPeakBytes(int token) const {
  if (token < 0 || token >= kMaxRegionDepth) return 0;
  return region_peaks_[token].load(std::memory_order_relaxed);
}

int64_t MemoryTracker::EndRegion(int token) {
  if (token < 0 || token >= kMaxRegionDepth) return 0;
  region_depth_.store(token, std::memory_order_relaxed);
  return region_peaks_[token].load(std::memory_order_relaxed);
}

}  // namespace cpgan::util
