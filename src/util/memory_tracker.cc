#include "util/memory_tracker.h"

namespace cpgan::util {

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::Allocate(size_t bytes) {
  live_bytes_ += static_cast<int64_t>(bytes);
  if (live_bytes_ > peak_bytes_) peak_bytes_ = live_bytes_;
}

void MemoryTracker::Release(size_t bytes) {
  live_bytes_ -= static_cast<int64_t>(bytes);
}

}  // namespace cpgan::util
