#include "util/memory_tracker.h"

namespace cpgan::util {

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::Allocate(size_t bytes) {
  int64_t live = live_bytes_.fetch_add(static_cast<int64_t>(bytes),
                                       std::memory_order_relaxed) +
                 static_cast<int64_t>(bytes);
  // Monotonic max; racing updates converge to the true peak.
  int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak && !peak_bytes_.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Release(size_t bytes) {
  live_bytes_.fetch_sub(static_cast<int64_t>(bytes),
                        std::memory_order_relaxed);
}

}  // namespace cpgan::util
