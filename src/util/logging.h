#ifndef CPGAN_UTIL_LOGGING_H_
#define CPGAN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace cpgan::util {

/// Severity levels for the lightweight logger.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the global minimum severity that will be emitted. Messages below the
/// threshold are dropped. Thread-compatible: call once at startup.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

/// Parses a level name ("debug", "info", "warning", "error"); defaults to
/// kInfo for unknown names.
LogLevel ParseLogLevel(const std::string& name);

/// Redirects log output to `path` (appending; the file is created if
/// missing). An empty path restores the default stderr sink. Returns false
/// and keeps the current sink if the file cannot be opened. Thread safe.
bool SetLogFile(const std::string& path);

namespace internal {

/// Stream-style log message that emits on destruction, mirroring the
/// LOG(INFO) << ... idiom without a glog dependency. Each line carries an
/// ISO-8601 UTC timestamp, severity, a small sequential thread id, and the
/// source location:
///
///   2026-08-06T12:34:56Z INFO  [t0 cpgan.cc:210] epoch 3 ...
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cpgan::util

#define CPGAN_LOG(level)                                                       \
  ::cpgan::util::internal::LogMessage(::cpgan::util::LogLevel::k##level,       \
                                      __FILE__, __LINE__)                      \
      .stream()

#endif  // CPGAN_UTIL_LOGGING_H_
