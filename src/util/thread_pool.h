#ifndef CPGAN_UTIL_THREAD_POOL_H_
#define CPGAN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/request_context.h"

namespace cpgan::util {

/// Persistent work-sharing thread pool behind every parallel kernel.
///
/// Determinism contract: ParallelFor splits [begin, end) into fixed chunks
/// of at most `grain` iterations. Chunk boundaries depend only on the range
/// and the grain — never on the thread count or on scheduling — and every
/// kernel either writes disjoint state per chunk or reduces per-chunk
/// partials in chunk order (ParallelSum). The thread count therefore only
/// decides *which thread* runs a chunk; results are bitwise identical for
/// any pool size, including 1. See docs/INTERNALS.md ("Threading model").
///
/// Parallel regions are issued from one control thread at a time (every
/// kernel in this library runs on the caller's thread of control; regions
/// started from inside a region run inline). Concurrent top-level
/// ParallelFor calls from distinct user threads are not supported.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates in
  /// every parallel region, so `num_threads == 1` spawns none and all work
  /// runs inline). `num_threads` is clamped to [1, kMaxThreads].
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  static constexpr int kMaxThreads = 1024;

  int num_threads() const { return num_threads_; }

  /// Process-wide pool used by the tensor/graph kernels. Sized on first use
  /// from the CPGAN_NUM_THREADS environment variable, defaulting to
  /// std::thread::hardware_concurrency().
  static ThreadPool& Global();

  /// Resizes the global pool (tears the workers down and respawns them).
  /// Must not be called while a parallel region is executing.
  static void SetGlobalThreads(int num_threads);

  /// Thread count requested by CPGAN_NUM_THREADS (clamped), or the hardware
  /// concurrency (at least 1) when the variable is unset or invalid.
  static int ThreadsFromEnv();

  /// Number of chunks ParallelFor creates for this range/grain — a pure
  /// function of (begin, end, grain), independent of the thread count.
  static int64_t NumChunks(int64_t begin, int64_t end, int64_t grain);

  /// Runs fn(chunk_begin, chunk_end) for every chunk of [begin, end).
  /// Chunks are claimed dynamically by the workers plus the calling thread,
  /// so skewed chunks load-balance, but the chunk boundaries themselves are
  /// static (see class comment). Calls made from inside a parallel region
  /// run inline and serially (nested-call safe). The first exception thrown
  /// by fn is rethrown on the calling thread after all chunks finish.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// As ParallelFor, but fn also receives the chunk index so reductions can
  /// store per-chunk partials and combine them in chunk order.
  void ParallelForChunked(
      int64_t begin, int64_t end, int64_t grain,
      const std::function<void(int64_t, int64_t, int64_t)>& fn);

 private:
  /// One posted parallel region. Lives on the caller's stack; workers only
  /// touch it between registration and deregistration (both under mutex_),
  /// and the caller waits for `workers_inside == 0` before returning.
  struct Job {
    const std::function<void(int64_t, int64_t, int64_t)>* fn = nullptr;
    // Request-scoped trace context of the posting thread, re-installed on
    // every worker while it executes chunks of this region, so spans inside
    // kernels stay attributed to the request that issued them
    // (observational only — never read by the work itself).
    obs::RequestContext request_context;
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t num_chunks = 0;
    int64_t next_chunk = 0;        // guarded by the pool mutex_
    int64_t done_chunks = 0;       // guarded by mutex_
    int64_t max_thread_chunks = 0;  // guarded by mutex_; most chunks any
                                    // one thread ran (imbalance telemetry)
    int workers_inside = 0;    // guarded by mutex_
    std::exception_ptr error;  // guarded by mutex_
  };

  void WorkerLoop();

  /// Claims and runs chunks of `job` until none remain. Returns the number
  /// of chunks executed by this thread. Exceptions are stored in job.error.
  void ExecuteChunks(Job& job);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait here for a job
  std::condition_variable done_cv_;  // the caller waits here for completion
  Job* job_ = nullptr;               // guarded by mutex_
  uint64_t job_epoch_ = 0;           // guarded by mutex_; bumps per job
  bool shutdown_ = false;            // guarded by mutex_
};

/// ThreadPool::Global().ParallelFor shorthand.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// ThreadPool::Global().ParallelForChunked shorthand.
void ParallelForChunked(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t, int64_t)>& fn);

/// Deterministic parallel sum: fn returns the partial for its chunk; the
/// partials are combined in chunk order, so the result is identical for any
/// thread count (the chunking itself is what fixes the summation order).
double ParallelSum(int64_t begin, int64_t end, int64_t grain,
                   const std::function<double(int64_t, int64_t)>& fn);

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_THREAD_POOL_H_
