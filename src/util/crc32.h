#ifndef CPGAN_UTIL_CRC32_H_
#define CPGAN_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cpgan::util {

/// Incremental CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).
///
/// Usage:
///   Crc32 crc;
///   crc.Update(buf, len);
///   uint32_t digest = crc.Digest();
///
/// Used by the v2 parameter/checkpoint container to detect bit rot and
/// truncation before any state is committed to a live model.
class Crc32 {
 public:
  /// Feeds `len` bytes into the running checksum.
  void Update(const void* data, size_t len);

  /// Final checksum over everything fed so far. Does not reset state, so the
  /// digest can be read mid-stream (used for header-then-body layouts).
  uint32_t Digest() const { return state_ ^ 0xFFFFFFFFu; }

  /// Resets to the empty-input state.
  void Reset() { state_ = 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience over a single buffer.
uint32_t Crc32Of(const void* data, size_t len);

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_CRC32_H_
