#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.h"

namespace cpgan::util {

Rng::Rng(uint64_t seed) : engine_(seed) {}

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t n) {
  CPGAN_CHECK_GT(n, 0);
  return std::uniform_int_distribution<int64_t>(0, n - 1)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CPGAN_CHECK_LE(lo, hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  return std::poisson_distribution<int64_t>(mean)(engine_);
}

int64_t Rng::Geometric(double p) {
  CPGAN_CHECK_GT(p, 0.0);
  if (p >= 1.0) return 0;
  return std::geometric_distribution<int64_t>(p)(engine_);
}

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  CPGAN_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  int last_positive = -1;
  for (int i = 0; i < static_cast<int>(weights.size()); ++i) {
    if (weights[i] <= 0.0) continue;
    acc += weights[i];
    last_positive = i;
    if (r < acc) return i;
  }
  return last_positive;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  CPGAN_CHECK_GE(n, k);
  CPGAN_CHECK_GE(k, 0);
  // Partial Fisher-Yates over an index vector.
  std::vector<int> indices(n);
  for (int i = 0; i < n; ++i) indices[i] = i;
  for (int i = 0; i < k; ++i) {
    int64_t j = i + UniformInt(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

std::vector<int> Rng::WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int k) {
  int n = static_cast<int>(weights.size());
  CPGAN_CHECK_GE(n, k);
  // Efraimidis-Spirakis: key = u^(1/w); take the k largest keys.
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int i = 0; i < n; ++i) {
    double w = weights[i];
    double key = (w > 0.0) ? std::pow(Uniform(), 1.0 / w) : -1.0;
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace(key, i);
    } else if (!heap.empty() && key > heap.top().first) {
      heap.pop();
      heap.emplace(key, i);
    }
  }
  std::vector<int> result;
  result.reserve(heap.size());
  while (!heap.empty()) {
    result.push_back(heap.top().second);
    heap.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

CumulativeSampler::CumulativeSampler(const std::vector<double>& weights) {
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += (w > 0.0 ? w : 0.0);
    cumulative_.push_back(acc);
  }
}

int CumulativeSampler::Sample(Rng& rng) const {
  CPGAN_CHECK(!cumulative_.empty());
  CPGAN_CHECK_GT(cumulative_.back(), 0.0);
  double r = rng.Uniform() * cumulative_.back();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), r);
  if (it == cumulative_.end()) --it;
  return static_cast<int>(it - cumulative_.begin());
}

}  // namespace cpgan::util
