#ifndef CPGAN_UTIL_RNG_H_
#define CPGAN_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace cpgan::util {

/// Seeded pseudo-random number generator used throughout the library.
///
/// Wraps std::mt19937_64 with the distributions the graph generators and the
/// tensor engine need. Every stochastic component takes an Rng& so that runs
/// are reproducible end-to-end from a single seed.
class Rng {
 public:
  /// Constructs a generator from an explicit 64-bit seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal sample.
  double Normal();

  /// Normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Poisson sample with the given mean (mean <= 0 yields 0).
  int64_t Poisson(double mean);

  /// Geometric-like sample: number of failures before first success with
  /// success probability p in (0, 1].
  int64_t Geometric(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero/negative weights are treated as zero. Requires a positive total.
  int Categorical(const std::vector<double>& weights);

  /// Returns k distinct indices drawn uniformly from [0, n) (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Returns k distinct indices from [0, n) drawn proportionally to weights
  /// (a weighted reservoir / sequential draw; k <= n).
  std::vector<int> WeightedSampleWithoutReplacement(
      const std::vector<double>& weights, int k);

  /// Fisher-Yates shuffles the vector in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int64_t i = static_cast<int64_t>(items.size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Samples indices proportionally to fixed non-negative weights in O(log n)
/// per draw via a cumulative table + binary search. Use for hot loops where
/// Rng::Categorical's O(n) scan would dominate.
class CumulativeSampler {
 public:
  explicit CumulativeSampler(const std::vector<double>& weights);

  /// Draws one index; requires a positive total weight.
  int Sample(Rng& rng) const;

  double total_weight() const { return cumulative_.empty() ? 0.0 : cumulative_.back(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_RNG_H_
