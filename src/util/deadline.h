#ifndef CPGAN_UTIL_DEADLINE_H_
#define CPGAN_UTIL_DEADLINE_H_

#include <chrono>
#include <limits>

namespace cpgan::util {

/// A point in time a request must finish by, on the same steady clock as
/// util::Timer so serving latencies and deadlines are directly comparable.
/// A default-constructed Deadline never expires.
class Deadline {
 public:
  Deadline() = default;

  /// Deadline `ms` milliseconds from now (ms <= 0 yields an already-expired
  /// deadline, which callers use to force the timeout path in tests).
  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool unlimited() const { return !has_deadline_; }

  bool expired() const { return has_deadline_ && Clock::now() >= at_; }

  /// Milliseconds until expiry (negative once expired; +inf when unlimited).
  double remaining_ms() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_DEADLINE_H_
