#include "util/fileio.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>

namespace cpgan::util {

namespace {
// Pending injected AtomicWriteFile failures (see InjectAtomicWriteFailures).
std::atomic<int> g_atomic_write_failures{0};

// Consumes one injected failure if any are pending.
bool ConsumeInjectedWriteFailure() {
  int pending = g_atomic_write_failures.load(std::memory_order_relaxed);
  while (pending > 0) {
    if (g_atomic_write_failures.compare_exchange_weak(
            pending, pending - 1, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}
}  // namespace

void InjectAtomicWriteFailures(int count) {
  g_atomic_write_failures.store(count > 0 ? count : 0,
                                std::memory_order_relaxed);
}

int PendingAtomicWriteFailures() {
  return g_atomic_write_failures.load(std::memory_order_relaxed);
}

bool AtomicWriteFile(const std::string& path,
                     const std::function<bool(std::FILE*)>& writer) {
  if (ConsumeInjectedWriteFailure()) return false;
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = writer(f);
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(::fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), R_OK) == 0;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buffer[1 << 14];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, read);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool MakeDirs(const std::string& path) {
  if (path.empty()) return false;
  std::string partial;
  size_t start = 0;
  if (path[0] == '/') partial = "/";
  while (start < path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    if (end > start) {
      partial.append(path, start, end - start);
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) return false;
      partial.push_back('/');
    }
    start = end + 1;
  }
  return true;
}

}  // namespace cpgan::util
