#include "util/cpuid.h"

namespace cpgan::util {

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports reads CPUID once and caches; the avx2 backend
  // uses FMA contractions, so both bits must be present.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuSupportsNeon() {
#if defined(__aarch64__)
  return true;  // Advanced SIMD is architecturally required on AArch64.
#else
  return false;
#endif
}

std::string CpuSimdSummary() {
  if (CpuSupportsAvx2()) return "avx2+fma";
  if (CpuSupportsNeon()) return "neon";
  return "none";
}

}  // namespace cpgan::util
