#ifndef CPGAN_UTIL_FILEIO_H_
#define CPGAN_UTIL_FILEIO_H_

#include <cstdio>
#include <functional>
#include <string>

namespace cpgan::util {

/// Crash-safe file replacement: writes via `writer` into `path.tmp`, flushes
/// and fsyncs it, then renames over `path`. Readers therefore only ever see
/// either the previous complete file or the new complete file — never a
/// partially written one. Returns false (and removes the temporary) if the
/// writer fails or any syscall errors.
bool AtomicWriteFile(const std::string& path,
                     const std::function<bool(std::FILE*)>& writer);

/// Deterministic transient-I/O fault injection for the retry/backoff paths
/// (train::FaultPlan and serve::ChaosPlan): the next `count` AtomicWriteFile
/// calls fail before touching the filesystem, as a flaky rename/fsync would.
/// Thread-safe; count <= 0 clears any pending injection. Test-only.
void InjectAtomicWriteFailures(int count);

/// Injected failures not yet consumed.
int PendingAtomicWriteFailures();

/// True if `path` exists and is readable.
bool FileExists(const std::string& path);

/// Reads the whole file into `*out` (binary, replacing any contents).
/// Returns false on open/read failure, leaving `*out` unspecified.
bool ReadFileToString(const std::string& path, std::string* out);

/// Best-effort mkdir -p. Returns false if a component could not be created
/// (an already-existing directory is success).
bool MakeDirs(const std::string& path);

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_FILEIO_H_
