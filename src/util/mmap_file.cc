#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cpgan::util {

namespace {
void SetError(std::string* error, const std::string& path, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + " '" + path + "': " + std::strerror(errno);
  }
}
}  // namespace

std::optional<MappedFile> MappedFile::Open(const std::string& path,
                                           std::string* error) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, path, "cannot open");
    return std::nullopt;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    SetError(error, path, "cannot stat");
    ::close(fd);
    return std::nullopt;
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, 0);
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is not
  // needed once mmap succeeds (POSIX: closing fd does not unmap).
  ::close(fd);
  if (mapped == MAP_FAILED) {
    SetError(error, path, "cannot mmap");
    return std::nullopt;
  }
  return MappedFile(static_cast<const uint8_t*>(mapped), size);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

}  // namespace cpgan::util
