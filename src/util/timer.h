#ifndef CPGAN_UTIL_TIMER_H_
#define CPGAN_UTIL_TIMER_H_

#include <chrono>

namespace cpgan::util {

/// Wall-clock stopwatch used by the efficiency benchmarks (Tables VII/VIII)
/// and the telemetry layer.
///
/// Clock choice: std::chrono::steady_clock — monotonic, so measurements are
/// immune to NTP slews and wall-clock adjustments mid-run. Every timing
/// source in this repo (Timer, obs::Stopwatch, trace spans) reads the same
/// steady clock so durations are directly comparable; the wall clock is
/// used only for human-readable log timestamps (util/logging.cc).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Reset().
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cpgan::util

#endif  // CPGAN_UTIL_TIMER_H_
