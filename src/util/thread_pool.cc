#include "util/thread_pool.h"

#include <cstdlib>
#include <memory>

#include "obs/metrics.h"
#include "obs/request_context.h"
#include "util/check.h"

namespace cpgan::util {

namespace {

/// True while this thread is executing chunks of some parallel region.
/// Worker threads set it for their whole lifetime; the calling thread sets
/// it around its own chunk execution. A ParallelFor issued while the flag is
/// set runs inline — a nested parallel region sharing the same workers
/// would deadlock waiting for them.
thread_local bool t_inside_parallel_region = false;

std::mutex& GlobalPoolMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool>* pool =
      new std::unique_ptr<ThreadPool>();
  return *pool;
}

int ClampThreads(int n) {
  if (n < 1) return 1;
  if (n > ThreadPool::kMaxThreads) return ThreadPool::kMaxThreads;
  return n;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(ClampThreads(num_threads)) {
  CPGAN_GAUGE_SET("threadpool/threads", num_threads_);
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (!pool) pool = std::make_unique<ThreadPool>(ThreadsFromEnv());
  return *pool;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (pool && pool->num_threads() == ClampThreads(num_threads)) return;
  pool = std::make_unique<ThreadPool>(num_threads);
}

int ThreadPool::ThreadsFromEnv() {
  const char* env = std::getenv("CPGAN_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      return ClampThreads(static_cast<int>(v));
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return ClampThreads(hw == 0 ? 1 : static_cast<int>(hw));
}

int64_t ThreadPool::NumChunks(int64_t begin, int64_t end, int64_t grain) {
  CPGAN_CHECK_GT(grain, 0);
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  ParallelForChunked(begin, end, grain,
                     [&fn](int64_t b, int64_t e, int64_t) { fn(b, e); });
}

void ThreadPool::ParallelForChunked(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  const int64_t num_chunks = NumChunks(begin, end, grain);
  if (num_chunks == 0) return;
  if (num_chunks == 1 || num_threads_ == 1 || t_inside_parallel_region) {
    // Serial path: same chunk boundaries, executed in chunk order inline.
    // (Exceptions propagate naturally.)
    CPGAN_COUNTER_ADD("threadpool/inline_regions", 1);
    for (int64_t c = 0; c < num_chunks; ++c) {
      int64_t b = begin + c * grain;
      int64_t e = b + grain < end ? b + grain : end;
      fn(b, e, c);
    }
    return;
  }

  CPGAN_COUNTER_ADD("threadpool/regions", 1);
  CPGAN_COUNTER_ADD("threadpool/chunks", static_cast<uint64_t>(num_chunks));

  Job job;
  job.fn = &fn;
  job.request_context = obs::CurrentRequestContext();
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++job_epoch_;
  }
  work_cv_.notify_all();

  // The caller works too.
  t_inside_parallel_region = true;
  ExecuteChunks(job);
  t_inside_parallel_region = false;

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&job] {
    return job.done_chunks == job.num_chunks && job.workers_inside == 0;
  });
  job_ = nullptr;  // late-waking workers see no job and keep waiting
  std::exception_ptr error = job.error;
  int64_t max_thread_chunks = job.max_thread_chunks;
  lock.unlock();
  // Imbalance = busiest thread's share over the ideal even share; 1.0 means
  // perfectly balanced. Observation only — never fed back into scheduling.
  int64_t even_share = (num_chunks + num_threads_ - 1) / num_threads_;
  if (even_share > 0) {
    CPGAN_GAUGE_SET("threadpool/imbalance",
                    static_cast<double>(max_thread_chunks) /
                        static_cast<double>(even_share));
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop() {
  t_inside_parallel_region = true;  // nested ParallelFor from a worker inlines
  uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
      ++job->workers_inside;
    }
    ExecuteChunks(*job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --job->workers_inside;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ExecuteChunks(Job& job) {
  // Adopt the posting thread's request context for the duration of this
  // region (a no-op re-install on the posting thread itself).
  obs::ScopedRequestContext request_scope(job.request_context);
  int64_t executed = 0;
  for (;;) {
    int64_t c;
    bool skip;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job.next_chunk >= job.num_chunks) break;
      c = job.next_chunk++;
      skip = job.error != nullptr;  // drain remaining chunks after a throw
    }
    if (!skip) {
      int64_t b = job.begin + c * job.grain;
      int64_t e = b + job.grain < job.end ? b + job.grain : job.end;
      try {
        (*job.fn)(b, e, c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!job.error) job.error = std::current_exception();
      }
    }
    ++executed;
  }
  if (executed > 0) {
    bool complete;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job.done_chunks += executed;
      if (executed > job.max_thread_chunks) job.max_thread_chunks = executed;
      complete = job.done_chunks == job.num_chunks;
    }
    if (complete) done_cv_.notify_one();
  }
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

void ParallelForChunked(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelForChunked(begin, end, grain, fn);
}

double ParallelSum(int64_t begin, int64_t end, int64_t grain,
                   const std::function<double(int64_t, int64_t)>& fn) {
  const int64_t num_chunks = ThreadPool::NumChunks(begin, end, grain);
  if (num_chunks == 0) return 0.0;
  if (num_chunks == 1) return fn(begin, end);
  std::vector<double> partials(static_cast<size_t>(num_chunks), 0.0);
  ThreadPool::Global().ParallelForChunked(
      begin, end, grain, [&partials, &fn](int64_t b, int64_t e, int64_t c) {
        partials[static_cast<size_t>(c)] = fn(b, e);
      });
  double total = 0.0;
  for (double p : partials) total += p;  // fixed chunk order
  return total;
}

}  // namespace cpgan::util
