#include "generators/chung_lu.h"

#include <numeric>
#include <set>

namespace cpgan::generators {

ChungLuGenerator::ChungLuGenerator(std::vector<int> target_degrees)
    : degrees_(std::move(target_degrees)) {}

void ChungLuGenerator::Fit(const graph::Graph& observed, util::Rng& rng) {
  (void)rng;
  degrees_ = observed.Degrees();
}

graph::Graph ChungLuGenerator::Generate(util::Rng& rng) const {
  int n = static_cast<int>(degrees_.size());
  int64_t total = std::accumulate(degrees_.begin(), degrees_.end(), int64_t{0});
  int64_t m = total / 2;
  std::vector<graph::Edge> edges;
  if (n < 2 || m == 0) return graph::Graph(n, edges);

  // Endpoint pool with each node repeated degree-many times.
  std::vector<int> pool;
  pool.reserve(total);
  for (int v = 0; v < n; ++v) {
    for (int i = 0; i < degrees_[v]; ++i) pool.push_back(v);
  }

  std::set<graph::Edge> seen;
  int64_t placed = 0;
  int64_t attempts = 0;
  int64_t max_attempts = 20 * m + 100;
  while (placed < m && attempts < max_attempts) {
    ++attempts;
    int u = pool[rng.UniformInt(static_cast<int64_t>(pool.size()))];
    int v = pool[rng.UniformInt(static_cast<int64_t>(pool.size()))];
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!seen.insert({u, v}).second) continue;
    edges.emplace_back(u, v);
    ++placed;
  }
  return graph::Graph(n, edges);
}

}  // namespace cpgan::generators
