#ifndef CPGAN_GENERATORS_REGISTRY_H_
#define CPGAN_GENERATORS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "generators/generator.h"

namespace cpgan::generators {

/// Names of every traditional generator, in the paper's table order.
std::vector<std::string> TraditionalGeneratorNames();

/// Creates a traditional generator by its table name ("E-R", "B-A",
/// "Chung-Lu", "W-S", "SBM", "DCSBM", "BTER", "Kronecker", "MMSB").
/// Returns nullptr for unknown names.
std::unique_ptr<GraphGenerator> MakeTraditionalGenerator(
    const std::string& name);

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_REGISTRY_H_
