#include "generators/ws.h"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.h"
#include "util/check.h"

namespace cpgan::generators {

WsGenerator::WsGenerator(int num_nodes, int ring_degree,
                         double rewire_probability)
    : num_nodes_(num_nodes), ring_degree_(ring_degree),
      beta_(rewire_probability) {
  CPGAN_CHECK_GE(ring_degree, 2);
  CPGAN_CHECK(rewire_probability >= 0.0 && rewire_probability <= 1.0);
}

void WsGenerator::Fit(const graph::Graph& observed, util::Rng& rng) {
  (void)rng;
  num_nodes_ = observed.num_nodes();
  int k = static_cast<int>(observed.MeanDegree() + 0.5);
  if (k % 2 == 1) ++k;
  ring_degree_ = std::max(2, k);
  // Lattice clustering for even k is ~ 3(k-2) / (4(k-1)); estimate beta from
  // how far the observed clustering has decayed: C(beta) ~ C_lattice (1-b)^3.
  double c_lattice =
      3.0 * (ring_degree_ - 2.0) / std::max(1.0, 4.0 * (ring_degree_ - 1.0));
  double c_obs = graph::AverageClusteringCoefficient(observed);
  if (c_lattice <= 1e-9 || c_obs <= 0.0) {
    beta_ = 1.0;
  } else {
    double ratio = std::clamp(c_obs / c_lattice, 1e-4, 1.0);
    beta_ = std::clamp(1.0 - std::cbrt(ratio), 0.0, 1.0);
  }
}

graph::Graph WsGenerator::Generate(util::Rng& rng) const {
  int n = num_nodes_;
  std::vector<graph::Edge> edges;
  if (n < 3) return graph::Graph(n, edges);
  int half = std::min(ring_degree_ / 2, (n - 1) / 2);
  for (int u = 0; u < n; ++u) {
    for (int j = 1; j <= half; ++j) {
      int v = (u + j) % n;
      if (rng.Bernoulli(beta_)) {
        // Rewire: keep u, choose a random new endpoint.
        int w = static_cast<int>(rng.UniformInt(n));
        if (w != u) {
          edges.emplace_back(std::min(u, w), std::max(u, w));
          continue;
        }
      }
      edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  return graph::Graph(n, edges);
}

}  // namespace cpgan::generators
