#ifndef CPGAN_GENERATORS_GENERATOR_H_
#define CPGAN_GENERATORS_GENERATOR_H_

#include <memory>
#include <string>

#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::generators {

/// Interface shared by every graph generator in the repo — the traditional
/// models here, and (via adapters) the learning-based models. The protocol
/// mirrors the paper's problem statement: Fit() learns a generative model
/// from one observed graph, Generate() simulates a new graph with a similar
/// structural distribution.
class GraphGenerator {
 public:
  virtual ~GraphGenerator() = default;

  /// Model name as it appears in the paper's tables (e.g. "E-R", "BTER").
  virtual std::string name() const = 0;

  /// Estimates model parameters from the observed graph.
  virtual void Fit(const graph::Graph& observed, util::Rng& rng) = 0;

  /// Samples a new graph from the fitted model. Requires a prior Fit().
  virtual graph::Graph Generate(util::Rng& rng) const = 0;
};

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_GENERATOR_H_
