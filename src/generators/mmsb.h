#ifndef CPGAN_GENERATORS_MMSB_H_
#define CPGAN_GENERATORS_MMSB_H_

#include <vector>

#include "generators/generator.h"

namespace cpgan::generators {

/// Mixed-membership stochastic blockmodel (Airoldi et al., 2008).
///
/// Each node carries a membership distribution pi_v over K blocks; for every
/// node pair, both endpoints sample a block and an edge appears with the
/// block-pair probability B[r][s]. Fit seeds memberships from Louvain with a
/// Dirichlet-style smoothing and estimates B from block-pair densities.
///
/// Generation is O(n^2) — the reason MMSB runs out of memory on the paper's
/// larger datasets (Tables III/IV report OOM). We reproduce that behaviour by
/// refusing to generate beyond `max_feasible_nodes()` nodes.
class MmsbGenerator : public GraphGenerator {
 public:
  MmsbGenerator() = default;

  std::string name() const override { return "MMSB"; }
  void Fit(const graph::Graph& observed, util::Rng& rng) override;
  graph::Graph Generate(util::Rng& rng) const override;

  /// True if generation at the fitted size is feasible under the O(n^2)
  /// pair sweep (mirrors the paper's OOM entries).
  bool Feasible() const { return num_nodes_ <= max_feasible_nodes(); }

  static int max_feasible_nodes() { return 4000; }

 private:
  int num_nodes_ = 0;
  int num_blocks_ = 0;
  double smoothing_ = 0.35;
  std::vector<std::vector<double>> memberships_;  // n x K
  std::vector<std::vector<double>> block_matrix_; // K x K
};

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_MMSB_H_
