#include "generators/kronecker.h"

#include <cmath>
#include <set>

#include "graph/stats.h"
#include "util/check.h"

namespace cpgan::generators {

KroneckerGenerator::KroneckerGenerator(int power, double a, double b, double c,
                                       int64_t target_edges, int target_nodes)
    : power_(power), a_(a), b_(b), c_(c), target_edges_(target_edges),
      target_nodes_(target_nodes) {
  CPGAN_CHECK_GE(power, 1);
}

void KroneckerGenerator::Fit(const graph::Graph& observed, util::Rng& rng) {
  (void)rng;
  target_nodes_ = observed.num_nodes();
  target_edges_ = observed.num_edges();
  power_ = 1;
  while ((1 << power_) < target_nodes_ && power_ < 30) ++power_;

  // Coarse KronFit: the core-periphery skew (a vs c) controls the degree
  // inequality; pick the grid point whose synthetic Gini (from the analytic
  // expected-degree profile) is closest to the observed one.
  double observed_gini = graph::GiniCoefficient(observed.Degrees());
  double best_dist = 1e18;
  for (double a = 0.5; a <= 0.999; a += 0.05) {
    for (double c = 0.05; c <= a; c += 0.05) {
      double b = 0.6 * std::sqrt(a * c) + 0.2;
      if (b > 1.0) b = 1.0;
      // Expected out-weight of a node indexed by the number of 1-bits z:
      // (a + b)^(k - z) (b + c)^z; approximate the Gini over the binomial
      // mixture of z.
      int k = power_;
      std::vector<int> pseudo_degrees;
      pseudo_degrees.reserve(k + 1);
      std::vector<double> counts(k + 1);
      double total_weight = std::pow(a + 2.0 * b + c, k);
      double norm = target_edges_ > 0
                        ? static_cast<double>(target_edges_) / total_weight
                        : 1.0;
      std::vector<int> degs;
      for (int z = 0; z <= k; ++z) {
        double comb = 1.0;
        for (int i = 0; i < z; ++i) comb = comb * (k - i) / (i + 1);
        double weight = std::pow(a + b, k - z) * std::pow(b + c, z) * norm;
        int copies = std::max(1, static_cast<int>(comb / (1 << k) * 256));
        for (int rep = 0; rep < copies; ++rep) {
          degs.push_back(static_cast<int>(weight + 0.5));
        }
      }
      double gini = graph::GiniCoefficient(degs);
      double dist = std::fabs(gini - observed_gini);
      if (dist < best_dist) {
        best_dist = dist;
        a_ = a;
        b_ = b;
        c_ = c;
      }
    }
  }
}

graph::Graph KroneckerGenerator::Generate(util::Rng& rng) const {
  int64_t size = int64_t{1} << power_;
  int n = target_nodes_ > 0
              ? target_nodes_
              : static_cast<int>(std::min<int64_t>(size, 1 << 30));
  std::vector<graph::Edge> edges;
  std::set<graph::Edge> seen;
  double total = a_ + 2.0 * b_ + c_;
  std::vector<double> quadrant = {a_ / total, b_ / total, b_ / total,
                                  c_ / total};
  int64_t m = target_edges_;
  int64_t attempts = 0;
  int64_t max_attempts = 30 * m + 100;
  while (static_cast<int64_t>(edges.size()) < m && attempts < max_attempts) {
    ++attempts;
    int64_t row = 0;
    int64_t col = 0;
    for (int level = 0; level < power_; ++level) {
      int q = rng.Categorical(quadrant);
      row = (row << 1) | (q >> 1);
      col = (col << 1) | (q & 1);
    }
    if (row >= n || col >= n || row == col) continue;
    int u = static_cast<int>(std::min(row, col));
    int v = static_cast<int>(std::max(row, col));
    if (!seen.insert({u, v}).second) continue;
    edges.emplace_back(u, v);
  }
  return graph::Graph(n, edges);
}

}  // namespace cpgan::generators
