#include "generators/mmsb.h"

#include <algorithm>

#include "community/louvain.h"
#include "generators/sbm.h"
#include "util/check.h"
#include "util/logging.h"

namespace cpgan::generators {

void MmsbGenerator::Fit(const graph::Graph& observed, util::Rng& rng) {
  num_nodes_ = observed.num_nodes();
  // Variational-EM analogue: MAP block assignments from the same random-init
  // blockmodel estimation as SBM, softened into mixed memberships.
  SbmGenerator point_estimate;
  point_estimate.Fit(observed, rng);
  const community::Partition& part = point_estimate.partition();
  num_blocks_ = std::max(2, part.num_communities());

  // Soft memberships: concentrated on the MAP block with smoothing.
  memberships_.assign(num_nodes_, std::vector<double>(num_blocks_,
                                                      smoothing_ / num_blocks_));
  for (int v = 0; v < num_nodes_; ++v) {
    memberships_[v][part.label(v)] += 1.0 - smoothing_;
  }

  // Block matrix from observed block-pair densities.
  std::vector<double> block_size(num_blocks_, 0.0);
  for (int v = 0; v < num_nodes_; ++v) block_size[part.label(v)] += 1.0;
  block_matrix_.assign(num_blocks_, std::vector<double>(num_blocks_, 0.0));
  for (const auto& [u, v] : observed.Edges()) {
    int r = part.label(u);
    int s = part.label(v);
    block_matrix_[r][s] += 1.0;
    block_matrix_[s][r] += 1.0;
  }
  for (int r = 0; r < num_blocks_; ++r) {
    for (int s = 0; s < num_blocks_; ++s) {
      double pairs = (r == s) ? block_size[r] * (block_size[r] - 1.0)
                              : block_size[r] * block_size[s];
      block_matrix_[r][s] =
          pairs > 0.0 ? std::min(1.0, block_matrix_[r][s] / pairs) : 0.0;
    }
  }
}

graph::Graph MmsbGenerator::Generate(util::Rng& rng) const {
  std::vector<graph::Edge> edges;
  if (!Feasible()) {
    CPGAN_LOG(Warning) << "MMSB generation infeasible at n=" << num_nodes_
                       << " (O(n^2) pair sweep); returning empty graph "
                          "(paper reports OOM).";
    return graph::Graph(num_nodes_, edges);
  }
  for (int u = 0; u < num_nodes_; ++u) {
    for (int v = u + 1; v < num_nodes_; ++v) {
      int r = rng.Categorical(memberships_[u]);
      int s = rng.Categorical(memberships_[v]);
      if (rng.Bernoulli(block_matrix_[r][s])) edges.emplace_back(u, v);
    }
  }
  return graph::Graph(num_nodes_, edges);
}

}  // namespace cpgan::generators
