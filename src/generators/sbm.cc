#include "generators/sbm.h"

#include <algorithm>
#include <set>

#include "community/louvain.h"
#include "util/check.h"

namespace cpgan::generators {

SbmGenerator::SbmGenerator(
    std::vector<int> blocks,
    std::map<std::pair<int, int>, double> block_edges)
    : partition_(std::move(blocks)), block_edges_(std::move(block_edges)) {
  block_members_ = partition_.Communities();
}

void SbmGenerator::EstimateBlockEdges(const graph::Graph& observed) {
  block_edges_.clear();
  for (const auto& [u, v] : observed.Edges()) {
    int r = partition_.label(u);
    int s = partition_.label(v);
    if (r > s) std::swap(r, s);
    block_edges_[{r, s}] += 1.0;
  }
  block_members_ = partition_.Communities();
}

void SbmGenerator::Fit(const graph::Graph& observed, util::Rng& rng) {
  // Classic blockmodel estimation: K blocks, random initialization, then a
  // few greedy label-swap sweeps maximizing the K-constrained modularity (a
  // cheap profile-likelihood surrogate). Mirrors how the original SBM
  // baselines are fitted — with only K(K+1)/2 + n parameters they land in a
  // local optimum far from the fine-grained community structure, which is
  // exactly the limitation the paper highlights.
  int n = observed.num_nodes();
  int k = std::min(max_blocks_, std::max(1, n));
  std::vector<int> labels(n);
  for (int v = 0; v < n; ++v) {
    labels[v] = static_cast<int>(rng.UniformInt(k));
  }
  double two_m = 2.0 * static_cast<double>(observed.num_edges());
  if (two_m > 0.0) {
    std::vector<double> block_degree(k, 0.0);
    for (int v = 0; v < n; ++v) block_degree[labels[v]] += observed.degree(v);
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i) order[i] = i;
    std::vector<double> links(k, 0.0);
    for (int sweep = 0; sweep < 2; ++sweep) {
      rng.Shuffle(order);
      bool moved = false;
      for (int v : order) {
        std::fill(links.begin(), links.end(), 0.0);
        for (int u : observed.neighbors(v)) links[labels[u]] += 1.0;
        int current = labels[v];
        double deg_v = observed.degree(v);
        block_degree[current] -= deg_v;
        int best = current;
        double best_gain = links[current] - deg_v * block_degree[current] / two_m;
        for (int c = 0; c < k; ++c) {
          if (c == current) continue;
          double gain = links[c] - deg_v * block_degree[c] / two_m;
          if (gain > best_gain + 1e-12) {
            best_gain = gain;
            best = c;
          }
        }
        labels[v] = best;
        block_degree[best] += deg_v;
        if (best != current) moved = true;
      }
      if (!moved) break;
    }
  }
  partition_ = community::Partition(std::move(labels));
  EstimateBlockEdges(observed);
}

graph::Graph SbmGenerator::Generate(util::Rng& rng) const {
  int n = partition_.num_nodes();
  std::vector<graph::Edge> edges;
  std::set<graph::Edge> seen;
  for (const auto& [pair, expected] : block_edges_) {
    const auto& [r, s] = pair;
    const std::vector<int>& members_r = block_members_[r];
    const std::vector<int>& members_s = block_members_[s];
    if (members_r.empty() || members_s.empty()) continue;
    int64_t count = rng.Poisson(expected);
    int64_t attempts = 0;
    int64_t placed = 0;
    int64_t max_attempts = 20 * count + 50;
    while (placed < count && attempts < max_attempts) {
      ++attempts;
      int u = members_r[rng.UniformInt(
          static_cast<int64_t>(members_r.size()))];
      int v = members_s[rng.UniformInt(
          static_cast<int64_t>(members_s.size()))];
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (!seen.insert({u, v}).second) continue;
      edges.emplace_back(u, v);
      ++placed;
    }
  }
  return graph::Graph(n, edges);
}

}  // namespace cpgan::generators
