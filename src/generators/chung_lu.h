#ifndef CPGAN_GENERATORS_CHUNG_LU_H_
#define CPGAN_GENERATORS_CHUNG_LU_H_

#include <vector>

#include "generators/generator.h"

namespace cpgan::generators {

/// Chung-Lu model: edges placed with probability proportional to the product
/// of the target degrees. Fit copies the observed degree sequence; Generate
/// uses m rounds of endpoint sampling proportional to degree (the standard
/// O(m) approximation).
class ChungLuGenerator : public GraphGenerator {
 public:
  ChungLuGenerator() = default;
  explicit ChungLuGenerator(std::vector<int> target_degrees);

  std::string name() const override { return "Chung-Lu"; }
  void Fit(const graph::Graph& observed, util::Rng& rng) override;
  graph::Graph Generate(util::Rng& rng) const override;

  const std::vector<int>& target_degrees() const { return degrees_; }

 private:
  std::vector<int> degrees_;
};

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_CHUNG_LU_H_
