#include "generators/bter.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "graph/algorithms.h"

namespace cpgan::generators {

void BterGenerator::Fit(const graph::Graph& observed, util::Rng& rng) {
  (void)rng;
  num_nodes_ = observed.num_nodes();
  degrees_ = observed.Degrees();
  int max_degree = 0;
  for (int d : degrees_) max_degree = std::max(max_degree, d);
  std::vector<double> cc_sum(max_degree + 1, 0.0);
  std::vector<int> cc_count(max_degree + 1, 0);
  std::vector<double> cc = graph::LocalClusteringCoefficients(observed);
  for (int v = 0; v < num_nodes_; ++v) {
    cc_sum[degrees_[v]] += cc[v];
    cc_count[degrees_[v]] += 1;
  }
  clustering_by_degree_.assign(max_degree + 1, 0.0);
  for (int d = 0; d <= max_degree; ++d) {
    if (cc_count[d] > 0) clustering_by_degree_[d] = cc_sum[d] / cc_count[d];
  }
}

graph::Graph BterGenerator::Generate(util::Rng& rng) const {
  int n = num_nodes_;
  std::vector<graph::Edge> edges;
  std::set<graph::Edge> seen;
  if (n < 2) return graph::Graph(n, edges);

  // Sort node ids by target degree ascending; degree-1 nodes skip phase 1.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return degrees_[a] < degrees_[b];
  });

  std::vector<double> excess(n, 0.0);
  size_t i = 0;
  while (i < order.size() && degrees_[order[i]] <= 1) {
    excess[order[i]] = degrees_[order[i]];
    ++i;
  }
  // Phase 1: affinity blocks of size d_min + 1.
  while (i < order.size()) {
    int d_min = degrees_[order[i]];
    size_t block_size = static_cast<size_t>(d_min) + 1;
    size_t end = std::min(order.size(), i + block_size);
    double cc = d_min < static_cast<int>(clustering_by_degree_.size())
                    ? clustering_by_degree_[d_min]
                    : 0.0;
    double p = std::clamp(std::cbrt(std::max(cc, 0.0)), 0.0, 1.0);
    for (size_t a = i; a < end; ++a) {
      for (size_t b = a + 1; b < end; ++b) {
        if (rng.Bernoulli(p)) {
          int u = order[a];
          int v = order[b];
          if (u > v) std::swap(u, v);
          if (seen.insert({u, v}).second) edges.emplace_back(u, v);
        }
      }
    }
    double internal_expected = static_cast<double>(end - i - 1) * p;
    for (size_t a = i; a < end; ++a) {
      excess[order[a]] =
          std::max(0.0, static_cast<double>(degrees_[order[a]]) -
                            internal_expected);
    }
    i = end;
  }

  // Phase 2: Chung-Lu over the excess degrees.
  double excess_total = std::accumulate(excess.begin(), excess.end(), 0.0);
  int64_t phase2_edges = static_cast<int64_t>(excess_total / 2.0);
  if (phase2_edges > 0) {
    util::CumulativeSampler sampler(excess);
    int64_t attempts = 0;
    int64_t placed = 0;
    int64_t max_attempts = 20 * phase2_edges + 100;
    while (placed < phase2_edges && attempts < max_attempts) {
      ++attempts;
      int u = sampler.Sample(rng);
      int v = sampler.Sample(rng);
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (!seen.insert({u, v}).second) continue;
      edges.emplace_back(u, v);
      ++placed;
    }
  }
  return graph::Graph(n, edges);
}

}  // namespace cpgan::generators
