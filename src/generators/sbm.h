#ifndef CPGAN_GENERATORS_SBM_H_
#define CPGAN_GENERATORS_SBM_H_

#include <map>
#include <vector>

#include "community/partition.h"
#include "generators/generator.h"

namespace cpgan::generators {

/// Stochastic block model (Holland et al., 1983). Fit detects communities
/// with Louvain, then estimates one edge probability per block pair (the
/// sparse analogue of the full block matrix B in eq. 4 of the paper).
/// Generation draws a Poisson number of edges per block pair with uniform
/// endpoints inside each block.
class SbmGenerator : public GraphGenerator {
 public:
  SbmGenerator() = default;

  /// Directly parameterized: blocks[v] is the block of node v; block_edges
  /// maps (r, s) with r <= s to the expected number of edges between them.
  SbmGenerator(std::vector<int> blocks,
               std::map<std::pair<int, int>, double> block_edges);

  std::string name() const override { return "SBM"; }
  void Fit(const graph::Graph& observed, util::Rng& rng) override;
  graph::Graph Generate(util::Rng& rng) const override;

  const community::Partition& partition() const { return partition_; }

  /// Maximum number of blocks retained when fitting (the paper's point about
  /// SBM-family models is that they capture community structure with only a
  /// few parameters; Louvain communities beyond this budget are merged by
  /// size rank). Defaults to 12.
  void set_max_blocks(int max_blocks) { max_blocks_ = max_blocks; }
  int max_blocks() const { return max_blocks_; }

 protected:
  /// Estimates block-pair expected edge counts from an observed graph and a
  /// partition. Shared with the degree-corrected variant.
  void EstimateBlockEdges(const graph::Graph& observed);

  community::Partition partition_;
  std::map<std::pair<int, int>, double> block_edges_;
  std::vector<std::vector<int>> block_members_;
  int max_blocks_ = 10;
};

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_SBM_H_
