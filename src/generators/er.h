#ifndef CPGAN_GENERATORS_ER_H_
#define CPGAN_GENERATORS_ER_H_

#include "generators/generator.h"

namespace cpgan::generators {

/// Erdos-Renyi G(n, p) model. Fit matches the observed edge density; the
/// generator uses geometric skipping so sampling is O(n + m) rather than
/// O(n^2).
class ErGenerator : public GraphGenerator {
 public:
  ErGenerator() = default;

  /// Directly parameterized constructor for tests/examples.
  ErGenerator(int num_nodes, double p);

  std::string name() const override { return "E-R"; }
  void Fit(const graph::Graph& observed, util::Rng& rng) override;
  graph::Graph Generate(util::Rng& rng) const override;

  double edge_probability() const { return p_; }

 private:
  int num_nodes_ = 0;
  double p_ = 0.0;
};

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_ER_H_
