#ifndef CPGAN_GENERATORS_WS_H_
#define CPGAN_GENERATORS_WS_H_

#include "generators/generator.h"

namespace cpgan::generators {

/// Watts-Strogatz small-world model: a ring lattice with even degree k whose
/// edges are rewired with probability beta. Fit matches k to the observed
/// mean degree and tunes beta from the observed clustering coefficient
/// relative to the lattice's.
class WsGenerator : public GraphGenerator {
 public:
  WsGenerator() = default;
  WsGenerator(int num_nodes, int ring_degree, double rewire_probability);

  std::string name() const override { return "W-S"; }
  void Fit(const graph::Graph& observed, util::Rng& rng) override;
  graph::Graph Generate(util::Rng& rng) const override;

  int ring_degree() const { return ring_degree_; }
  double rewire_probability() const { return beta_; }

 private:
  int num_nodes_ = 0;
  int ring_degree_ = 2;
  double beta_ = 0.1;
};

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_WS_H_
