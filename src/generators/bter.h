#ifndef CPGAN_GENERATORS_BTER_H_
#define CPGAN_GENERATORS_BTER_H_

#include <vector>

#include "generators/generator.h"

namespace cpgan::generators {

/// Block Two-level Erdos-Renyi model (Kolda et al., 2014).
///
/// Phase 1 groups nodes of similar degree into affinity blocks and wires each
/// block as a dense E-R graph whose connectivity matches the observed
/// clustering coefficient of that degree class; phase 2 adds a Chung-Lu pass
/// over the remaining ("excess") degree so the degree distribution is
/// preserved. The paper singles BTER out as the strongest traditional
/// baseline for community structure.
class BterGenerator : public GraphGenerator {
 public:
  BterGenerator() = default;

  std::string name() const override { return "BTER"; }
  void Fit(const graph::Graph& observed, util::Rng& rng) override;
  graph::Graph Generate(util::Rng& rng) const override;

 private:
  int num_nodes_ = 0;
  std::vector<int> degrees_;                 // target degree per node
  std::vector<double> clustering_by_degree_; // mean local cc per degree
};

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_BTER_H_
