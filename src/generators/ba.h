#ifndef CPGAN_GENERATORS_BA_H_
#define CPGAN_GENERATORS_BA_H_

#include "generators/generator.h"

namespace cpgan::generators {

/// Barabasi-Albert preferential-attachment model. Fit matches the number of
/// nodes and sets the per-node attachment count so the expected edge count
/// tracks the observed graph.
class BaGenerator : public GraphGenerator {
 public:
  BaGenerator() = default;
  BaGenerator(int num_nodes, int edges_per_node);

  std::string name() const override { return "B-A"; }
  void Fit(const graph::Graph& observed, util::Rng& rng) override;
  graph::Graph Generate(util::Rng& rng) const override;

  int edges_per_node() const { return edges_per_node_; }

 private:
  int num_nodes_ = 0;
  int edges_per_node_ = 1;
};

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_BA_H_
