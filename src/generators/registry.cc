#include "generators/registry.h"

#include "generators/ba.h"
#include "generators/bter.h"
#include "generators/chung_lu.h"
#include "generators/dcsbm.h"
#include "generators/er.h"
#include "generators/kronecker.h"
#include "generators/mmsb.h"
#include "generators/sbm.h"
#include "generators/ws.h"

namespace cpgan::generators {

std::vector<std::string> TraditionalGeneratorNames() {
  return {"E-R", "B-A",  "Chung-Lu", "W-S",  "SBM",
          "DCSBM", "BTER", "Kronecker", "MMSB"};
}

std::unique_ptr<GraphGenerator> MakeTraditionalGenerator(
    const std::string& name) {
  if (name == "E-R") return std::make_unique<ErGenerator>();
  if (name == "B-A") return std::make_unique<BaGenerator>();
  if (name == "Chung-Lu") return std::make_unique<ChungLuGenerator>();
  if (name == "W-S") return std::make_unique<WsGenerator>();
  if (name == "SBM") return std::make_unique<SbmGenerator>();
  if (name == "DCSBM") return std::make_unique<DcsbmGenerator>();
  if (name == "BTER") return std::make_unique<BterGenerator>();
  if (name == "Kronecker") return std::make_unique<KroneckerGenerator>();
  if (name == "MMSB") return std::make_unique<MmsbGenerator>();
  return nullptr;
}

}  // namespace cpgan::generators
