#include "generators/er.h"

#include <cmath>

#include "util/check.h"

namespace cpgan::generators {

ErGenerator::ErGenerator(int num_nodes, double p)
    : num_nodes_(num_nodes), p_(p) {
  CPGAN_CHECK_GE(num_nodes, 0);
  CPGAN_CHECK(p >= 0.0 && p <= 1.0);
}

void ErGenerator::Fit(const graph::Graph& observed, util::Rng& rng) {
  (void)rng;
  num_nodes_ = observed.num_nodes();
  double pairs = 0.5 * num_nodes_ * (num_nodes_ - 1.0);
  p_ = pairs > 0.0 ? static_cast<double>(observed.num_edges()) / pairs : 0.0;
}

graph::Graph ErGenerator::Generate(util::Rng& rng) const {
  std::vector<graph::Edge> edges;
  if (num_nodes_ >= 2 && p_ > 0.0) {
    if (p_ >= 1.0) {
      for (int u = 0; u < num_nodes_; ++u) {
        for (int v = u + 1; v < num_nodes_; ++v) edges.emplace_back(u, v);
      }
      return graph::Graph(num_nodes_, edges);
    }
    // Geometric skipping over the strictly-upper-triangular pair index.
    int64_t total_pairs =
        static_cast<int64_t>(num_nodes_) * (num_nodes_ - 1) / 2;
    double log1mp = std::log(1.0 - p_);
    int64_t index = -1;
    while (true) {
      double u = rng.Uniform();
      int64_t skip =
          static_cast<int64_t>(std::floor(std::log(1.0 - u) / log1mp));
      index += 1 + skip;
      if (index >= total_pairs) break;
      // Invert pair index -> (row, col).
      int64_t row = static_cast<int64_t>(
          (2.0 * num_nodes_ - 1.0 -
           std::sqrt((2.0 * num_nodes_ - 1.0) * (2.0 * num_nodes_ - 1.0) -
                     8.0 * static_cast<double>(index))) /
          2.0);
      // Fix potential floating point off-by-one.
      auto row_start = [this](int64_t r) {
        return r * num_nodes_ - r * (r + 1) / 2;
      };
      while (row > 0 && row_start(row) > index) --row;
      while (row_start(row + 1) <= index) ++row;
      int64_t col = row + 1 + (index - row_start(row));
      edges.emplace_back(static_cast<int>(row), static_cast<int>(col));
    }
  }
  return graph::Graph(num_nodes_, edges);
}

}  // namespace cpgan::generators
