#include "generators/dcsbm.h"

#include <set>

#include "community/louvain.h"

namespace cpgan::generators {

void DcsbmGenerator::Fit(const graph::Graph& observed, util::Rng& rng) {
  SbmGenerator::Fit(observed, rng);
  theta_.assign(observed.num_nodes(), 1.0);
  for (int v = 0; v < observed.num_nodes(); ++v) {
    theta_[v] = static_cast<double>(observed.degree(v)) + 0.1;
  }
}

graph::Graph DcsbmGenerator::Generate(util::Rng& rng) const {
  int n = partition_.num_nodes();
  std::vector<graph::Edge> edges;
  std::set<graph::Edge> seen;
  // Precompute per-block endpoint weights.
  std::vector<std::vector<double>> weights(block_members_.size());
  for (size_t b = 0; b < block_members_.size(); ++b) {
    weights[b].reserve(block_members_[b].size());
    for (int v : block_members_[b]) weights[b].push_back(theta_[v]);
  }
  for (const auto& [pair, expected] : block_edges_) {
    const auto& [r, s] = pair;
    const std::vector<int>& members_r = block_members_[r];
    const std::vector<int>& members_s = block_members_[s];
    if (members_r.empty() || members_s.empty()) continue;
    int64_t count = rng.Poisson(expected);
    int64_t attempts = 0;
    int64_t placed = 0;
    int64_t max_attempts = 20 * count + 50;
    while (placed < count && attempts < max_attempts) {
      ++attempts;
      int u = members_r[rng.Categorical(weights[r])];
      int v = members_s[rng.Categorical(weights[s])];
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (!seen.insert({u, v}).second) continue;
      edges.emplace_back(u, v);
      ++placed;
    }
  }
  return graph::Graph(n, edges);
}

}  // namespace cpgan::generators
