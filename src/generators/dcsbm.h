#ifndef CPGAN_GENERATORS_DCSBM_H_
#define CPGAN_GENERATORS_DCSBM_H_

#include "generators/sbm.h"

namespace cpgan::generators {

/// Degree-corrected stochastic block model (Karrer & Newman, 2011): the SBM
/// block structure plus a per-node propensity theta_v proportional to the
/// observed degree, so heavy-tailed degree sequences survive generation.
class DcsbmGenerator : public SbmGenerator {
 public:
  DcsbmGenerator() = default;

  std::string name() const override { return "DCSBM"; }
  void Fit(const graph::Graph& observed, util::Rng& rng) override;
  graph::Graph Generate(util::Rng& rng) const override;

 private:
  /// theta_[v]: within-block endpoint weight of node v.
  std::vector<double> theta_;
};

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_DCSBM_H_
