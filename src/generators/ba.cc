#include "generators/ba.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace cpgan::generators {

BaGenerator::BaGenerator(int num_nodes, int edges_per_node)
    : num_nodes_(num_nodes), edges_per_node_(edges_per_node) {
  CPGAN_CHECK_GE(num_nodes, 0);
  CPGAN_CHECK_GE(edges_per_node, 1);
}

void BaGenerator::Fit(const graph::Graph& observed, util::Rng& rng) {
  (void)rng;
  num_nodes_ = observed.num_nodes();
  if (num_nodes_ > 0) {
    double ratio =
        static_cast<double>(observed.num_edges()) / std::max(1, num_nodes_);
    edges_per_node_ = std::max(1, static_cast<int>(ratio + 0.5));
  }
}

graph::Graph BaGenerator::Generate(util::Rng& rng) const {
  int n = num_nodes_;
  int m = std::min(edges_per_node_, std::max(1, n - 1));
  std::vector<graph::Edge> edges;
  if (n <= 1) return graph::Graph(n, edges);

  // `targets` is the repeated-endpoint list realizing preferential
  // attachment: each endpoint appears once per incident edge.
  std::vector<int> endpoints;
  endpoints.reserve(static_cast<size_t>(n) * m * 2);

  // Seed: a small clique over the first m+1 nodes.
  int seed = std::min(n, m + 1);
  for (int u = 0; u < seed; ++u) {
    for (int v = u + 1; v < seed; ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (int v = seed; v < n; ++v) {
    std::unordered_set<int> chosen;
    while (static_cast<int>(chosen.size()) < m) {
      int target = endpoints.empty()
                       ? static_cast<int>(rng.UniformInt(v))
                       : endpoints[rng.UniformInt(
                             static_cast<int64_t>(endpoints.size()))];
      if (target != v) chosen.insert(target);
    }
    for (int target : chosen) {
      edges.emplace_back(target, v);
      endpoints.push_back(target);
      endpoints.push_back(v);
    }
  }
  return graph::Graph(n, edges);
}

}  // namespace cpgan::generators
