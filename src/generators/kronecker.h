#ifndef CPGAN_GENERATORS_KRONECKER_H_
#define CPGAN_GENERATORS_KRONECKER_H_

#include <array>

#include "generators/generator.h"

namespace cpgan::generators {

/// Stochastic Kronecker graph model (Leskovec et al., 2010) with a 2x2
/// initiator matrix [[a, b], [b, c]].
///
/// Fit is a lightweight KronFit: the Kronecker power k is ceil(log2 n), and
/// the initiator is chosen from a coarse grid so that the expected edge count
/// (a + 2b + c)^k and the degree-distribution skew (Gini) best match the
/// observed graph. Generation places m edges by the standard top-down
/// quadrant descent, which is O(m log n).
class KroneckerGenerator : public GraphGenerator {
 public:
  KroneckerGenerator() = default;
  KroneckerGenerator(int power, double a, double b, double c,
                     int64_t target_edges, int target_nodes);

  std::string name() const override { return "Kronecker"; }
  void Fit(const graph::Graph& observed, util::Rng& rng) override;
  graph::Graph Generate(util::Rng& rng) const override;

  std::array<double, 3> initiator() const { return {a_, b_, c_}; }
  int power() const { return power_; }

 private:
  int power_ = 1;
  double a_ = 0.9;
  double b_ = 0.55;
  double c_ = 0.15;
  int64_t target_edges_ = 0;
  int target_nodes_ = 0;
};

}  // namespace cpgan::generators

#endif  // CPGAN_GENERATORS_KRONECKER_H_
