#ifndef CPGAN_EVAL_COMMUNITY_EVAL_H_
#define CPGAN_EVAL_COMMUNITY_EVAL_H_

#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::eval {

/// Community-preservation scores of Table III (higher is better).
struct CommunityMetrics {
  double nmi = 0.0;
  double ari = 0.0;
};

/// Runs Louvain on both graphs and compares the resulting partitions under
/// the identity node correspondence (Section II-A's bijective-mapping
/// assumption). Both graphs must have the same node count.
CommunityMetrics EvaluateCommunityPreservation(const graph::Graph& observed,
                                               const graph::Graph& generated,
                                               util::Rng& rng);

}  // namespace cpgan::eval

#endif  // CPGAN_EVAL_COMMUNITY_EVAL_H_
