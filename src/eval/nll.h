#ifndef CPGAN_EVAL_NLL_H_
#define CPGAN_EVAL_NLL_H_

#include <vector>

#include "graph/graph.h"

namespace cpgan::eval {

/// Mean negative log-likelihood of edge predictions: positives contribute
/// -log p, sampled non-edges contribute -log (1 - p). Probabilities are
/// clamped away from {0, 1} for stability. Used for Table V's Train/Test NLL
/// columns.
double EdgeNll(const std::vector<double>& positive_probs,
               const std::vector<double>& negative_probs);

/// Area under the ROC curve for link prediction: the probability that a
/// uniformly chosen positive pair outranks a uniformly chosen negative pair
/// (ties count 1/2). Rank-based, O((p+n) log(p+n)).
double LinkPredictionAuc(const std::vector<double>& positive_probs,
                         const std::vector<double>& negative_probs);

}  // namespace cpgan::eval

#endif  // CPGAN_EVAL_NLL_H_
