#ifndef CPGAN_EVAL_GRAPH_METRICS_H_
#define CPGAN_EVAL_GRAPH_METRICS_H_

#include "graph/graph.h"
#include "util/rng.h"

namespace cpgan::eval {

/// The five generation-quality metrics of Table IV. Every field is an
/// absolute difference / discrepancy against the observed graph (lower is
/// better).
struct GenerationMetrics {
  double deg = 0.0;   // MMD of degree distributions
  double clus = 0.0;  // MMD of clustering-coefficient distributions
  double cpl = 0.0;   // |characteristic path length difference|
  double gini = 0.0;  // |Gini coefficient difference|
  double pwe = 0.0;   // |power-law exponent difference|; NaN when either
                      // graph has no fittable power-law tail
};

/// Computes the Table IV metrics of `generated` against `observed`.
GenerationMetrics ComputeGenerationMetrics(const graph::Graph& observed,
                                           const graph::Graph& generated,
                                           util::Rng& rng);

}  // namespace cpgan::eval

#endif  // CPGAN_EVAL_GRAPH_METRICS_H_
