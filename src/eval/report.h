#ifndef CPGAN_EVAL_REPORT_H_
#define CPGAN_EVAL_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cpgan::eval {

/// Mean of a sample (0 for empty input).
double Mean(const std::vector<double>& values);

/// Sample standard deviation (0 for fewer than two values).
double Stddev(const std::vector<double>& values);

/// Formats "mean±std" in units of 1e-2 like the paper's Table III
/// ("72.5±0.4" for mean 0.725, std 0.004).
std::string FormatMeanStdE2(const std::vector<double>& values);

/// Formats "mean±std" in natural units.
std::string FormatMeanStd(const std::vector<double>& values);

/// Human-readable byte count: "512 B", "1.5 KiB", "2.3 MiB", "4.0 GiB".
std::string FormatBytes(int64_t bytes);

/// Human-readable duration from milliseconds: "950 ms", "2.50 s", "3m12s".
std::string FormatMillis(double millis);

}  // namespace cpgan::eval

#endif  // CPGAN_EVAL_REPORT_H_
