#include "eval/report.h"

#include <cmath>
#include <cstdio>

namespace cpgan::eval {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double Stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

std::string FormatMeanStdE2(const std::vector<double>& values) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f±%.1f", Mean(values) * 100.0,
                Stddev(values) * 100.0);
  return std::string(buffer);
}

std::string FormatMeanStd(const std::vector<double>& values) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3g±%.2g", Mean(values),
                Stddev(values));
  return std::string(buffer);
}

std::string FormatBytes(int64_t bytes) {
  char buffer[64];
  const char* units[] = {"KiB", "MiB", "GiB", "TiB"};
  if (bytes < 1024) {
    std::snprintf(buffer, sizeof(buffer), "%lld B",
                  static_cast<long long>(bytes));
    return std::string(buffer);
  }
  double value = static_cast<double>(bytes);
  int unit = -1;
  while (value >= 1024.0 && unit + 1 < 4) {
    value /= 1024.0;
    ++unit;
  }
  std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, units[unit]);
  return std::string(buffer);
}

std::string FormatMillis(double millis) {
  char buffer[64];
  if (millis < 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f ms", millis);
  } else if (millis < 60000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", millis / 1000.0);
  } else {
    int64_t total_seconds = static_cast<int64_t>(millis / 1000.0);
    std::snprintf(buffer, sizeof(buffer), "%lldm%02llds",
                  static_cast<long long>(total_seconds / 60),
                  static_cast<long long>(total_seconds % 60));
  }
  return std::string(buffer);
}

}  // namespace cpgan::eval
