#include "eval/report.h"

#include <cmath>
#include <cstdio>

namespace cpgan::eval {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double Stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

std::string FormatMeanStdE2(const std::vector<double>& values) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f±%.1f", Mean(values) * 100.0,
                Stddev(values) * 100.0);
  return std::string(buffer);
}

std::string FormatMeanStd(const std::vector<double>& values) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3g±%.2g", Mean(values),
                Stddev(values));
  return std::string(buffer);
}

}  // namespace cpgan::eval
