#include "eval/nll.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace cpgan::eval {

double EdgeNll(const std::vector<double>& positive_probs,
               const std::vector<double>& negative_probs) {
  CPGAN_TRACE_SPAN("eval/nll");
  constexpr double kEps = 1e-6;
  double total = 0.0;
  int64_t count = 0;
  for (double p : positive_probs) {
    total += -std::log(std::clamp(p, kEps, 1.0 - kEps));
    ++count;
  }
  for (double p : negative_probs) {
    total += -std::log(std::clamp(1.0 - p, kEps, 1.0 - kEps));
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

double LinkPredictionAuc(const std::vector<double>& positive_probs,
                         const std::vector<double>& negative_probs) {
  if (positive_probs.empty() || negative_probs.empty()) return 0.5;
  // Rank all scores; AUC = (sum of positive ranks - p(p+1)/2) / (p * n).
  std::vector<std::pair<double, int>> scored;  // (score, is_positive)
  scored.reserve(positive_probs.size() + negative_probs.size());
  for (double p : positive_probs) scored.push_back({p, 1});
  for (double p : negative_probs) scored.push_back({p, 0});
  std::sort(scored.begin(), scored.end());
  double rank_sum = 0.0;
  size_t i = 0;
  while (i < scored.size()) {
    size_t j = i;
    while (j < scored.size() && scored[j].first == scored[i].first) ++j;
    // Average rank for the tie group (1-based ranks).
    double avg_rank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    for (size_t k = i; k < j; ++k) {
      if (scored[k].second == 1) rank_sum += avg_rank;
    }
    i = j;
  }
  double p = static_cast<double>(positive_probs.size());
  double n = static_cast<double>(negative_probs.size());
  return (rank_sum - p * (p + 1.0) / 2.0) / (p * n);
}

}  // namespace cpgan::eval
