#ifndef CPGAN_EVAL_MMD_H_
#define CPGAN_EVAL_MMD_H_

#include <vector>

namespace cpgan::eval {

/// First Wasserstein distance between two 1-D histograms on the same grid
/// (unit bin width): sum of |CDF differences|. Histograms of unequal length
/// are first zero-padded to a common support, then normalized on that
/// common support, so both distributions are compared bin-for-bin.
double Emd1D(const std::vector<double>& p, const std::vector<double>& q);

/// Total-variation distance between two histograms (common support +
/// normalization as in Emd1D). Always in [0, 1].
double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q);

/// Kernel choice for MMD over distributions.
enum class MmdKernel {
  kGaussianEmd,  // k(p,q) = exp(-EMD(p,q)^2 / (2 sigma^2)) — GraphRNN's metric
  kGaussianTv,   // k(p,q) = exp(-TV(p,q)^2  / (2 sigma^2)) — GRAN's metric
};

/// Estimator for the squared MMD.
enum class MmdEstimator {
  /// V-statistic: within-set kernel means include the i==j self-pairs
  /// (k(p,p) = 1), which biases the estimate upward by O(1/n). This is the
  /// historical GraphRNN evaluation convention.
  kBiased,
  /// U-statistic: the within-set means exclude i==j (denominator n(n-1)),
  /// which removes the self-pair bias — E[MMD^2(X, X)] = 0. Sets with fewer
  /// than two samples have no off-diagonal pairs; their within-set term
  /// falls back to the biased mean (for singleton sets both reduce to
  /// k(p,p) = 1, so two-graph comparisons are estimator-independent).
  kUnbiased,
};

/// Every term of the MMD^2 decomposition, computed from one shared kernel
/// Gram matrix over a ∪ b (each k(i,j) evaluated once; the Gram rows are
/// parallelized over util::ThreadPool with results independent of the
/// thread count). Use this instead of repeated Mmd() calls when both
/// estimators — or the raw cross-terms — are needed for the same sample
/// sets: the Gram matrix is built once and every field below is read from
/// it.
struct MmdComponents {
  /// Within-set kernel means including the i==j self-pairs (V-statistic).
  double within_a_biased = 0.0;
  double within_b_biased = 0.0;
  /// Within-set kernel means excluding i==j (U-statistic); singleton sets
  /// fall back to the biased mean (see MmdEstimator::kUnbiased).
  double within_a_unbiased = 0.0;
  double within_b_unbiased = 0.0;
  /// Cross-set kernel mean E[k(x, y)].
  double cross = 0.0;

  /// MMD^2 under the chosen estimator, clamped at 0 when finite; NaN (from
  /// non-finite histogram entries) propagates instead of being clamped into
  /// a perfect score.
  double Squared(MmdEstimator estimator) const;
};

/// Builds the shared Gram matrix for the two sample sets and returns every
/// estimator term. Histograms are zero-padded to the joint support of
/// a ∪ b and normalized there once per sample (not once per pair); each
/// pairwise distance is evaluated over exactly the support the pair's own
/// histograms span, so the results are bit-for-bit those of the historical
/// per-pair path. Requires sigma > 0 (CHECK) and non-empty sets.
MmdComponents ComputeMmdComponents(const std::vector<std::vector<double>>& a,
                                   const std::vector<std::vector<double>>& b,
                                   MmdKernel kernel = MmdKernel::kGaussianEmd,
                                   double sigma = 1.0);

/// Squared maximum mean discrepancy between two sets of histograms under the
/// chosen kernel and estimator, clamped at 0 when finite. Non-finite inputs
/// (NaN histogram entries) yield NaN rather than a silently perfect 0.
/// Each histogram is one graph's distribution (e.g. its degree histogram);
/// singleton sets compare two graphs directly, which is the Table IV
/// setting. Requires sigma > 0 (CHECK).
double Mmd(const std::vector<std::vector<double>>& a,
           const std::vector<std::vector<double>>& b,
           MmdKernel kernel = MmdKernel::kGaussianEmd, double sigma = 1.0,
           MmdEstimator estimator = MmdEstimator::kBiased);

}  // namespace cpgan::eval

#endif  // CPGAN_EVAL_MMD_H_
