#ifndef CPGAN_EVAL_MMD_H_
#define CPGAN_EVAL_MMD_H_

#include <vector>

namespace cpgan::eval {

/// First Wasserstein distance between two 1-D histograms on the same grid
/// (unit bin width): sum of |CDF differences|. Histograms are normalized
/// internally.
double Emd1D(const std::vector<double>& p, const std::vector<double>& q);

/// Total-variation distance between two histograms (normalized internally).
double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q);

/// Kernel choice for MMD over distributions.
enum class MmdKernel {
  kGaussianEmd,  // k(p,q) = exp(-EMD(p,q)^2 / (2 sigma^2)) — GraphRNN's metric
  kGaussianTv,   // k(p,q) = exp(-TV(p,q)^2  / (2 sigma^2)) — GRAN's metric
};

/// Squared maximum mean discrepancy between two sets of histograms under the
/// chosen kernel (biased estimator). Each histogram is one graph's
/// distribution (e.g. its degree histogram); singleton sets compare two
/// graphs directly, which is the Table IV setting.
double Mmd(const std::vector<std::vector<double>>& a,
           const std::vector<std::vector<double>>& b,
           MmdKernel kernel = MmdKernel::kGaussianEmd, double sigma = 1.0);

}  // namespace cpgan::eval

#endif  // CPGAN_EVAL_MMD_H_
