#include "eval/mmd.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/check.h"

namespace cpgan::eval {
namespace {

/// Zero-pads both histograms to a common support, then normalizes each on
/// that support. Padding first makes the common-support contract explicit:
/// every bin index means the same thing in both outputs. (Zero bins carry no
/// mass, so the normalizer is unaffected by the padding itself; an all-zero
/// histogram normalizes to all zeros.)
void CommonSupportNormalized(const std::vector<double>& p,
                             const std::vector<double>& q,
                             std::vector<double>& pn,
                             std::vector<double>& qn) {
  const size_t size = std::max(p.size(), q.size());
  pn.assign(size, 0.0);
  qn.assign(size, 0.0);
  std::copy(p.begin(), p.end(), pn.begin());
  std::copy(q.begin(), q.end(), qn.begin());
  auto normalize = [](std::vector<double>& h) {
    double total = 0.0;
    for (double v : h) total += v;
    if (total <= 0.0) {
      std::fill(h.begin(), h.end(), 0.0);
      return;
    }
    for (double& v : h) v /= total;
  };
  normalize(pn);
  normalize(qn);
}

double Kernel(const std::vector<double>& p, const std::vector<double>& q,
              MmdKernel kernel, double sigma) {
  double dist = kernel == MmdKernel::kGaussianEmd ? Emd1D(p, q)
                                                  : TotalVariation(p, q);
  return std::exp(-dist * dist / (2.0 * sigma * sigma));
}

}  // namespace

double Emd1D(const std::vector<double>& p, const std::vector<double>& q) {
  std::vector<double> pn;
  std::vector<double> qn;
  CommonSupportNormalized(p, q, pn, qn);
  double cdf_diff = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < pn.size(); ++i) {
    cdf_diff += pn[i] - qn[i];
    total += std::fabs(cdf_diff);
  }
  return total;
}

double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q) {
  std::vector<double> pn;
  std::vector<double> qn;
  CommonSupportNormalized(p, q, pn, qn);
  double total = 0.0;
  for (size_t i = 0; i < pn.size(); ++i) total += std::fabs(pn[i] - qn[i]);
  return 0.5 * total;
}

double Mmd(const std::vector<std::vector<double>>& a,
           const std::vector<std::vector<double>>& b, MmdKernel kernel,
           double sigma, MmdEstimator estimator) {
  CPGAN_CHECK(!a.empty() && !b.empty());
  CPGAN_TRACE_SPAN("eval/mmd");
  auto cross_mean = [&](const std::vector<std::vector<double>>& x,
                        const std::vector<std::vector<double>>& y) {
    double total = 0.0;
    for (const auto& p : x) {
      for (const auto& q : y) total += Kernel(p, q, kernel, sigma);
    }
    return total / (static_cast<double>(x.size()) * y.size());
  };
  // Within-set mean. The unbiased (U-statistic) form drops the i==j
  // self-pairs, whose k(p,p) = 1 terms inflate the biased estimate by
  // O(1/n); it needs at least two samples, so singleton sets keep the
  // biased form (see MmdEstimator::kUnbiased).
  auto within_mean = [&](const std::vector<std::vector<double>>& x) {
    const size_t n = x.size();
    if (estimator == MmdEstimator::kBiased || n < 2) return cross_mean(x, x);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        total += Kernel(x[i], x[j], kernel, sigma);
      }
    }
    return total / (static_cast<double>(n) * (n - 1));
  };
  double mmd2 = within_mean(a) + within_mean(b) - 2.0 * cross_mean(a, b);
  return std::max(0.0, mmd2);
}

}  // namespace cpgan::eval
