#include "eval/mmd.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/check.h"

namespace cpgan::eval {
namespace {

std::vector<double> Normalized(const std::vector<double>& h) {
  double total = 0.0;
  for (double v : h) total += v;
  std::vector<double> out(h.size(), 0.0);
  if (total <= 0.0) return out;
  for (size_t i = 0; i < h.size(); ++i) out[i] = h[i] / total;
  return out;
}

double Kernel(const std::vector<double>& p, const std::vector<double>& q,
              MmdKernel kernel, double sigma) {
  double dist = kernel == MmdKernel::kGaussianEmd ? Emd1D(p, q)
                                                  : TotalVariation(p, q);
  return std::exp(-dist * dist / (2.0 * sigma * sigma));
}

}  // namespace

double Emd1D(const std::vector<double>& p, const std::vector<double>& q) {
  size_t size = std::max(p.size(), q.size());
  std::vector<double> pn = Normalized(p);
  std::vector<double> qn = Normalized(q);
  pn.resize(size, 0.0);
  qn.resize(size, 0.0);
  double cdf_diff = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < size; ++i) {
    cdf_diff += pn[i] - qn[i];
    total += std::fabs(cdf_diff);
  }
  return total;
}

double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q) {
  size_t size = std::max(p.size(), q.size());
  std::vector<double> pn = Normalized(p);
  std::vector<double> qn = Normalized(q);
  pn.resize(size, 0.0);
  qn.resize(size, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < size; ++i) total += std::fabs(pn[i] - qn[i]);
  return 0.5 * total;
}

double Mmd(const std::vector<std::vector<double>>& a,
           const std::vector<std::vector<double>>& b, MmdKernel kernel,
           double sigma) {
  CPGAN_CHECK(!a.empty() && !b.empty());
  CPGAN_TRACE_SPAN("eval/mmd");
  auto mean_kernel = [&](const std::vector<std::vector<double>>& x,
                         const std::vector<std::vector<double>>& y) {
    double total = 0.0;
    for (const auto& p : x) {
      for (const auto& q : y) total += Kernel(p, q, kernel, sigma);
    }
    return total / (static_cast<double>(x.size()) * y.size());
  };
  double mmd2 = mean_kernel(a, a) + mean_kernel(b, b) - 2.0 * mean_kernel(a, b);
  return std::max(0.0, mmd2);
}

}  // namespace cpgan::eval
