#include "eval/mmd.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace cpgan::eval {
namespace {

/// Zero-pads both histograms to a common support, then normalizes each on
/// that support. Padding first makes the common-support contract explicit:
/// every bin index means the same thing in both outputs. (Zero bins carry no
/// mass, so the normalizer is unaffected by the padding itself; an all-zero
/// histogram normalizes to all zeros.)
void CommonSupportNormalized(const std::vector<double>& p,
                             const std::vector<double>& q,
                             std::vector<double>& pn,
                             std::vector<double>& qn) {
  const size_t size = std::max(p.size(), q.size());
  pn.assign(size, 0.0);
  qn.assign(size, 0.0);
  std::copy(p.begin(), p.end(), pn.begin());
  std::copy(q.begin(), q.end(), qn.begin());
  auto normalize = [](std::vector<double>& h) {
    double total = 0.0;
    for (double v : h) total += v;
    if (total <= 0.0) {
      std::fill(h.begin(), h.end(), 0.0);
      return;
    }
    for (double& v : h) v /= total;
  };
  normalize(pn);
  normalize(qn);
}

/// Per-sample state shared by every kernel evaluation of one MMD call: the
/// concatenated samples of a ∪ b, each normalized once on the joint support
/// (row-major in one flat buffer of `support`-wide rows), plus each sample's
/// pre-padding length.
///
/// The joint support only ever appends zero bins, and a zero bin is inert
/// everywhere it can appear: it adds exactly 0.0 to the normalizer, divides
/// to exactly 0.0, and the pairwise distance loops below stop at the longer
/// of the pair's *original* lengths, so the padded tail is never read for a
/// pair that historically never saw it. Normalized bin values are therefore
/// bit-for-bit those the old per-pair CommonSupportNormalized produced.
///
/// Prefix CDFs are deliberately NOT cached per sample: EMD accumulates the
/// *difference* CDF bin by bin, and fl(Σp − Σq) ≠ fl(Σ(p − q)) in floating
/// point, so serving EMD from per-sample CDFs would perturb results in the
/// last ulp and break the bitwise 1/2/8-thread reproducibility contract
/// (docs/INTERNALS.md, "Evaluation pipeline").
struct PreparedSamples {
  int count = 0;          // na + nb
  size_t support = 0;     // joint support width B
  std::vector<double> hist;   // count x support, normalized rows
  std::vector<size_t> length; // original (pre-padding) histogram lengths

  const double* Row(int i) const { return hist.data() + i * support; }
};

PreparedSamples Prepare(const std::vector<std::vector<double>>& a,
                        const std::vector<std::vector<double>>& b) {
  CPGAN_TRACE_SPAN("eval/mmd/prepare");
  PreparedSamples s;
  s.count = static_cast<int>(a.size() + b.size());
  for (const auto& h : a) s.support = std::max(s.support, h.size());
  for (const auto& h : b) s.support = std::max(s.support, h.size());
  s.hist.assign(static_cast<size_t>(s.count) * s.support, 0.0);
  s.length.reserve(s.count);
  int row = 0;
  auto add = [&](const std::vector<double>& h) {
    double* out = s.hist.data() + static_cast<size_t>(row) * s.support;
    std::copy(h.begin(), h.end(), out);
    double total = 0.0;
    for (size_t i = 0; i < s.support; ++i) total += out[i];
    if (total <= 0.0) {
      std::fill(out, out + s.support, 0.0);
    } else {
      for (size_t i = 0; i < s.support; ++i) out[i] /= total;
    }
    s.length.push_back(h.size());
    ++row;
  };
  for (const auto& h : a) add(h);
  for (const auto& h : b) add(h);
  return s;
}

/// EMD/TV between two prepared rows, evaluated over the support the pair's
/// own histograms span (bitwise identical to the historical per-pair path).
double PairDistance(const PreparedSamples& s, int i, int j, MmdKernel kernel) {
  const double* p = s.Row(i);
  const double* q = s.Row(j);
  const size_t size = std::max(s.length[i], s.length[j]);
  if (kernel == MmdKernel::kGaussianEmd) {
    double cdf_diff = 0.0;
    double total = 0.0;
    for (size_t k = 0; k < size; ++k) {
      cdf_diff += p[k] - q[k];
      total += std::fabs(cdf_diff);
    }
    return total;
  }
  double total = 0.0;
  for (size_t k = 0; k < size; ++k) total += std::fabs(p[k] - q[k]);
  return 0.5 * total;
}

/// Symmetric kernel Gram matrix over the prepared samples. Each k(i,j) is
/// evaluated exactly once (j >= i) and mirrored; rows are distributed over
/// the thread pool with every entry written by exactly one chunk, so the
/// matrix is independent of the thread count. Below ~16k bin operations the
/// pool dispatch costs more than the work and the rows run inline.
std::vector<double> GramMatrix(const PreparedSamples& s, MmdKernel kernel,
                               double sigma) {
  CPGAN_TRACE_SPAN("eval/mmd/gram");
  const int n = s.count;
  std::vector<double> gram(static_cast<size_t>(n) * n, 0.0);
  const double denom = 2.0 * sigma * sigma;
  auto rows = [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      for (int j = static_cast<int>(i); j < n; ++j) {
        double dist = PairDistance(s, static_cast<int>(i), j, kernel);
        double k = std::exp(-dist * dist / denom);
        gram[i * n + j] = k;
        gram[static_cast<size_t>(j) * n + i] = k;
      }
    }
  };
  const int64_t work = static_cast<int64_t>(n) * n * std::max<size_t>(s.support, 1);
  if (work < 16384) {
    rows(0, n);
  } else {
    util::ParallelFor(0, n, 1, rows);
  }
  return gram;
}

}  // namespace

double Emd1D(const std::vector<double>& p, const std::vector<double>& q) {
  std::vector<double> pn;
  std::vector<double> qn;
  CommonSupportNormalized(p, q, pn, qn);
  double cdf_diff = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < pn.size(); ++i) {
    cdf_diff += pn[i] - qn[i];
    total += std::fabs(cdf_diff);
  }
  return total;
}

double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q) {
  std::vector<double> pn;
  std::vector<double> qn;
  CommonSupportNormalized(p, q, pn, qn);
  double total = 0.0;
  for (size_t i = 0; i < pn.size(); ++i) total += std::fabs(pn[i] - qn[i]);
  return 0.5 * total;
}

double MmdComponents::Squared(MmdEstimator estimator) const {
  const double within_a = estimator == MmdEstimator::kBiased
                              ? within_a_biased
                              : within_a_unbiased;
  const double within_b = estimator == MmdEstimator::kBiased
                              ? within_b_biased
                              : within_b_unbiased;
  const double mmd2 = within_a + within_b - 2.0 * cross;
  // A NaN here means a non-finite histogram entry reached the kernel;
  // std::max(0.0, NaN) would silently turn that into a *perfect* score.
  return std::isfinite(mmd2) ? std::max(0.0, mmd2) : mmd2;
}

MmdComponents ComputeMmdComponents(const std::vector<std::vector<double>>& a,
                                   const std::vector<std::vector<double>>& b,
                                   MmdKernel kernel, double sigma) {
  CPGAN_CHECK(!a.empty() && !b.empty());
  CPGAN_CHECK_GT(sigma, 0.0);
  CPGAN_TRACE_SPAN("eval/mmd");
  const PreparedSamples s = Prepare(a, b);
  const std::vector<double> gram = GramMatrix(s, kernel, sigma);
  const int na = static_cast<int>(a.size());
  const int nb = static_cast<int>(b.size());
  const int n = s.count;

  // The reductions below read the Gram matrix serially in the same row-major
  // pair order the historical code evaluated its kernels in, so each term is
  // bitwise identical to the old repeated-evaluation path for any thread
  // count. `off` is the set's first row in the Gram matrix.
  auto within = [&](int off, int m, bool unbiased) {
    if (m < 2) unbiased = false;  // singleton fallback (see MmdEstimator)
    double total = 0.0;
    for (int i = 0; i < m; ++i) {
      const double* row = gram.data() + static_cast<size_t>(off + i) * n + off;
      for (int j = 0; j < m; ++j) {
        if (unbiased && i == j) continue;
        total += row[j];
      }
    }
    const double pairs = unbiased
                             ? static_cast<double>(m) * (m - 1)
                             : static_cast<double>(m) * m;
    return total / pairs;
  };
  MmdComponents c;
  c.within_a_biased = within(0, na, false);
  c.within_a_unbiased = within(0, na, true);
  c.within_b_biased = within(na, nb, false);
  c.within_b_unbiased = within(na, nb, true);
  double cross_total = 0.0;
  for (int i = 0; i < na; ++i) {
    const double* row = gram.data() + static_cast<size_t>(i) * n + na;
    for (int j = 0; j < nb; ++j) cross_total += row[j];
  }
  c.cross = cross_total / (static_cast<double>(na) * nb);
  return c;
}

double Mmd(const std::vector<std::vector<double>>& a,
           const std::vector<std::vector<double>>& b, MmdKernel kernel,
           double sigma, MmdEstimator estimator) {
  return ComputeMmdComponents(a, b, kernel, sigma).Squared(estimator);
}

}  // namespace cpgan::eval
