#include "eval/graph_metrics.h"

#include <algorithm>
#include <cmath>

#include "eval/mmd.h"
#include "graph/algorithms.h"
#include "graph/stats.h"
#include "obs/trace.h"

namespace cpgan::eval {

GenerationMetrics ComputeGenerationMetrics(const graph::Graph& observed,
                                           const graph::Graph& generated,
                                           util::Rng& rng) {
  CPGAN_TRACE_SPAN("eval/generation_metrics");
  GenerationMetrics m;
  int max_degree = 1;
  for (int v = 0; v < observed.num_nodes(); ++v) {
    max_degree = std::max(max_degree, observed.degree(v));
  }
  for (int v = 0; v < generated.num_nodes(); ++v) {
    max_degree = std::max(max_degree, generated.degree(v));
  }
  // Unbiased estimator by default: the Table IV/V comparisons must not carry
  // the self-pair bias of the V-statistic when callers pass multi-graph
  // sample sets (singleton sets, as here, are estimator-independent).
  m.deg = Mmd({graph::DegreeHistogram(observed, max_degree)},
              {graph::DegreeHistogram(generated, max_degree)},
              MmdKernel::kGaussianEmd, /*sigma=*/static_cast<double>(
                  std::max(1, max_degree / 10)),
              MmdEstimator::kUnbiased);
  m.clus = Mmd({graph::ClusteringHistogram(observed, 20)},
               {graph::ClusteringHistogram(generated, 20)},
               MmdKernel::kGaussianTv, /*sigma=*/0.2,
               MmdEstimator::kUnbiased);
  m.cpl = std::fabs(graph::CharacteristicPathLength(observed, rng) -
                    graph::CharacteristicPathLength(generated, rng));
  std::vector<int> deg_obs = observed.Degrees();
  std::vector<int> deg_gen = generated.Degrees();
  m.gini = std::fabs(graph::GiniCoefficient(deg_obs) -
                     graph::GiniCoefficient(deg_gen));
  // PowerLawExponent returns NaN when a fit is undefined (e.g. an empty or
  // degenerate generated graph). |NaN - x| is NaN, which we keep: the old
  // 0.0 sentinel made an empty generated graph look |pwe_obs| away — a
  // misleading but plausible-looking distance — whereas NaN flags the
  // comparison as not meaningful for downstream aggregation to skip.
  m.pwe = std::fabs(graph::PowerLawExponent(deg_obs) -
                    graph::PowerLawExponent(deg_gen));
  return m;
}

}  // namespace cpgan::eval
