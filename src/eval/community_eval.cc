#include "eval/community_eval.h"

#include "community/louvain.h"
#include "community/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace cpgan::eval {

CommunityMetrics EvaluateCommunityPreservation(const graph::Graph& observed,
                                               const graph::Graph& generated,
                                               util::Rng& rng) {
  CPGAN_CHECK_EQ(observed.num_nodes(), generated.num_nodes());
  CPGAN_TRACE_SPAN("eval/community");
  community::LouvainResult obs = community::Louvain(observed, rng);
  community::LouvainResult gen = community::Louvain(generated, rng);
  CommunityMetrics metrics;
  metrics.nmi = community::NormalizedMutualInformation(obs.FinalPartition(),
                                                       gen.FinalPartition());
  metrics.ari = community::AdjustedRandIndex(obs.FinalPartition(),
                                             gen.FinalPartition());
  return metrics;
}

}  // namespace cpgan::eval
