#ifndef CPGAN_NN_GRU_H_
#define CPGAN_NN_GRU_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace cpgan::nn {

/// Gated Recurrent Unit cell (Cho et al., 2014), used by the CPGAN graph
/// decoder (eq. 13) to fold the k hierarchy-level features into a single node
/// representation, and by the sequential baselines (GraphRNN-S, NetGAN).
///
///   r = sigmoid(x W_xr + h W_hr + b_r)
///   z = sigmoid(x W_xz + h W_hz + b_z)
///   n = tanh  (x W_xn + (r o h) W_hn + b_n)
///   h' = (1 - z) o n + z o h
class GruCell : public Module {
 public:
  GruCell(int input_size, int hidden_size, util::Rng& rng);

  /// x: batch x input, h: batch x hidden -> batch x hidden.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         const tensor::Tensor& h) const;

  /// Zero-valued initial hidden state for a batch.
  tensor::Tensor InitialState(int batch) const;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  tensor::Tensor w_x_;  // input x (3*hidden): [r | z | n]
  tensor::Tensor w_h_;  // hidden x (3*hidden)
  tensor::Tensor b_;    // 1 x (3*hidden)
};

}  // namespace cpgan::nn

#endif  // CPGAN_NN_GRU_H_
