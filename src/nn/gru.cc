#include "nn/gru.h"

namespace cpgan::nn {

GruCell::GruCell(int input_size, int hidden_size, util::Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_x_ = AddParameter("w_x", input_size, 3 * hidden_size, rng);
  w_h_ = AddParameter("w_h", hidden_size, 3 * hidden_size, rng);
  b_ = AddZeroParameter("b", 1, 3 * hidden_size);
}

tensor::Tensor GruCell::Forward(const tensor::Tensor& x,
                                const tensor::Tensor& h) const {
  using namespace cpgan::tensor;  // NOLINT(build/namespaces): local op DSL
  CPGAN_CHECK_EQ(x.cols(), input_size_);
  CPGAN_CHECK_EQ(h.cols(), hidden_size_);
  CPGAN_CHECK_EQ(x.rows(), h.rows());
  Tensor gates_x = AddRowVec(Matmul(x, w_x_), b_);
  Tensor gates_h = Matmul(h, w_h_);
  Tensor r = Sigmoid(Add(SliceCols(gates_x, 0, hidden_size_),
                         SliceCols(gates_h, 0, hidden_size_)));
  Tensor z = Sigmoid(Add(SliceCols(gates_x, hidden_size_, hidden_size_),
                         SliceCols(gates_h, hidden_size_, hidden_size_)));
  Tensor n = Tanh(Add(SliceCols(gates_x, 2 * hidden_size_, hidden_size_),
                      Mul(r, SliceCols(gates_h, 2 * hidden_size_,
                                       hidden_size_))));
  // h' = (1 - z) o n + z o h = n - z o n + z o h
  return Add(Sub(n, Mul(z, n)), Mul(z, h));
}

tensor::Tensor GruCell::InitialState(int batch) const {
  return tensor::Constant(tensor::Matrix(batch, hidden_size_));
}

}  // namespace cpgan::nn
