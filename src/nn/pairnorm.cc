#include "nn/pairnorm.h"

namespace cpgan::nn {

tensor::Tensor PairNorm(const tensor::Tensor& x, float scale, float eps) {
  using namespace cpgan::tensor;  // NOLINT(build/namespaces): local op DSL
  Tensor centered = Sub(x, Matmul(Constant(Matrix(x.rows(), 1, 1.0f)),
                                  ColMean(x)));
  Tensor norms = AddConst(RowL2Norm(centered), eps);
  return Scale(MulColVec(centered, Reciprocal(norms)), scale);
}

}  // namespace cpgan::nn
