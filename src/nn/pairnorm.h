#ifndef CPGAN_NN_PAIRNORM_H_
#define CPGAN_NN_PAIRNORM_H_

#include "tensor/ops.h"

namespace cpgan::nn {

/// PairNorm (Zhao & Akoglu, ICLR 2020), used after each GCN in the ladder
/// encoder to allow stacking convolution/pooling layers without
/// over-smoothing (Section III-C2 of the paper).
///
/// Centers features across nodes, then rescales every row to a constant
/// norm `scale`:
///   xc_i   = x_i - mean_rows(x)
///   out_i  = scale * xc_i / (||xc_i||_2 + eps)
tensor::Tensor PairNorm(const tensor::Tensor& x, float scale = 1.0f,
                        float eps = 1e-6f);

}  // namespace cpgan::nn

#endif  // CPGAN_NN_PAIRNORM_H_
