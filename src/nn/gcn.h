#ifndef CPGAN_NN_GCN_H_
#define CPGAN_NN_GCN_H_

#include <memory>

#include "nn/module.h"
#include "tensor/ops.h"

namespace cpgan::nn {

/// Graph convolution layer (Kipf & Welling):
///   Z = A_hat X W + b
/// where A_hat is the normalized adjacency (eq. 6 of the paper). The layer
/// supports both a constant sparse A_hat (level-0 graphs) and a dense,
/// differentiable A_hat (coarsened graphs produced by DiffPool, eq. 8), where
/// gradients flow through the adjacency as well.
class GcnConv : public Module {
 public:
  GcnConv(int in_features, int out_features, util::Rng& rng);

  /// Sparse-adjacency forward: Z = spmm(a_hat, X) W + b.
  tensor::Tensor Forward(const std::shared_ptr<const tensor::SparseMatrix>& a_hat,
                         const tensor::Tensor& x) const;

  /// Dense-adjacency forward (adjacency participates in autograd). The caller
  /// is responsible for normalizing `a_hat` if desired (see
  /// RowNormalizeAdjacency).
  tensor::Tensor ForwardDense(const tensor::Tensor& a_hat,
                              const tensor::Tensor& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  tensor::Tensor weight_;
  tensor::Tensor bias_;
};

/// Differentiably row-normalizes a dense non-negative adjacency with added
/// self-loops: rows sum to one. Used for coarsened-level graph convolutions.
tensor::Tensor RowNormalizeAdjacency(const tensor::Tensor& a);

}  // namespace cpgan::nn

#endif  // CPGAN_NN_GCN_H_
