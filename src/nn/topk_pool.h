#ifndef CPGAN_NN_TOPK_POOL_H_
#define CPGAN_NN_TOPK_POOL_H_

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace cpgan::nn {

/// Output of a top-k pooling step.
struct TopKPoolOutput {
  /// Gated features of the kept nodes: k x d.
  tensor::Tensor features;
  /// Coarsened dense adjacency over the kept nodes: k x k.
  tensor::Tensor adjacency;
  /// Indices of the kept nodes in the input ordering (descending score).
  std::vector<int> kept;
};

/// Graph U-Nets-style top-k pooling (Gao & Ji, 2019), the node-*selection*
/// alternative to DiffPool's node-*clustering* that the paper contrasts with
/// in Section II-B2 ("Graph U-Nets chooses specific nodes to realize
/// upsampling and downsampling").
///
/// Scores nodes with a learnable projection y = X p / ||p||, keeps the
/// ceil(ratio * n) highest-scoring nodes, and gates their features by
/// sigmoid(y) so the selection is trainable through the gate.
class TopKPool : public Module {
 public:
  TopKPool(int feature_dim, double ratio, util::Rng& rng);

  /// x: n x d features; adjacency: dense n x n. Returns the pooled graph.
  TopKPoolOutput Forward(const tensor::Tensor& x,
                         const tensor::Tensor& adjacency) const;

  double ratio() const { return ratio_; }

 private:
  int feature_dim_;
  double ratio_;
  tensor::Tensor projection_;  // d x 1
};

}  // namespace cpgan::nn

#endif  // CPGAN_NN_TOPK_POOL_H_
