#ifndef CPGAN_NN_LINEAR_H_
#define CPGAN_NN_LINEAR_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace cpgan::nn {

/// Affine layer y = x W + b (bias optional).
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Rng& rng, bool bias = true);

  /// x: n x in -> n x out.
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  tensor::Tensor weight_;  // in x out
  tensor::Tensor bias_;    // 1 x out (undefined when bias disabled)
};

}  // namespace cpgan::nn

#endif  // CPGAN_NN_LINEAR_H_
