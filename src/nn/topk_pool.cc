#include "nn/topk_pool.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace cpgan::nn {

namespace t = cpgan::tensor;

TopKPool::TopKPool(int feature_dim, double ratio, util::Rng& rng)
    : feature_dim_(feature_dim), ratio_(ratio) {
  CPGAN_CHECK(ratio > 0.0 && ratio <= 1.0);
  projection_ = AddParameter("projection", feature_dim, 1, rng);
}

TopKPoolOutput TopKPool::Forward(const t::Tensor& x,
                                 const t::Tensor& adjacency) const {
  CPGAN_CHECK_EQ(x.cols(), feature_dim_);
  CPGAN_CHECK_EQ(adjacency.rows(), adjacency.cols());
  CPGAN_CHECK_EQ(adjacency.rows(), x.rows());
  int n = x.rows();
  // An empty pool (a community with no nodes) keeps nothing; for n > 0 at
  // least one node survives so downstream layers never see a 0-row graph
  // from a populated input.
  int keep = n == 0 ? 0 : std::max(1, static_cast<int>(std::ceil(ratio_ * n)));

  // Scores y = X p / ||p|| (n x 1). The norm is part of the graph: detaching
  // it (an earlier version scaled by a constant 1/||p||) drops the
  // -y p/||p||^2 term from the projection gradient, which the finite
  // difference checker flags (tests/numeric/gradcheck_nn_test.cc).
  t::Tensor norm =
      t::Sqrt(t::AddConst(t::SumAll(t::Square(projection_)), 1e-12f));
  t::Tensor scores =
      t::MulRowVec(t::Matmul(x, projection_), t::Reciprocal(norm));

  // Select the top-k scoring nodes (selection itself uses forward values;
  // gradients flow through the sigmoid gate below).
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  const t::Matrix& score_values = scores.value();
  std::stable_sort(order.begin(), order.end(), [&score_values](int a, int b) {
    return score_values.At(a, 0) > score_values.At(b, 0);
  });
  std::vector<int> kept(order.begin(), order.begin() + keep);

  TopKPoolOutput out;
  out.kept = kept;
  t::Tensor gate = t::Sigmoid(t::GatherRows(scores, kept));  // k x 1
  out.features = t::MulColVec(t::GatherRows(x, kept), gate);
  // A' = A[kept][:, kept].
  t::Tensor rows = t::GatherRows(adjacency, kept);
  out.adjacency = t::Transpose(t::GatherRows(t::Transpose(rows), kept));
  return out;
}

}  // namespace cpgan::nn
