#include "nn/module.h"

#include <cmath>

namespace cpgan::nn {

std::vector<tensor::Tensor> Module::Parameters() const {
  std::vector<tensor::Tensor> out;
  for (const auto& [name, p] : params_) out.push_back(p);
  for (const Module* sub : submodules_) {
    auto sub_params = sub->Parameters();
    out.insert(out.end(), sub_params.begin(), sub_params.end());
  }
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const tensor::Tensor& p : Parameters()) total += p.value().size();
  return total;
}

void Module::ZeroGrad() {
  for (tensor::Tensor& p : Parameters()) p.ZeroGrad();
}

tensor::Tensor Module::AddParameter(const std::string& name, int rows,
                                    int cols, util::Rng& rng) {
  tensor::Matrix w(rows, cols);
  XavierInit(w, rng);
  tensor::Tensor param(std::move(w), /*requires_grad=*/true);
  params_.emplace_back(name, param);
  return param;
}

tensor::Tensor Module::AddZeroParameter(const std::string& name, int rows,
                                        int cols) {
  tensor::Tensor param(tensor::Matrix(rows, cols), /*requires_grad=*/true);
  params_.emplace_back(name, param);
  return param;
}

void Module::RegisterModule(Module* submodule) {
  submodules_.push_back(submodule);
}

void XavierInit(tensor::Matrix& w, util::Rng& rng) {
  float fan_in = static_cast<float>(w.rows());
  float fan_out = static_cast<float>(w.cols());
  float limit = std::sqrt(6.0f / (fan_in + fan_out));
  w.FillUniform(rng, -limit, limit);
}

}  // namespace cpgan::nn
