#ifndef CPGAN_NN_MLP_H_
#define CPGAN_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"

namespace cpgan::nn {

/// Activation applied between MLP layers.
enum class Activation {
  kNone,
  kRelu,
  kTanh,
  kSigmoid,
};

/// Applies the activation as a differentiable op.
tensor::Tensor ApplyActivation(const tensor::Tensor& x, Activation act);

/// Multi-layer perceptron with a hidden activation and optional output
/// activation (default none, so it can emit logits).
class Mlp : public Module {
 public:
  /// `sizes` lists layer widths, e.g. {in, hidden, out}.
  Mlp(const std::vector<int>& sizes, util::Rng& rng,
      Activation hidden = Activation::kRelu,
      Activation output = Activation::kNone);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int in_features() const { return layers_.front()->in_features(); }
  int out_features() const { return layers_.back()->out_features(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_;
  Activation output_;
};

}  // namespace cpgan::nn

#endif  // CPGAN_NN_MLP_H_
