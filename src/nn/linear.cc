#include "nn/linear.h"

namespace cpgan::nn {

Linear::Linear(int in_features, int out_features, util::Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = AddParameter("weight", in_features, out_features, rng);
  if (bias) bias_ = AddZeroParameter("bias", 1, out_features);
}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  CPGAN_CHECK_EQ(x.cols(), in_features_);
  tensor::Tensor out = tensor::Matmul(x, weight_);
  if (bias_.defined()) out = tensor::AddRowVec(out, bias_);
  return out;
}

}  // namespace cpgan::nn
