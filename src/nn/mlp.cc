#include "nn/mlp.h"

namespace cpgan::nn {

tensor::Tensor ApplyActivation(const tensor::Tensor& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return tensor::Relu(x);
    case Activation::kTanh:
      return tensor::Tanh(x);
    case Activation::kSigmoid:
      return tensor::Sigmoid(x);
  }
  return x;
}

Mlp::Mlp(const std::vector<int>& sizes, util::Rng& rng, Activation hidden,
         Activation output)
    : hidden_(hidden), output_(output) {
  CPGAN_CHECK_GE(sizes.size(), 2u);
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(sizes[i], sizes[i + 1], rng));
    RegisterModule(layers_.back().get());
  }
}

tensor::Tensor Mlp::Forward(const tensor::Tensor& x) const {
  tensor::Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    bool last = (i + 1 == layers_.size());
    h = ApplyActivation(h, last ? output_ : hidden_);
  }
  return h;
}

}  // namespace cpgan::nn
