#ifndef CPGAN_NN_MODULE_H_
#define CPGAN_NN_MODULE_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace cpgan::nn {

/// Base class for neural modules: owns named parameters and exposes them for
/// optimizers and serialization. Submodules register their parameters into
/// the parent via RegisterModule.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its registered submodules.
  std::vector<tensor::Tensor> Parameters() const;

  /// Total number of trainable scalars.
  int64_t ParameterCount() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();

 protected:
  /// Creates and registers a trainable parameter initialized with
  /// Glorot/Xavier uniform scaling for a (fan_in, fan_out) weight.
  tensor::Tensor AddParameter(const std::string& name, int rows, int cols,
                              util::Rng& rng);

  /// Creates and registers a zero-initialized parameter (biases).
  tensor::Tensor AddZeroParameter(const std::string& name, int rows, int cols);

  /// Registers a submodule whose parameters are reported by Parameters().
  void RegisterModule(Module* submodule);

 private:
  std::vector<std::pair<std::string, tensor::Tensor>> params_;
  std::vector<Module*> submodules_;
};

/// Fills `w` with Glorot/Xavier uniform values based on its shape.
void XavierInit(tensor::Matrix& w, util::Rng& rng);

}  // namespace cpgan::nn

#endif  // CPGAN_NN_MODULE_H_
