#include "nn/gcn.h"

namespace cpgan::nn {

GcnConv::GcnConv(int in_features, int out_features, util::Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = AddParameter("weight", in_features, out_features, rng);
  bias_ = AddZeroParameter("bias", 1, out_features);
}

tensor::Tensor GcnConv::Forward(
    const std::shared_ptr<const tensor::SparseMatrix>& a_hat,
    const tensor::Tensor& x) const {
  CPGAN_CHECK_EQ(x.cols(), in_features_);
  tensor::Tensor xw = tensor::Matmul(x, weight_);
  tensor::Tensor out = tensor::Spmm(a_hat, xw);
  return tensor::AddRowVec(out, bias_);
}

tensor::Tensor GcnConv::ForwardDense(const tensor::Tensor& a_hat,
                                     const tensor::Tensor& x) const {
  CPGAN_CHECK_EQ(x.cols(), in_features_);
  tensor::Tensor xw = tensor::Matmul(x, weight_);
  tensor::Tensor out = tensor::Matmul(a_hat, xw);
  return tensor::AddRowVec(out, bias_);
}

tensor::Tensor RowNormalizeAdjacency(const tensor::Tensor& a) {
  CPGAN_CHECK_EQ(a.rows(), a.cols());
  // A + I for self-loops, then divide each row by its sum.
  tensor::Matrix eye(a.rows(), a.cols());
  for (int i = 0; i < a.rows(); ++i) eye.At(i, i) = 1.0f;
  tensor::Tensor with_loops = tensor::Add(a, tensor::Constant(std::move(eye)));
  tensor::Tensor sums = tensor::AddConst(tensor::RowSum(with_loops), 1e-6f);
  return tensor::MulColVec(with_loops, tensor::Reciprocal(sums));
}

}  // namespace cpgan::nn
