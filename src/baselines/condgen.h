#ifndef CPGAN_BASELINES_CONDGEN_H_
#define CPGAN_BASELINES_CONDGEN_H_

#include <memory>

#include "baselines/learned_generator.h"
#include "core/cpgan.h"

namespace cpgan::baselines {

/// CondGen-R (Yang et al., 2019), the scalable variant used in the paper:
/// a GCN variational encoder with an inner-product decoder inside a GAN,
/// permutation-invariant via the embedding-space formulation.
///
/// Implemented on the shared CPGAN machinery with the hierarchy, the
/// clustering-consistency loss, and the subgraph sampling disabled — it
/// trains on the full graph every step, which bounds its scalability
/// (the paper's efficiency tables stop CondGen-R at 1k nodes).
class CondGenR : public LearnedGenerator {
 public:
  /// `epochs`/`seed` mirror the CPGAN defaults for fair comparisons.
  explicit CondGenR(int epochs = 120, uint64_t seed = 1);

  std::string name() const override { return "CondGen-R"; }
  int max_feasible_nodes() const override { return 900; }

  LearnedTrainStats Fit(const graph::Graph& observed) override;
  graph::Graph Generate() override;
  std::vector<double> EdgeProbabilities(
      const std::vector<graph::Edge>& pairs) override;

 private:
  int epochs_;
  uint64_t seed_;
  std::unique_ptr<core::Cpgan> model_;
};

}  // namespace cpgan::baselines

#endif  // CPGAN_BASELINES_CONDGEN_H_
