#include "baselines/graphrnn.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "util/memory_tracker.h"
#include "util/timer.h"

namespace cpgan::baselines {

namespace t = cpgan::tensor;

GraphRnnS::GraphRnnS(const GraphRnnConfig& config)
    : config_(config), rng_(config.seed) {}

LearnedTrainStats GraphRnnS::Fit(const graph::Graph& observed) {
  CPGAN_CHECK(!trained_);
  CPGAN_CHECK(FeasibleFor(observed.num_nodes()));
  util::Timer timer;
  util::MemoryTracker::Global().ResetPeak();
  num_nodes_ = observed.num_nodes();
  num_edges_ = observed.num_edges();

  // Estimate the BFS bandwidth (largest back-distance over a BFS order).
  std::vector<int> order = graph::BfsOrder(observed, 0);
  std::vector<int> position(num_nodes_);
  for (int i = 0; i < num_nodes_; ++i) position[order[i]] = i;
  int bandwidth = 1;
  for (const auto& [u, v] : observed.Edges()) {
    bandwidth = std::max(bandwidth, std::abs(position[u] - position[v]));
  }
  bandwidth_ = std::min(bandwidth, config_.max_prev);

  gru_ = std::make_unique<nn::GruCell>(bandwidth_, config_.hidden_dim, rng_);
  head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config_.hidden_dim, config_.hidden_dim, bandwidth_},
      rng_);

  std::vector<t::Tensor> params = gru_->Parameters();
  {
    auto more = head_->Parameters();
    params.insert(params.end(), more.begin(), more.end());
  }
  t::Adam opt(params, config_.learning_rate);

  LearnedTrainStats stats;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Fresh BFS order from a random start each epoch (ordering augmentation
    // as in the original training procedure).
    int start = static_cast<int>(rng_.UniformInt(num_nodes_));
    order = graph::BfsOrder(observed, start);
    for (int i = 0; i < num_nodes_; ++i) position[order[i]] = i;

    // Target adjacency vectors: y[i][d] = 1 iff node order[i] links to
    // order[i - 1 - d], d < bandwidth_.
    std::vector<std::vector<float>> targets(
        num_nodes_, std::vector<float>(bandwidth_, 0.0f));
    for (const auto& [u, v] : observed.Edges()) {
      int a = std::min(position[u], position[v]);
      int b = std::max(position[u], position[v]);
      int back = b - a - 1;
      if (back < bandwidth_) targets[b][back] = 1.0f;
    }

    t::Tensor h = gru_->InitialState(1);
    t::Tensor prev = t::Constant(t::Matrix(1, bandwidth_, 1.0f));
    t::Tensor loss = t::ScalarConstant(0.0f);
    int steps = 0;
    for (int i = 1; i < num_nodes_; ++i) {
      h = gru_->Forward(prev, h);
      t::Tensor logits = head_->Forward(h);
      t::Matrix y(1, bandwidth_);
      int valid = std::min(i, bandwidth_);
      for (int d = 0; d < valid; ++d) y.At(0, d) = targets[i][d];
      loss = t::Add(loss, t::BceWithLogits(logits, y, 4.0f));
      ++steps;
      t::Matrix prev_value(1, bandwidth_);
      for (int d = 0; d < bandwidth_; ++d) prev_value.At(0, d) = targets[i][d];
      prev = t::Constant(std::move(prev_value));
    }
    loss = t::Scale(loss, 1.0f / std::max(1, steps));
    t::Backward(loss);
    t::ClipGradients(params, 5.0f);
    opt.Step();
    opt.ZeroGrad();
    stats.loss.push_back(loss.Scalar());
  }
  trained_ = true;
  stats.train_seconds = timer.Seconds();
  stats.peak_bytes = util::MemoryTracker::Global().peak_bytes();
  return stats;
}

graph::Graph GraphRnnS::Generate() {
  CPGAN_CHECK(trained_);
  std::vector<graph::Edge> edges;
  t::Tensor h = gru_->InitialState(1);
  t::Tensor prev = t::Constant(t::Matrix(1, bandwidth_, 1.0f));
  for (int i = 1; i < num_nodes_; ++i) {
    h = gru_->Forward(prev, h);
    t::Matrix probs = t::Sigmoid(head_->Forward(h)).value();
    t::Matrix emitted(1, bandwidth_);
    int valid = std::min(i, bandwidth_);
    for (int d = 0; d < valid; ++d) {
      if (rng_.Bernoulli(probs.At(0, d))) {
        edges.emplace_back(i - 1 - d, i);
        emitted.At(0, d) = 1.0f;
      }
    }
    prev = t::Constant(std::move(emitted));
  }
  return graph::Graph(num_nodes_, edges);
}

}  // namespace cpgan::baselines
