#ifndef CPGAN_BASELINES_LEARNED_GENERATOR_H_
#define CPGAN_BASELINES_LEARNED_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace cpgan::baselines {

/// Training statistics common to every learning-based model.
struct LearnedTrainStats {
  std::vector<float> loss;     // objective per epoch
  double train_seconds = 0.0;
  int64_t peak_bytes = 0;
};

/// Interface for learning-based graph generative baselines (Section II-B2).
///
/// Feasibility emulation: the paper reports OOM for several baselines on the
/// larger datasets (24 GB GPU budget). On this repo's scaled-down datasets the
/// same relative pattern is reproduced through `max_feasible_nodes()`: each
/// model refuses inputs whose dense working set would exceed the simulated
/// memory budget, mirroring which table cells read "OOM".
class LearnedGenerator {
 public:
  virtual ~LearnedGenerator() = default;

  /// Model name as used in the paper's tables.
  virtual std::string name() const = 0;

  /// Largest node count this model can handle under the simulated budget.
  virtual int max_feasible_nodes() const = 0;

  /// True if the model can train/generate on a graph of `n` nodes.
  bool FeasibleFor(int n) const { return n <= max_feasible_nodes(); }

  /// Trains on one observed graph.
  virtual LearnedTrainStats Fit(const graph::Graph& observed) = 0;

  /// Generates a graph with the observed node/edge counts.
  virtual graph::Graph Generate() = 0;

  /// Edge probabilities under the trained model for NLL evaluation; empty if
  /// the model has no tractable edge likelihood.
  virtual std::vector<double> EdgeProbabilities(
      const std::vector<graph::Edge>& pairs) {
    (void)pairs;
    return {};
  }
};

}  // namespace cpgan::baselines

#endif  // CPGAN_BASELINES_LEARNED_GENERATOR_H_
