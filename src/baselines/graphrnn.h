#ifndef CPGAN_BASELINES_GRAPHRNN_H_
#define CPGAN_BASELINES_GRAPHRNN_H_

#include <memory>

#include "baselines/learned_generator.h"
#include "nn/gru.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace cpgan::baselines {

/// Hyper-parameters for GraphRNN-S.
struct GraphRnnConfig {
  int max_prev = 32;   // adjacency-vector bandwidth M (capped)
  int hidden_dim = 64;
  int epochs = 40;
  float learning_rate = 3e-3f;
  uint64_t seed = 1;
};

/// GraphRNN-S (You et al., 2018), the scalable simplified variant: nodes are
/// emitted in BFS order; a graph-level GRU consumes the previous node's
/// adjacency vector (connections to the last M nodes) and an MLP head emits
/// the Bernoulli logits of the next node's adjacency vector, trained with
/// teacher forcing. Not permutation-invariant — the BFS ordering is part of
/// the model, which is why the paper excludes it from the community table.
class GraphRnnS : public LearnedGenerator {
 public:
  explicit GraphRnnS(const GraphRnnConfig& config = {});

  std::string name() const override { return "GraphRNN-S"; }
  int max_feasible_nodes() const override { return 700; }

  LearnedTrainStats Fit(const graph::Graph& observed) override;
  graph::Graph Generate() override;

 private:
  GraphRnnConfig config_;
  util::Rng rng_;
  bool trained_ = false;
  int num_nodes_ = 0;
  int64_t num_edges_ = 0;
  int bandwidth_ = 0;

  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace cpgan::baselines

#endif  // CPGAN_BASELINES_GRAPHRNN_H_
