#ifndef CPGAN_BASELINES_GRAN_H_
#define CPGAN_BASELINES_GRAN_H_

#include <memory>

#include "baselines/learned_generator.h"
#include "nn/gru.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace cpgan::baselines {

/// Hyper-parameters for the GRAN baseline.
struct GranConfig {
  int block_size = 8;   // nodes emitted per autoregressive step
  int max_prev = 48;    // adjacency-vector bandwidth per emitted node
  int hidden_dim = 64;
  int epochs = 40;
  float learning_rate = 3e-3f;
  uint64_t seed = 1;
};

/// GRAN (Liao et al., 2019), compact re-implementation of its defining
/// mechanism: the graph is emitted **one block of nodes at a time** (rather
/// than GraphRNN's single node per step), with a recurrent state carrying
/// the generation context and an MLP head emitting the Bernoulli logits of
/// every new node's connections to the previous `max_prev` nodes. Keeping
/// the block granularity gives GRAN its O(n / B) sequential-steps advantage
/// over GraphRNN while remaining auto-regressive (and therefore, as the
/// paper notes, not permutation-invariant).
class Gran : public LearnedGenerator {
 public:
  explicit Gran(const GranConfig& config = {});

  std::string name() const override { return "GRAN"; }
  int max_feasible_nodes() const override { return 800; }

  LearnedTrainStats Fit(const graph::Graph& observed) override;
  graph::Graph Generate() override;

 private:
  GranConfig config_;
  util::Rng rng_;
  bool trained_ = false;
  int num_nodes_ = 0;
  int bandwidth_ = 0;

  std::unique_ptr<nn::GruCell> gru_;   // input: block summary
  std::unique_ptr<nn::Mlp> head_;     // hidden -> block_size * bandwidth
};

}  // namespace cpgan::baselines

#endif  // CPGAN_BASELINES_GRAN_H_
