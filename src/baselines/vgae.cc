#include "baselines/vgae.h"

#include <algorithm>
#include <cmath>

#include "core/assembly.h"
#include "graph/spectral.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "util/memory_tracker.h"
#include "util/timer.h"

namespace cpgan::baselines {

namespace t = cpgan::tensor;

Vgae::Vgae(const VgaeConfig& config) : config_(config), rng_(config.seed) {}

Vgae::~Vgae() = default;

t::Tensor Vgae::AddEdgeBias(const t::Tensor& logits) const {
  int n = logits.rows();
  t::Tensor ones_col = t::Constant(t::Matrix(n, 1, 1.0f));
  t::Tensor ones_row = t::Constant(t::Matrix(1, n, 1.0f));
  return t::Add(logits,
                t::Matmul(t::Matmul(ones_col, edge_bias_), ones_row));
}

t::Tensor Vgae::DecodeLogits(const t::Tensor& z) const {
  return AddEdgeBias(t::Matmul(z, t::Transpose(z)));
}

LearnedTrainStats Vgae::Fit(const graph::Graph& observed) {
  CPGAN_CHECK(!trained_);
  CPGAN_CHECK(FeasibleFor(observed.num_nodes()));
  util::Timer timer;
  util::MemoryTracker::Global().ResetPeak();

  observed_ = std::make_unique<graph::Graph>(observed);
  int n = observed.num_nodes();
  features_ = t::Tensor(
      graph::SpectralEmbedding(observed, config_.feature_dim, rng_),
      /*requires_grad=*/true);

  gcn_hidden_ = std::make_unique<nn::GcnConv>(config_.feature_dim,
                                              config_.hidden_dim, rng_);
  gcn_mu_ =
      std::make_unique<nn::GcnConv>(config_.hidden_dim, config_.latent_dim, rng_);
  gcn_logvar_ =
      std::make_unique<nn::GcnConv>(config_.hidden_dim, config_.latent_dim, rng_);
  edge_bias_ = t::Tensor(t::Matrix(1, 1, -3.0f), /*requires_grad=*/true);
  BuildExtra(rng_);

  auto a_hat = std::make_shared<t::SparseMatrix>(
      t::NormalizedAdjacency(n, observed.Edges()));
  t::Tensor x = features_;

  t::Matrix a_dense(n, n);
  for (const auto& [u, v] : observed.Edges()) {
    a_dense.At(u, v) = 1.0f;
    a_dense.At(v, u) = 1.0f;
  }
  double m2 = 2.0 * static_cast<double>(observed.num_edges());
  float pos_weight = static_cast<float>(
      std::clamp((static_cast<double>(n) * n - m2) / std::max(1.0, m2), 1.0,
                 8.0));

  std::vector<t::Tensor> params = gcn_hidden_->Parameters();
  auto append = [&params](const std::vector<t::Tensor>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  append(gcn_mu_->Parameters());
  append(gcn_logvar_->Parameters());
  params.push_back(edge_bias_);
  params.push_back(features_);
  append(ExtraParameters());
  t::Adam opt(params, config_.learning_rate);

  LearnedTrainStats stats;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    t::Tensor hidden = t::Relu(gcn_hidden_->Forward(a_hat, x));
    t::Tensor mu = gcn_mu_->Forward(a_hat, hidden);
    t::Tensor logvar = gcn_logvar_->Forward(a_hat, hidden);
    t::Matrix eps(n, config_.latent_dim);
    eps.FillNormal(rng_, 1.0f);
    t::Tensor z = t::Add(
        mu, t::Mul(t::Constant(eps), t::Exp(t::Scale(logvar, 0.5f))));
    t::Tensor logits = DecodeLogits(z);
    t::Tensor bce = t::BceWithLogits(logits, a_dense, pos_weight);
    // KL(N(mu, sigma^2) || N(0, I)) / n.
    t::Tensor kl = t::Scale(
        t::SumAll(t::Sub(t::Add(t::Exp(logvar), t::Square(mu)),
                         t::AddConst(logvar, 1.0f))),
        0.5f / static_cast<float>(n));
    t::Tensor loss = t::Add(bce, t::Scale(kl, config_.kl_weight));
    t::Backward(loss);
    t::ClipGradients(params, 5.0f);
    opt.Step();
    opt.ZeroGrad();
    stats.loss.push_back(loss.Scalar());
    if (epoch + 1 == config_.epochs) {
      latent_mean_ = mu.value();
    }
  }
  trained_ = true;
  stats.train_seconds = timer.Seconds();
  stats.peak_bytes = util::MemoryTracker::Global().peak_bytes();
  return stats;
}

graph::Graph Vgae::Generate() {
  CPGAN_CHECK(trained_);
  core::AssemblyOptions options;
  options.subgraph_size = observed_->num_nodes();  // full decode, O(n^2)
  return core::AssembleGraph(
      observed_->num_nodes(), observed_->num_edges(),
      [this](const std::vector<int>& ids) {
        t::Matrix sub(static_cast<int>(ids.size()), latent_mean_.cols());
        for (size_t i = 0; i < ids.size(); ++i) {
          const float* src = latent_mean_.Row(ids[i]);
          for (int c = 0; c < latent_mean_.cols(); ++c) {
            sub.At(static_cast<int>(i), c) = src[c];
          }
        }
        t::Tensor z = t::Constant(std::move(sub));
        return t::Sigmoid(DecodeLogits(z)).value();
      },
      options, rng_);
}

std::vector<double> Vgae::EdgeProbabilities(
    const std::vector<graph::Edge>& pairs) {
  CPGAN_CHECK(trained_);
  t::Tensor z = t::Constant(latent_mean_);
  t::Matrix probs = t::Sigmoid(DecodeLogits(z)).value();
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const auto& [u, v] : pairs) out.push_back(probs.At(u, v));
  return out;
}

}  // namespace cpgan::baselines
