#include "baselines/condgen.h"

#include "util/check.h"

namespace cpgan::baselines {

CondGenR::CondGenR(int epochs, uint64_t seed) : epochs_(epochs), seed_(seed) {}

LearnedTrainStats CondGenR::Fit(const graph::Graph& observed) {
  CPGAN_CHECK(FeasibleFor(observed.num_nodes()));
  core::CpganConfig config;
  config.use_hierarchy = false;     // no ladder pooling
  config.num_levels = 1;
  config.clus_weight = 0.0f;        // no community-consistency loss
  config.concat_decoder = true;     // plain projection decoder (single level)
  config.subgraph_size = observed.num_nodes();  // full-graph training
  config.epochs = epochs_;
  config.seed = seed_;
  model_ = std::make_unique<core::Cpgan>(config);
  core::TrainStats stats = model_->Fit(observed);
  LearnedTrainStats out;
  out.loss = stats.g_loss;
  out.train_seconds = stats.train_seconds;
  out.peak_bytes = stats.peak_bytes;
  return out;
}

graph::Graph CondGenR::Generate() {
  CPGAN_CHECK(model_ != nullptr);
  return model_->Generate();
}

std::vector<double> CondGenR::EdgeProbabilities(
    const std::vector<graph::Edge>& pairs) {
  CPGAN_CHECK(model_ != nullptr);
  return model_->EdgeProbabilities(pairs);
}

}  // namespace cpgan::baselines
