#include "baselines/netgan.h"

#include <algorithm>
#include <map>
#include <set>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "util/memory_tracker.h"
#include "util/timer.h"

namespace cpgan::baselines {

namespace t = cpgan::tensor;

Netgan::Netgan(const NetganConfig& config) : config_(config), rng_(config.seed) {}

std::vector<int> Netgan::SampleRealWalk(util::Rng& rng) const {
  int n = observed_->num_nodes();
  // Degree-proportional start, then uniform neighbor steps.
  int current = -1;
  for (int tries = 0; tries < 64 && current < 0; ++tries) {
    int candidate = static_cast<int>(rng.UniformInt(n));
    if (observed_->degree(candidate) > 0) current = candidate;
  }
  if (current < 0) current = 0;
  std::vector<int> walk;
  walk.reserve(config_.walk_length);
  walk.push_back(current);
  for (int step = 1; step < config_.walk_length; ++step) {
    auto nbrs = observed_->neighbors(current);
    if (nbrs.empty()) break;
    current = nbrs[rng.UniformInt(static_cast<int64_t>(nbrs.size()))];
    walk.push_back(current);
  }
  return walk;
}

std::vector<int> Netgan::SampleModelWalk(util::Rng& rng) const {
  int n = observed_->num_nodes();
  std::vector<int> walk;
  int current = static_cast<int>(rng.UniformInt(n));
  walk.push_back(current);
  t::Tensor h = walker_->InitialState(1);
  for (int step = 1; step < config_.walk_length; ++step) {
    t::Tensor x = t::GatherRows(embedding_.Detach(), {current});
    h = walker_->Forward(x, h);
    t::Matrix logits = out_proj_->Forward(h).value();
    // Softmax sampling over nodes.
    float max_logit = logits.At(0, 0);
    for (int c = 1; c < n; ++c) max_logit = std::max(max_logit, logits.At(0, c));
    std::vector<double> probs(n);
    for (int c = 0; c < n; ++c) {
      probs[c] = std::exp(static_cast<double>(logits.At(0, c) - max_logit));
    }
    current = rng.Categorical(probs);
    walk.push_back(current);
  }
  return walk;
}

LearnedTrainStats Netgan::Fit(const graph::Graph& observed) {
  CPGAN_CHECK(!trained_);
  CPGAN_CHECK(FeasibleFor(observed.num_nodes()));
  util::Timer timer;
  util::MemoryTracker::Global().ResetPeak();
  observed_ = std::make_unique<graph::Graph>(observed);
  int n = observed.num_nodes();

  t::Matrix emb(n, config_.embedding_dim);
  nn::XavierInit(emb, rng_);
  embedding_ = t::Tensor(std::move(emb), /*requires_grad=*/true);
  walker_ = std::make_unique<nn::GruCell>(config_.embedding_dim,
                                          config_.hidden_dim, rng_);
  out_proj_ = std::make_unique<nn::Linear>(config_.hidden_dim, n, rng_);

  t::Matrix demb(n, config_.embedding_dim);
  nn::XavierInit(demb, rng_);
  d_embedding_ = t::Tensor(std::move(demb), /*requires_grad=*/true);
  d_gru_ = std::make_unique<nn::GruCell>(config_.embedding_dim,
                                         config_.hidden_dim, rng_);
  d_head_ = std::make_unique<nn::Linear>(config_.hidden_dim, 1, rng_);

  std::vector<t::Tensor> gen_params = walker_->Parameters();
  {
    auto more = out_proj_->Parameters();
    gen_params.insert(gen_params.end(), more.begin(), more.end());
    gen_params.push_back(embedding_);
  }
  std::vector<t::Tensor> disc_params = d_gru_->Parameters();
  {
    auto more = d_head_->Parameters();
    disc_params.insert(disc_params.end(), more.begin(), more.end());
    disc_params.push_back(d_embedding_);
  }
  t::Adam gen_opt(gen_params, config_.learning_rate);
  t::Adam disc_opt(disc_params, config_.learning_rate);

  int batch = config_.walks_per_epoch;
  int steps = config_.walk_length;

  LearnedTrainStats stats;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // ---- Generator (walker) step: teacher-forced walk likelihood. ----
    std::vector<std::vector<int>> walks(batch);
    for (int b = 0; b < batch; ++b) {
      walks[b] = SampleRealWalk(rng_);
      while (static_cast<int>(walks[b].size()) < steps) {
        walks[b].push_back(walks[b].back());  // pad stalled walks
      }
    }
    t::Tensor h = walker_->InitialState(batch);
    t::Tensor nll = t::ScalarConstant(0.0f);
    for (int step = 0; step + 1 < steps; ++step) {
      std::vector<int> inputs(batch);
      for (int b = 0; b < batch; ++b) inputs[b] = walks[b][step];
      t::Tensor x = t::GatherRows(embedding_, inputs);
      h = walker_->Forward(x, h);
      t::Tensor probs = t::SoftmaxRows(out_proj_->Forward(h));
      t::Matrix one_hot(batch, n);
      for (int b = 0; b < batch; ++b) one_hot.At(b, walks[b][step + 1]) = 1.0f;
      t::Tensor picked = t::Mul(t::Log(probs), t::Constant(std::move(one_hot)));
      nll = t::Add(nll, t::Scale(t::SumAll(picked),
                                 -1.0f / static_cast<float>(batch)));
    }
    t::Backward(nll);
    t::ClipGradients(gen_params, 5.0f);
    gen_opt.Step();
    gen_opt.ZeroGrad();
    stats.loss.push_back(nll.Scalar());

    // ---- Discriminator step: real walks vs generated walks. ----
    int d_batch = std::max(4, batch / 4);
    auto run_disc = [&](const std::vector<std::vector<int>>& ws) {
      t::Tensor dh = d_gru_->InitialState(static_cast<int>(ws.size()));
      for (int step = 0; step < steps; ++step) {
        std::vector<int> inputs(ws.size());
        for (size_t b = 0; b < ws.size(); ++b) {
          inputs[b] = ws[b][std::min<size_t>(step, ws[b].size() - 1)];
        }
        dh = d_gru_->Forward(t::GatherRows(d_embedding_, inputs), dh);
      }
      return d_head_->Forward(dh);  // batch x 1 logits
    };
    std::vector<std::vector<int>> real_walks(d_batch);
    std::vector<std::vector<int>> fake_walks(d_batch);
    for (int b = 0; b < d_batch; ++b) {
      real_walks[b] = SampleRealWalk(rng_);
      while (static_cast<int>(real_walks[b].size()) < steps) {
        real_walks[b].push_back(real_walks[b].back());
      }
      fake_walks[b] = SampleModelWalk(rng_);
    }
    t::Tensor d_real = run_disc(real_walks);
    t::Tensor d_fake = run_disc(fake_walks);
    t::Tensor d_loss =
        t::Add(t::BceWithLogits(d_real, t::Matrix(d_batch, 1, 1.0f)),
               t::BceWithLogits(d_fake, t::Matrix(d_batch, 1, 0.0f)));
    t::Backward(d_loss);
    t::ClipGradients(disc_params, 5.0f);
    disc_opt.Step();
    disc_opt.ZeroGrad();
    // Clear any gradients that leaked into the generator embedding via
    // sampled walks (none — indices only), and reset generator grads.
    for (t::Tensor& p : gen_params) p.ZeroGrad();
  }
  trained_ = true;
  stats.train_seconds = timer.Seconds();
  stats.peak_bytes = util::MemoryTracker::Global().peak_bytes();
  return stats;
}

graph::Graph Netgan::Generate() {
  CPGAN_CHECK(trained_);
  int n = observed_->num_nodes();
  int64_t target_edges = observed_->num_edges();
  int64_t walk_budget =
      std::max<int64_t>(1, config_.walk_multiplier * target_edges /
                               std::max(1, config_.walk_length - 1));
  // Transition counts from generated walks.
  std::map<graph::Edge, double> counts;
  for (int64_t w = 0; w < walk_budget; ++w) {
    std::vector<int> walk = SampleModelWalk(rng_);
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      int u = walk[i];
      int v = walk[i + 1];
      if (u == v) continue;
      counts[{std::min(u, v), std::max(u, v)}] += 1.0;
    }
  }
  // Per-node best edge first, then global top-k.
  std::vector<graph::Edge> edges;
  std::set<graph::Edge> chosen;
  std::vector<std::pair<double, graph::Edge>> best_of(n, {0.0, {-1, -1}});
  for (const auto& [e, c] : counts) {
    if (c > best_of[e.first].first) best_of[e.first] = {c, e};
    if (c > best_of[e.second].first) best_of[e.second] = {c, e};
  }
  for (int v = 0; v < n; ++v) {
    if (best_of[v].second.first >= 0 && chosen.insert(best_of[v].second).second) {
      edges.push_back(best_of[v].second);
    }
  }
  std::vector<std::pair<double, graph::Edge>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [e, c] : counts) ranked.push_back({c, e});
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [c, e] : ranked) {
    if (static_cast<int64_t>(edges.size()) >= target_edges) break;
    if (chosen.insert(e).second) edges.push_back(e);
  }
  return graph::Graph(n, edges);
}

}  // namespace cpgan::baselines
