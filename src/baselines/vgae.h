#ifndef CPGAN_BASELINES_VGAE_H_
#define CPGAN_BASELINES_VGAE_H_

#include <memory>

#include "baselines/learned_generator.h"
#include "nn/gcn.h"
#include "tensor/sparse.h"
#include "util/rng.h"

namespace cpgan::baselines {

/// Hyper-parameters shared by the VGAE-family baselines.
struct VgaeConfig {
  int feature_dim = 8;
  int hidden_dim = 32;
  int latent_dim = 16;
  int epochs = 120;
  float learning_rate = 1e-2f;
  float kl_weight = 1.0f;  // scaled by 1/n as in Kipf & Welling
  uint64_t seed = 1;
};

/// Variational Graph Auto-Encoder (Kipf & Welling, 2016): a two-layer GCN
/// encoder produces per-node Gaussians, the decoder is the inner product
/// sigmoid(z_i^T z_j). Trains on the full adjacency every epoch, which is the
/// O(n^2) behaviour that makes it infeasible on the paper's larger datasets.
class Vgae : public LearnedGenerator {
 public:
  explicit Vgae(const VgaeConfig& config = {});
  ~Vgae() override;

  std::string name() const override { return "VGAE"; }
  int max_feasible_nodes() const override { return 1300; }

  LearnedTrainStats Fit(const graph::Graph& observed) override;
  graph::Graph Generate() override;
  std::vector<double> EdgeProbabilities(
      const std::vector<graph::Edge>& pairs) override;

 protected:
  /// Decoder logits from latent z (n x latent): overridden by Graphite.
  virtual tensor::Tensor DecodeLogits(const tensor::Tensor& z) const;

  /// Hook for subclasses to register extra modules before training.
  virtual void BuildExtra(util::Rng& rng) { (void)rng; }
  /// Extra parameters contributed by subclasses.
  virtual std::vector<tensor::Tensor> ExtraParameters() const { return {}; }

  VgaeConfig config_;
  util::Rng rng_;
  bool trained_ = false;
  std::unique_ptr<graph::Graph> observed_;
  tensor::Tensor features_;  // trainable node embeddings (spectral init)
  tensor::Matrix latent_mean_;  // posterior means after training

  std::unique_ptr<nn::GcnConv> gcn_hidden_;
  std::unique_ptr<nn::GcnConv> gcn_mu_;
  std::unique_ptr<nn::GcnConv> gcn_logvar_;
  /// Learnable global edge-logit bias (sparsity prior, init -3).
  tensor::Tensor edge_bias_;

  /// logits + bias broadcast over all pairs.
  tensor::Tensor AddEdgeBias(const tensor::Tensor& logits) const;
};

}  // namespace cpgan::baselines

#endif  // CPGAN_BASELINES_VGAE_H_
