#include "baselines/sbmgnn.h"

#include "nn/module.h"
#include "tensor/ops.h"

namespace cpgan::baselines {

namespace t = cpgan::tensor;

Sbmgnn::Sbmgnn(const VgaeConfig& config, int num_blocks)
    : Vgae(config), num_blocks_(num_blocks) {
  CPGAN_CHECK_GE(num_blocks_, 2);
}

void Sbmgnn::BuildExtra(util::Rng& rng) {
  to_blocks_ = std::make_unique<nn::Linear>(config_.latent_dim, num_blocks_, rng);
  t::Matrix b(num_blocks_, num_blocks_);
  nn::XavierInit(b, rng);
  // Bias the diagonal so intra-block affinity starts positive.
  for (int i = 0; i < num_blocks_; ++i) b.At(i, i) += 1.0f;
  block_matrix_ = t::Tensor(std::move(b), /*requires_grad=*/true);
  bias_ = t::Tensor(t::Matrix(1, 1, -3.0f), /*requires_grad=*/true);
}

std::vector<t::Tensor> Sbmgnn::ExtraParameters() const {
  std::vector<t::Tensor> params = to_blocks_->Parameters();
  params.push_back(block_matrix_);
  params.push_back(bias_);
  return params;
}

t::Tensor Sbmgnn::DecodeLogits(const t::Tensor& z) const {
  int n = z.rows();
  // Overlapping block memberships.
  t::Tensor pi = t::SoftmaxRows(to_blocks_->Forward(z));
  // Symmetrize B so the decoder is an undirected blockmodel.
  t::Tensor b_sym = t::Scale(
      t::Add(block_matrix_, t::Transpose(block_matrix_)), 0.5f);
  t::Tensor logits = t::Matmul(t::Matmul(pi, b_sym), t::Transpose(pi));
  // Broadcast the scalar bias over all pairs.
  t::Tensor ones_col = t::Constant(t::Matrix(n, 1, 1.0f));
  t::Tensor ones_row = t::Constant(t::Matrix(1, n, 1.0f));
  t::Tensor bias_full = t::Matmul(t::Matmul(ones_col, bias_), ones_row);
  return t::Add(logits, bias_full);
}

}  // namespace cpgan::baselines
