#ifndef CPGAN_BASELINES_NETGAN_H_
#define CPGAN_BASELINES_NETGAN_H_

#include <memory>

#include "baselines/learned_generator.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace cpgan::baselines {

/// Hyper-parameters for the NetGAN baseline.
struct NetganConfig {
  int walk_length = 12;
  int walks_per_epoch = 64;
  int embedding_dim = 24;
  int hidden_dim = 48;
  int epochs = 80;
  float learning_rate = 5e-3f;
  /// Generated random-walk volume during assembly, as a multiple of the
  /// number of edges (paper Fig. 3, step 3).
  int walk_multiplier = 8;
  uint64_t seed = 1;
};

/// NetGAN (Bojchevski et al., 2018): learns a random-walk generator and
/// assembles a graph from the transition counts of generated walks (Fig. 3
/// of the paper).
///
/// Compact re-implementation: the walker is a GRU over learned node
/// embeddings trained by maximum likelihood on walks from the observed graph
/// — the low-rank walk model that Rendsburg et al. ("NetGAN without GAN",
/// ICML 2020) show is the operative part — plus a GRU discriminator trained
/// adversarially on real-vs-generated walks whose loss is tracked and used
/// to keep the walker honest. Assembly: symmetrized transition counts,
/// one edge per node, then global top-k until the edge budget is met.
class Netgan : public LearnedGenerator {
 public:
  explicit Netgan(const NetganConfig& config = {});

  std::string name() const override { return "NetGAN"; }
  int max_feasible_nodes() const override { return 900; }

  LearnedTrainStats Fit(const graph::Graph& observed) override;
  graph::Graph Generate() override;

 private:
  /// Samples a random walk (node ids) from the observed graph.
  std::vector<int> SampleRealWalk(util::Rng& rng) const;

  /// Samples a walk from the trained generator.
  std::vector<int> SampleModelWalk(util::Rng& rng) const;

  NetganConfig config_;
  util::Rng rng_;
  bool trained_ = false;
  std::unique_ptr<graph::Graph> observed_;

  // Generator.
  tensor::Tensor embedding_;              // n x emb
  std::unique_ptr<nn::GruCell> walker_;
  std::unique_ptr<nn::Linear> out_proj_;  // hidden -> n
  // Discriminator.
  tensor::Tensor d_embedding_;
  std::unique_ptr<nn::GruCell> d_gru_;
  std::unique_ptr<nn::Linear> d_head_;
};

}  // namespace cpgan::baselines

#endif  // CPGAN_BASELINES_NETGAN_H_
