#ifndef CPGAN_BASELINES_GRAPHITE_H_
#define CPGAN_BASELINES_GRAPHITE_H_

#include <memory>

#include "baselines/vgae.h"
#include "nn/linear.h"

namespace cpgan::baselines {

/// Graphite (Grover et al., 2019): VGAE with an iterative decoder that
/// refines the latent codes through the soft adjacency it implies before the
/// final inner product:
///   A~   = sigmoid(Z Z^T) (row-normalized)
///   Z'   = relu(A~ Z W1)
///   Z''  = Z' W2 + Z            (residual)
///   logits = Z'' Z''^T
class Graphite : public Vgae {
 public:
  explicit Graphite(const VgaeConfig& config = {});

  std::string name() const override { return "Graphite"; }
  int max_feasible_nodes() const override { return 1300; }

 protected:
  tensor::Tensor DecodeLogits(const tensor::Tensor& z) const override;
  void BuildExtra(util::Rng& rng) override;
  std::vector<tensor::Tensor> ExtraParameters() const override;

 private:
  std::unique_ptr<nn::Linear> refine1_;
  std::unique_ptr<nn::Linear> refine2_;
};

}  // namespace cpgan::baselines

#endif  // CPGAN_BASELINES_GRAPHITE_H_
