#include "baselines/graphite.h"

#include "tensor/ops.h"

namespace cpgan::baselines {

namespace t = cpgan::tensor;

Graphite::Graphite(const VgaeConfig& config) : Vgae(config) {}

void Graphite::BuildExtra(util::Rng& rng) {
  refine1_ = std::make_unique<nn::Linear>(config_.latent_dim,
                                          config_.latent_dim, rng);
  refine2_ = std::make_unique<nn::Linear>(config_.latent_dim,
                                          config_.latent_dim, rng);
}

std::vector<t::Tensor> Graphite::ExtraParameters() const {
  std::vector<t::Tensor> params = refine1_->Parameters();
  std::vector<t::Tensor> more = refine2_->Parameters();
  params.insert(params.end(), more.begin(), more.end());
  return params;
}

t::Tensor Graphite::DecodeLogits(const t::Tensor& z) const {
  // Soft adjacency implied by the current codes, row-normalized.
  t::Tensor soft = t::Sigmoid(t::Matmul(z, t::Transpose(z)));
  t::Tensor sums = t::AddConst(t::RowSum(soft), 1e-6f);
  t::Tensor norm = t::MulColVec(soft, t::Reciprocal(sums));
  t::Tensor refined = t::Relu(refine1_->Forward(t::Matmul(norm, z)));
  t::Tensor out = t::Add(refine2_->Forward(refined), z);  // residual
  return AddEdgeBias(t::Matmul(out, t::Transpose(out)));
}

}  // namespace cpgan::baselines
