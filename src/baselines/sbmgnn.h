#ifndef CPGAN_BASELINES_SBMGNN_H_
#define CPGAN_BASELINES_SBMGNN_H_

#include <memory>

#include "baselines/vgae.h"
#include "nn/linear.h"

namespace cpgan::baselines {

/// SBMGNN (Mehta et al., 2019) — stochastic blockmodels meet GNNs.
///
/// Compact re-implementation keeping the defining mechanism: a GCN encoder
/// infers non-negative overlapping block memberships pi (softmax over K
/// blocks) and a learnable block affinity matrix B scores edges,
///   logits = pi B pi^T + bias.
/// As in the paper's discussion, the networks infer blockmodel parameters
/// rather than optimizing community preservation directly.
class Sbmgnn : public Vgae {
 public:
  explicit Sbmgnn(const VgaeConfig& config = {}, int num_blocks = 24);

  std::string name() const override { return "SBMGNN"; }
  int max_feasible_nodes() const override { return 1300; }

 protected:
  tensor::Tensor DecodeLogits(const tensor::Tensor& z) const override;
  void BuildExtra(util::Rng& rng) override;
  std::vector<tensor::Tensor> ExtraParameters() const override;

 private:
  int num_blocks_;
  std::unique_ptr<nn::Linear> to_blocks_;  // latent -> K logits
  tensor::Tensor block_matrix_;            // K x K affinities
  tensor::Tensor bias_;                    // 1 x 1
};

}  // namespace cpgan::baselines

#endif  // CPGAN_BASELINES_SBMGNN_H_
