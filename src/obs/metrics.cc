#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <type_traits>

namespace cpgan::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendJsonNumber(std::string& out, double value) {
  char buffer[32];
  // Shortest round-trippable-enough form; metric values are not NaN/Inf.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  auto sat_sub = [](uint64_t now, uint64_t then) {
    return now > then ? now - then : uint64_t{0};
  };
  HistogramSnapshot delta;
  delta.count = sat_sub(count, earlier.count);
  delta.sum = sat_sub(sum, earlier.sum);
  for (int b = 0; b < kNumBuckets; ++b) {
    delta.buckets[b] = sat_sub(buckets[b], earlier.buckets[b]);
  }
  return delta;
}

void HistogramSnapshot::Accumulate(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (int b = 0; b < kNumBuckets; ++b) buckets[b] += other.buckets[b];
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double rank = q * static_cast<double>(count);
  if (rank < 1.0) rank = 1.0;
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower =
          static_cast<double>(Histogram::BucketLowerBound(b));
      const double upper =
          b + 1 < kNumBuckets
              ? static_cast<double>(Histogram::BucketLowerBound(b + 1))
              : lower * 2.0;
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * within;
    }
    cumulative += in_bucket;
  }
  // Unreachable when the bucket counts cover `count`; fall back to the mean.
  return static_cast<double>(sum) / static_cast<double>(count);
}

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  int width = 64 - __builtin_clzll(value);  // bit_width: 1 for value 1
  return std::min(width, kNumBuckets - 1);
}

uint64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  return uint64_t{1} << (bucket - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  static_assert(HistogramSnapshot::kNumBuckets == kNumBuckets);
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  for (int b = 0; b < kNumBuckets; ++b) {
    snapshot.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Stopwatch::Reset() {
  total_ns_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

Stopwatch::Scope::Scope(Stopwatch* stopwatch) : stopwatch_(stopwatch) {
  if (stopwatch_ != nullptr) start_ns_ = NowNanos();
}

Stopwatch::Scope::~Scope() {
  if (stopwatch_ != nullptr) stopwatch_->AddNanos(NowNanos() - start_ns_);
}

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto valid_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '/' ||
           c == ':' || c == '-';
  };
  if (name[0] >= '0' && name[0] <= '9') return false;
  for (char c : name) {
    if (!valid_char(c)) return false;
  }
  return true;
}

std::string SanitizeMetricName(std::string_view name) {
  if (name.empty()) return "_unnamed";
  std::string out;
  out.reserve(name.size() + 1);
  if (name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '/' || c == ':' || c == '-';
    out += ok ? c : '_';
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

template <typename T>
T* MetricsRegistry::FindOrCreate(
    std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
    std::string_view name, MetricSample::Kind kind) {
  // Sanitize only when needed: the common case (a literal already in
  // canonical form) stays allocation-free up to the map probe.
  std::string sanitized;
  if (!IsValidMetricName(name)) {
    sanitized = SanitizeMetricName(name);
    name = sanitized;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
    InstrumentRef ref;
    ref.name = &it->first;
    ref.kind = kind;
    if constexpr (std::is_same_v<T, Counter>) ref.counter = it->second.get();
    if constexpr (std::is_same_v<T, Gauge>) ref.gauge = it->second.get();
    if constexpr (std::is_same_v<T, Histogram>) {
      ref.histogram = it->second.get();
    }
    if constexpr (std::is_same_v<T, Stopwatch>) {
      ref.stopwatch = it->second.get();
    }
    index_.push_back(ref);
  }
  return it->second.get();
}

Counter* MetricsRegistry::FindCounter(std::string_view name) {
  return FindOrCreate(counters_, name, MetricSample::Kind::kCounter);
}

Gauge* MetricsRegistry::FindGauge(std::string_view name) {
  return FindOrCreate(gauges_, name, MetricSample::Kind::kGauge);
}

Histogram* MetricsRegistry::FindHistogram(std::string_view name) {
  return FindOrCreate(histograms_, name, MetricSample::Kind::kHistogram);
}

Stopwatch* MetricsRegistry::FindStopwatch(std::string_view name) {
  return FindOrCreate(stopwatches_, name, MetricSample::Kind::kStopwatch);
}

void MetricsRegistry::VisitAll(
    const std::function<void(const InstrumentRef&)>& visitor) const {
  std::vector<InstrumentRef> refs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    refs = index_;  // flat pointer copy; instruments and names are immortal
  }
  for (const InstrumentRef& ref : refs) visitor(ref);
}

std::vector<MetricSample> MetricsRegistry::SnapshotAll() const {
  std::vector<MetricSample> out;
  VisitAll([&out](const InstrumentRef& ref) {
    MetricSample s;
    s.name = *ref.name;
    s.kind = ref.kind;
    switch (ref.kind) {
      case MetricSample::Kind::kCounter:
        s.value = static_cast<double>(ref.counter->Value());
        break;
      case MetricSample::Kind::kGauge:
        s.value = ref.gauge->Value();
        break;
      case MetricSample::Kind::kHistogram: {
        HistogramSnapshot snapshot = ref.histogram->Snapshot();
        s.count = snapshot.count;
        s.sum = snapshot.sum;
        s.buckets.assign(snapshot.buckets.begin(), snapshot.buckets.end());
        break;
      }
      case MetricSample::Kind::kStopwatch:
        s.value = ref.stopwatch->TotalNanos() * 1e-6;  // milliseconds
        s.count = ref.stopwatch->Count();
        break;
    }
    out.push_back(std::move(s));
  });
  // Registration order varies run to run; (kind, name) keeps reports stable.
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  for (auto& [name, sw] : stopwatches_) sw->Reset();
}

std::string MetricsRegistry::RenderJson() const {
  std::vector<MetricSample> samples = Snapshot();
  auto append_section = [&samples](std::string& out, const char* title,
                                   MetricSample::Kind kind,
                                   auto&& append_value) {
    out += '"';
    out += title;
    out += "\":{";
    bool first = true;
    for (const MetricSample& s : samples) {
      if (s.kind != kind) continue;
      if (!first) out += ',';
      first = false;
      out += '"';
      out += s.name;  // names are sanitized to [A-Za-z0-9_./:-], JSON-safe
      out += "\":";
      append_value(out, s);
    }
    out += '}';
  };
  std::string out = "{";
  append_section(out, "counters", MetricSample::Kind::kCounter,
                 [](std::string& o, const MetricSample& s) {
                   AppendJsonNumber(o, s.value);
                 });
  out += ',';
  append_section(out, "gauges", MetricSample::Kind::kGauge,
                 [](std::string& o, const MetricSample& s) {
                   AppendJsonNumber(o, s.value);
                 });
  out += ',';
  append_section(out, "stopwatches", MetricSample::Kind::kStopwatch,
                 [](std::string& o, const MetricSample& s) {
                   o += "{\"ms\":";
                   AppendJsonNumber(o, s.value);
                   o += ",\"count\":";
                   AppendJsonNumber(o, static_cast<double>(s.count));
                   o += '}';
                 });
  out += ',';
  append_section(out, "histograms", MetricSample::Kind::kHistogram,
                 [](std::string& o, const MetricSample& s) {
                   o += "{\"count\":";
                   AppendJsonNumber(o, static_cast<double>(s.count));
                   o += ",\"sum\":";
                   AppendJsonNumber(o, static_cast<double>(s.sum));
                   o += ",\"buckets\":[";
                   for (size_t b = 0; b < s.buckets.size(); ++b) {
                     if (b > 0) o += ',';
                     AppendJsonNumber(o, static_cast<double>(s.buckets[b]));
                   }
                   o += "]}";
                 });
  out += '}';
  return out;
}

}  // namespace cpgan::obs
