#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace cpgan::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendJsonNumber(std::string& out, double value) {
  char buffer[32];
  // Shortest round-trippable-enough form; metric values are not NaN/Inf.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  int width = 64 - __builtin_clzll(value);  // bit_width: 1 for value 1
  return std::min(width, kNumBuckets - 1);
}

uint64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  return uint64_t{1} << (bucket - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void Stopwatch::Reset() {
  total_ns_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

Stopwatch::Scope::Scope(Stopwatch* stopwatch) : stopwatch_(stopwatch) {
  if (stopwatch_ != nullptr) start_ns_ = NowNanos();
}

Stopwatch::Scope::~Scope() {
  if (stopwatch_ != nullptr) stopwatch_->AddNanos(NowNanos() - start_ns_);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::FindCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::FindGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::FindHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

Stopwatch* MetricsRegistry::FindStopwatch(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = stopwatches_.find(name);
  if (it == stopwatches_.end()) {
    it = stopwatches_
             .emplace(std::string(name), std::make_unique<Stopwatch>())
             .first;
  }
  return it->second.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() +
              stopwatches_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(counter->Value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = gauge->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.count = hist->Count();
    s.sum = hist->Sum();
    s.buckets.resize(Histogram::kNumBuckets);
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      s.buckets[b] = hist->BucketCount(b);
    }
    out.push_back(std::move(s));
  }
  for (const auto& [name, sw] : stopwatches_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kStopwatch;
    s.value = sw->TotalNanos() * 1e-6;  // milliseconds
    s.count = sw->Count();
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  for (auto& [name, sw] : stopwatches_) sw->Reset();
}

std::string MetricsRegistry::RenderJson() const {
  std::vector<MetricSample> samples = Snapshot();
  auto append_section = [&samples](std::string& out, const char* title,
                                   MetricSample::Kind kind,
                                   auto&& append_value) {
    out += '"';
    out += title;
    out += "\":{";
    bool first = true;
    for (const MetricSample& s : samples) {
      if (s.kind != kind) continue;
      if (!first) out += ',';
      first = false;
      out += '"';
      out += s.name;  // metric names are [a-z0-9_/]+, no escaping needed
      out += "\":";
      append_value(out, s);
    }
    out += '}';
  };
  std::string out = "{";
  append_section(out, "counters", MetricSample::Kind::kCounter,
                 [](std::string& o, const MetricSample& s) {
                   AppendJsonNumber(o, s.value);
                 });
  out += ',';
  append_section(out, "gauges", MetricSample::Kind::kGauge,
                 [](std::string& o, const MetricSample& s) {
                   AppendJsonNumber(o, s.value);
                 });
  out += ',';
  append_section(out, "stopwatches", MetricSample::Kind::kStopwatch,
                 [](std::string& o, const MetricSample& s) {
                   o += "{\"ms\":";
                   AppendJsonNumber(o, s.value);
                   o += ",\"count\":";
                   AppendJsonNumber(o, static_cast<double>(s.count));
                   o += '}';
                 });
  out += ',';
  append_section(out, "histograms", MetricSample::Kind::kHistogram,
                 [](std::string& o, const MetricSample& s) {
                   o += "{\"count\":";
                   AppendJsonNumber(o, static_cast<double>(s.count));
                   o += ",\"sum\":";
                   AppendJsonNumber(o, static_cast<double>(s.sum));
                   o += ",\"buckets\":[";
                   for (size_t b = 0; b < s.buckets.size(); ++b) {
                     if (b > 0) o += ',';
                     AppendJsonNumber(o, static_cast<double>(s.buckets[b]));
                   }
                   o += "]}";
                 });
  out += '}';
  return out;
}

}  // namespace cpgan::obs
