#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include <set>

#include "obs/json.h"
#include "obs/request_context.h"
#include "util/fileio.h"
#include "util/table.h"

namespace cpgan::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};
std::atomic<bool> g_trace_events_enabled{false};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One node of a thread's span tree. Children are few per node (span names
/// at one nesting level), so a vector with linear lookup beats a map.
struct SpanNode {
  const char* name = "";  // string literal from CPGAN_TRACE_SPAN
  SpanNode* parent = nullptr;
  uint64_t calls = 0;
  uint64_t inclusive_ns = 0;
  std::vector<std::unique_ptr<SpanNode>> children;

  SpanNode* FindOrAddChild(const char* child_name) {
    for (auto& child : children) {
      // Pointer compare first (same literal), fall back to content compare
      // (same name from different translation units).
      if (child->name == child_name ||
          std::string_view(child->name) == child_name) {
        return child.get();
      }
    }
    children.push_back(std::make_unique<SpanNode>());
    children.back()->name = child_name;
    children.back()->parent = this;
    return children.back().get();
  }
};

/// Completed-span record for Chrome trace export. `request_id` is the
/// request context active when the span closed (0 outside any request);
/// the exporter groups events with a nonzero id under a per-request pid.
struct TraceEvent {
  const char* name;
  uint64_t start_ns;
  uint64_t dur_ns;
  uint64_t request_id;
};

/// Per-thread recording state. Owned by the global registry (never freed:
/// a worker thread may outlive its last span, and reports may run after a
/// recording thread exited), guarded by its own mutex so recording threads
/// and reporting threads never race.
struct ThreadTrace {
  std::mutex mu;
  SpanNode root;
  SpanNode* current = &root;
  std::vector<TraceEvent> events;
  int tid = 0;
};

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<ThreadTrace*>& Registry() {
  static std::vector<ThreadTrace*>* traces = new std::vector<ThreadTrace*>();
  return *traces;
}

ThreadTrace& LocalTrace() {
  thread_local ThreadTrace* trace = [] {
    auto* t = new ThreadTrace();
    std::lock_guard<std::mutex> lock(RegistryMutex());
    t->tid = static_cast<int>(Registry().size());
    Registry().push_back(t);
    return t;
  }();
  return *trace;
}

/// Name-keyed aggregation node used when merging thread trees.
struct MergedNode {
  uint64_t calls = 0;
  uint64_t inclusive_ns = 0;
  std::map<std::string, MergedNode> children;
};

void MergeTree(const SpanNode& node, MergedNode& into) {
  into.calls += node.calls;
  into.inclusive_ns += node.inclusive_ns;
  for (const auto& child : node.children) {
    MergeTree(*child, into.children[child->name]);
  }
}

void FlattenMerged(const MergedNode& node, const std::string& prefix,
                   int depth, std::vector<SpanStats>& out) {
  // Children sorted by descending inclusive time (name breaks ties — the
  // map iteration order — so the report is deterministic).
  std::vector<const std::pair<const std::string, MergedNode>*> ordered;
  ordered.reserve(node.children.size());
  for (const auto& entry : node.children) ordered.push_back(&entry);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto* a, const auto* b) {
                     return a->second.inclusive_ns > b->second.inclusive_ns;
                   });
  for (const auto* entry : ordered) {
    const std::string& name = entry->first;
    const MergedNode& child = entry->second;
    SpanStats stats;
    stats.path = prefix.empty() ? name : prefix + ";" + name;
    stats.name = name;
    stats.depth = depth;
    stats.calls = child.calls;
    stats.inclusive_ns = child.inclusive_ns;
    uint64_t child_total = 0;
    for (const auto& [_, grandchild] : child.children) {
      child_total += grandchild.inclusive_ns;
    }
    stats.exclusive_ns =
        child.inclusive_ns > child_total ? child.inclusive_ns - child_total : 0;
    // Keep a copy: recursion grows `out`, which may reallocate and would
    // invalidate a reference into it.
    std::string child_prefix = stats.path;
    out.push_back(std::move(stats));
    FlattenMerged(child, child_prefix, depth + 1, out);
  }
}

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceEventsEnabled() {
  return g_trace_events_enabled.load(std::memory_order_relaxed);
}

void SetTraceEventsEnabled(bool enabled) {
  g_trace_events_enabled.store(enabled, std::memory_order_relaxed);
}

void ScopedSpan::Enter(const char* name) {
  ThreadTrace& trace = LocalTrace();
  std::lock_guard<std::mutex> lock(trace.mu);
  SpanNode* node = trace.current->FindOrAddChild(name);
  trace.current = node;
  node_ = node;
  start_ns_ = NowNanos();
}

void ScopedSpan::Exit() {
  uint64_t end_ns = NowNanos();
  auto* node = static_cast<SpanNode*>(node_);
  ThreadTrace& trace = LocalTrace();
  std::lock_guard<std::mutex> lock(trace.mu);
  node->calls += 1;
  node->inclusive_ns += end_ns - start_ns_;
  trace.current = node->parent;
  if (TraceEventsEnabled()) {
    trace.events.push_back(TraceEvent{node->name, start_ns_,
                                      end_ns - start_ns_,
                                      CurrentRequestId()});
  }
}

std::vector<SpanStats> CollectSpanStats() {
  MergedNode merged;
  {
    std::lock_guard<std::mutex> registry_lock(RegistryMutex());
    for (ThreadTrace* trace : Registry()) {
      std::lock_guard<std::mutex> lock(trace->mu);
      MergeTree(trace->root, merged);
    }
  }
  // The synthetic root's own calls/inclusive are zero; flatten children.
  std::vector<SpanStats> out;
  FlattenMerged(merged, "", 0, out);
  return out;
}

void ResetTraces() {
  std::lock_guard<std::mutex> registry_lock(RegistryMutex());
  for (ThreadTrace* trace : Registry()) {
    std::lock_guard<std::mutex> lock(trace->mu);
    // Open spans hold SpanNode pointers, so nodes cannot be freed here;
    // zero the accumulators instead and drop completed children that are
    // not on the current open path.
    for (SpanNode* node = trace->current; node != nullptr;
         node = node->parent) {
      node->calls = 0;
      node->inclusive_ns = 0;
    }
    SpanNode* keep = trace->current;
    // Walk from the root, pruning children not on the open chain.
    std::vector<SpanNode*> open_chain;
    for (SpanNode* node = keep; node != nullptr; node = node->parent) {
      open_chain.push_back(node);
    }
    for (SpanNode* node : open_chain) {
      auto& children = node->children;
      children.erase(
          std::remove_if(children.begin(), children.end(),
                         [&open_chain](const std::unique_ptr<SpanNode>& c) {
                           return std::find(open_chain.begin(),
                                            open_chain.end(),
                                            c.get()) == open_chain.end();
                         }),
          children.end());
    }
    trace->events.clear();
  }
}

std::string RenderProfile() {
  std::vector<SpanStats> stats = CollectSpanStats();
  uint64_t total_ns = 0;
  for (const SpanStats& s : stats) {
    if (s.depth == 0) total_ns += s.inclusive_ns;
  }
  util::Table table({"span", "calls", "incl ms", "excl ms", "excl %"});
  char buffer[32];
  for (const SpanStats& s : stats) {
    std::string name(static_cast<size_t>(s.depth) * 2, ' ');
    name += s.name;
    std::vector<std::string> row = {name, std::to_string(s.calls)};
    std::snprintf(buffer, sizeof(buffer), "%.3f", s.inclusive_ns * 1e-6);
    row.push_back(buffer);
    std::snprintf(buffer, sizeof(buffer), "%.3f", s.exclusive_ns * 1e-6);
    row.push_back(buffer);
    std::snprintf(buffer, sizeof(buffer), "%.1f",
                  total_ns > 0
                      ? 100.0 * static_cast<double>(s.exclusive_ns) /
                            static_cast<double>(total_ns)
                      : 0.0);
    row.push_back(buffer);
    table.AddRow(row);
  }
  return table.Render();
}

bool WriteChromeTrace(const std::string& path) {
  // Spans recorded inside a request context group under a per-request pid
  // (pid = request id + 1; pid 1 is the "process" row for spans recorded
  // outside any request), so chrome://tracing shows one lane per request
  // with its decode/kernel spans nested, instead of one lane per thread
  // interleaving every request. tid stays the recording thread.
  constexpr uint64_t kProcessPid = 1;
  JsonValue events = JsonValue::Array();
  std::set<uint64_t> request_ids;
  {
    std::lock_guard<std::mutex> registry_lock(RegistryMutex());
    for (ThreadTrace* trace : Registry()) {
      std::lock_guard<std::mutex> lock(trace->mu);
      for (const TraceEvent& event : trace->events) {
        const uint64_t pid =
            event.request_id == 0 ? kProcessPid : event.request_id + 1;
        JsonValue e = JsonValue::Object();
        e.Add("name", JsonValue::String(event.name));
        e.Add("cat", JsonValue::String("cpgan"));
        e.Add("ph", JsonValue::String("X"));
        e.Add("ts", JsonValue::Number(event.start_ns * 1e-3));   // micros
        e.Add("dur", JsonValue::Number(event.dur_ns * 1e-3));
        e.Add("pid", JsonValue::Int(static_cast<int64_t>(pid)));
        e.Add("tid", JsonValue::Int(trace->tid));
        if (event.request_id != 0) {
          JsonValue args = JsonValue::Object();
          args.Add("request_id",
                   JsonValue::Int(static_cast<int64_t>(event.request_id)));
          e.Add("args", std::move(args));
          request_ids.insert(event.request_id);
        }
        events.Append(std::move(e));
      }
    }
  }
  // Name the per-request lanes so the viewer shows "request 7" instead of
  // a bare pid.
  for (uint64_t id : request_ids) {
    JsonValue meta = JsonValue::Object();
    meta.Add("name", JsonValue::String("process_name"));
    meta.Add("ph", JsonValue::String("M"));
    meta.Add("pid", JsonValue::Int(static_cast<int64_t>(id + 1)));
    JsonValue args = JsonValue::Object();
    args.Add("name", JsonValue::String("request " + std::to_string(id)));
    meta.Add("args", std::move(args));
    events.Append(std::move(meta));
  }
  JsonValue doc = JsonValue::Object();
  doc.Add("traceEvents", std::move(events));
  doc.Add("displayTimeUnit", JsonValue::String("ms"));
  std::string text = doc.Serialize();
  text += '\n';
  return util::AtomicWriteFile(path, [&text](std::FILE* f) {
    return std::fwrite(text.data(), 1, text.size(), f) == text.size();
  });
}

}  // namespace cpgan::obs
