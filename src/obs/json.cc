#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cpgan::obs {

namespace {

/// Recursive-descent parser over a string_view with a byte cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool ParseValue(JsonValue* out);

  bool AtEnd() {
    SkipWhitespace();
    return pos_ >= text_.size();
  }

  std::string ErrorAt(const char* what) const {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "offset %zu: %s", pos_, what);
    return std::string(buffer);
  }

  const std::string& error() const { return error_; }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(const char* what) {
    if (error_.empty()) error_ = ErrorAt(what);
    return false;
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseString(std::string* out);
  bool ParseNumber(JsonValue* out);
  bool ParseObject(JsonValue* out);
  bool ParseArray(JsonValue* out);

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

bool Parser::ParseString(std::string* out) {
  if (!Consume('"')) return Fail("expected string");
  out->clear();
  while (pos_ < text_.size()) {
    char c = text_[pos_++];
    if (c == '"') return true;
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (pos_ >= text_.size()) return Fail("dangling escape");
    char esc = text_[pos_++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = text_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return Fail("bad \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not emitted
        // by this library's writer; a lone surrogate encodes as-is).
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        return Fail("unknown escape");
    }
  }
  return Fail("unterminated string");
}

bool Parser::ParseNumber(JsonValue* out) {
  size_t start = pos_;
  if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
          text_[pos_] == '+' || text_[pos_] == '-')) {
    ++pos_;
  }
  if (pos_ == start) return Fail("expected number");
  std::string token(text_.substr(start, pos_ - start));
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
    return Fail("malformed number");
  }
  *out = JsonValue::Number(value);
  return true;
}

bool Parser::ParseObject(JsonValue* out) {
  *out = JsonValue::Object();
  if (Consume('}')) return true;
  for (;;) {
    SkipWhitespace();
    std::string key;
    if (!ParseString(&key)) return false;
    if (!Consume(':')) return Fail("expected ':'");
    JsonValue value;
    if (!ParseValue(&value)) return false;
    out->Add(std::move(key), std::move(value));
    if (Consume(',')) continue;
    if (Consume('}')) return true;
    return Fail("expected ',' or '}'");
  }
}

bool Parser::ParseArray(JsonValue* out) {
  *out = JsonValue::Array();
  if (Consume(']')) return true;
  for (;;) {
    JsonValue value;
    if (!ParseValue(&value)) return false;
    out->Append(std::move(value));
    if (Consume(',')) continue;
    if (Consume(']')) return true;
    return Fail("expected ',' or ']'");
  }
}

bool Parser::ParseValue(JsonValue* out) {
  SkipWhitespace();
  if (pos_ >= text_.size()) return Fail("unexpected end of input");
  if (depth_ > 128) return Fail("nesting too deep");
  char c = text_[pos_];
  if (c == '{') {
    ++pos_;
    ++depth_;
    bool ok = ParseObject(out);
    --depth_;
    return ok;
  }
  if (c == '[') {
    ++pos_;
    ++depth_;
    bool ok = ParseArray(out);
    --depth_;
    return ok;
  }
  if (c == '"') {
    std::string s;
    if (!ParseString(&s)) return false;
    *out = JsonValue::String(std::move(s));
    return true;
  }
  if (ConsumeLiteral("true")) {
    *out = JsonValue::Bool(true);
    return true;
  }
  if (ConsumeLiteral("false")) {
    *out = JsonValue::Bool(false);
    return true;
  }
  if (ConsumeLiteral("null")) {
    *out = JsonValue::Null();
    return true;
  }
  return ParseNumber(out);
}

void SerializeTo(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += v.bool_value() ? "true" : "false";
      break;
    case JsonValue::Type::kNumber: {
      char buffer[32];
      double d = v.number_value();
      // Integers within double-exact range print without an exponent so the
      // JSONL stays grep-friendly; everything else uses %.17g round-trip.
      if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
        std::snprintf(buffer, sizeof(buffer), "%.0f", d);
      } else {
        std::snprintf(buffer, sizeof(buffer), "%.17g", d);
      }
      out += buffer;
      break;
    }
    case JsonValue::Type::kString:
      out += '"';
      out += JsonEscape(v.string_value());
      out += '"';
      break;
    case JsonValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += JsonEscape(key);
        out += "\":";
        SerializeTo(value, out);
      }
      out += '}';
      break;
    }
    case JsonValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out += ',';
        first = false;
        SerializeTo(item, out);
      }
      out += ']';
      break;
    }
  }
}

}  // namespace

JsonValue JsonValue::Bool(bool v) {
  JsonValue j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::Number(double v) {
  JsonValue j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::Object() {
  JsonValue j;
  j.type_ = Type::kObject;
  return j;
}

JsonValue JsonValue::Array() {
  JsonValue j;
  j.type_ = Type::kArray;
  return j;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

void JsonValue::Add(std::string key, JsonValue value) {
  members_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::Append(JsonValue value) { items_.push_back(std::move(value)); }

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(*this, out);
  return out;
}

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  Parser parser(text);
  JsonValue value;
  if (!parser.ParseValue(&value)) {
    if (error != nullptr) *error = parser.error();
    return false;
  }
  if (!parser.AtEnd()) {
    if (error != nullptr) *error = parser.ErrorAt("trailing characters");
    return false;
  }
  *out = std::move(value);
  return true;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cpgan::obs
