#ifndef CPGAN_OBS_TRACE_H_
#define CPGAN_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cpgan::obs {

/// \file
/// Scoped trace spans (docs/OBSERVABILITY.md).
///
/// `CPGAN_TRACE_SPAN("subsystem/op")` opens a span for the rest of the
/// enclosing block. Spans nest into a per-thread tree keyed by the call
/// path; each node accumulates call count and inclusive wall time, and the
/// exclusive time (inclusive minus children) is derived at report time.
/// Every thread — including thread-pool workers — owns its tree under its
/// own mutex, so recording is contention-free and TSan-clean; reports merge
/// the trees by path.
///
/// Determinism contract: spans only *observe* the steady clock. No timing
/// value ever feeds back into a computation, so tracing on/off cannot
/// change any numeric result (docs/INTERNALS.md, "Determinism").
///
/// When tracing is disabled (the default) a span costs one relaxed atomic
/// load. When Chrome trace-event recording is additionally enabled, every
/// completed span appends a `trace_event` record exportable for
/// chrome://tracing via WriteChromeTrace(). Spans that close while a
/// request context is installed (obs/request_context.h) are stamped with
/// the request id, and the Chrome export groups them into one lane per
/// request rather than per thread.

/// Span-tree collection switch (the `--profile` / `--trace` paths).
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// Chrome trace-event recording (implies the span tree is also built when
/// tracing is enabled; events are only recorded while both flags are on).
bool TraceEventsEnabled();
void SetTraceEventsEnabled(bool enabled);

/// RAII span. Use via CPGAN_TRACE_SPAN; `name` must outlive the program
/// (string literal) and should follow the `subsystem/op` convention.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) Enter(name);
  }
  ~ScopedSpan() {
    if (node_ != nullptr) Exit();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Enter(const char* name);
  void Exit();

  void* node_ = nullptr;  // internal SpanNode*, null when not recording
  uint64_t start_ns_ = 0;
};

/// One aggregated span (merged across threads), in depth-first order with
/// siblings sorted by descending inclusive time.
struct SpanStats {
  std::string path;        // "train/epoch;encoder/forward" (';'-joined)
  std::string name;        // leaf name
  int depth = 0;           // 0 for top-level spans
  uint64_t calls = 0;
  uint64_t inclusive_ns = 0;
  uint64_t exclusive_ns = 0;  // inclusive minus direct children
};

/// Merges every thread's span tree. Only completed spans are counted; an
/// open span contributes nothing until it closes.
std::vector<SpanStats> CollectSpanStats();

/// Clears every thread's span tree and recorded Chrome events. Spans that
/// are currently open keep nesting correctly and will be recorded on close.
void ResetTraces();

/// Renders CollectSpanStats() as an aligned profile table (util::Table):
/// span, calls, inclusive/exclusive ms, and exclusive share of the total.
std::string RenderProfile();

/// Writes recorded Chrome `trace_event` JSON ({"traceEvents":[...]}) for
/// chrome://tracing / Perfetto. Returns false on IO failure.
bool WriteChromeTrace(const std::string& path);

}  // namespace cpgan::obs

#define CPGAN_TRACE_CONCAT_IMPL(a, b) a##b
#define CPGAN_TRACE_CONCAT(a, b) CPGAN_TRACE_CONCAT_IMPL(a, b)

/// Traces the rest of the enclosing block as one span named `name`.
#define CPGAN_TRACE_SPAN(name) \
  ::cpgan::obs::ScopedSpan CPGAN_TRACE_CONCAT(cpgan_trace_span_, __LINE__)(name)

#endif  // CPGAN_OBS_TRACE_H_
