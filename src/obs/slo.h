#ifndef CPGAN_OBS_SLO_H_
#define CPGAN_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cpgan::obs {

/// \file
/// Sliding-window SLO tracking (docs/OBSERVABILITY.md, "SLO tracking").
///
/// SloTracker accumulates request outcomes (latency + success) into a ring
/// of log-bucket histogram slots covering a sliding time window, and
/// derives from that window:
///
///  * latency percentiles (p50/p95/p99) over the window;
///  * availability (fraction of requests that succeeded);
///  * error-budget burn rates for both the availability objective and the
///    latency objective. A burn rate of 1.0 means the service is consuming
///    its error budget exactly as fast as the objective allows; >1 means
///    the budget will be exhausted before the SLO period ends.
///
/// Observations and snapshots are mutex-guarded (requests touch the tracker
/// once per completion — this is nowhere near the serving hot path), and
/// everything is derived from the same power-of-two bucket scheme as
/// obs::Histogram, so exporter histograms and SLO percentiles agree.

struct SloConfig {
  /// Latency objective: `latency_objective` of requests complete within
  /// `latency_target_ms`.
  double latency_target_ms = 50.0;
  double latency_objective = 0.99;

  /// Availability objective: this fraction of requests succeed.
  double availability_objective = 0.999;

  /// Sliding window length. Requests older than this no longer influence
  /// percentiles or burn rates.
  double window_s = 60.0;

  /// Ring granularity: the window is divided into this many slots, and one
  /// slot's worth of history expires at a time.
  int slots = 12;
};

/// Derived view of the current window.
struct SloSnapshot {
  uint64_t total = 0;      // requests in the window
  uint64_t errors = 0;     // failed requests in the window
  uint64_t slow = 0;       // requests over latency_target_ms in the window
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double availability = 1.0;         // 1 - errors/total (1 when empty)
  double latency_compliance = 1.0;   // 1 - slow/total (1 when empty)
  /// Error-budget burn rates: observed bad fraction divided by the budget
  /// the objective allows (0 when the window is empty; 1.0 = burning the
  /// budget exactly at the allowed rate).
  double availability_burn_rate = 0.0;
  double latency_burn_rate = 0.0;
  double window_s = 0.0;   // config echo, for consumers of STATS/JSONL
};

class SloTracker {
 public:
  explicit SloTracker(const SloConfig& config);

  /// Records one completed request. `ok` is the availability outcome
  /// (shed/timeout/failure => false); latency counts toward the latency
  /// objective regardless of outcome.
  void Observe(uint64_t latency_ns, bool ok);

  /// Derives the current window's percentiles and burn rates.
  SloSnapshot Snapshot() const;

  /// Deterministic-time variants for tests: `now_ns` is any monotonic
  /// nanosecond clock (slots advance as it crosses slot boundaries).
  void ObserveAt(uint64_t now_ns, uint64_t latency_ns, bool ok);
  SloSnapshot SnapshotAt(uint64_t now_ns) const;

  /// Publishes Snapshot() as gauges `<prefix>.p50_ms`, `.p95_ms`,
  /// `.p99_ms`, `.availability`, `.latency_compliance`,
  /// `.availability_burn_rate`, `.latency_burn_rate`, `.window_total` on
  /// the global registry — the exporter's on_tick hook calls this so SLO
  /// health lands in every snapshot.
  void PublishGauges(const std::string& prefix) const;

  const SloConfig& config() const { return config_; }

 private:
  struct Slot {
    HistogramSnapshot hist;  // latency observations (ns)
    uint64_t errors = 0;
    uint64_t slow = 0;
    uint64_t epoch = 0;      // slot-time when this slot was last written
    bool used = false;
  };

  /// Rotates the ring forward to `epoch`, clearing expired slots.
  void AdvanceTo(uint64_t epoch);
  SloSnapshot SnapshotLocked(uint64_t now_ns) const;

  SloConfig config_;
  uint64_t slot_ns_ = 0;       // window_s / slots, in nanoseconds
  uint64_t latency_target_ns_ = 0;

  mutable std::mutex mutex_;
  std::vector<Slot> ring_;
  uint64_t current_epoch_ = 0;
};

}  // namespace cpgan::obs

#endif  // CPGAN_OBS_SLO_H_
