#ifndef CPGAN_OBS_EXPORTER_H_
#define CPGAN_OBS_EXPORTER_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <condition_variable>
#include <vector>

#include "obs/metrics.h"

namespace cpgan::obs {

/// \file
/// Periodic metrics exporter (docs/OBSERVABILITY.md, "Live exporter").
///
/// A background thread snapshots the global MetricsRegistry on a timer and
/// writes the result to two optional sinks:
///
///  * a Prometheus text-exposition file, rewritten atomically each tick so
///    a scraper (or `cat`) always sees one complete, valid exposition;
///  * an append-only JSONL file, one snapshot object per line, carrying
///    *deltas* for counters and histograms (what happened since the last
///    tick) next to instantaneous gauge values.
///
/// The exporter only reads relaxed atomics through Registry::VisitAll — it
/// never holds the registry lock while serializing, and serving threads
/// never block on it.

/// Renders `samples` in Prometheus text exposition format (version 0.0.4):
/// one `# TYPE` line per metric, counters as `<name>_total`, histograms as
/// cumulative `_bucket{le=...}` series plus `_sum`/`_count`, stopwatches as
/// `<name>_seconds_total` + `<name>_calls_total`. Metric names are mapped
/// to the Prometheus charset by rewriting [./-] to '_' (registration-time
/// sanitization guarantees nothing else can appear).
std::string RenderPrometheus(const std::vector<MetricSample>& samples);

/// Prometheus-charset form of a registry metric name.
std::string PrometheusName(const std::string& name);

struct ExporterOptions {
  /// Snapshot period. The exporter also flushes once on Stop regardless of
  /// the phase of the timer, so short-lived processes still export.
  double period_ms = 1000.0;

  /// Prometheus text file, atomically rewritten per tick. Empty disables.
  std::string prometheus_path;

  /// JSONL snapshot log, appended per tick. Empty disables.
  std::string jsonl_path;

  /// Called at the start of every tick (and the final flush) before the
  /// snapshot is taken — the hook the serving layer uses to publish
  /// derived gauges (SLO percentiles, burn rates) so they appear in the
  /// same snapshot as the raw instruments they derive from.
  std::function<void()> on_tick;
};

/// Background exporter over MetricsRegistry::Global(). Start/Stop are
/// idempotent; Stop performs a final flush so the last partial period is
/// never lost. A Flush can also be requested at any time (the STATS verb
/// uses this for on-demand exposition).
class MetricsExporter {
 public:
  explicit MetricsExporter(const ExporterOptions& options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Spawns the exporter thread. No-op when already running or when both
  /// sink paths are empty.
  void Start();

  /// Final flush, then joins the thread. Safe to call repeatedly.
  void Stop();

  /// Synchronously snapshots and writes both sinks (usable whether or not
  /// the background thread is running). Returns false if any enabled sink
  /// failed to write.
  bool Flush();

  bool running() const;
  int snapshots_written() const;
  const ExporterOptions& options() const { return options_; }

 private:
  void Loop();
  bool WriteSinks();

  ExporterOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stopping_ = false;

  // Serializes WriteSinks against concurrent Flush callers and guards the
  // delta baseline + JSONL stream (one fwrite per line keeps lines whole).
  mutable std::mutex write_mutex_;
  std::FILE* jsonl_file_ = nullptr;
  int snapshots_written_ = 0;
  uint64_t sequence_ = 0;
  std::map<std::string, double> last_counters_;
  std::map<std::string, HistogramSnapshot> last_histograms_;
  std::map<std::string, std::pair<double, uint64_t>> last_stopwatches_;
};

}  // namespace cpgan::obs

#endif  // CPGAN_OBS_EXPORTER_H_
