#include "obs/request_context.h"

#include <chrono>

namespace cpgan::obs {

namespace {

thread_local RequestContext t_request_context;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RequestContext CurrentRequestContext() { return t_request_context; }

uint64_t CurrentRequestId() { return t_request_context.id; }

bool CurrentRequestDeadlineExpired() {
  return t_request_context.deadline_ns != 0 &&
         NowNanos() >= t_request_context.deadline_ns;
}

ScopedRequestContext::ScopedRequestContext(const RequestContext& context)
    : previous_(t_request_context) {
  t_request_context = context;
}

ScopedRequestContext::~ScopedRequestContext() {
  t_request_context = previous_;
}

}  // namespace cpgan::obs
