#ifndef CPGAN_OBS_REQUEST_CONTEXT_H_
#define CPGAN_OBS_REQUEST_CONTEXT_H_

#include <cstdint>

namespace cpgan::obs {

/// \file
/// Request-scoped trace context (docs/OBSERVABILITY.md).
///
/// A RequestContext carries a request id and an optional deadline through
/// everything that runs on behalf of one serving request: the serve worker
/// installs it with ScopedRequestContext, util::ThreadPool captures it when
/// a parallel region is posted and re-installs it on every pool thread that
/// executes chunks of that region, and trace spans stamp the active id on
/// each completed Chrome trace event. WriteChromeTrace then groups spans by
/// request instead of only by recording thread.
///
/// Like the rest of the telemetry layer this is observational only: nothing
/// reads the context to change a numeric result. It lives in cpgan_util
/// (next to obs/metrics.cc) so the thread pool can propagate it without a
/// cpgan_util <-> cpgan_obs cycle.

/// The context payload. `id` 0 means "no request" (the idle/default state);
/// `deadline_ns` is an absolute std::chrono::steady_clock time in
/// nanoseconds since the clock's epoch, 0 when the request is unbounded.
struct RequestContext {
  uint64_t id = 0;
  uint64_t deadline_ns = 0;

  bool active() const { return id != 0; }
};

/// The context installed on the calling thread (all-zero when none).
RequestContext CurrentRequestContext();

/// Shorthand for CurrentRequestContext().id.
uint64_t CurrentRequestId();

/// True when the calling thread's context carries a deadline that has
/// passed on the steady clock. False when no context or no deadline.
bool CurrentRequestDeadlineExpired();

/// RAII installer: swaps `context` in for the calling thread and restores
/// the previous context on destruction, so nesting (a request that fans out
/// sub-requests) unwinds correctly.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(const RequestContext& context);
  ~ScopedRequestContext();

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext previous_;
};

}  // namespace cpgan::obs

#endif  // CPGAN_OBS_REQUEST_CONTEXT_H_
