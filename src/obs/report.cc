#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_logger.h"
#include "util/fileio.h"
#include "util/table.h"

namespace cpgan::obs {

namespace {

std::string FormatDouble(double value, const char* fmt = "%.3f") {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, value);
  return buffer;
}

/// Splits `text` into lines (without terminators); a missing trailing
/// newline still yields the final line.
std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// ----- Exporter snapshot logs -----

struct SnapshotDigest {
  int files = 0;
  int snapshots = 0;
  int skipped_lines = 0;
  int64_t first_unix_time = 0;
  int64_t last_unix_time = 0;
  // Final cumulative totals win (last snapshot seen per file); deltas are
  // summed so histogram percentiles cover the whole logged interval even
  // across registry resets.
  std::map<std::string, double> counter_totals;
  std::map<std::string, double> gauge_last;
  std::map<std::string, HistogramSnapshot> histogram_windows;
  std::map<std::string, std::pair<double, uint64_t>> stopwatch_totals;
};

void MergeSnapshotLine(const JsonValue& snap, SnapshotDigest& digest) {
  ++digest.snapshots;
  const int64_t t = static_cast<int64_t>(snap.NumberOr("unix_time", 0.0));
  if (t > 0) {
    if (digest.first_unix_time == 0) digest.first_unix_time = t;
    digest.last_unix_time = t;
  }
  if (const JsonValue* counters = snap.Find("counters")) {
    for (const auto& [name, value] : counters->members()) {
      digest.counter_totals[name] = value.NumberOr("total", 0.0);
    }
  }
  if (const JsonValue* gauges = snap.Find("gauges")) {
    for (const auto& [name, value] : gauges->members()) {
      if (value.is_number()) digest.gauge_last[name] = value.number_value();
    }
  }
  if (const JsonValue* histograms = snap.Find("histograms")) {
    for (const auto& [name, value] : histograms->members()) {
      HistogramSnapshot delta;
      delta.count =
          static_cast<uint64_t>(value.NumberOr("delta_count", 0.0));
      delta.sum = static_cast<uint64_t>(value.NumberOr("delta_sum", 0.0));
      if (const JsonValue* buckets = value.Find("delta_buckets")) {
        const auto& items = buckets->items();
        const size_t n = std::min(
            items.size(), static_cast<size_t>(HistogramSnapshot::kNumBuckets));
        for (size_t b = 0; b < n; ++b) {
          delta.buckets[b] =
              static_cast<uint64_t>(items[b].number_value());
        }
      }
      digest.histogram_windows[name].Accumulate(delta);
    }
  }
  if (const JsonValue* stopwatches = snap.Find("stopwatches")) {
    for (const auto& [name, value] : stopwatches->members()) {
      digest.stopwatch_totals[name] = {
          value.NumberOr("ms", 0.0),
          static_cast<uint64_t>(value.NumberOr("count", 0.0))};
    }
  }
}

void RenderSnapshotSection(const SnapshotDigest& digest, std::string& out) {
  out += "== Metric snapshots ==\n";
  char line[160];
  std::snprintf(line, sizeof(line),
                "files=%d snapshots=%d skipped_lines=%d span_s=%lld\n\n",
                digest.files, digest.snapshots, digest.skipped_lines,
                static_cast<long long>(digest.last_unix_time -
                                       digest.first_unix_time));
  out += line;
  if (digest.snapshots == 0) return;

  if (!digest.counter_totals.empty()) {
    util::Table counters({"counter", "total"});
    for (const auto& [name, total] : digest.counter_totals) {
      counters.AddRow({name, FormatDouble(total, "%.0f")});
    }
    out += counters.Render();
    out += '\n';
  }
  if (!digest.histogram_windows.empty()) {
    util::Table histograms(
        {"histogram", "count", "p50", "p95", "p99", "mean"});
    for (const auto& [name, window] : digest.histogram_windows) {
      const double mean =
          window.count > 0 ? static_cast<double>(window.sum) /
                                 static_cast<double>(window.count)
                           : 0.0;
      histograms.AddRow({name, std::to_string(window.count),
                         FormatDouble(window.Quantile(0.50), "%.0f"),
                         FormatDouble(window.Quantile(0.95), "%.0f"),
                         FormatDouble(window.Quantile(0.99), "%.0f"),
                         FormatDouble(mean, "%.0f")});
    }
    out += histograms.Render();
    out += "(histogram columns are in observed units; serve.latency_ns is "
           "nanoseconds)\n\n";
  }
  if (!digest.stopwatch_totals.empty()) {
    util::Table stopwatches({"stopwatch", "total ms", "calls"});
    for (const auto& [name, totals] : digest.stopwatch_totals) {
      stopwatches.AddRow({name, FormatDouble(totals.first),
                          std::to_string(totals.second)});
    }
    out += stopwatches.Render();
    out += '\n';
  }
  if (!digest.gauge_last.empty()) {
    util::Table gauges({"gauge", "last value"});
    for (const auto& [name, value] : digest.gauge_last) {
      gauges.AddRow({name, FormatDouble(value)});
    }
    out += gauges.Render();
    out += '\n';
  }
}

// ----- Training run logs -----

struct RunLogDigest {
  std::string path;
  int epochs = 0;
  int snapshot_lines = 0;
  int skipped_lines = 0;
  double last_g_loss = 0.0;
  double total_epoch_ms = 0.0;
  int guard_trips = 0;
  int rollbacks = 0;
  int checkpoints = 0;
  int64_t peak_bytes = 0;
};

void RenderRunLogSection(const std::vector<RunLogDigest>& digests,
                         std::string& out) {
  out += "== Training run logs ==\n";
  util::Table table({"run log", "epochs", "last g_loss", "mean epoch ms",
                     "guard trips", "rollbacks", "ckpts", "peak MiB",
                     "snapshots"});
  for (const RunLogDigest& d : digests) {
    table.AddRow(
        {d.path, std::to_string(d.epochs), FormatDouble(d.last_g_loss, "%.4f"),
         FormatDouble(d.epochs > 0 ? d.total_epoch_ms / d.epochs : 0.0),
         std::to_string(d.guard_trips), std::to_string(d.rollbacks),
         std::to_string(d.checkpoints),
         FormatDouble(static_cast<double>(d.peak_bytes) / (1024.0 * 1024.0),
                      "%.1f"),
         std::to_string(d.snapshot_lines)});
  }
  out += table.Render();
  out += '\n';
}

// ----- Chrome traces -----

struct TraceDigest {
  int files = 0;
  int events = 0;
  int requests = 0;  // distinct request lanes across all files
  std::map<std::string, std::pair<uint64_t, double>> by_name;  // calls, ms
};

void MergeTraceFile(const JsonValue& doc, TraceDigest& digest) {
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) return;
  std::map<double, bool> request_pids;
  for (const JsonValue& event : events->items()) {
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string_value() != "X") {
      continue;  // metadata events
    }
    ++digest.events;
    const JsonValue* name = event.Find("name");
    const std::string key =
        name != nullptr && name->is_string() ? name->string_value() : "?";
    auto& [calls, ms] = digest.by_name[key];
    calls += 1;
    ms += event.NumberOr("dur", 0.0) * 1e-3;  // micros -> ms
    const double pid = event.NumberOr("pid", 1.0);
    if (pid > 1.0) request_pids[pid] = true;
  }
  digest.requests += static_cast<int>(request_pids.size());
}

void RenderTraceSection(const TraceDigest& digest, std::string& out) {
  out += "== Traces ==\n";
  char line[128];
  std::snprintf(line, sizeof(line), "files=%d events=%d request_lanes=%d\n\n",
                digest.files, digest.events, digest.requests);
  out += line;
  if (digest.by_name.empty()) return;
  // Top spans by total time.
  std::vector<std::pair<std::string, std::pair<uint64_t, double>>> ordered(
      digest.by_name.begin(), digest.by_name.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.second > b.second.second;
                   });
  if (ordered.size() > 20) ordered.resize(20);
  util::Table table({"span", "calls", "total ms"});
  for (const auto& [name, totals] : ordered) {
    table.AddRow(
        {name, std::to_string(totals.first), FormatDouble(totals.second)});
  }
  out += table.Render();
  out += '\n';
}

}  // namespace

std::string RenderObsReport(const ObsReportOptions& options,
                            std::string* error) {
  SnapshotDigest snapshots;
  std::vector<RunLogDigest> runlogs;
  TraceDigest traces;
  std::vector<std::string> unreadable;
  int readable = 0;

  for (const std::string& path : options.snapshot_paths) {
    std::string text;
    if (!util::ReadFileToString(path, &text)) {
      unreadable.push_back(path);
      continue;
    }
    ++readable;
    ++snapshots.files;
    for (std::string_view line : SplitLines(text)) {
      if (line.empty()) continue;
      JsonValue snap;
      const JsonValue* kind = nullptr;
      if (!JsonValue::Parse(line, &snap) ||
          (kind = snap.Find("kind")) == nullptr || !kind->is_string() ||
          kind->string_value() != "metrics_snapshot") {
        ++snapshots.skipped_lines;
        continue;
      }
      MergeSnapshotLine(snap, snapshots);
    }
  }

  for (const std::string& path : options.runlog_paths) {
    std::string text;
    if (!util::ReadFileToString(path, &text)) {
      unreadable.push_back(path);
      continue;
    }
    ++readable;
    RunLogDigest digest;
    digest.path = path;
    for (std::string_view line : SplitLines(text)) {
      if (line.empty()) continue;
      JsonValue record;
      if (!JsonValue::Parse(line, &record)) {
        ++digest.skipped_lines;
        continue;
      }
      const JsonValue* kind = record.Find("kind");
      if (kind != nullptr && kind->is_string() &&
          kind->string_value() == "metrics_snapshot") {
        ++digest.snapshot_lines;
        // The embedded registry dump also feeds the merged metric view, so
        // training-only artifacts still produce a snapshot section.
        if (const JsonValue* metrics = record.Find("metrics")) {
          if (const JsonValue* counters = metrics->Find("counters")) {
            for (const auto& [name, value] : counters->members()) {
              if (value.is_number()) {
                snapshots.counter_totals[name] = value.number_value();
              }
            }
          }
        }
        continue;
      }
      EpochRecord epoch;
      if (!EpochRecordFromJson(record, &epoch)) {
        ++digest.skipped_lines;
        continue;
      }
      ++digest.epochs;
      digest.last_g_loss = epoch.g_loss;
      digest.total_epoch_ms += epoch.epoch_ms;
      digest.guard_trips += epoch.guard_trips;
      digest.rollbacks += epoch.rollbacks;
      if (epoch.wrote_checkpoint) ++digest.checkpoints;
      digest.peak_bytes = std::max(digest.peak_bytes, epoch.peak_bytes);
    }
    runlogs.push_back(std::move(digest));
  }

  for (const std::string& path : options.trace_paths) {
    std::string text;
    if (!util::ReadFileToString(path, &text)) {
      unreadable.push_back(path);
      continue;
    }
    ++readable;
    JsonValue doc;
    if (JsonValue::Parse(text, &doc)) {
      ++traces.files;
      MergeTraceFile(doc, traces);
    } else {
      unreadable.push_back(path + " (parse failure)");
    }
  }

  if (readable == 0) {
    if (error != nullptr) {
      *error = unreadable.empty() ? "no input files given"
                                  : "no readable input among " +
                                        std::to_string(unreadable.size()) +
                                        " file(s)";
    }
    return "";
  }

  std::string out = "cpgan observability report\n";
  out += "==========================\n\n";
  if (snapshots.files > 0 || !snapshots.counter_totals.empty()) {
    RenderSnapshotSection(snapshots, out);
  }
  if (!runlogs.empty()) RenderRunLogSection(runlogs, out);
  if (traces.files > 0) RenderTraceSection(traces, out);
  if (!unreadable.empty()) {
    out += "== Skipped inputs ==\n";
    for (const std::string& path : unreadable) {
      out += "  " + path + "\n";
    }
  }
  return out;
}

}  // namespace cpgan::obs
