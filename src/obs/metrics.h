#ifndef CPGAN_OBS_METRICS_H_
#define CPGAN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <map>
#include <mutex>
#include <vector>

namespace cpgan::obs {

/// \file
/// Thread-safe metrics registry (docs/OBSERVABILITY.md).
///
/// Named Counter / Gauge / Histogram / Stopwatch instruments with global
/// lookup. Instruments are plain relaxed atomics, safe to update from any
/// thread (including thread-pool workers); the registry hands out stable
/// pointers, so call sites resolve a name once and update lock-free after
/// that. The CPGAN_COUNTER_ADD-style macros below cache the lookup in a
/// function-local static and skip the update entirely when metrics are
/// disabled — the disabled fast path is a single relaxed atomic load.
///
/// Metrics are observational only: nothing read from an instrument ever
/// feeds back into a computation, so enabling or disabling them cannot
/// change any numeric result (see docs/INTERNALS.md, "Determinism").

/// Global metrics switch (default on; instruments are cheap). The macros
/// below honor it; direct Instrument calls do not.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (also supports monotone max updates).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  /// Raises the gauge to `value` if larger (CAS loop; racing updates
  /// converge to the true maximum).
  void SetMax(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of one histogram's state. Snapshots of the same
/// histogram taken at two times can be subtracted (`DeltaSince`) to get the
/// observations that landed in between — the basis of the periodic
/// exporter's true-delta output and the SLO tracker's sliding window.
struct HistogramSnapshot {
  static constexpr int kNumBuckets = 48;  // mirrors Histogram::kNumBuckets

  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  /// Observations recorded after `earlier` was taken (per-field saturating
  /// subtraction, so a concurrent Reset between the two snapshots yields
  /// zeros instead of wrapped garbage).
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;

  /// Merges another snapshot's observations into this one.
  void Accumulate(const HistogramSnapshot& other);

  /// Quantile estimate (q in [0, 1]) interpolated linearly inside the
  /// log-scale landing bucket; 0 when the snapshot is empty. Units are
  /// whatever was observed (nanoseconds for latency histograms).
  double Quantile(double q) const;
};

/// Histogram over non-negative integer samples (nanoseconds, bytes, counts)
/// with fixed log-scale (powers-of-two) buckets:
///
///   bucket 0           : value == 0
///   bucket i (i >= 1)  : value in [2^(i-1), 2^i)
///   bucket kNumBuckets-1 also absorbs everything >= 2^(kNumBuckets-2).
///
/// 48 buckets cover [0, 2^46) — about 19 hours in nanoseconds or 64 TiB in
/// bytes — with a fixed footprint and wait-free updates.
class Histogram {
 public:
  static constexpr int kNumBuckets = 48;

  /// Bucket index for `value` per the scheme above.
  static int BucketFor(uint64_t value);

  /// Smallest value that lands in `bucket` (0 for bucket 0).
  static uint64_t BucketLowerBound(int bucket);

  void Observe(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  void Reset();

  /// Relaxed-atomic copy of the current state. Not a consistent cut across
  /// concurrent Observe calls — each field is individually torn-free, which
  /// is all delta exposition needs.
  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Accumulated wall time (total nanoseconds + call count). Use Scope for
/// RAII measurement; measured on std::chrono::steady_clock (monotonic, the
/// same clock as util::Timer).
class Stopwatch {
 public:
  void AddNanos(uint64_t nanos) {
    total_ns_.fetch_add(nanos, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t TotalNanos() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  double TotalSeconds() const { return TotalNanos() * 1e-9; }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

  /// Measures from construction to destruction; a null stopwatch (or
  /// disabled metrics at construction) makes the scope a no-op.
  class Scope {
   public:
    explicit Scope(Stopwatch* stopwatch);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Stopwatch* stopwatch_;
    uint64_t start_ns_ = 0;
  };

 private:
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> count_{0};
};

/// One instrument's state, copied out by MetricsRegistry::Snapshot().
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram, kStopwatch };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;              // counter/gauge value; stopwatch total ms
  uint64_t count = 0;              // histogram/stopwatch observation count
  uint64_t sum = 0;                // histogram sample sum
  std::vector<uint64_t> buckets;   // histogram only (kNumBuckets entries)
};

/// One registered instrument, handed to VisitAll callbacks. Exactly one of
/// the typed pointers is non-null (matching `kind`); `name` points at the
/// registry-owned key and stays valid for the process lifetime.
struct InstrumentRef {
  const std::string* name = nullptr;
  MetricSample::Kind kind = MetricSample::Kind::kCounter;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
  const Stopwatch* stopwatch = nullptr;
};

/// Canonical form of a metric name: `[A-Za-z0-9_./:-]+`, starting with a
/// letter or underscore. Anything else is rewritten at registration —
/// offending characters become '_', a leading digit gains a '_' prefix, an
/// empty name becomes "_unnamed" — so downstream exposition (Prometheus
/// text format, JSON keys) can never be handed an unrepresentable name.
std::string SanitizeMetricName(std::string_view name);

/// True when `name` is already in canonical form (no rewrite needed).
bool IsValidMetricName(std::string_view name);

/// Named instrument registry. Lookups are find-or-create under a mutex and
/// return pointers that stay valid for the registry's lifetime. Names are
/// sanitized at registration (SanitizeMetricName), so two spellings that
/// sanitize identically share one instrument.
class MetricsRegistry {
 public:
  /// Process-wide registry used by all instrumented subsystems.
  static MetricsRegistry& Global();

  Counter* FindCounter(std::string_view name);
  Gauge* FindGauge(std::string_view name);
  Histogram* FindHistogram(std::string_view name);
  Stopwatch* FindStopwatch(std::string_view name);

  /// Visits every registered instrument in registration order. The lock is
  /// held only to copy a flat vector of stable refs (instruments and names
  /// never move or die), so the visitor runs without blocking the hot-path
  /// find-or-create — and may itself call Find* without deadlocking.
  void VisitAll(const std::function<void(const InstrumentRef&)>& visitor) const;

  /// Copies every instrument's current state, sorted by (kind, name).
  /// Built on VisitAll: the registry lock is released before any instrument
  /// state is read.
  std::vector<MetricSample> SnapshotAll() const;

  /// Back-compat alias for SnapshotAll().
  std::vector<MetricSample> Snapshot() const { return SnapshotAll(); }

  /// Zeroes every instrument (instruments stay registered; pointers remain
  /// valid). For test isolation and per-run deltas.
  void ResetAll();

  /// Serializes Snapshot() as one JSON object:
  ///   {"counters":{name:value,...}, "gauges":{...},
  ///    "stopwatches":{name:{"ms":..,"count":..},...},
  ///    "histograms":{name:{"count":..,"sum":..,"buckets":[..]},...}}
  std::string RenderJson() const;

 private:
  template <typename T>
  T* FindOrCreate(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                  std::string_view name, MetricSample::Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Stopwatch>, std::less<>> stopwatches_;
  // Registration-ordered refs backing VisitAll; guarded by mutex_, but the
  // pointed-at names (map keys) and instruments are immortal, so a copy of
  // this vector can be walked lock-free.
  std::vector<InstrumentRef> index_;
};

}  // namespace cpgan::obs

/// Update macros: resolve the named instrument once (function-local static),
/// skip everything when metrics are disabled. `name` must be a string
/// literal (or otherwise outlive the first call).
#define CPGAN_COUNTER_ADD(name, delta)                                     \
  do {                                                                     \
    if (::cpgan::obs::MetricsEnabled()) {                                  \
      static ::cpgan::obs::Counter* cpgan_counter_ =                       \
          ::cpgan::obs::MetricsRegistry::Global().FindCounter(name);       \
      cpgan_counter_->Increment(delta);                                    \
    }                                                                      \
  } while (0)

#define CPGAN_GAUGE_SET(name, value)                                       \
  do {                                                                     \
    if (::cpgan::obs::MetricsEnabled()) {                                  \
      static ::cpgan::obs::Gauge* cpgan_gauge_ =                           \
          ::cpgan::obs::MetricsRegistry::Global().FindGauge(name);         \
      cpgan_gauge_->Set(value);                                            \
    }                                                                      \
  } while (0)

#define CPGAN_HISTOGRAM_OBSERVE(name, value)                               \
  do {                                                                     \
    if (::cpgan::obs::MetricsEnabled()) {                                  \
      static ::cpgan::obs::Histogram* cpgan_histogram_ =                   \
          ::cpgan::obs::MetricsRegistry::Global().FindHistogram(name);     \
      cpgan_histogram_->Observe(value);                                    \
    }                                                                      \
  } while (0)

#define CPGAN_METRICS_CONCAT_IMPL(a, b) a##b
#define CPGAN_METRICS_CONCAT(a, b) CPGAN_METRICS_CONCAT_IMPL(a, b)

/// Declares a Stopwatch::Scope measuring the rest of the enclosing block.
#define CPGAN_STOPWATCH_SCOPE(name)                                        \
  ::cpgan::obs::Stopwatch::Scope CPGAN_METRICS_CONCAT(                     \
      cpgan_stopwatch_scope_, __LINE__)(                                   \
      ::cpgan::obs::MetricsEnabled()                                       \
          ? ::cpgan::obs::MetricsRegistry::Global().FindStopwatch(name)    \
          : nullptr)

#endif  // CPGAN_OBS_METRICS_H_
