#ifndef CPGAN_OBS_REPORT_H_
#define CPGAN_OBS_REPORT_H_

#include <string>
#include <vector>

namespace cpgan::obs {

/// \file
/// Offline observability report (`cpgan_cli obs-report`;
/// docs/OBSERVABILITY.md, "Offline reports").
///
/// Merges the artifacts the live plane leaves behind — exporter JSONL
/// snapshot logs, training run logs, Chrome trace files — into one
/// human-readable summary: counter totals, histogram percentiles
/// reconstructed from summed snapshot deltas, final gauge values (including
/// serve.slo.* health), per-run training digests, and per-request span
/// totals from traces.

struct ObsReportOptions {
  std::vector<std::string> snapshot_paths;  // exporter JSONL (--snapshots)
  std::vector<std::string> runlog_paths;    // training run logs (--runlog)
  std::vector<std::string> trace_paths;     // Chrome trace JSON (--trace)
};

/// Renders the merged report. Unreadable files and unparseable lines are
/// noted in the report body rather than failing the whole run; returns an
/// empty string and sets `*error` only when no input could be read at all.
std::string RenderObsReport(const ObsReportOptions& options,
                            std::string* error);

}  // namespace cpgan::obs

#endif  // CPGAN_OBS_REPORT_H_
