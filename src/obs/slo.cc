#include "obs/slo.h"

#include <algorithm>
#include <chrono>

namespace cpgan::obs {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SloTracker::SloTracker(const SloConfig& config) : config_(config) {
  if (config_.slots < 1) config_.slots = 1;
  if (config_.window_s <= 0.0) config_.window_s = 1.0;
  config_.latency_objective =
      std::min(std::max(config_.latency_objective, 0.0), 1.0);
  config_.availability_objective =
      std::min(std::max(config_.availability_objective, 0.0), 1.0);
  slot_ns_ = static_cast<uint64_t>(config_.window_s * 1e9 /
                                   static_cast<double>(config_.slots));
  if (slot_ns_ == 0) slot_ns_ = 1;
  latency_target_ns_ =
      static_cast<uint64_t>(config_.latency_target_ms * 1e6);
  ring_.resize(static_cast<size_t>(config_.slots));
}

void SloTracker::AdvanceTo(uint64_t epoch) {
  if (epoch <= current_epoch_) return;
  // Clear every slot that the window slid past. Jumping more than a full
  // ring ahead clears everything once.
  const uint64_t steps =
      std::min(epoch - current_epoch_, static_cast<uint64_t>(ring_.size()));
  for (uint64_t i = 1; i <= steps; ++i) {
    Slot& slot = ring_[(current_epoch_ + i) % ring_.size()];
    slot = Slot{};
  }
  current_epoch_ = epoch;
}

void SloTracker::Observe(uint64_t latency_ns, bool ok) {
  ObserveAt(NowNanos(), latency_ns, ok);
}

void SloTracker::ObserveAt(uint64_t now_ns, uint64_t latency_ns, bool ok) {
  const uint64_t epoch = now_ns / slot_ns_;
  std::lock_guard<std::mutex> lock(mutex_);
  AdvanceTo(epoch);
  Slot& slot = ring_[epoch % ring_.size()];
  slot.epoch = epoch;
  slot.used = true;
  slot.hist.count += 1;
  slot.hist.sum += latency_ns;
  slot.hist.buckets[static_cast<size_t>(Histogram::BucketFor(latency_ns))] +=
      1;
  if (!ok) slot.errors += 1;
  if (latency_ns > latency_target_ns_) slot.slow += 1;
}

SloSnapshot SloTracker::Snapshot() const { return SnapshotAt(NowNanos()); }

SloSnapshot SloTracker::SnapshotAt(uint64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return SnapshotLocked(now_ns);
}

SloSnapshot SloTracker::SnapshotLocked(uint64_t now_ns) const {
  const uint64_t epoch = now_ns / slot_ns_;
  const uint64_t oldest =
      epoch >= ring_.size() - 1 ? epoch - (ring_.size() - 1) : 0;

  SloSnapshot out;
  out.window_s = config_.window_s;
  HistogramSnapshot window;
  for (const Slot& slot : ring_) {
    if (!slot.used || slot.epoch < oldest || slot.epoch > epoch) continue;
    window.Accumulate(slot.hist);
    out.errors += slot.errors;
    out.slow += slot.slow;
  }
  out.total = window.count;
  if (out.total == 0) return out;

  out.p50_ms = window.Quantile(0.50) * 1e-6;
  out.p95_ms = window.Quantile(0.95) * 1e-6;
  out.p99_ms = window.Quantile(0.99) * 1e-6;

  const double total = static_cast<double>(out.total);
  out.availability = 1.0 - static_cast<double>(out.errors) / total;
  out.latency_compliance = 1.0 - static_cast<double>(out.slow) / total;

  const double availability_budget = 1.0 - config_.availability_objective;
  const double latency_budget = 1.0 - config_.latency_objective;
  // A zero budget (objective == 1.0) makes any bad request an infinite burn
  // rate; clamp to a large sentinel instead of dividing by zero.
  constexpr double kMaxBurnRate = 1e6;
  const double error_fraction = static_cast<double>(out.errors) / total;
  const double slow_fraction = static_cast<double>(out.slow) / total;
  out.availability_burn_rate =
      availability_budget > 0.0
          ? std::min(error_fraction / availability_budget, kMaxBurnRate)
          : (out.errors > 0 ? kMaxBurnRate : 0.0);
  out.latency_burn_rate =
      latency_budget > 0.0
          ? std::min(slow_fraction / latency_budget, kMaxBurnRate)
          : (out.slow > 0 ? kMaxBurnRate : 0.0);
  return out;
}

void SloTracker::PublishGauges(const std::string& prefix) const {
  const SloSnapshot snap = Snapshot();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.FindGauge(prefix + ".p50_ms")->Set(snap.p50_ms);
  registry.FindGauge(prefix + ".p95_ms")->Set(snap.p95_ms);
  registry.FindGauge(prefix + ".p99_ms")->Set(snap.p99_ms);
  registry.FindGauge(prefix + ".availability")->Set(snap.availability);
  registry.FindGauge(prefix + ".latency_compliance")
      ->Set(snap.latency_compliance);
  registry.FindGauge(prefix + ".availability_burn_rate")
      ->Set(snap.availability_burn_rate);
  registry.FindGauge(prefix + ".latency_burn_rate")
      ->Set(snap.latency_burn_rate);
  registry.FindGauge(prefix + ".window_total")
      ->Set(static_cast<double>(snap.total));
}

}  // namespace cpgan::obs
