#include "obs/exporter.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>

#include "obs/json.h"
#include "util/fileio.h"
#include "util/logging.h"

namespace cpgan::obs {

namespace {

void AppendNumber(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void AppendMetricLine(std::string& out, const std::string& name,
                      double value) {
  out += name;
  out += ' ';
  AppendNumber(out, value);
  out += '\n';
}

void AppendTypeLine(std::string& out, const std::string& name,
                    const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  // Registry names are [A-Za-z0-9_./:-]; Prometheus allows [a-zA-Z0-9_:].
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out += (c == '.' || c == '/' || c == '-') ? '_' : c;
  }
  return out;
}

std::string RenderPrometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  out.reserve(samples.size() * 64);
  for (const MetricSample& s : samples) {
    const std::string name = PrometheusName(s.name);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        AppendTypeLine(out, name + "_total", "counter");
        AppendMetricLine(out, name + "_total", s.value);
        break;
      case MetricSample::Kind::kGauge:
        AppendTypeLine(out, name, "gauge");
        AppendMetricLine(out, name, s.value);
        break;
      case MetricSample::Kind::kHistogram: {
        AppendTypeLine(out, name, "histogram");
        uint64_t cumulative = 0;
        for (size_t b = 0; b < s.buckets.size(); ++b) {
          cumulative += s.buckets[b];
          if (s.buckets[b] == 0 && b + 1 < s.buckets.size()) {
            continue;  // keep the exposition short: only boundary changes
          }
          out += name;
          if (b + 1 < s.buckets.size()) {
            out += "_bucket{le=\"";
            AppendNumber(out, static_cast<double>(
                                  Histogram::BucketLowerBound(
                                      static_cast<int>(b) + 1)));
            out += "\"} ";
          } else {
            out += "_bucket{le=\"+Inf\"} ";
          }
          AppendNumber(out, static_cast<double>(cumulative));
          out += '\n';
        }
        AppendMetricLine(out, name + "_sum", static_cast<double>(s.sum));
        AppendMetricLine(out, name + "_count", static_cast<double>(s.count));
        break;
      }
      case MetricSample::Kind::kStopwatch:
        AppendTypeLine(out, name + "_seconds_total", "counter");
        AppendMetricLine(out, name + "_seconds_total", s.value * 1e-3);
        AppendTypeLine(out, name + "_calls_total", "counter");
        AppendMetricLine(out, name + "_calls_total",
                         static_cast<double>(s.count));
        break;
    }
  }
  return out;
}

MetricsExporter::MetricsExporter(const ExporterOptions& options)
    : options_(options) {
  if (options_.period_ms < 1.0) options_.period_ms = 1.0;
}

MetricsExporter::~MetricsExporter() {
  Stop();
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (jsonl_file_ != nullptr) {
    std::fclose(jsonl_file_);
    jsonl_file_ = nullptr;
  }
}

void MetricsExporter::Start() {
  if (options_.prometheus_path.empty() && options_.jsonl_path.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final flush after the thread is quiesced: the last partial period is
  // exported exactly once, by this call.
  WriteSinks();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool MetricsExporter::Flush() { return WriteSinks(); }

bool MetricsExporter::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

int MetricsExporter::snapshots_written() const {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return snapshots_written_;
}

void MetricsExporter::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const bool woke_to_stop = cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(options_.period_ms),
        [this] { return stopping_; });
    if (woke_to_stop) break;  // Stop() owns the final flush
    lock.unlock();
    WriteSinks();
    lock.lock();
  }
}

bool MetricsExporter::WriteSinks() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (options_.on_tick) options_.on_tick();
  const std::vector<MetricSample> samples =
      MetricsRegistry::Global().SnapshotAll();

  bool ok = true;
  if (!options_.prometheus_path.empty()) {
    const std::string text = RenderPrometheus(samples);
    if (!util::AtomicWriteFile(options_.prometheus_path,
                               [&text](std::FILE* f) {
                                 return std::fwrite(text.data(), 1,
                                                    text.size(), f) ==
                                        text.size();
                               })) {
      CPGAN_LOG(Warning) << "exporter: cannot write "
                         << options_.prometheus_path;
      ok = false;
    }
  }

  if (!options_.jsonl_path.empty()) {
    if (jsonl_file_ == nullptr) {
      jsonl_file_ = std::fopen(options_.jsonl_path.c_str(), "ab");
      if (jsonl_file_ == nullptr) {
        CPGAN_LOG(Warning) << "exporter: cannot open " << options_.jsonl_path
                           << ": " << std::strerror(errno);
      }
    }
    if (jsonl_file_ != nullptr) {
      JsonValue obj = JsonValue::Object();
      obj.Add("schema", JsonValue::Int(1));
      obj.Add("kind", JsonValue::String("metrics_snapshot"));
      obj.Add("seq", JsonValue::Int(static_cast<int64_t>(sequence_)));
      obj.Add("unix_time",
              JsonValue::Int(static_cast<int64_t>(std::time(nullptr))));

      JsonValue counters = JsonValue::Object();
      JsonValue gauges = JsonValue::Object();
      JsonValue histograms = JsonValue::Object();
      JsonValue stopwatches = JsonValue::Object();
      for (const MetricSample& s : samples) {
        switch (s.kind) {
          case MetricSample::Kind::kCounter: {
            JsonValue c = JsonValue::Object();
            c.Add("total", JsonValue::Number(s.value));
            double& last = last_counters_[s.name];
            c.Add("delta", JsonValue::Number(s.value - last));
            last = s.value;
            counters.Add(s.name, std::move(c));
            break;
          }
          case MetricSample::Kind::kGauge:
            gauges.Add(s.name, JsonValue::Number(s.value));
            break;
          case MetricSample::Kind::kHistogram: {
            HistogramSnapshot now;
            now.count = s.count;
            now.sum = s.sum;
            for (size_t b = 0; b < s.buckets.size(); ++b) {
              now.buckets[b] = s.buckets[b];
            }
            HistogramSnapshot& last = last_histograms_[s.name];
            const HistogramSnapshot delta = now.DeltaSince(last);
            last = now;
            JsonValue h = JsonValue::Object();
            h.Add("count", JsonValue::Int(static_cast<int64_t>(now.count)));
            h.Add("sum", JsonValue::Int(static_cast<int64_t>(now.sum)));
            h.Add("delta_count",
                  JsonValue::Int(static_cast<int64_t>(delta.count)));
            h.Add("delta_sum",
                  JsonValue::Int(static_cast<int64_t>(delta.sum)));
            JsonValue buckets = JsonValue::Array();
            for (int b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
              buckets.Append(
                  JsonValue::Int(static_cast<int64_t>(delta.buckets[b])));
            }
            h.Add("delta_buckets", std::move(buckets));
            histograms.Add(s.name, std::move(h));
            break;
          }
          case MetricSample::Kind::kStopwatch: {
            auto& last = last_stopwatches_[s.name];
            JsonValue sw = JsonValue::Object();
            sw.Add("ms", JsonValue::Number(s.value));
            sw.Add("count", JsonValue::Int(static_cast<int64_t>(s.count)));
            sw.Add("delta_ms", JsonValue::Number(s.value - last.first));
            sw.Add("delta_count",
                   JsonValue::Int(static_cast<int64_t>(s.count -
                                                       last.second)));
            last = {s.value, s.count};
            stopwatches.Add(s.name, std::move(sw));
            break;
          }
        }
      }
      obj.Add("counters", std::move(counters));
      obj.Add("gauges", std::move(gauges));
      obj.Add("histograms", std::move(histograms));
      obj.Add("stopwatches", std::move(stopwatches));

      std::string line = obj.Serialize();
      line += '\n';
      // One fwrite for the whole line: concurrent Flush callers are already
      // serialized by write_mutex_, and a crash can tear at most the final
      // line (which JSONL readers skip on parse failure).
      if (std::fwrite(line.data(), 1, line.size(), jsonl_file_) !=
              line.size() ||
          std::fflush(jsonl_file_) != 0) {
        CPGAN_LOG(Warning) << "exporter: JSONL append failed for "
                           << options_.jsonl_path;
        ok = false;
      }
    } else {
      ok = false;
    }
  }

  ++sequence_;
  ++snapshots_written_;
  return ok;
}

}  // namespace cpgan::obs
