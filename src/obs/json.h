#ifndef CPGAN_OBS_JSON_H_
#define CPGAN_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cpgan::obs {

/// Minimal JSON document model: enough for the telemetry layer to write
/// structured run logs / Chrome traces and to parse them back in tests
/// without a Python dependency. Objects preserve member order; numbers are
/// doubles (the run-log schema keeps integers within the exact-double
/// range).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue Int(int64_t v) { return Number(static_cast<double>(v)); }
  static JsonValue String(std::string v);
  static JsonValue Object();
  static JsonValue Array();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  const std::vector<JsonValue>& items() const { return items_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Member's number (or `fallback` when absent/not a number).
  double NumberOr(std::string_view key, double fallback) const;

  /// Adds a member to an object / element to an array.
  void Add(std::string key, JsonValue value);
  void Append(JsonValue value);

  /// Compact single-line serialization (stable member order).
  std::string Serialize() const;

  /// Parses `text` (one complete JSON value, optionally surrounded by
  /// whitespace). On failure returns false and fills `error` (if non-null)
  /// with a byte offset + reason.
  static bool Parse(std::string_view text, JsonValue* out,
                    std::string* error = nullptr);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> items_;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

}  // namespace cpgan::obs

#endif  // CPGAN_OBS_JSON_H_
