#ifndef CPGAN_OBS_RUN_LOGGER_H_
#define CPGAN_OBS_RUN_LOGGER_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "obs/json.h"

namespace cpgan::obs {

/// One structured training-run record, emitted as a single JSONL line per
/// epoch (schema documented in docs/OBSERVABILITY.md). Optional fields
/// (`d_loss`, `clus_loss` — absent on epochs without a discriminator step)
/// serialize as JSON null.
struct EpochRecord {
  int epoch = 0;        // 0-based epoch index
  int graph_index = 0;  // which training graph this epoch sampled

  bool has_d_loss = false;
  double d_loss = 0.0;
  double g_loss = 0.0;
  bool has_clus_loss = false;
  double clus_loss = 0.0;
  double grad_norm = 0.0;  // L2 norm over generator grads after backward

  int guard_trips = 0;  // NaN/divergence guard trips this epoch
  int rollbacks = 0;    // snapshot rollbacks this epoch

  bool wrote_checkpoint = false;
  double checkpoint_ms = 0.0;  // write latency (0 when no checkpoint)

  int64_t peak_bytes = 0;  // MemoryTracker high-water mark so far
  int64_t encoder_peak_bytes = 0;
  int64_t decoder_peak_bytes = 0;
  int64_t discriminator_peak_bytes = 0;

  int threads = 0;        // thread-pool size for this run
  int64_t rss_bytes = 0;  // process resident set size (0 if unavailable)
  double epoch_ms = 0.0;  // wall time of this epoch
};

/// Serializes a record to its JSON object form and back. FromJson returns
/// false when `json` is not an object or lacks the required numeric fields.
JsonValue EpochRecordToJson(const EpochRecord& record);
bool EpochRecordFromJson(const JsonValue& json, EpochRecord* out);

/// Appends structured run records to a JSONL file, one object per line,
/// flushed per record so partial runs still leave parseable logs. Thread
/// safe; failures are logged once and subsequent Log calls become no-ops.
class RunLogger {
 public:
  RunLogger() = default;
  ~RunLogger();

  RunLogger(const RunLogger&) = delete;
  RunLogger& operator=(const RunLogger&) = delete;

  /// Opens (truncates) `path`. Returns false and logs on failure.
  bool Open(const std::string& path);

  bool ok() const { return file_ != nullptr; }

  /// Writes one record as a JSONL line. No-op (returns false) when not open.
  bool Log(const EpochRecord& record);

  /// Writes a full metrics-registry snapshot as one JSONL line tagged
  /// {"kind":"metrics_snapshot","epoch":N,"metrics":{...}} (the registry's
  /// RenderJson object). Off the per-epoch schema on purpose: consumers
  /// that iterate epoch records skip lines carrying a "kind" member, and
  /// the snapshot cadence is opt-in (CpganConfig::metrics_snapshot_every).
  bool LogMetricsSnapshot(int epoch);

  void Close();

  int records_written() const { return records_written_; }

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::string path_;
  int records_written_ = 0;
};

/// Current process resident set size in bytes (Linux /proc/self/status;
/// returns 0 on other platforms or on parse failure).
int64_t CurrentRssBytes();

}  // namespace cpgan::obs

#endif  // CPGAN_OBS_RUN_LOGGER_H_
