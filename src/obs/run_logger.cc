#include "obs/run_logger.h"

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace cpgan::obs {

namespace {

constexpr int kSchemaVersion = 1;

void AddOptional(JsonValue& obj, const char* key, bool present,
                 double value) {
  obj.Add(key, present ? JsonValue::Number(value) : JsonValue::Null());
}

/// Reads a required numeric member into `*out`; false when missing.
bool ReadNumber(const JsonValue& json, const char* key, double* out) {
  const JsonValue* v = json.Find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->number_value();
  return true;
}

bool ReadInt(const JsonValue& json, const char* key, int* out) {
  double d = 0.0;
  if (!ReadNumber(json, key, &d)) return false;
  *out = static_cast<int>(d);
  return true;
}

bool ReadInt64(const JsonValue& json, const char* key, int64_t* out) {
  double d = 0.0;
  if (!ReadNumber(json, key, &d)) return false;
  *out = static_cast<int64_t>(d);
  return true;
}

/// Nullable numeric member: null → (false, 0), number → (true, value).
bool ReadOptional(const JsonValue& json, const char* key, bool* present,
                  double* out) {
  const JsonValue* v = json.Find(key);
  if (v == nullptr) return false;
  if (v->is_null()) {
    *present = false;
    *out = 0.0;
    return true;
  }
  if (!v->is_number()) return false;
  *present = true;
  *out = v->number_value();
  return true;
}

}  // namespace

JsonValue EpochRecordToJson(const EpochRecord& record) {
  JsonValue obj = JsonValue::Object();
  obj.Add("schema", JsonValue::Int(kSchemaVersion));
  obj.Add("epoch", JsonValue::Int(record.epoch));
  obj.Add("graph_index", JsonValue::Int(record.graph_index));
  AddOptional(obj, "d_loss", record.has_d_loss, record.d_loss);
  obj.Add("g_loss", JsonValue::Number(record.g_loss));
  AddOptional(obj, "clus_loss", record.has_clus_loss, record.clus_loss);
  obj.Add("grad_norm", JsonValue::Number(record.grad_norm));
  obj.Add("guard_trips", JsonValue::Int(record.guard_trips));
  obj.Add("rollbacks", JsonValue::Int(record.rollbacks));
  obj.Add("wrote_checkpoint", JsonValue::Bool(record.wrote_checkpoint));
  obj.Add("checkpoint_ms", JsonValue::Number(record.checkpoint_ms));
  obj.Add("peak_bytes", JsonValue::Int(record.peak_bytes));
  obj.Add("encoder_peak_bytes", JsonValue::Int(record.encoder_peak_bytes));
  obj.Add("decoder_peak_bytes", JsonValue::Int(record.decoder_peak_bytes));
  obj.Add("discriminator_peak_bytes",
          JsonValue::Int(record.discriminator_peak_bytes));
  obj.Add("threads", JsonValue::Int(record.threads));
  obj.Add("rss_bytes", JsonValue::Int(record.rss_bytes));
  obj.Add("epoch_ms", JsonValue::Number(record.epoch_ms));
  return obj;
}

bool EpochRecordFromJson(const JsonValue& json, EpochRecord* out) {
  if (!json.is_object()) return false;
  EpochRecord r;
  int schema = 0;
  if (!ReadInt(json, "schema", &schema) || schema != kSchemaVersion) {
    return false;
  }
  const JsonValue* wrote = json.Find("wrote_checkpoint");
  if (wrote == nullptr || !wrote->is_bool()) return false;
  r.wrote_checkpoint = wrote->bool_value();
  if (!ReadInt(json, "epoch", &r.epoch) ||
      !ReadInt(json, "graph_index", &r.graph_index) ||
      !ReadOptional(json, "d_loss", &r.has_d_loss, &r.d_loss) ||
      !ReadNumber(json, "g_loss", &r.g_loss) ||
      !ReadOptional(json, "clus_loss", &r.has_clus_loss, &r.clus_loss) ||
      !ReadNumber(json, "grad_norm", &r.grad_norm) ||
      !ReadInt(json, "guard_trips", &r.guard_trips) ||
      !ReadInt(json, "rollbacks", &r.rollbacks) ||
      !ReadNumber(json, "checkpoint_ms", &r.checkpoint_ms) ||
      !ReadInt64(json, "peak_bytes", &r.peak_bytes) ||
      !ReadInt64(json, "encoder_peak_bytes", &r.encoder_peak_bytes) ||
      !ReadInt64(json, "decoder_peak_bytes", &r.decoder_peak_bytes) ||
      !ReadInt64(json, "discriminator_peak_bytes",
                 &r.discriminator_peak_bytes) ||
      !ReadInt(json, "threads", &r.threads) ||
      !ReadInt64(json, "rss_bytes", &r.rss_bytes) ||
      !ReadNumber(json, "epoch_ms", &r.epoch_ms)) {
    return false;
  }
  *out = r;
  return true;
}

RunLogger::~RunLogger() { Close(); }

bool RunLogger::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "wb");
  path_ = path;
  records_written_ = 0;
  if (file_ == nullptr) {
    CPGAN_LOG(Error) << "cannot open metrics log " << path << ": "
                     << std::strerror(errno);
    return false;
  }
  return true;
}

bool RunLogger::Log(const EpochRecord& record) {
  std::string line = EpochRecordToJson(record).Serialize();
  line += '\n';
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return false;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    CPGAN_LOG(Error) << "metrics log write failed for " << path_
                     << "; disabling run logging";
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  ++records_written_;
  return true;
}

bool RunLogger::LogMetricsSnapshot(int epoch) {
  std::string line = "{\"schema\":1,\"kind\":\"metrics_snapshot\",\"epoch\":";
  line += std::to_string(epoch);
  line += ",\"metrics\":";
  line += MetricsRegistry::Global().RenderJson();
  line += "}\n";
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return false;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    CPGAN_LOG(Error) << "metrics log write failed for " << path_
                     << "; disabling run logging";
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  ++records_written_;
  return true;
}

void RunLogger::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

int64_t CurrentRssBytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "rb");
  if (f == nullptr) return 0;
  char line[256];
  long long rss_kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %lld kB", &rss_kib) == 1) break;
  }
  std::fclose(f);
  return static_cast<int64_t>(rss_kib) * 1024;
#else
  return 0;
#endif
}

}  // namespace cpgan::obs
