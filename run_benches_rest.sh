#!/bin/bash
cd /root/repo
for b in table4_generation table5_reconstruction table6_ablation \
         fig5_sensitivity fig6_robustness ablation_design; do
  echo "===== build/bench/$b =====" >> bench_output.txt
  ( time ./build/bench/$b ) >> bench_output.txt 2>&1
  echo "" >> bench_output.txt
  echo "[done] $b at $(date +%H:%M:%S)"
done
echo "ALL REMAINING BENCHES COMPLETE"
