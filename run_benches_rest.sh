#!/bin/bash
cd /root/repo

# Same Release gate as run_benches.sh: never snapshot debug numbers.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' build/CMakeCache.txt 2>/dev/null)
if [ "$build_type" != "Release" ]; then
  echo "error: build/ is configured as '${build_type:-<unconfigured>}', not Release." >&2
  echo "Re-run: cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi

for b in table4_generation table5_reconstruction table6_ablation \
         fig5_sensitivity fig6_robustness ablation_design; do
  echo "===== build/bench/$b =====" >> bench_output.txt
  ( time ./build/bench/$b ) >> bench_output.txt 2>&1
  echo "" >> bench_output.txt
  echo "[done] $b at $(date +%H:%M:%S)"
done
echo "ALL REMAINING BENCHES COMPLETE"
