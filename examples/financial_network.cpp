// Privacy-preserving sharing of a financial guarantee network — the
// motivating application from the paper's introduction: "in financial fraud
// detection, generated graphs can be adopted to produce synthetic financial
// networks without divulging private information".
//
// The example builds a synthetic guarantee-loan network (dense guarantee
// rings inside institution groups), trains CPGAN on it, and emits a
// shareable synthetic twin whose community structure — the financial
// institution groups an analyst would study — is preserved while no original
// edge (individual guarantee relationship) needs to be disclosed.
//
//   ./build/examples/financial_network [output-edge-list]

#include <cstdio>

#include "community/louvain.h"
#include "core/cpgan.h"
#include "data/synthetic.h"
#include "eval/community_eval.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cpgan;
  const char* output = argc > 1 ? argv[1] : "synthetic_guarantee_network.txt";

  // A guarantee-loan network: institution groups form dense guarantee
  // rings; a few cross-group guarantees tie the market together.
  data::CommunityGraphParams params;
  params.num_nodes = 600;
  params.num_edges = 2600;
  params.num_communities = 25;     // institution groups
  params.intra_fraction = 0.9;     // most guarantees stay inside a group
  params.degree_exponent = 2.2;    // a few heavily-guaranteed hub firms
  params.triangle_fraction = 0.2;  // guarantee rings close triangles
  util::Rng build_rng(2024);
  graph::Graph private_network = data::MakeCommunityGraph(params, build_rng);

  util::Rng rng(1);
  community::LouvainResult groups = community::Louvain(private_network, rng);
  std::printf("Private guarantee network: %d firms, %lld guarantees, "
              "%d institution groups (modularity %.3f)\n",
              private_network.num_nodes(),
              static_cast<long long>(private_network.num_edges()),
              groups.FinalPartition().num_communities(), groups.modularity);

  // Train the community-preserving generator on the private network.
  core::CpganConfig config;
  config.epochs = 400;
  config.subgraph_size = 256;
  config.feature_dim = 32;
  config.latent_dim = 32;
  config.seed = 99;
  core::Cpgan model(config);
  core::TrainStats stats = model.Fit(private_network);
  std::printf("CPGAN trained in %.1fs\n", stats.train_seconds);

  // Generate the shareable synthetic twin.
  graph::Graph synthetic = model.Generate();

  // How much private detail leaks? Count exact edge overlap.
  int64_t overlap = 0;
  for (const auto& [u, v] : synthetic.Edges()) {
    if (private_network.HasEdge(u, v)) ++overlap;
  }
  eval::CommunityMetrics preserved =
      eval::EvaluateCommunityPreservation(private_network, synthetic, rng);
  util::Rng stats_rng(3);
  graph::GraphSummary real_summary =
      graph::ComputeSummary(private_network, stats_rng);
  graph::GraphSummary synth_summary =
      graph::ComputeSummary(synthetic, stats_rng);

  std::printf("\nSynthetic twin: %lld guarantees, %.1f%% exact-edge overlap "
              "with the private network\n",
              static_cast<long long>(synthetic.num_edges()),
              100.0 * static_cast<double>(overlap) /
                  static_cast<double>(synthetic.num_edges()));
  std::printf("Institution-group preservation: NMI=%.3f ARI=%.3f\n",
              preserved.nmi, preserved.ari);
  std::printf("Structure (real vs synthetic): mean degree %.2f vs %.2f, "
              "clustering %.3f vs %.3f, GINI %.3f vs %.3f\n",
              real_summary.mean_degree, synth_summary.mean_degree,
              real_summary.avg_clustering, synth_summary.avg_clustering,
              real_summary.gini, synth_summary.gini);

  if (graph::SaveEdgeList(synthetic, output)) {
    std::printf("\nShareable synthetic network written to %s\n", output);
  }
  return 0;
}
