// Side-by-side comparison of every traditional graph generator on one
// observed graph — the "which generator should I use?" workflow the paper's
// Section VI summary describes (BTER for scale, learning-based models for
// fidelity).
//
//   ./build/examples/generator_comparison [dataset-or-edgelist-path]

#include <cstdio>

#include "data/loader.h"
#include "eval/community_eval.h"
#include "eval/graph_metrics.h"
#include "generators/registry.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cpgan;
  std::string ref = argc > 1 ? argv[1] : "citeseer_like";
  graph::Graph observed = data::LoadGraph(ref);
  std::printf("Observed graph '%s': n=%d m=%lld\n\n", ref.c_str(),
              observed.num_nodes(),
              static_cast<long long>(observed.num_edges()));

  util::Table table({"Generator", "edges", "fit(s)", "gen(s)", "Deg.",
                     "Clus.", "NMI", "ARI"});
  for (const std::string& name : generators::TraditionalGeneratorNames()) {
    auto generator = generators::MakeTraditionalGenerator(name);
    util::Rng rng(5);
    util::Timer fit_timer;
    generator->Fit(observed, rng);
    double fit_seconds = fit_timer.Seconds();
    util::Timer gen_timer;
    graph::Graph generated = generator->Generate(rng);
    double gen_seconds = gen_timer.Seconds();
    if (generated.num_edges() == 0) {
      table.AddRow({name, "0", util::FormatCompact(fit_seconds),
                    util::FormatCompact(gen_seconds), "-", "-", "-", "-"});
      continue;
    }
    util::Rng eval_rng(6);
    eval::GenerationMetrics gm =
        eval::ComputeGenerationMetrics(observed, generated, eval_rng);
    eval::CommunityMetrics cm =
        eval::EvaluateCommunityPreservation(observed, generated, eval_rng);
    table.AddRow({name, std::to_string(generated.num_edges()),
                  util::FormatCompact(fit_seconds),
                  util::FormatCompact(gen_seconds),
                  util::FormatCompact(gm.deg), util::FormatCompact(gm.clus),
                  util::FormatCompact(cm.nmi), util::FormatCompact(cm.ari)});
  }
  table.Print();
  std::printf(
      "\nLower Deg./Clus. and higher NMI/ARI are better; see the benches in\n"
      "bench/ for the learning-based comparison including CPGAN.\n");
  return 0;
}
