// Multi-graph training on a family of small molecule-like graphs — the
// paper's introduction motivates graph generation with molecule synthesis,
// and its problem statement allows learning from a *set* of training graphs.
// This example builds a family of ring-and-tail "molecules", trains one
// CPGAN on the whole set with Cpgan::FitMany, and samples new members.
//
//   ./build/examples/molecule_like

#include <cstdio>
#include <vector>

#include "core/cpgan.h"
#include "graph/algorithms.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace {

using namespace cpgan;

/// A "molecule": one or two carbon-style rings joined by a bridge, with
/// hydrogen-style pendant nodes attached to ring members.
graph::Graph MakeMolecule(util::Rng& rng) {
  std::vector<graph::Edge> edges;
  int ring1 = 5 + static_cast<int>(rng.UniformInt(3));  // 5-7 membered ring
  int ring2 = 5 + static_cast<int>(rng.UniformInt(3));
  int n = 0;
  auto add_ring = [&edges, &n](int size) {
    int base = n;
    for (int i = 0; i < size; ++i) {
      edges.emplace_back(base + i, base + (i + 1) % size);
    }
    n += size;
    return base;
  };
  int base1 = add_ring(ring1);
  int base2 = add_ring(ring2);
  edges.emplace_back(base1, base2);  // bridge bond
  // Pendant nodes on ~half the ring atoms.
  int ring_total = n;
  for (int v = 0; v < ring_total; ++v) {
    if (rng.Bernoulli(0.5)) {
      edges.emplace_back(v, n);
      ++n;
    }
  }
  return graph::Graph(n, edges);
}

}  // namespace

int main() {
  util::Rng build_rng(7);
  std::vector<graph::Graph> family;
  for (int i = 0; i < 6; ++i) family.push_back(MakeMolecule(build_rng));
  std::printf("Training family: %zu molecule-like graphs, sizes", family.size());
  for (const graph::Graph& g : family) std::printf(" %d", g.num_nodes());
  std::printf("\n");

  core::CpganConfig config;
  config.epochs = 240;
  config.subgraph_size = 32;
  config.feature_dim = 8;
  config.hidden_dim = 16;
  config.latent_dim = 8;
  config.num_levels = 2;
  config.max_pool_size = 8;
  config.seed = 3;
  core::Cpgan model(config);
  core::TrainStats stats = model.FitMany(family);
  std::printf("Trained on the set in %.1fs (final G loss %.3f)\n",
              stats.train_seconds, stats.g_loss.back());

  // Reconstruct the first molecule and sample two new ones from the prior.
  graph::Graph reconstructed = model.Generate();
  std::printf("\nReconstruction of molecule 0: n=%d m=%lld (original m=%lld)\n",
              reconstructed.num_nodes(),
              static_cast<long long>(reconstructed.num_edges()),
              static_cast<long long>(family[0].num_edges()));
  for (int sample = 0; sample < 2; ++sample) {
    int n = family[sample].num_nodes();
    graph::Graph fresh = model.GenerateWithSize(n, family[sample].num_edges());
    util::Rng rng(10 + sample);
    std::printf("Sampled molecule %d: n=%d m=%lld rings(triangle-free)=%s "
                "mean_deg=%.2f CPL=%.2f\n",
                sample, fresh.num_nodes(),
                static_cast<long long>(fresh.num_edges()),
                graph::CountTriangles(fresh) == 0 ? "yes" : "no",
                fresh.MeanDegree(),
                graph::CharacteristicPathLength(fresh, rng));
  }
  return 0;
}
