// Quickstart: train CPGAN on a community-structured graph and generate a
// synthetic twin.
//
//   ./build/examples/quickstart [dataset-or-edgelist-path]
//
// Walks through the full public API: dataset loading, CPGAN configuration,
// training, generation, and evaluation of the result with the paper's
// community-preservation and structure metrics.

#include <cstdio>

#include "core/cpgan.h"
#include "data/loader.h"
#include "eval/community_eval.h"
#include "eval/graph_metrics.h"
#include "graph/stats.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cpgan;

  // 1. Load a graph: a named synthetic dataset or any edge-list file.
  std::string ref = argc > 1 ? argv[1] : "ppi_like";
  graph::Graph observed = data::LoadGraph(ref);
  std::printf("Loaded '%s': %d nodes, %lld edges\n", ref.c_str(),
              observed.num_nodes(),
              static_cast<long long>(observed.num_edges()));

  // 2. Configure CPGAN. Defaults follow the paper (2 hierarchy levels,
  //    Adam @ 1e-3); a few hundred epochs suffice at this scale.
  core::CpganConfig config;
  config.epochs = 300;
  config.subgraph_size = 256;
  config.feature_dim = 32;
  config.latent_dim = 32;
  config.verbose = true;
  config.seed = 7;

  // 3. Train.
  core::Cpgan model(config);
  core::TrainStats stats = model.Fit(observed);
  std::printf("Trained %lld parameters in %.1fs (final G loss %.3f)\n",
              static_cast<long long>(model.ParameterCount()),
              stats.train_seconds, stats.g_loss.back());

  // 4. Generate a synthetic twin with the same size and edge budget.
  graph::Graph generated = model.Generate();
  std::printf("Generated graph: %d nodes, %lld edges\n",
              generated.num_nodes(),
              static_cast<long long>(generated.num_edges()));

  // 5. Evaluate: community preservation (Table III metrics) and structural
  //    fidelity (Table IV metrics).
  util::Rng rng(1);
  eval::CommunityMetrics community =
      eval::EvaluateCommunityPreservation(observed, generated, rng);
  eval::GenerationMetrics structure =
      eval::ComputeGenerationMetrics(observed, generated, rng);
  std::printf("\nCommunity preservation: NMI=%.3f ARI=%.3f\n", community.nmi,
              community.ari);
  std::printf("Structure differences:  Deg=%.4f Clus=%.4f CPL=%.2f "
              "GINI=%.3f PWE=%.3f\n",
              structure.deg, structure.clus, structure.cpl, structure.gini,
              structure.pwe);

  // 6. Sample a brand-new graph of arbitrary size from the prior.
  graph::Graph fresh = model.GenerateWithSize(observed.num_nodes() / 2,
                                              observed.num_edges() / 2);
  util::Rng stats_rng(2);
  graph::GraphSummary summary = graph::ComputeSummary(fresh, stats_rng);
  std::printf("\nPrior sample (half size): n=%d m=%lld mean_deg=%.2f "
              "clustering=%.3f\n",
              summary.num_nodes, static_cast<long long>(summary.num_edges),
              summary.mean_degree, summary.avg_clustering);
  return 0;
}
