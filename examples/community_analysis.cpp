// Community-analysis toolkit tour: hierarchical Louvain, label propagation,
// modularity, and partition-comparison metrics on a social-network-style
// graph — the machinery behind the paper's community-preservation
// evaluation (Section IV-A) and the clustering-consistency loss
// (Section III-F2).
//
//   ./build/examples/community_analysis [dataset-or-edgelist-path]

#include <algorithm>
#include <cstdio>

#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/metrics.h"
#include "data/loader.h"
#include "graph/stats.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cpgan;
  std::string ref = argc > 1 ? argv[1] : "facebook_like";
  graph::Graph g = data::LoadGraph(ref);
  util::Rng rng(11);
  graph::GraphSummary summary = graph::ComputeSummary(g, rng);
  std::printf("Graph '%s': n=%d m=%lld mean_deg=%.2f clustering=%.3f\n",
              ref.c_str(), summary.num_nodes,
              static_cast<long long>(summary.num_edges), summary.mean_degree,
              summary.avg_clustering);

  // Hierarchical Louvain: every aggregation level is a partition of the
  // original nodes — the ladder the CPGAN encoder mirrors with its pooling
  // levels.
  community::LouvainResult louvain = community::Louvain(g, rng);
  std::printf("\nLouvain hierarchy (%zu levels, final modularity %.3f):\n",
              louvain.levels.size(), louvain.modularity);
  for (size_t l = 0; l < louvain.levels.size(); ++l) {
    const community::Partition& p = louvain.levels[l];
    std::vector<int> sizes = p.Sizes();
    int largest = *std::max_element(sizes.begin(), sizes.end());
    std::printf("  level %zu: %d communities (largest %d nodes), Q=%.3f\n", l,
                p.num_communities(), largest, community::Modularity(g, p));
  }

  // A second detector for cross-checking.
  community::Partition lp = community::LabelPropagation(g, rng);
  std::printf("\nLabel propagation: %d communities, Q=%.3f\n",
              lp.num_communities(), community::Modularity(g, lp));

  // How much do the two detectors agree?
  const community::Partition& final_louvain = louvain.FinalPartition();
  std::printf("Louvain vs label propagation: NMI=%.3f ARI=%.3f RI=%.3f\n",
              community::NormalizedMutualInformation(final_louvain, lp),
              community::AdjustedRandIndex(final_louvain, lp),
              community::RandIndex(final_louvain, lp));

  // Community size distribution of the final partition.
  std::vector<int> sizes = final_louvain.Sizes();
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("\nTop community sizes:");
  for (size_t i = 0; i < sizes.size() && i < 10; ++i) {
    std::printf(" %d", sizes[i]);
  }
  std::printf("\nPartition entropy: %.3f nats\n",
              community::PartitionEntropy(final_louvain));
  return 0;
}
