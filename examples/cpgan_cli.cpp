// Command-line front end for the library — the workflow an adopter of this
// repo would script against:
//
//   cpgan_cli stats    <graph>                      # Table II-style summary
//   cpgan_cli generate <model> <graph> [out.txt]    # fit + generate
//   cpgan_cli compare  <graph-a> <graph-b>          # all evaluation metrics
//   cpgan_cli datasets                              # list synthetic datasets
//
// <graph> is either a named synthetic dataset (see `datasets`) or a path to
// a whitespace edge-list file. <model> is any traditional generator name
// ("E-R", "BTER", ...) or "CPGAN".

#include <cstdio>
#include <cstring>
#include <string>

#include "community/louvain.h"
#include "core/cpgan.h"
#include "data/datasets.h"
#include "data/loader.h"
#include "eval/community_eval.h"
#include "eval/graph_metrics.h"
#include "generators/registry.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

using namespace cpgan;

int CmdDatasets() {
  std::printf("Built-in synthetic datasets (DESIGN.md section 3):\n");
  for (const std::string& name : data::DatasetNames()) {
    graph::Graph g = data::MakeDataset(name);
    std::printf("  %-16s n=%-6d m=%lld\n", name.c_str(), g.num_nodes(),
                static_cast<long long>(g.num_edges()));
  }
  return 0;
}

int CmdStats(const std::string& ref) {
  graph::Graph g = data::LoadGraph(ref);
  util::Rng rng(1);
  graph::GraphSummary s = graph::ComputeSummary(g, rng);
  community::LouvainResult louvain = community::Louvain(g, rng);
  std::printf("graph            %s\n", ref.c_str());
  std::printf("nodes            %d\n", s.num_nodes);
  std::printf("edges            %lld\n", static_cast<long long>(s.num_edges));
  std::printf("communities      %d (Louvain, Q=%.3f)\n",
              louvain.FinalPartition().num_communities(), louvain.modularity);
  std::printf("mean degree      %.3f\n", s.mean_degree);
  std::printf("CPL              %.3f\n", s.cpl);
  std::printf("GINI             %.3f\n", s.gini);
  std::printf("power-law exp.   %.3f\n", s.power_law_exponent);
  std::printf("clustering       %.3f\n", s.avg_clustering);
  std::printf("assortativity    %.3f\n", graph::DegreeAssortativity(g));
  return 0;
}

int CmdGenerate(const std::string& model, const std::string& ref,
                const std::string& out) {
  graph::Graph observed = data::LoadGraph(ref);
  graph::Graph generated(0);
  util::Rng rng(7);
  if (model == "CPGAN") {
    core::CpganConfig config;
    config.epochs = 400;
    config.subgraph_size = 256;
    config.feature_dim = 32;
    config.latent_dim = 32;
    config.verbose = true;
    core::Cpgan cpgan(config);
    cpgan.Fit(observed);
    generated = cpgan.Generate();
  } else {
    auto generator = generators::MakeTraditionalGenerator(model);
    if (generator == nullptr) {
      std::fprintf(stderr, "unknown model '%s' (try E-R, B-A, Chung-Lu, W-S, "
                   "SBM, DCSBM, BTER, Kronecker, MMSB, CPGAN)\n",
                   model.c_str());
      return 1;
    }
    generator->Fit(observed, rng);
    generated = generator->Generate(rng);
  }
  std::printf("generated: n=%d m=%lld\n", generated.num_nodes(),
              static_cast<long long>(generated.num_edges()));
  util::Rng eval_rng(3);
  eval::CommunityMetrics cm =
      eval::EvaluateCommunityPreservation(observed, generated, eval_rng);
  std::printf("community preservation: NMI=%.3f ARI=%.3f\n", cm.nmi, cm.ari);
  if (!out.empty()) {
    if (!graph::SaveEdgeList(generated, out)) {
      std::fprintf(stderr, "failed to write %s\n", out.c_str());
      return 1;
    }
    std::printf("written to %s\n", out.c_str());
  }
  return 0;
}

int CmdCompare(const std::string& ref_a, const std::string& ref_b) {
  graph::Graph a = data::LoadGraph(ref_a);
  graph::Graph b = data::LoadGraph(ref_b);
  util::Rng rng(5);
  eval::GenerationMetrics gm = eval::ComputeGenerationMetrics(a, b, rng);
  std::printf("Deg. MMD   %.5f\n", gm.deg);
  std::printf("Clus. MMD  %.5f\n", gm.clus);
  std::printf("CPL diff   %.3f\n", gm.cpl);
  std::printf("GINI diff  %.4f\n", gm.gini);
  std::printf("PWE diff   %.4f\n", gm.pwe);
  if (a.num_nodes() == b.num_nodes()) {
    eval::CommunityMetrics cm = eval::EvaluateCommunityPreservation(a, b, rng);
    std::printf("NMI        %.4f\n", cm.nmi);
    std::printf("ARI        %.4f\n", cm.ari);
  } else {
    std::printf("(node counts differ; community metrics skipped)\n");
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cpgan_cli datasets\n"
               "  cpgan_cli stats    <graph>\n"
               "  cpgan_cli generate <model> <graph> [out.txt]\n"
               "  cpgan_cli compare  <graph-a> <graph-b>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "datasets") return CmdDatasets();
  if (cmd == "stats" && argc >= 3) return CmdStats(argv[2]);
  if (cmd == "generate" && argc >= 4) {
    return CmdGenerate(argv[2], argv[3], argc >= 5 ? argv[4] : "");
  }
  if (cmd == "compare" && argc >= 4) return CmdCompare(argv[2], argv[3]);
  return Usage();
}
