// Command-line front end for the library — the workflow an adopter of this
// repo would script against:
//
//   cpgan_cli stats    <graph>                      # Table II-style summary
//   cpgan_cli generate [flags] <model> <graph> [out.txt]   # fit + generate
//   cpgan_cli convert  [flags] <graph.txt> <out.cpge>  # text -> binary ingest
//   cpgan_cli compare  <graph-a> <graph-b>          # all evaluation metrics
//   cpgan_cli datasets                              # list synthetic datasets
//   cpgan_cli obs-report [flags]                    # merge telemetry files
//
// <graph> is either a named synthetic dataset (see `datasets`) or a path to
// a whitespace edge-list file. <model> is any traditional generator name
// ("E-R", "BTER", ...) or "CPGAN".
//
// global flags (any command):
//   --threads=N            size of the kernel thread pool (default: the
//                          CPGAN_NUM_THREADS env var, else all cores);
//                          results are identical for any N
//   --kernel-backend=NAME  SIMD kernel backend: scalar, avx2, or neon
//                          (default: the CPGAN_KERNEL_BACKEND env var,
//                          else CPUID auto-detection)
//
// generate flags (CPGAN only):
//   --checkpoint-dir=DIR   write periodic training checkpoints into DIR
//   --checkpoint-every=N   checkpoint period in epochs (default 100)
//   --resume               continue from the latest checkpoint in DIR
//   --strict-io            fail on malformed/self-loop/duplicate edges
//   --metrics-out=FILE     structured run log: one JSONL record per epoch
//   --metrics-snapshot-every=N  also embed a registry snapshot line in the
//                          run log every N epochs (default: off)
//   --profile              print a trace-span profile table after training
//   --trace=FILE           write Chrome trace_event JSON (chrome://tracing)
//   --coreset-size=N       train on a sensitivity-sampled coreset of <= N
//                          nodes instead of the full graph
//   --mem-budget-mb=M      RAM budget for ingest + training (MiB); the run
//                          exits nonzero if the tracked peak exceeds it
// (see docs/OBSERVABILITY.md and docs/INTERNALS.md, "Streaming ingest")

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "community/louvain.h"
#include "core/cpgan.h"
#include "data/datasets.h"
#include "data/loader.h"
#include "eval/community_eval.h"
#include "eval/graph_metrics.h"
#include "eval/report.h"
#include "generators/registry.h"
#include "graph/binary_io.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "obs/report.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "tensor/kernels.h"
#include "train/checkpoint.h"
#include "train/signal.h"
#include "util/memory_tracker.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace {

using namespace cpgan;

struct GenerateOptions {
  std::string checkpoint_dir;
  int checkpoint_every = 100;
  bool resume = false;
  bool strict_io = false;
  std::string metrics_out;
  int metrics_snapshot_every = 0;
  bool profile = false;
  std::string trace_out;
  int coreset_size = 0;
  int64_t mem_budget_mb = 0;
  bool hierarchical = false;
};

/// Parses one `--flag` or `--flag=value` argument into `options`. Returns
/// false (with a message on stderr) for unknown flags or bad values.
bool ParseGenerateFlag(const std::string& arg, GenerateOptions* options) {
  const std::string kDir = "--checkpoint-dir=";
  const std::string kEvery = "--checkpoint-every=";
  if (arg.rfind(kDir, 0) == 0) {
    options->checkpoint_dir = arg.substr(kDir.size());
    if (options->checkpoint_dir.empty()) {
      std::fprintf(stderr, "--checkpoint-dir needs a directory\n");
      return false;
    }
    return true;
  }
  if (arg.rfind(kEvery, 0) == 0) {
    options->checkpoint_every = std::atoi(arg.c_str() + kEvery.size());
    if (options->checkpoint_every <= 0) {
      std::fprintf(stderr, "--checkpoint-every needs a positive integer\n");
      return false;
    }
    return true;
  }
  if (arg == "--resume") {
    options->resume = true;
    return true;
  }
  if (arg == "--strict-io") {
    options->strict_io = true;
    return true;
  }
  const std::string kMetricsOut = "--metrics-out=";
  if (arg.rfind(kMetricsOut, 0) == 0) {
    options->metrics_out = arg.substr(kMetricsOut.size());
    if (options->metrics_out.empty()) {
      std::fprintf(stderr, "--metrics-out needs a file path\n");
      return false;
    }
    return true;
  }
  const std::string kSnapshotEvery = "--metrics-snapshot-every=";
  if (arg.rfind(kSnapshotEvery, 0) == 0) {
    options->metrics_snapshot_every =
        std::atoi(arg.c_str() + kSnapshotEvery.size());
    if (options->metrics_snapshot_every <= 0) {
      std::fprintf(stderr,
                   "--metrics-snapshot-every needs a positive integer\n");
      return false;
    }
    return true;
  }
  if (arg == "--profile") {
    options->profile = true;
    return true;
  }
  if (arg == "--hierarchical") {
    options->hierarchical = true;
    return true;
  }
  const std::string kCoreset = "--coreset-size=";
  if (arg.rfind(kCoreset, 0) == 0) {
    options->coreset_size = std::atoi(arg.c_str() + kCoreset.size());
    if (options->coreset_size <= 1) {
      std::fprintf(stderr, "--coreset-size needs an integer > 1\n");
      return false;
    }
    return true;
  }
  const std::string kBudget = "--mem-budget-mb=";
  if (arg.rfind(kBudget, 0) == 0) {
    options->mem_budget_mb = std::atoll(arg.c_str() + kBudget.size());
    if (options->mem_budget_mb <= 0) {
      std::fprintf(stderr, "--mem-budget-mb needs a positive integer\n");
      return false;
    }
    return true;
  }
  const std::string kTrace = "--trace=";
  if (arg.rfind(kTrace, 0) == 0) {
    options->trace_out = arg.substr(kTrace.size());
    if (options->trace_out.empty()) {
      std::fprintf(stderr, "--trace needs a file path\n");
      return false;
    }
    return true;
  }
  std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
  return false;
}

int CmdDatasets() {
  std::printf("Built-in synthetic datasets (DESIGN.md section 3):\n");
  for (const std::string& name : data::DatasetNames()) {
    graph::Graph g = data::MakeDataset(name);
    std::printf("  %-16s n=%-6d m=%lld\n", name.c_str(), g.num_nodes(),
                static_cast<long long>(g.num_edges()));
  }
  return 0;
}

int CmdStats(const std::string& ref) {
  graph::Graph g = data::LoadGraph(ref);
  util::Rng rng(1);
  graph::GraphSummary s = graph::ComputeSummary(g, rng);
  community::LouvainResult louvain = community::Louvain(g, rng);
  std::printf("graph            %s\n", ref.c_str());
  std::printf("nodes            %d\n", s.num_nodes);
  std::printf("edges            %lld\n", static_cast<long long>(s.num_edges));
  std::printf("communities      %d (Louvain, Q=%.3f)\n",
              louvain.FinalPartition().num_communities(), louvain.modularity);
  std::printf("mean degree      %.3f\n", s.mean_degree);
  std::printf("CPL              %.3f\n", s.cpl);
  std::printf("GINI             %.3f\n", s.gini);
  std::printf("power-law exp.   %.3f\n", s.power_law_exponent);
  std::printf("clustering       %.3f\n", s.avg_clustering);
  std::printf("assortativity    %.3f\n", graph::DegreeAssortativity(g));
  return 0;
}

int CmdGenerate(const std::string& model, const std::string& ref,
                const std::string& out, const GenerateOptions& options) {
  // Arm the RAM budget before loading so out-of-core ingest (mmap CSR
  // construction) is covered by the same cap as training.
  if (options.mem_budget_mb > 0) {
    util::MemoryTracker::Global().SetBudgetBytes(options.mem_budget_mb << 20);
  }
  graph::LoadOptions load_options;
  load_options.strict = options.strict_io;
  graph::Graph observed = data::LoadGraph(ref, load_options);
  graph::Graph generated(0);
  util::Rng rng(7);
  if (model == "CPGAN") {
    core::CpganConfig config;
    config.epochs = 400;
    config.subgraph_size = 256;
    config.feature_dim = 32;
    config.latent_dim = 32;
    config.verbose = true;
    config.checkpoint_dir = options.checkpoint_dir;
    config.checkpoint_every = options.checkpoint_every;
    config.metrics_out = options.metrics_out;
    config.metrics_snapshot_every = options.metrics_snapshot_every;
    config.profile = options.profile;
    config.trace_out = options.trace_out;
    config.coreset_size = options.coreset_size;
    config.mem_budget_mb = options.mem_budget_mb;
    config.hierarchical_generation = options.hierarchical;
    core::Cpgan cpgan(config);
    if (options.resume) {
      if (options.checkpoint_dir.empty()) {
        std::fprintf(stderr, "--resume needs --checkpoint-dir\n");
        return 1;
      }
      std::string latest = train::LatestCheckpoint(options.checkpoint_dir);
      if (latest.empty()) {
        std::printf("no checkpoint in %s; training from scratch\n",
                    options.checkpoint_dir.c_str());
      } else if (cpgan.ResumeFrom(latest)) {
        std::printf("resuming from %s\n", latest.c_str());
      } else {
        std::fprintf(stderr, "cannot resume from %s (corrupt?)\n",
                     latest.c_str());
        return 1;
      }
    }
    // Ctrl-C / SIGTERM stop training at the next epoch boundary: a final
    // checkpoint is written (when checkpointing is on) and all sinks are
    // flushed before Fit returns, so an interrupted run is resumable.
    train::InstallStopSignalHandlers();
    core::TrainStats stats = cpgan.Fit(observed);
    if (stats.interrupted) {
      std::printf("interrupted by signal at epoch %zu%s\n",
                  stats.g_loss.size(),
                  options.checkpoint_dir.empty()
                      ? ""
                      : "; final checkpoint written");
    }
    std::printf("trained: %s, peak memory %s",
                eval::FormatMillis(stats.train_seconds * 1000.0).c_str(),
                eval::FormatBytes(stats.peak_bytes).c_str());
    if (stats.coreset_nodes > 0) {
      std::printf(", coreset %d/%d nodes", stats.coreset_nodes,
                  observed.num_nodes());
    }
    if (!options.metrics_out.empty()) {
      std::printf(", %d run-log records", stats.metrics_records);
    }
    std::printf("\n");
    if (stats.budget_exceeded) {
      std::fprintf(stderr,
                   "memory budget exceeded: peak %s > %lld MiB budget\n",
                   eval::FormatBytes(stats.peak_bytes).c_str(),
                   static_cast<long long>(options.mem_budget_mb));
      return 1;
    }
    if (stats.coreset_nodes > 0) {
      // Coreset training: posterior latents only exist for coreset nodes,
      // so a full-size graph is generated from the Gaussian prior
      // (Section III-G, "new graphs of arbitrary sizes").
      generated = cpgan.GenerateWithSize(observed.num_nodes(),
                                         observed.num_edges());
    } else {
      generated = cpgan.Generate();
    }
    if (options.hierarchical) {
      // Flat decode of the same trained model for a community-preservation
      // A/B: hierarchical assembly should trade no community quality for
      // its parallel per-community decode.
      core::GenerateControls flat_controls;
      if (stats.coreset_nodes > 0) {
        flat_controls.num_nodes = observed.num_nodes();
        flat_controls.num_edges = observed.num_edges();
        flat_controls.from_prior = true;
      }
      util::Rng flat_rng(7);
      graph::Graph flat = cpgan.GenerateWith(flat_controls, flat_rng);
      util::Rng mod_rng(3);
      double q_obs = community::Louvain(observed, mod_rng).modularity;
      double q_flat = community::Louvain(flat, mod_rng).modularity;
      double q_hier = community::Louvain(generated, mod_rng).modularity;
      std::printf(
          "flat vs hierarchical: modularity observed=%.3f flat=%.3f "
          "hier=%.3f\n",
          q_obs, q_flat, q_hier);
      if (observed.num_nodes() == flat.num_nodes() &&
          observed.num_nodes() == generated.num_nodes()) {
        util::Rng eval_rng(3);
        eval::CommunityMetrics fm =
            eval::EvaluateCommunityPreservation(observed, flat, eval_rng);
        eval::CommunityMetrics hm =
            eval::EvaluateCommunityPreservation(observed, generated, eval_rng);
        std::printf(
            "flat vs hierarchical: NMI %.3f -> %.3f, ARI %.3f -> %.3f\n",
            fm.nmi, hm.nmi, fm.ari, hm.ari);
      }
    }
  } else {
    auto generator = generators::MakeTraditionalGenerator(model);
    if (generator == nullptr) {
      std::fprintf(stderr, "unknown model '%s' (try E-R, B-A, Chung-Lu, W-S, "
                   "SBM, DCSBM, BTER, Kronecker, MMSB, CPGAN)\n",
                   model.c_str());
      return 1;
    }
    generator->Fit(observed, rng);
    generated = generator->Generate(rng);
  }
  std::printf("generated: n=%d m=%lld\n", generated.num_nodes(),
              static_cast<long long>(generated.num_edges()));
  if (observed.num_nodes() == generated.num_nodes()) {
    util::Rng eval_rng(3);
    eval::CommunityMetrics cm =
        eval::EvaluateCommunityPreservation(observed, generated, eval_rng);
    std::printf("community preservation: NMI=%.3f ARI=%.3f\n", cm.nmi, cm.ari);
  } else {
    std::printf("(node counts differ; community metrics skipped)\n");
  }
  if (!out.empty()) {
    if (!graph::SaveEdgeList(generated, out)) {
      std::fprintf(stderr, "failed to write %s\n", out.c_str());
      return 1;
    }
    std::printf("written to %s\n", out.c_str());
  }
  return 0;
}

int CmdConvert(const std::string& in_path, const std::string& out_path,
               bool strict) {
  graph::LoadOptions load_options;
  load_options.strict = strict;
  graph::ConvertResult result =
      graph::ConvertEdgeListToBinary(in_path, out_path, load_options);
  if (!result.ok()) {
    std::fprintf(stderr, "convert: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("converted %s -> %s: n=%lld m=%lld", in_path.c_str(),
              out_path.c_str(), static_cast<long long>(result.num_nodes),
              static_cast<long long>(result.num_edges));
  if (result.total_skipped() > 0) {
    std::printf(" (skipped: %lld malformed, %lld self-loops, %lld duplicates)",
                static_cast<long long>(result.malformed_lines),
                static_cast<long long>(result.self_loops),
                static_cast<long long>(result.duplicate_edges));
  }
  std::printf("\n");
  return 0;
}

struct ServeOptions {
  std::string model_name = "default";
  std::string checkpoint;     // warm-load; empty = train in-process
  int epochs = 60;            // in-process training budget
  bool strict_io = false;
  serve::ServerOptions server;
};

bool ParseServeFlag(const std::string& arg, ServeOptions* options) {
  auto value_of = [&arg](const std::string& prefix, std::string* out) {
    if (arg.rfind(prefix, 0) != 0) return false;
    *out = arg.substr(prefix.size());
    return true;
  };
  std::string value;
  if (value_of("--model=", &value)) {
    options->model_name = value;
    return !value.empty();
  }
  if (value_of("--checkpoint=", &value)) {
    options->checkpoint = value;
    return !value.empty();
  }
  if (value_of("--epochs=", &value)) {
    options->epochs = std::atoi(value.c_str());
    return options->epochs > 0;
  }
  if (arg == "--strict-io") {
    options->strict_io = true;
    return true;
  }
  if (value_of("--workers=", &value)) {
    options->server.num_workers = std::atoi(value.c_str());
    return options->server.num_workers > 0;
  }
  if (value_of("--queue=", &value)) {
    options->server.queue_capacity = std::atoi(value.c_str());
    return options->server.queue_capacity > 0;
  }
  if (value_of("--deadline-ms=", &value)) {
    options->server.default_deadline_ms = std::atof(value.c_str());
    return options->server.default_deadline_ms >= 0.0;
  }
  if (value_of("--memory-budget-mb=", &value)) {
    options->server.memory_budget_bytes =
        static_cast<int64_t>(std::atoll(value.c_str())) * (1 << 20);
    return options->server.memory_budget_bytes > 0;
  }
  if (value_of("--request-log=", &value)) {
    options->server.request_log = value;
    return !value.empty();
  }
  if (value_of("--metrics-export=", &value)) {
    options->server.exporter.prometheus_path = value;
    return !value.empty();
  }
  if (value_of("--metrics-jsonl=", &value)) {
    options->server.exporter.jsonl_path = value;
    return !value.empty();
  }
  if (value_of("--export-period-ms=", &value)) {
    options->server.exporter.period_ms = std::atof(value.c_str());
    return options->server.exporter.period_ms > 0.0;
  }
  if (value_of("--slo-latency-ms=", &value)) {
    options->server.slo.latency_target_ms = std::atof(value.c_str());
    return options->server.slo.latency_target_ms > 0.0;
  }
  if (value_of("--slo-availability=", &value)) {
    options->server.slo.availability_objective = std::atof(value.c_str());
    return options->server.slo.availability_objective > 0.0 &&
           options->server.slo.availability_objective <= 1.0;
  }
  if (value_of("--slo-window-s=", &value)) {
    options->server.slo.window_s = std::atof(value.c_str());
    return options->server.slo.window_s > 0.0;
  }
  std::fprintf(stderr, "unknown serve flag '%s'\n", arg.c_str());
  return false;
}

int CmdServe(const std::string& ref, const ServeOptions& options) {
  graph::LoadOptions load_options;
  load_options.strict = options.strict_io;
  serve::ModelSpec spec;
  spec.name = options.model_name;
  spec.graph = data::LoadGraph(ref, load_options);
  spec.checkpoint = options.checkpoint;
  spec.config.epochs = options.epochs;
  if (options.checkpoint.empty()) {
    std::fprintf(stderr, "serve: training %s for %d epochs (pass "
                 "--checkpoint=FILE to warm-load instead)...\n",
                 options.model_name.c_str(), options.epochs);
  }
  serve::ModelRegistry registry;
  std::string error;
  if (!registry.AddModel(spec, &error)) {
    std::fprintf(stderr, "serve: cannot build model: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "serve: model '%s' warm (n=%d m=%lld); reading requests from "
               "stdin (GENERATE/RELOAD/STATS/QUIT)\n",
               options.model_name.c_str(), spec.graph.num_nodes(),
               static_cast<long long>(spec.graph.num_edges()));
  serve::Server server(&registry, options.server);
  return server.RunStdio(stdin, stdout);
}

int CmdObsReport(const std::vector<std::string>& args) {
  obs::ObsReportOptions options;
  for (const std::string& arg : args) {
    auto value_of = [&arg](const std::string& prefix, std::string* out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      *out = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    if (value_of("--snapshots=", &value) && !value.empty()) {
      options.snapshot_paths.push_back(value);
    } else if (value_of("--runlog=", &value) && !value.empty()) {
      options.runlog_paths.push_back(value);
    } else if (value_of("--trace=", &value) && !value.empty()) {
      options.trace_paths.push_back(value);
    } else {
      std::fprintf(stderr, "unknown obs-report flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  std::string error;
  std::string report = obs::RenderObsReport(options, &error);
  if (report.empty()) {
    std::fprintf(stderr, "obs-report: %s\n", error.c_str());
    return 1;
  }
  std::fputs(report.c_str(), stdout);
  return 0;
}

int CmdCompare(const std::string& ref_a, const std::string& ref_b) {
  graph::Graph a = data::LoadGraph(ref_a);
  graph::Graph b = data::LoadGraph(ref_b);
  util::Rng rng(5);
  eval::GenerationMetrics gm = eval::ComputeGenerationMetrics(a, b, rng);
  std::printf("Deg. MMD   %.5f\n", gm.deg);
  std::printf("Clus. MMD  %.5f\n", gm.clus);
  std::printf("CPL diff   %.3f\n", gm.cpl);
  std::printf("GINI diff  %.4f\n", gm.gini);
  std::printf("PWE diff   %.4f\n", gm.pwe);
  if (a.num_nodes() == b.num_nodes()) {
    eval::CommunityMetrics cm = eval::EvaluateCommunityPreservation(a, b, rng);
    std::printf("NMI        %.4f\n", cm.nmi);
    std::printf("ARI        %.4f\n", cm.ari);
  } else {
    std::printf("(node counts differ; community metrics skipped)\n");
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cpgan_cli [--threads=N] [--kernel-backend=NAME] "
               "<command> ...\n"
               "  cpgan_cli datasets\n"
               "  cpgan_cli stats    <graph>\n"
               "  cpgan_cli generate [flags] <model> <graph> [out.txt]\n"
               "      --checkpoint-dir=DIR  --checkpoint-every=N\n"
               "      --resume              --strict-io\n"
               "      --metrics-out=FILE    --profile\n"
               "      --trace=FILE          --metrics-snapshot-every=N\n"
               "      --coreset-size=N      --mem-budget-mb=M\n"
               "      --hierarchical        (community-wise assembly;\n"
               "      prints a flat-vs-hier community comparison)\n"
               "  cpgan_cli convert  [--strict-io] <graph.txt> <out.cpge>\n"
               "      (binary edge lists load via mmap + parallel CSR\n"
               "      construction; every <graph> argument accepts them)\n"
               "  cpgan_cli compare  <graph-a> <graph-b>\n"
               "  cpgan_cli serve    [flags] <graph>\n"
               "      --model=NAME          --checkpoint=FILE\n"
               "      --epochs=N            --strict-io\n"
               "      --workers=N           --queue=N\n"
               "      --deadline-ms=D       --memory-budget-mb=M\n"
               "      --request-log=FILE    (see docs/SERVING.md)\n"
               "      --metrics-export=FILE --metrics-jsonl=FILE\n"
               "      --export-period-ms=D  --slo-latency-ms=D\n"
               "      --slo-availability=F  --slo-window-s=D\n"
               "  cpgan_cli obs-report [--snapshots=FILE] [--runlog=FILE] "
               "[--trace=FILE]\n"
               "      (flags repeatable; see docs/OBSERVABILITY.md)\n"
               "--threads=N sizes the kernel thread pool (default: the\n"
               "CPGAN_NUM_THREADS env var, else all cores); results are\n"
               "identical for any N\n"
               "--kernel-backend=NAME picks the SIMD kernel backend\n"
               "(scalar, avx2, neon; default: the CPGAN_KERNEL_BACKEND env\n"
               "var, else CPUID auto-detection)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract the global flags (accepted anywhere) before dispatch.
  const std::string kThreads = "--threads=";
  const std::string kKernelBackend = "--kernel-backend=";
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(kThreads, 0) == 0) {
      int threads = std::atoi(arg.c_str() + kThreads.size());
      if (threads <= 0) {
        std::fprintf(stderr, "--threads needs a positive integer\n");
        return 2;
      }
      util::ThreadPool::SetGlobalThreads(threads);
    } else if (arg.rfind(kKernelBackend, 0) == 0) {
      std::string name = arg.substr(kKernelBackend.size());
      std::string error;
      if (!tensor::kernels::SetBackend(name, &error)) {
        std::fprintf(stderr, "--kernel-backend: %s\n", error.c_str());
        return 2;
      }
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) return Usage();
  std::string cmd = args[0];
  if (cmd == "datasets") return CmdDatasets();
  if (cmd == "stats" && args.size() >= 2) return CmdStats(args[1]);
  if (cmd == "generate") {
    GenerateOptions options;
    std::vector<std::string> positional;
    for (size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg.rfind("--", 0) == 0) {
        if (!ParseGenerateFlag(arg, &options)) return 2;
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.size() < 2 || positional.size() > 3) return Usage();
    return CmdGenerate(positional[0], positional[1],
                       positional.size() == 3 ? positional[2] : "", options);
  }
  if (cmd == "convert") {
    bool strict = false;
    std::vector<std::string> positional;
    for (size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg == "--strict-io") {
        strict = true;
      } else if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "unknown convert flag '%s'\n", arg.c_str());
        return 2;
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.size() != 2) return Usage();
    return CmdConvert(positional[0], positional[1], strict);
  }
  if (cmd == "compare" && args.size() >= 3) return CmdCompare(args[1], args[2]);
  if (cmd == "obs-report") {
    return CmdObsReport(
        std::vector<std::string>(args.begin() + 1, args.end()));
  }
  if (cmd == "serve") {
    ServeOptions options;
    std::vector<std::string> positional;
    for (size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg.rfind("--", 0) == 0) {
        if (!ParseServeFlag(arg, &options)) return 2;
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.size() != 1) return Usage();
    return CmdServe(positional[0], options);
  }
  return Usage();
}
