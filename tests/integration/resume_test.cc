// End-to-end fault-tolerance tests: a training run that survives injected
// numeric faults, a kill-and-resume cycle driven through the checkpoint
// subsystem, and rejection of corrupted checkpoints. All faults are injected
// deterministically via train::FaultPlan (ISSUE 1 acceptance criteria).

#include <dirent.h>

#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/cpgan.h"
#include "data/synthetic.h"
#include "train/checkpoint.h"
#include "train/fault.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cpgan::core {
namespace {

graph::Graph SmallCommunityGraph(uint64_t seed = 3) {
  data::CommunityGraphParams params;
  params.num_nodes = 100;
  params.num_edges = 320;
  params.num_communities = 5;
  params.intra_fraction = 0.9;
  params.degree_exponent = 2.6;
  util::Rng rng(seed);
  return data::MakeCommunityGraph(params, rng);
}

CpganConfig FastConfig() {
  CpganConfig config;
  config.epochs = 24;
  config.subgraph_size = 64;
  config.hidden_dim = 12;
  config.latent_dim = 6;
  config.feature_dim = 5;
  config.seed = 11;
  return config;
}

// Returns a fresh directory: TempDir is shared across test-binary runs, so
// any files left by a previous invocation are removed first.
std::string TempDirFor(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  util::MakeDirs(dir);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      std::remove((dir + "/" + entry->d_name).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

TEST(FaultToleranceTest, NanGradientInjectionRecoversAndFinishes) {
  graph::Graph observed = SmallCommunityGraph();
  CpganConfig config = FastConfig();
  Cpgan model(config);
  train::FaultPlan plan;
  plan.nan_grad_epoch = 7;
  plan.nan_grad_param = 2;
  model.SetFaultPlan(plan);
  TrainStats stats = model.Fit(observed);

  // The run completes every epoch, reports the recovery, and the final
  // weights are finite — the poisoned step never reached the optimizer.
  EXPECT_EQ(static_cast<int>(stats.g_loss.size()), config.epochs);
  EXPECT_GE(stats.recoveries, 1);
  EXPECT_FALSE(stats.guard_exhausted);
  EXPECT_TRUE(model.trained());
  for (float loss : stats.d_loss) EXPECT_TRUE(std::isfinite(loss));
  graph::Graph generated = model.Generate();
  EXPECT_EQ(generated.num_nodes(), observed.num_nodes());
}

TEST(FaultToleranceTest, InfLossInjectionIsSkippedNotApplied) {
  graph::Graph observed = SmallCommunityGraph();
  Cpgan model(FastConfig());
  train::FaultPlan plan;
  plan.inf_loss_epoch = 5;
  model.SetFaultPlan(plan);
  TrainStats stats = model.Fit(observed);
  EXPECT_GE(stats.recoveries, 1);
  EXPECT_TRUE(model.trained());
  // The injected Inf is recorded in the loss trace but training moved on.
  EXPECT_TRUE(std::isinf(stats.g_loss[5]));
  EXPECT_TRUE(std::isfinite(stats.g_loss.back()));
}

TEST(FaultToleranceTest, CleanRunReportsNoRecoveries) {
  graph::Graph observed = SmallCommunityGraph();
  Cpgan model(FastConfig());
  TrainStats stats = model.Fit(observed);
  EXPECT_EQ(stats.recoveries, 0);
  EXPECT_EQ(stats.start_epoch, 0);
  EXPECT_FALSE(stats.guard_exhausted);
}

TEST(FaultToleranceTest, KilledRunResumesFromLastCheckpoint) {
  graph::Graph observed = SmallCommunityGraph();
  std::string dir = TempDirFor("resume_run");
  CpganConfig config = FastConfig();
  config.checkpoint_dir = dir;
  config.checkpoint_every = 8;

  // Reference: an uninterrupted run.
  Cpgan uninterrupted(config);
  TrainStats full = uninterrupted.Fit(observed);
  ASSERT_EQ(static_cast<int>(full.g_loss.size()), config.epochs);

  // Run 1: killed after epoch 13. The only checkpoint boundary reached
  // before the kill is epoch 8.
  std::string dir2 = TempDirFor("resume_run_killed");
  config.checkpoint_dir = dir2;
  Cpgan killed(config);
  train::FaultPlan plan;
  plan.stop_after_epoch = 13;
  killed.SetFaultPlan(plan);
  TrainStats partial = killed.Fit(observed);
  EXPECT_TRUE(partial.stopped_by_fault);
  EXPECT_FALSE(killed.trained());
  EXPECT_GE(partial.checkpoints_written, 1);

  std::string latest = train::LatestCheckpoint(dir2);
  ASSERT_FALSE(latest.empty());
  EXPECT_EQ(latest, train::CheckpointPath(dir2, 8));

  // Run 2: a fresh process resumes from the last epoch boundary and finishes
  // with the same total epoch count as the uninterrupted run.
  Cpgan resumed(config);
  ASSERT_TRUE(resumed.ResumeFrom(latest));
  TrainStats rest = resumed.Fit(observed);
  EXPECT_EQ(rest.start_epoch, 8);
  EXPECT_EQ(rest.start_epoch + static_cast<int>(rest.g_loss.size()),
            config.epochs);
  EXPECT_TRUE(resumed.trained());
  graph::Graph generated = resumed.Generate();
  EXPECT_EQ(generated.num_nodes(), observed.num_nodes());
}

TEST(FaultToleranceTest, BitFlippedCheckpointIsRejected) {
  graph::Graph observed = SmallCommunityGraph();
  std::string dir = TempDirFor("resume_corrupt");
  CpganConfig config = FastConfig();
  config.checkpoint_dir = dir;
  config.checkpoint_every = 8;
  Cpgan model(config);
  model.Fit(observed);

  std::string latest = train::LatestCheckpoint(dir);
  ASSERT_FALSE(latest.empty());
  ASSERT_TRUE(train::FlipByte(latest, train::FileSize(latest) / 2));

  Cpgan fresh(config);
  EXPECT_FALSE(fresh.ResumeFrom(latest));
  // The rejected resume is cleared: Fit trains from scratch.
  TrainStats stats = fresh.Fit(observed);
  EXPECT_EQ(stats.start_epoch, 0);
  EXPECT_TRUE(fresh.trained());
}

TEST(FaultToleranceTest, TruncatedCheckpointIsRejected) {
  graph::Graph observed = SmallCommunityGraph();
  std::string dir = TempDirFor("resume_truncated");
  CpganConfig config = FastConfig();
  config.checkpoint_dir = dir;
  config.checkpoint_every = 100;  // only the final-epoch checkpoint
  Cpgan model(config);
  model.Fit(observed);
  std::string latest = train::LatestCheckpoint(dir);
  ASSERT_FALSE(latest.empty());
  ASSERT_TRUE(
      train::TruncateFile(latest, train::FileSize(latest) * 2 / 3));
  Cpgan fresh(config);
  EXPECT_FALSE(fresh.ResumeFrom(latest));
}

TEST(FaultToleranceTest, SaveWeightsOnUntrainedModelFailsGracefully) {
  Cpgan model(FastConfig());
  EXPECT_FALSE(model.SaveWeights(::testing::TempDir() + "/untrained.bin"));
  EXPECT_FALSE(model.LoadWeights(::testing::TempDir() + "/untrained.bin"));
}

}  // namespace
}  // namespace cpgan::core
