// End-to-end integration tests exercising the full pipeline the paper's
// experiments run: dataset -> model fit -> generation -> evaluation, across
// module boundaries (data + core + generators + community + eval).

#include <gtest/gtest.h>

#include "core/cpgan.h"
#include "data/datasets.h"
#include "data/synthetic.h"
#include "eval/community_eval.h"
#include "eval/graph_metrics.h"
#include "eval/nll.h"
#include "generators/registry.h"
#include "graph/split.h"
#include "util/rng.h"

namespace cpgan {
namespace {

TEST(PipelineTest, CpganBeatsRandomBaselineOnCommunities) {
  data::CommunityGraphParams params;
  params.num_nodes = 150;
  params.num_edges = 520;
  params.num_communities = 8;
  params.intra_fraction = 0.92;
  util::Rng build(51);
  graph::Graph observed = data::MakeCommunityGraph(params, build);

  core::CpganConfig config;
  config.epochs = 150;
  config.subgraph_size = 120;
  config.feature_dim = 16;
  config.latent_dim = 16;
  config.hidden_dim = 24;
  config.seed = 5;
  core::Cpgan model(config);
  model.Fit(observed);
  graph::Graph cpgan_out = model.Generate();

  auto er = generators::MakeTraditionalGenerator("E-R");
  util::Rng er_rng(6);
  er->Fit(observed, er_rng);
  graph::Graph er_out = er->Generate(er_rng);

  util::Rng eval_rng(7);
  eval::CommunityMetrics cpgan_scores =
      eval::EvaluateCommunityPreservation(observed, cpgan_out, eval_rng);
  eval::CommunityMetrics er_scores =
      eval::EvaluateCommunityPreservation(observed, er_out, eval_rng);
  EXPECT_GT(cpgan_scores.nmi, er_scores.nmi);
  EXPECT_GT(cpgan_scores.ari, er_scores.ari);
}

TEST(PipelineTest, ReconstructionBeatsChanceAuc) {
  // The Table V protocol end to end: split edges, train on the 80%,
  // verify held-out edges outrank sampled non-edges.
  data::CommunityGraphParams params;
  params.num_nodes = 140;
  params.num_edges = 560;
  params.num_communities = 7;
  util::Rng build(52);
  graph::Graph full = data::MakeCommunityGraph(params, build);
  util::Rng split_rng(8);
  graph::EdgeSplit split = graph::RandomEdgeSplit(full, 0.8, split_rng);

  core::CpganConfig config;
  config.epochs = 200;
  config.subgraph_size = 120;
  config.feature_dim = 16;
  config.latent_dim = 16;
  config.hidden_dim = 24;
  config.seed = 9;
  core::Cpgan model(config);
  model.Fit(split.train);

  std::vector<double> pos = model.EdgeProbabilities(split.test_edges);
  std::vector<double> neg = model.EdgeProbabilities(split.negative_edges);
  double auc = eval::LinkPredictionAuc(pos, neg);
  EXPECT_GT(auc, 0.6);
  // And train NLL below the uninformed log(2).
  std::vector<double> train_pos = model.EdgeProbabilities(split.train_edges);
  EXPECT_LT(eval::EdgeNll(train_pos, neg), std::log(2.0) + 0.3);
}

TEST(PipelineTest, EveryDatasetSupportsEveryTraditionalGenerator) {
  // Small smoke matrix mirroring the bench loops (scaled-down datasets).
  for (const std::string& dataset : data::DatasetNames()) {
    graph::Graph observed = data::MakeScaledDataset(dataset, 120, 3);
    for (const std::string& name :
         generators::TraditionalGeneratorNames()) {
      auto generator = generators::MakeTraditionalGenerator(name);
      util::Rng rng(4);
      generator->Fit(observed, rng);
      graph::Graph out = generator->Generate(rng);
      EXPECT_EQ(out.num_nodes(), observed.num_nodes())
          << dataset << "/" << name;
    }
  }
}

TEST(PipelineTest, TwoHopAdjacencyVariantTrains) {
  data::CommunityGraphParams params;
  params.num_nodes = 100;
  params.num_edges = 320;
  params.num_communities = 5;
  util::Rng build(53);
  graph::Graph observed = data::MakeCommunityGraph(params, build);
  core::CpganConfig config;
  config.epochs = 30;
  config.subgraph_size = 80;
  config.feature_dim = 8;
  config.hidden_dim = 16;
  config.latent_dim = 8;
  config.use_two_hop_adjacency = true;
  core::Cpgan model(config);
  core::TrainStats stats = model.Fit(observed);
  EXPECT_TRUE(std::isfinite(stats.g_loss.back()));
  EXPECT_EQ(model.Generate().num_nodes(), observed.num_nodes());
}

}  // namespace
}  // namespace cpgan
