#include "train/checkpoint.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "tensor/serialize.h"
#include "train/fault.h"
#include "util/crc32.h"
#include "util/fileio.h"
#include "tests/test_util.h"

namespace cpgan::train {
namespace {

namespace t = cpgan::tensor;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<t::Tensor> MakeParams(uint64_t seed = 5) {
  return {t::Tensor(cpgan::testing::TestMatrix(4, 3, 1.0f, seed), true),
          t::Tensor(cpgan::testing::TestMatrix(2, 6, 2.0f, seed + 1), true),
          t::Tensor(cpgan::testing::TestMatrix(1, 1, 0.5f, seed + 2), true)};
}

void ExpectSameValues(const std::vector<t::Tensor>& a,
                      const std::vector<t::Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    t::Matrix diff = a[i].value();
    diff.Axpy(-1.0f, b[i].value());
    EXPECT_FLOAT_EQ(diff.Norm(), 0.0f) << "tensor " << i;
  }
}

TEST(CheckpointTest, RoundTripRestoresMetaAndParams) {
  std::string path = TempPath("ckpt_roundtrip.cpck");
  auto params = MakeParams();
  CheckpointMeta meta;
  meta.epoch = 37;
  meta.config_hash = HashFields({1, 2, 3});
  ASSERT_TRUE(SaveCheckpoint(path, meta, params));

  auto restored = MakeParams(99);  // same shapes, different values
  CheckpointMeta loaded;
  std::string err;
  ASSERT_TRUE(
      LoadCheckpoint(path, &loaded, restored, meta.config_hash, &err))
      << err;
  EXPECT_EQ(loaded.epoch, 37);
  EXPECT_EQ(loaded.config_hash, meta.config_hash);
  ExpectSameValues(params, restored);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedFileIsRejectedAndParamsUntouched) {
  std::string path = TempPath("ckpt_trunc.cpck");
  ASSERT_TRUE(SaveCheckpoint(path, CheckpointMeta{10, 1}, MakeParams()));
  int64_t size = FileSize(path);
  ASSERT_GT(size, 0);
  // Cut the file at several depths: mid-header, mid-tensor, missing footer.
  for (int64_t keep : {int64_t{6}, size / 2, size - 1}) {
    ASSERT_TRUE(SaveCheckpoint(path, CheckpointMeta{10, 1}, MakeParams()));
    ASSERT_TRUE(TruncateFile(path, keep));
    auto params = MakeParams(42);
    auto before = MakeParams(42);
    std::string err;
    EXPECT_FALSE(LoadCheckpoint(path, nullptr, params, 0, &err))
        << "keep=" << keep;
    EXPECT_FALSE(err.empty());
    ExpectSameValues(before, params);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, BitFlipAnywhereIsRejected) {
  std::string path = TempPath("ckpt_flip.cpck");
  ASSERT_TRUE(SaveCheckpoint(path, CheckpointMeta{10, 1}, MakeParams()));
  int64_t size = FileSize(path);
  ASSERT_GT(size, 0);
  // Flip one byte in the header, in a tensor payload, and in the footer.
  for (int64_t offset : {int64_t{9}, size / 2, size - 2}) {
    ASSERT_TRUE(SaveCheckpoint(path, CheckpointMeta{10, 1}, MakeParams()));
    ASSERT_TRUE(FlipByte(path, offset));
    auto params = MakeParams(42);
    auto before = MakeParams(42);
    std::string err;
    EXPECT_FALSE(LoadCheckpoint(path, nullptr, params, 0, &err))
        << "offset=" << offset;
    EXPECT_FALSE(err.empty());
    ExpectSameValues(before, params);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, WrongVersionIsRejected) {
  std::string path = TempPath("ckpt_version.cpck");
  // Craft a header with version 999 and a *valid* header CRC so the version
  // check itself (not the checksum) is what rejects the file.
  ASSERT_TRUE(util::AtomicWriteFile(path, [](std::FILE* f) {
    uint32_t magic = 0x4B435043u;  // "CPCK"
    uint32_t version = 999;
    int32_t epoch = 1;
    uint64_t hash = 0;
    util::Crc32 crc;
    crc.Update(&magic, sizeof(magic));
    crc.Update(&version, sizeof(version));
    crc.Update(&epoch, sizeof(epoch));
    crc.Update(&hash, sizeof(hash));
    uint32_t digest = crc.Digest();
    return std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
           std::fwrite(&version, sizeof(version), 1, f) == 1 &&
           std::fwrite(&epoch, sizeof(epoch), 1, f) == 1 &&
           std::fwrite(&hash, sizeof(hash), 1, f) == 1 &&
           std::fwrite(&digest, sizeof(digest), 1, f) == 1;
  }));
  auto params = MakeParams();
  std::string err;
  EXPECT_FALSE(LoadCheckpoint(path, nullptr, params, 0, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(CheckpointTest, ArchitectureHashMismatchIsRejected) {
  std::string path = TempPath("ckpt_arch.cpck");
  CheckpointMeta meta;
  meta.epoch = 5;
  meta.config_hash = HashFields({7, 7, 7});
  ASSERT_TRUE(SaveCheckpoint(path, meta, MakeParams()));
  auto params = MakeParams();
  std::string err;
  EXPECT_FALSE(
      LoadCheckpoint(path, nullptr, params, HashFields({8, 8, 8}), &err));
  EXPECT_NE(err.find("architecture"), std::string::npos) << err;
  // Hash 0 on either side skips the validation.
  EXPECT_TRUE(LoadCheckpoint(path, nullptr, params, 0, &err)) << err;
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchIsRejectedAndParamsUntouched) {
  std::string path = TempPath("ckpt_shape.cpck");
  ASSERT_TRUE(SaveCheckpoint(path, CheckpointMeta{3, 0}, MakeParams()));
  std::vector<t::Tensor> wrong = {
      t::Tensor(cpgan::testing::TestMatrix(4, 4, 1.0f, 3), true)};
  auto before_first = wrong[0].value();
  std::string err;
  EXPECT_FALSE(LoadCheckpoint(path, nullptr, wrong, 0, &err));
  EXPECT_NE(err.find("mismatch"), std::string::npos) << err;
  t::Matrix diff = before_first;
  diff.Axpy(-1.0f, wrong[0].value());
  EXPECT_FLOAT_EQ(diff.Norm(), 0.0f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ValidateCheckpointVetsWithoutAModel) {
  std::string path = TempPath("ckpt_validate.cpck");
  ASSERT_TRUE(SaveCheckpoint(path, CheckpointMeta{12, 9}, MakeParams()));
  CheckpointMeta meta;
  std::string err;
  ASSERT_TRUE(ValidateCheckpoint(path, &meta, 0, &err)) << err;
  EXPECT_EQ(meta.epoch, 12);
  ASSERT_TRUE(FlipByte(path, FileSize(path) / 2));
  EXPECT_FALSE(ValidateCheckpoint(path, &meta, 0, &err));
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

TEST(CheckpointTest, LatestCheckpointPicksHighestEpoch) {
  std::string dir = TempPath("ckpt_scan");
  ASSERT_TRUE(util::MakeDirs(dir));
  // TempDir is shared across runs: clear leftovers from a prior invocation.
  for (int epoch : {5, 10, 20}) std::remove(CheckpointPath(dir, epoch).c_str());
  std::remove((dir + "/notes.txt").c_str());
  EXPECT_EQ(LatestCheckpoint(dir), "");
  auto params = MakeParams();
  for (int epoch : {10, 5, 20}) {
    ASSERT_TRUE(SaveCheckpoint(CheckpointPath(dir, epoch),
                               CheckpointMeta{epoch, 0}, params));
  }
  // A stray non-checkpoint file must not confuse the scan.
  std::FILE* stray = std::fopen((dir + "/notes.txt").c_str(), "w");
  ASSERT_NE(stray, nullptr);
  std::fclose(stray);
  EXPECT_EQ(LatestCheckpoint(dir), CheckpointPath(dir, 20));
  EXPECT_EQ(LatestCheckpoint(dir + "/missing"), "");
}

TEST(CheckpointTest, HashFieldsIsOrderSensitiveAndNeverZero) {
  EXPECT_NE(HashFields({1, 2}), HashFields({2, 1}));
  EXPECT_NE(HashFields({1, 2}), HashFields({1, 2, 0}));
  EXPECT_NE(HashFields({}), 0u);
  EXPECT_EQ(HashFields({5, 6}), HashFields({5, 6}));
}

}  // namespace
}  // namespace cpgan::train
