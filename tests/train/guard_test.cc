#include "train/guard.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "train/fault.h"

namespace cpgan::train {
namespace {

namespace t = cpgan::tensor;

const float kNan = std::numeric_limits<float>::quiet_NaN();
const float kInf = std::numeric_limits<float>::infinity();

std::vector<t::Tensor> MakeParams(int count, float fill) {
  std::vector<t::Tensor> params;
  for (int i = 0; i < count; ++i) {
    params.emplace_back(t::Matrix(2, 3, fill), /*requires_grad=*/true);
  }
  return params;
}

/// Runs a trivial backward pass so every parameter has a touched (finite)
/// gradient accumulator.
void TouchGrads(const std::vector<t::Tensor>& params) {
  t::Tensor loss = t::ScalarConstant(0.0f);
  for (const t::Tensor& p : params) loss = t::Add(loss, t::SumAll(p));
  t::Backward(loss);
}

TEST(GuardTest, ApprovesFiniteStep) {
  auto params = MakeParams(2, 1.0f);
  TouchGrads(params);
  TrainingGuard guard(GuardConfig{}, params);
  EXPECT_EQ(guard.Inspect(0.5f, params), StepVerdict::kOk);
}

TEST(GuardTest, RejectsNonFiniteLoss) {
  auto params = MakeParams(1, 1.0f);
  TouchGrads(params);
  TrainingGuard guard(GuardConfig{}, params);
  EXPECT_EQ(guard.Inspect(kNan, params), StepVerdict::kNonFiniteLoss);
  EXPECT_EQ(guard.Inspect(kInf, params), StepVerdict::kNonFiniteLoss);
  EXPECT_EQ(guard.Inspect(-kInf, params), StepVerdict::kNonFiniteLoss);
}

TEST(GuardTest, RejectsNonFiniteGradientInjectedByFaultPlan) {
  auto params = MakeParams(3, 1.0f);
  TouchGrads(params);
  TrainingGuard guard(GuardConfig{}, params);
  ASSERT_EQ(guard.Inspect(0.5f, params), StepVerdict::kOk);
  PoisonGradient(params, 1);
  EXPECT_EQ(guard.Inspect(0.5f, params), StepVerdict::kNonFiniteGrad);
}

TEST(GuardTest, DetectsLossExplosionOncePerStreamWindowIsFull) {
  GuardConfig config;
  config.window = 4;
  config.explosion_factor = 10.0f;
  auto params = MakeParams(1, 1.0f);
  TouchGrads(params);
  TrainingGuard guard(config, params);
  // Window not full yet: large losses pass the explosion check.
  EXPECT_EQ(guard.Inspect(1e6f, params, 0), StepVerdict::kOk);
  for (int i = 0; i < 4; ++i) guard.CommitGood(1.0f, 0);
  EXPECT_EQ(guard.Inspect(2.0f, params, 0), StepVerdict::kOk);
  EXPECT_EQ(guard.Inspect(50.0f, params, 0), StepVerdict::kLossExplosion);
  // Stream 1 has its own (empty) window: no explosion there.
  EXPECT_EQ(guard.Inspect(50.0f, params, 1), StepVerdict::kOk);
}

TEST(GuardTest, RecoverRestoresLastGoodSnapshot) {
  auto params = MakeParams(2, 1.0f);
  TouchGrads(params);
  TrainingGuard guard(GuardConfig{}, params);
  guard.CommitGood(0.5f);
  ASSERT_TRUE(guard.has_snapshot());
  // Corrupt the live parameters, as a bad step would.
  params[0].mutable_value().Fill(kNan);
  params[1].mutable_value().Fill(777.0f);
  EXPECT_TRUE(guard.Recover());
  EXPECT_EQ(guard.recoveries(), 1);
  for (const t::Tensor& p : params) {
    ASSERT_TRUE(t::AllFinite(p.value()));
    for (int64_t i = 0; i < p.value().size(); ++i) {
      EXPECT_FLOAT_EQ(p.value().data()[i], 1.0f);
    }
  }
}

TEST(GuardTest, RecoverWithoutSnapshotLeavesParamsAlone) {
  auto params = MakeParams(1, 3.0f);
  TrainingGuard guard(GuardConfig{}, params);
  EXPECT_FALSE(guard.Recover());
  EXPECT_EQ(guard.recoveries(), 1);
  EXPECT_FLOAT_EQ(params[0].value().At(0, 0), 3.0f);
}

TEST(GuardTest, ExhaustedAfterMaxRecoveries) {
  GuardConfig config;
  config.max_recoveries = 2;
  auto params = MakeParams(1, 1.0f);
  TrainingGuard guard(config, params);
  guard.CommitGood(1.0f);
  EXPECT_FALSE(guard.exhausted());
  guard.Recover();
  EXPECT_FALSE(guard.exhausted());
  guard.Recover();
  EXPECT_TRUE(guard.exhausted());
}

TEST(GuardTest, DisabledGuardApprovesEverything) {
  GuardConfig config;
  config.enabled = false;
  auto params = MakeParams(1, 1.0f);
  TouchGrads(params);
  PoisonGradient(params, 0);
  TrainingGuard guard(config, params);
  EXPECT_EQ(guard.Inspect(kNan, params), StepVerdict::kOk);
  guard.CommitGood(1.0f);
  EXPECT_FALSE(guard.has_snapshot());
}

TEST(GuardTest, FiniteCheckHelpers) {
  t::Matrix good(2, 2, 1.0f);
  EXPECT_TRUE(t::AllFinite(good));
  good.At(1, 1) = kNan;
  EXPECT_FALSE(t::AllFinite(good));
  good.At(1, 1) = kInf;
  EXPECT_FALSE(t::AllFinite(good));

  auto params = MakeParams(2, 2.0f);
  EXPECT_TRUE(t::GradsFinite(params));  // untouched accumulators are finite
  TouchGrads(params);
  EXPECT_TRUE(t::GradsFinite(params));
  EXPECT_FLOAT_EQ(t::MaxAbsGrad(params), 1.0f);
  PoisonGradient(params, 0);
  EXPECT_FALSE(t::GradsFinite(params));
}

TEST(GuardTest, VerdictNames) {
  EXPECT_STREQ(StepVerdictName(StepVerdict::kOk), "ok");
  EXPECT_STREQ(StepVerdictName(StepVerdict::kNonFiniteLoss),
               "non-finite loss");
  EXPECT_STREQ(StepVerdictName(StepVerdict::kNonFiniteGrad),
               "non-finite gradient");
  EXPECT_STREQ(StepVerdictName(StepVerdict::kLossExplosion),
               "loss explosion");
}

}  // namespace
}  // namespace cpgan::train
